//! # jacob-mudge-vm
//!
//! A reproduction of Bruce L. Jacob and Trevor N. Mudge, *"A Look at
//! Several Memory Management Units, TLB-Refill Mechanisms, and Page Table
//! Organizations"*, ASPLOS VIII, 1998.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`types`] — addresses, pages, access kinds ([`vm_types`]),
//! * [`trace`] — workloads and traces ([`vm_trace`]),
//! * [`cache`] — cache models ([`vm_cache`]),
//! * [`tlb`] — TLB models ([`vm_tlb`]),
//! * [`ptable`] — page-table organizations ([`vm_ptable`]),
//! * [`obs`] — zero-cost event tracing and run telemetry ([`vm_obs`]),
//! * [`core`] — the simulator ([`vm_core`]),
//! * [`explore`] — declarative system specs and parallel design-space
//!   sweeps with Pareto/sensitivity analysis ([`vm_explore`]),
//! * [`serve`] — the fault-tolerant simulation service behind
//!   `repro serve`: admission control, load shedding, graceful drain
//!   ([`vm_serve`]),
//! * [`supervise`] — process-level fault isolation: the supervised
//!   worker-process pool behind `--isolation process` and
//!   `serve --workers`, with heartbeat liveness, crash-loop breakers,
//!   and resource ceilings ([`vm_supervise`]),
//! * [`experiments`] — figure/table drivers ([`vm_experiments`]).
//!
//! # Quick start
//!
//! ```
//! use jacob_mudge_vm::core::{simulate, SimConfig, SystemKind};
//! use jacob_mudge_vm::core::cost::CostModel;
//! use jacob_mudge_vm::trace::presets;
//!
//! # fn main() -> Result<(), jacob_mudge_vm::core::BuildError> {
//! let config = SimConfig::paper_default(SystemKind::Intel);
//! let report = simulate(&config, presets::gcc(42), 50_000, 200_000)?;
//! println!("INTEL VMCPI on gcc: {:.4}", report.vmcpi(&CostModel::default()).total());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and the `repro` binary in
//! [`experiments`] for the full evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vm_cache as cache;
pub use vm_core as core;
pub use vm_experiments as experiments;
pub use vm_explore as explore;
pub use vm_obs as obs;
pub use vm_ptable as ptable;
pub use vm_serve as serve;
pub use vm_supervise as supervise;
pub use vm_tlb as tlb;
pub use vm_trace as trace;
pub use vm_types as types;
