//! Plugging a custom page-table organization into the simulator.
//!
//! The paper closes by predicting "a programmable finite state machine
//! that walks the page table in a user-defined manner". This example
//! plays that role: it defines a page-table organization the paper never
//! simulated — a *single-level* linear table in physical memory, the
//! simplest possible design — wires it into the simulator through the
//! same [`TlbRefill`] trait the built-in organizations use, and races it
//! against ULTRIX and INTEL.
//!
//! A single-level table over 2 GB needs 2 MB of *wired physical* memory
//! (no page can be evicted), which is exactly why the paper's systems all
//! use multi-level or hashed tables — but it needs only **one** memory
//! reference per walk and no nesting, so on pure refill cost it should
//! sit near INTEL. Run it and see:
//!
//! ```text
//! cargo run --release --example custom_page_table
//! ```

use std::error::Error;

use jacob_mudge_vm::cache::{Cache, CacheConfig, CacheSystem};
use jacob_mudge_vm::core::cost::CostModel;
use jacob_mudge_vm::core::{simulate, MemorySystem, SimConfig, SystemKind};
use jacob_mudge_vm::ptable::{TlbRefill, WalkContext};
use jacob_mudge_vm::tlb::{Tlb, TlbConfig};
use jacob_mudge_vm::trace::presets;
use jacob_mudge_vm::types::{AccessKind, HandlerLevel, MAddr, Vpn};

/// A one-level linear page table in wired physical memory, walked by a
/// hardware state machine: one PTE load per refill, no interrupt.
struct FlatTable {
    base: u64,
}

impl FlatTable {
    fn new() -> FlatTable {
        // Outside every structure the built-in layouts use.
        FlatTable { base: 0x0060_0000 }
    }
}

impl TlbRefill for FlatTable {
    fn name(&self) -> &'static str {
        "flat"
    }

    fn refill(&mut self, ctx: &mut dyn WalkContext, vpn: Vpn, _kind: AccessKind) {
        // Four cycles of shift/add/load/insert sequential work.
        ctx.exec_inline(HandlerLevel::User, 4);
        // One PTE load, physically addressed, cacheable.
        let entry = MAddr::physical(self.base + vpn.index_in_space() * 4);
        ctx.pte_load(HandlerLevel::User, entry, 4);
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let cost = CostModel::default();
    let (warmup, measure) = (500_000, 2_000_000);

    // Build the custom system from the same parts the presets use.
    let l1 = CacheConfig::direct_mapped(16 << 10, 64)?;
    let l2 = CacheConfig::direct_mapped(1 << 20, 128)?;
    let tlb_cfg = TlbConfig::paper_flat()?;
    let mut flat = MemorySystem::with_tlb_walker(
        "FLAT",
        CacheSystem::split(Cache::new(l1), Cache::new(l1), Cache::new(l2), Cache::new(l2)),
        Tlb::new(tlb_cfg, 1),
        Tlb::new(tlb_cfg, 2),
        Box::new(FlatTable::new()),
    );

    println!("One-level wired table vs the paper's organizations — gcc model\n");
    println!("{:8}  {:>8}  {:>8}  {:>9}", "system", "VMCPI", "int CPI", "wired mem");

    let mut trace = presets::gcc(42);
    flat.run(&mut trace, warmup);
    flat.reset_counters();
    flat.run(&mut trace, measure);
    let flat_report = flat.report();
    println!(
        "{:8}  {:8.4}  {:8.4}  {:>9}",
        "FLAT",
        flat_report.vmcpi(&cost).total(),
        flat_report.interrupt_cpi(&cost),
        "2 MB"
    );

    for system in [SystemKind::Ultrix, SystemKind::Intel] {
        let report =
            simulate(&SimConfig::paper_default(system), presets::gcc(42), warmup, measure)?;
        let wired = match system {
            SystemKind::Ultrix => "2 KB", // root table only
            _ => "4 KB",                  // page directory
        };
        println!(
            "{:8}  {:8.4}  {:8.4}  {:>9}",
            system.label(),
            report.vmcpi(&cost).total(),
            report.interrupt_cpi(&cost),
            wired
        );
    }

    println!(
        "\nThe flat table needs no nesting and no interrupts, so its refill\n\
         cost undercuts the software schemes — at the price of 2 MB of\n\
         unpageable physical memory per address space, the paper's reason\n\
         such tables died out."
    );
    Ok(())
}
