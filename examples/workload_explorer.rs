//! Exploring how workload character drives VM overhead.
//!
//! The paper's three benchmarks differ in exactly the properties a VM
//! system cares about: code footprint, data-page working set, and
//! spatial locality. This example builds a *parameter ladder* between
//! ijpeg-like and vortex-like behaviour by shrinking one knob at a time —
//! page dwell (temporal page locality) — and shows VM overhead climbing
//! as the TLB loses its grip, for both a software-managed and a
//! hardware-managed MMU.
//!
//! ```text
//! cargo run --release --example workload_explorer
//! ```

use std::error::Error;

use jacob_mudge_vm::core::cost::CostModel;
use jacob_mudge_vm::core::{simulate, SimConfig, SystemKind};
use jacob_mudge_vm::trace::presets;
use jacob_mudge_vm::trace::{AccessPattern, TraceStats};

fn main() -> Result<(), Box<dyn Error>> {
    let cost = CostModel::default();
    println!("How temporal page locality (dwell) drives VM overhead\n");
    println!(
        "{:>6}  {:>10}  {:>14}  {:>14}  {:>14}",
        "dwell", "data pages", "ULTRIX VM+int", "INTEL VM+int", "NOTLB VM+int"
    );

    for dwell in [512u32, 160, 64, 24, 8] {
        // Start from the vortex model and set the object store's dwell.
        let mut spec = presets::vortex_spec();
        spec.name = format!("vortex-dwell{dwell}");
        for region in &mut spec.data.regions {
            if let AccessPattern::RandomPage { dwell: d, .. } = &mut region.pattern {
                *d = dwell;
            }
        }

        let stats = TraceStats::analyze(spec.build(7)?.take(500_000));
        let mut row = format!("{dwell:>6}  {:>10}", stats.data_pages);
        for system in [SystemKind::Ultrix, SystemKind::Intel, SystemKind::NoTlb] {
            let report =
                simulate(&SimConfig::paper_default(system), spec.build(7)?, 400_000, 1_200_000)?;
            let overhead = report.vmcpi(&cost).total() + report.interrupt_cpi(&cost);
            row.push_str(&format!("  {overhead:>14.5}"));
        }
        println!("{row}");
    }

    println!(
        "\nShorter dwells mean more page transitions per instruction: the\n\
         software-managed TLB pays an interrupt and handler per transition,\n\
         the hardware walker only its seven cycles, and the TLB-less system\n\
         reacts only through its caches — three different slopes, one knob."
    );
    Ok(())
}
