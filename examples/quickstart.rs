//! Quickstart: simulate one workload on all six systems and print the
//! paper's headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [instructions]
//! ```
//!
//! `workload` is `gcc`, `vortex` or `ijpeg` (default `gcc`);
//! `instructions` defaults to 2,000,000.

use std::error::Error;

use jacob_mudge_vm::core::cost::CostModel;
use jacob_mudge_vm::core::{simulate, SimConfig, SystemKind};
use jacob_mudge_vm::trace::presets;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let workload_name = args.next().unwrap_or_else(|| "gcc".to_owned());
    let instructions: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(2_000_000);
    let workload = presets::by_name(&workload_name)
        .ok_or_else(|| format!("unknown workload `{workload_name}` (gcc|vortex|ijpeg)"))?;

    println!(
        "Simulating {instructions} instructions of the `{}` model on every system",
        workload.name
    );
    println!("(16 KB L1s, 1 MB-per-side L2s, 64/128-byte lines, 128-entry TLBs)\n");

    let cost = CostModel::default(); // 50-cycle interrupts
    println!(
        "{:8}  {:>8}  {:>8}  {:>8}  {:>9}  {:>10}",
        "system", "MCPI", "VMCPI", "int CPI", "total CPI", "VM overhead"
    );
    let mut base_cpi = None;
    let order = std::iter::once(SystemKind::Base).chain(SystemKind::VM_SYSTEMS);
    for system in order {
        let config = SimConfig::paper_default(system);
        let trace = workload.build(42)?;
        let report = simulate(&config, trace, instructions / 4, instructions)?;
        let total = report.total_cpi(&cost);
        if system == SystemKind::Base {
            base_cpi = Some(total);
        }
        let overhead =
            base_cpi.map(|b| format!("{:+.1}%", 100.0 * (total - b) / b)).unwrap_or_default();
        println!(
            "{:8}  {:8.4}  {:8.4}  {:8.4}  {:9.4}  {:>10}",
            system.label(),
            report.mcpi(&cost).total(),
            report.vmcpi(&cost).total(),
            report.interrupt_cpi(&cost),
            total,
            if system == SystemKind::Base { "baseline".to_owned() } else { overhead },
        );
    }

    println!(
        "\nNote: BASE runs the same trace with no VM at all; every other row's\n\
         MCPI excess over BASE is cache pollution inflicted by the VM handlers."
    );
    Ok(())
}
