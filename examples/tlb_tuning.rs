//! TLB sizing study for an embedded-systems designer.
//!
//! The paper's motivation includes "embedded designers tak[ing] advantage
//! of low-overhead embedded operating systems that provide virtual
//! memory". An embedded MMU's TLB is expensive silicon: this example
//! answers "how small a TLB can I ship?" by sweeping the entry count and
//! replacement policy for a chosen workload and page-table organization,
//! and printing the total VM overhead at each point.
//!
//! ```text
//! cargo run --release --example tlb_tuning [workload]
//! ```

use std::error::Error;

use jacob_mudge_vm::core::cost::CostModel;
use jacob_mudge_vm::core::{simulate, SimConfig, SystemKind};
use jacob_mudge_vm::tlb::Replacement;
use jacob_mudge_vm::trace::presets;

fn main() -> Result<(), Box<dyn Error>> {
    let workload_name = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_owned());
    let workload = presets::by_name(&workload_name)
        .ok_or_else(|| format!("unknown workload `{workload_name}` (gcc|vortex|ijpeg)"))?;
    let cost = CostModel::default();

    println!(
        "TLB sizing for the `{}` model on a software-managed MIPS-style MMU (ULTRIX)\n",
        workload.name
    );
    println!(
        "{:>7}  {:>11}  {:>10}  {:>10}  {:>12}",
        "entries", "replacement", "miss ratio", "VMCPI+int", "reach"
    );

    for &entries in &[16usize, 32, 64, 128, 256, 512] {
        for policy in [Replacement::Random, Replacement::Lru] {
            let mut config = SimConfig::paper_default(SystemKind::Ultrix);
            config.tlb_entries = entries;
            config.tlb_replacement = policy;
            let report = simulate(&config, workload.build(42)?, 500_000, 2_000_000)?;
            let overhead = report.vmcpi(&cost).total() + report.interrupt_cpi(&cost);
            let lookups: u64 =
                report.itlb.iter().chain(report.dtlb.iter()).map(|t| t.lookups).sum();
            let misses: u64 =
                report.itlb.iter().chain(report.dtlb.iter()).map(|t| t.misses()).sum();
            println!(
                "{entries:>7}  {:>11}  {:>10.5}  {:>10.5}  {:>9} KB",
                policy.to_string(),
                misses as f64 / lookups.max(1) as f64,
                overhead,
                entries * 4,
            );
        }
    }

    println!(
        "\nReach = entries x 4 KB pages per split TLB. Once reach covers the hot\n\
         working set, further entries buy little — the knee is where to size."
    );
    Ok(())
}
