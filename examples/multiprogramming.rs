//! Multiprogramming: what context switches do to each MMU design.
//!
//! Runs a three-process mix (gcc + vortex + ijpeg) under shrinking
//! scheduler quanta, comparing a MIPS-style ASID-tagged TLB against a
//! period-x86-style untagged TLB that must flush on every switch — and
//! showing the crossover: with long quanta, flushing *wins*, because
//! descheduled processes' stale entries pollute a tagged TLB, while a
//! freshly flushed TLB hands the running process all 128 entries.
//!
//! ```text
//! cargo run --release --example multiprogramming
//! ```

use std::error::Error;

use jacob_mudge_vm::core::cost::CostModel;
use jacob_mudge_vm::core::{simulate, AsidMode, SimConfig, SystemKind};
use jacob_mudge_vm::trace::{presets, Multiprogram};

fn main() -> Result<(), Box<dyn Error>> {
    let cost = CostModel::default();
    let mix = vec![presets::gcc_spec(), presets::vortex_spec(), presets::ijpeg_spec()];
    let names: Vec<&str> = mix.iter().map(|w| w.name.as_str()).collect();

    println!("Process mix: {} (round-robin) on ULTRIX\n", names.join(" + "));
    println!(
        "{:>9}  {:>14}  {:>14}  {:>9}",
        "quantum", "tagged VM+int", "untagged VM+int", "winner"
    );

    for quantum in [1_000_000u64, 200_000, 50_000, 10_000] {
        let mut totals = Vec::new();
        for mode in [AsidMode::Tagged, AsidMode::Untagged] {
            let mut config = SimConfig::paper_default(SystemKind::Ultrix);
            config.asid_mode = mode;
            let trace = Multiprogram::new(mix.clone(), quantum, 42)?;
            let report = simulate(&config, trace, 600_000, 1_800_000)?;
            totals.push(report.vmcpi(&cost).total() + report.interrupt_cpi(&cost));
        }
        let winner = if totals[0] < totals[1] { "ASIDs" } else { "flush" };
        println!("{quantum:>9}  {:>14.5}  {:>14.5}  {:>9}", totals[0], totals[1], winner);
    }

    println!(
        "\nShort quanta punish flushing (each switch restarts translation\n\
         cold); long quanta can favour it (stale entries stop squatting in\n\
         the 128-entry TLB). MIPS shipped ASIDs, x86 flushed on CR3 reload —\n\
         both were defensible, and this is the trade they were making."
    );
    Ok(())
}
