#!/usr/bin/env python3
"""vm-serve end-to-end smoke, run by CI and runnable locally:

    python3 scripts/serve_smoke.py [path/to/repro]

Boots the daemon on an ephemeral port, submits a 4-point quick sweep,
SIGTERMs it mid-run (graceful drain must exit 0), restarts with
--resume, and asserts the healed results are bit-identical to an
uninterrupted run.
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

REPRO = sys.argv[1] if len(sys.argv) > 1 else "target/release/repro"
SPEC = '[mmu]\nkind = "software-tlb"\ntable = "two-tier"\n'
SUBMIT = {
    "req": "submit",
    "spec": SPEC,
    "sweep": ["tlb.entries=32,64,128,256"],
    "scale": "quick",
}


def rpc(port, obj, timeout=60):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        f = s.makefile("rw")
        f.write(json.dumps(obj) + "\n")
        f.flush()
        line = f.readline()
    assert line, f"daemon closed the connection on {obj!r}"
    return json.loads(line)


def start(extra_args):
    proc = subprocess.Popen(
        [REPRO, "serve", "--jobs", "1", *extra_args],
        stdout=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()  # the documented port-scrape contract
    assert line.startswith("vm-serve listening on "), repr(line)
    return proc, int(line.rsplit(":", 1)[1])


def wait_done(port, job):
    for _ in range(6000):
        r = rpc(port, {"req": "status", "job": job})
        if r["state"] == "done":
            return
        assert r["state"] in ("queued", "running"), r
        time.sleep(0.01)
    raise SystemExit(f"job {job} never finished")


def run_to_completion(extra_args, submit):
    proc, port = start(extra_args)
    if submit:
        r = rpc(port, SUBMIT)
        assert r["ok"] and r["job"] == 1, r
    wait_done(port, 1)
    result = rpc(port, {"req": "result", "job": 1})
    assert result["ok"] and result["state"] == "done", result
    rpc(port, {"req": "drain"})
    assert proc.wait(timeout=60) == 0, "drain must exit 0"
    return result


state = tempfile.mkdtemp(prefix="vm-serve-smoke-")
events = os.path.join(state, "events.jsonl")

# Lifetime 1: submit, wait for the first journaled point, kill -TERM.
proc, port = start(["--state-dir", state, "--events", events])
r = rpc(port, SUBMIT)
assert r["ok"] and r["job"] == 1 and r["points"] == 4, r
for _ in range(6000):
    if rpc(port, {"req": "status", "job": 1})["done"] >= 1:
        break
    time.sleep(0.01)
proc.send_signal(signal.SIGTERM)
assert proc.wait(timeout=60) == 0, "SIGTERM drain must exit 0"

# Lifetime 2: restart with --resume; the job heals from its journal.
resumed = run_to_completion(
    ["--state-dir", state, "--resume", "--events", events], submit=False
)
assert resumed["resumed"] >= 1, resumed
assert resumed["failures"] == [], resumed

# Reference: the same submission, uninterrupted, in a fresh daemon.
reference = run_to_completion([], submit=True)
assert json.dumps(resumed["results"], sort_keys=True) == json.dumps(
    reference["results"], sort_keys=True
), "resumed results are not bit-identical to the uninterrupted run"

# The event stream spans both lifetimes and folds into a report.
report = subprocess.run(
    [REPRO, "serve-stats", events], capture_output=True, text=True, check=True
)
assert "admitted 1" in report.stdout, report.stdout

shutil.rmtree(state)
print(
    f"serve smoke ok: {len(resumed['results'])} points bit-identical after "
    f"SIGTERM + --resume (seeded {resumed['resumed']} from the journal)"
)
