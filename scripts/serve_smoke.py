#!/usr/bin/env python3
"""vm-serve end-to-end smoke, run by CI and runnable locally:

    python3 scripts/serve_smoke.py [path/to/repro]

Boots the daemon on an ephemeral port, submits a 4-point quick sweep,
SIGTERMs it mid-run (graceful drain must exit 0), restarts with
--resume, and asserts the healed results are bit-identical to an
uninterrupted run. Then boots a daemon with a supervised worker
subprocess (--workers 1), SIGKILLs the worker mid-job, and asserts the
daemon stays healthy while the job's results come out byte-identical
anyway (the supervisor restarts the worker and re-dispatches).
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

REPRO = sys.argv[1] if len(sys.argv) > 1 else "target/release/repro"
SPEC = '[mmu]\nkind = "software-tlb"\ntable = "two-tier"\n'
SUBMIT = {
    "req": "submit",
    "spec": SPEC,
    "sweep": ["tlb.entries=32,64,128,256"],
    "scale": "quick",
}


def rpc(port, obj, timeout=60):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        f = s.makefile("rw")
        f.write(json.dumps(obj) + "\n")
        f.flush()
        line = f.readline()
    assert line, f"daemon closed the connection on {obj!r}"
    return json.loads(line)


def start(extra_args):
    proc = subprocess.Popen(
        [REPRO, "serve", "--jobs", "1", *extra_args],
        stdout=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()  # the documented port-scrape contract
    assert line.startswith("vm-serve listening on "), repr(line)
    return proc, int(line.rsplit(":", 1)[1])


def wait_done(port, job):
    for _ in range(6000):
        r = rpc(port, {"req": "status", "job": job})
        if r["state"] == "done":
            return
        assert r["state"] in ("queued", "running"), r
        time.sleep(0.01)
    raise SystemExit(f"job {job} never finished")


def run_to_completion(extra_args, submit):
    proc, port = start(extra_args)
    if submit:
        r = rpc(port, SUBMIT)
        assert r["ok"] and r["job"] == 1, r
    wait_done(port, 1)
    result = rpc(port, {"req": "result", "job": 1})
    assert result["ok"] and result["state"] == "done", result
    rpc(port, {"req": "drain"})
    assert proc.wait(timeout=60) == 0, "drain must exit 0"
    return result


state = tempfile.mkdtemp(prefix="vm-serve-smoke-")
events = os.path.join(state, "events.jsonl")

# Lifetime 1: submit, wait for the first journaled point, kill -TERM.
proc, port = start(["--state-dir", state, "--events", events])
r = rpc(port, SUBMIT)
assert r["ok"] and r["job"] == 1 and r["points"] == 4, r
for _ in range(6000):
    if rpc(port, {"req": "status", "job": 1})["done"] >= 1:
        break
    time.sleep(0.01)
proc.send_signal(signal.SIGTERM)
assert proc.wait(timeout=60) == 0, "SIGTERM drain must exit 0"

# Lifetime 2: restart with --resume; the job heals from its journal.
resumed = run_to_completion(
    ["--state-dir", state, "--resume", "--events", events], submit=False
)
assert resumed["resumed"] >= 1, resumed
assert resumed["failures"] == [], resumed

# Reference: the same submission, uninterrupted, in a fresh daemon.
reference = run_to_completion([], submit=True)
assert json.dumps(resumed["results"], sort_keys=True) == json.dumps(
    reference["results"], sort_keys=True
), "resumed results are not bit-identical to the uninterrupted run"

# The event stream spans both lifetimes and folds into a report.
report = subprocess.run(
    [REPRO, "serve-stats", events], capture_output=True, text=True, check=True
)
assert "admitted 1" in report.stdout, report.stdout


# Lifetime 3: a supervised worker subprocess gets SIGKILLed mid-job.
# The daemon must stay healthy, the supervisor must restart the worker,
# and the job's merged results must still match the reference byte for
# byte.
def find_worker(daemon_pid):
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            with open(f"/proc/{pid}/status") as f:
                status = f.read()
            with open(f"/proc/{pid}/cmdline", "rb") as f:
                cmdline = f.read().split(b"\0")
        except OSError:
            continue
        ppid = next(
            (int(l.split()[1]) for l in status.splitlines() if l.startswith("PPid:")),
            None,
        )
        if ppid == daemon_pid and b"worker" in cmdline:
            return int(pid)
    return None


proc, port = start(["--workers", "1"])
r = rpc(port, SUBMIT)
assert r["ok"] and r["job"] == 1, r
for _ in range(6000):  # a finished point proves a live, warmed-up worker
    if rpc(port, {"req": "status", "job": 1})["done"] >= 1:
        break
    time.sleep(0.01)
worker = find_worker(proc.pid)
assert worker is not None, "no worker subprocess found under the daemon"
os.kill(worker, signal.SIGKILL)
wait_done(port, 1)
health = rpc(port, {"req": "health"})
assert health["state"] == "serving" and health["worker_processes"] == 1, health
survived = rpc(port, {"req": "result", "job": 1})
assert survived["ok"] and survived["failures"] == [], survived
rpc(port, {"req": "drain"})
assert proc.wait(timeout=60) == 0, "drain after a worker kill must exit 0"
assert json.dumps(survived["results"], sort_keys=True) == json.dumps(
    reference["results"], sort_keys=True
), "results after a SIGKILLed worker are not bit-identical"

shutil.rmtree(state)
print(
    f"serve smoke ok: {len(resumed['results'])} points bit-identical after "
    f"SIGTERM + --resume (seeded {resumed['resumed']} from the journal) "
    f"and after a SIGKILLed worker subprocess"
)
