#!/usr/bin/env python3
"""vm-serve end-to-end smoke, run by CI and runnable locally:

    python3 scripts/serve_smoke.py [path/to/repro]

Boots the daemon on an ephemeral port, submits a 4-point quick sweep,
SIGTERMs it mid-run (graceful drain must exit 0), restarts with
--resume, and asserts the healed results are bit-identical to an
uninterrupted run. The uninterrupted reference run is watched over the
live `watch` stream (docs/live.md): progress frames must advance
monotonically, end in a terminal `done` frame, and — because the
resumed run was unwatched — the existing bit-identity assert doubles as
proof that watching never perturbs results. Then boots a daemon with a
supervised worker subprocess (--workers 1), SIGKILLs the worker
mid-job, and asserts the watch stream carries the `worker_crashed`
frame while the daemon stays healthy and the job's results come out
byte-identical anyway (the supervisor restarts the worker and
re-dispatches).

Finally the fleet phase (docs/fleet.md): a 12-point sweep runs once
through `repro explore --jobs 1` as the reference, once through
`repro fleet --spawn 1`, and once through `repro fleet --spawn 3`
where one backend is SIGKILLed mid-sweep (the fleet's watch proxy
reports the first completed point, so the kill provably lands with
work still pending). All three must produce byte-identical CSVs and
journals, the killed run must exit 0, and its event stream must record
the `backend_evicted`.
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

REPRO = sys.argv[1] if len(sys.argv) > 1 else "target/release/repro"
SPEC = '[mmu]\nkind = "software-tlb"\ntable = "two-tier"\n'
SUBMIT = {
    "req": "submit",
    "spec": SPEC,
    "sweep": ["tlb.entries=32,64,128,256"],
    "scale": "quick",
}


def rpc(port, obj, timeout=60):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        f = s.makefile("rw")
        f.write(json.dumps(obj) + "\n")
        f.flush()
        line = f.readline()
    assert line, f"daemon closed the connection on {obj!r}"
    return json.loads(line)


def start(extra_args):
    proc = subprocess.Popen(
        [REPRO, "serve", "--jobs", "1", *extra_args],
        stdout=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()  # the documented port-scrape contract
    assert line.startswith("vm-serve listening on "), repr(line)
    return proc, int(line.rsplit(":", 1)[1])


def watch_stream(port, job="*", timeout=120):
    """Opens a `watch` subscription; returns (socket, file) past the ack."""
    s = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    f = s.makefile("rw")
    f.write(json.dumps({"req": "watch", "job": job}) + "\n")
    f.flush()
    ack = json.loads(f.readline())
    assert ack["ok"] and ack["watching"] == job, ack
    return s, f


def collect_frames(f, job):
    """Reads frames (keepalive ticks dropped) until `job`'s terminal frame."""
    frames = []
    while True:
        line = f.readline()
        assert line, "watch stream ended before the job's terminal frame"
        frame = json.loads(line)
        if frame["frame"] == "tick":
            continue
        frames.append(frame)
        if frame["frame"] == "done" and frame.get("job") == job:
            return frames


def wait_done(port, job):
    for _ in range(6000):
        r = rpc(port, {"req": "status", "job": job})
        if r["state"] == "done":
            return
        assert r["state"] in ("queued", "running"), r
        time.sleep(0.01)
    raise SystemExit(f"job {job} never finished")


def run_to_completion(extra_args, submit, watch=False):
    proc, port = start(extra_args)
    watcher = watch_stream(port) if watch else None  # subscribe pre-submit
    if submit:
        r = rpc(port, SUBMIT)
        assert r["ok"] and r["job"] == 1, r
    frames = []
    if watcher:
        ws, wf = watcher
        frames = collect_frames(wf, 1)
        ws.close()
    wait_done(port, 1)
    result = rpc(port, {"req": "result", "job": 1})
    assert result["ok"] and result["state"] == "done", result
    rpc(port, {"req": "drain"})
    assert proc.wait(timeout=60) == 0, "drain must exit 0"
    return result, frames


state = tempfile.mkdtemp(prefix="vm-serve-smoke-")
events = os.path.join(state, "events.jsonl")

# Lifetime 1: submit, wait for the first journaled point, kill -TERM.
proc, port = start(["--state-dir", state, "--events", events])
r = rpc(port, SUBMIT)
assert r["ok"] and r["job"] == 1 and r["points"] == 4, r
for _ in range(6000):
    if rpc(port, {"req": "status", "job": 1})["done"] >= 1:
        break
    time.sleep(0.01)
proc.send_signal(signal.SIGTERM)
assert proc.wait(timeout=60) == 0, "SIGTERM drain must exit 0"

# Lifetime 2: restart with --resume; the job heals from its journal.
resumed, _ = run_to_completion(
    ["--state-dir", state, "--resume", "--events", events], submit=False
)
assert resumed["resumed"] >= 1, resumed
assert resumed["failures"] == [], resumed

# Reference: the same submission, uninterrupted, in a fresh daemon —
# watched live, so the bit-identity assert below also proves a watch
# subscriber never perturbs results (the resumed run was unwatched).
reference, frames = run_to_completion([], submit=True, watch=True)
assert json.dumps(resumed["results"], sort_keys=True) == json.dumps(
    reference["results"], sort_keys=True
), "watched results are not bit-identical to the unwatched resumed run"

# The stream brackets the job (admitted ... done) and progress frames
# advance monotonically through the sweep.
assert frames[0]["frame"] == "admitted" and frames[0]["job"] == 1, frames[0]
assert frames[-1]["frame"] == "done" and frames[-1]["state"] == "done", frames[-1]
assert frames[-1]["points"] == 4 and frames[-1]["failed"] == 0, frames[-1]
progress = [f for f in frames if f["frame"] == "progress"]
assert len(progress) >= 3, f"want >= 3 progress checkpoints, got {len(progress)}"
overall = [
    f["done"] * f["instrs_total"] + min(f["instrs"], f["instrs_total"])
    for f in progress
]
assert all(a < b for a, b in zip(overall, overall[1:])), overall
percents = [f["percent"] for f in progress]
assert all(a <= b for a, b in zip(percents, percents[1:])), percents
assert all(0.0 <= p <= 100.0 for p in percents), percents

# The event stream spans both lifetimes and folds into a report.
report = subprocess.run(
    [REPRO, "serve-stats", events], capture_output=True, text=True, check=True
)
assert "admitted 1" in report.stdout, report.stdout


# Lifetime 3: a supervised worker subprocess gets SIGKILLed mid-job.
# The daemon must stay healthy, the supervisor must restart the worker,
# and the job's merged results must still match the reference byte for
# byte.
def find_worker(daemon_pid):
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            with open(f"/proc/{pid}/status") as f:
                status = f.read()
            with open(f"/proc/{pid}/cmdline", "rb") as f:
                cmdline = f.read().split(b"\0")
        except OSError:
            continue
        ppid = next(
            (int(l.split()[1]) for l in status.splitlines() if l.startswith("PPid:")),
            None,
        )
        if ppid == daemon_pid and b"worker" in cmdline:
            return int(pid)
    return None


proc, port = start(["--workers", "1"])
ws3, wf3 = watch_stream(port)  # the crash must be visible live
r = rpc(port, SUBMIT)
assert r["ok"] and r["job"] == 1, r
for _ in range(6000):  # a finished point proves a live, warmed-up worker
    if rpc(port, {"req": "status", "job": 1})["done"] >= 1:
        break
    time.sleep(0.01)
worker = find_worker(proc.pid)
assert worker is not None, "no worker subprocess found under the daemon"
os.kill(worker, signal.SIGKILL)
crash_frames = collect_frames(wf3, 1)  # stops at the job's done frame
ws3.close()
worker_kinds = {f["kind"] for f in crash_frames if f["frame"] == "worker"}
assert "worker_crashed" in worker_kinds, (
    f"the SIGKILL must surface as a worker_crashed frame before the job "
    f"finishes; saw {sorted(worker_kinds)}"
)
wait_done(port, 1)
health = rpc(port, {"req": "health"})
assert health["state"] == "serving" and health["worker_processes"] == 1, health
survived = rpc(port, {"req": "result", "job": 1})
assert survived["ok"] and survived["failures"] == [], survived
rpc(port, {"req": "drain"})
assert proc.wait(timeout=60) == 0, "drain after a worker kill must exit 0"
assert json.dumps(survived["results"], sort_keys=True) == json.dumps(
    reference["results"], sort_keys=True
), "results after a SIGKILLed worker are not bit-identical"


# Fleet phase: the same sweep sharded across daemons must merge back
# byte-identically to a single-node run — including when one of three
# backends is SIGKILLed while points are still pending.
FLEET_SWEEP = ["--sweep", "tlb.entries=16,32,64,128", "--sweep", "cache.l1=4K,8K,16K"]
spec_path = os.path.join(state, "smoke.toml")
with open(spec_path, "w") as f:
    f.write(SPEC)


def artifacts(tag):
    return os.path.join(state, f"{tag}.journal"), os.path.join(state, tag)


def read_bytes(path):
    with open(path, "rb") as f:
        return f.read()


ref_journal, ref_out = artifacts("ref")
subprocess.run(
    [REPRO, "explore", spec_path, *FLEET_SWEEP, "--quick", "--jobs", "1",
     "--journal", ref_journal, "--out", ref_out, "-q"],
    check=True, stdout=subprocess.DEVNULL,
)

one_journal, one_out = artifacts("fleet1")
subprocess.run(
    [REPRO, "fleet", spec_path, *FLEET_SWEEP, "--quick", "--spawn", "1",
     "--journal", one_journal, "--out", one_out, "-q"],
    check=True, stdout=subprocess.DEVNULL,
)

three_journal, three_out = artifacts("fleet3")
fleet_events = os.path.join(state, "fleet-events.jsonl")
fleet = subprocess.Popen(
    [REPRO, "fleet", spec_path, *FLEET_SWEEP, "--quick", "--spawn", "3",
     "--evict-after", "1", "--watch-addr", "127.0.0.1:0",
     "--journal", three_journal, "--out", three_out,
     "--events", fleet_events, "-q"],
    stdout=subprocess.PIPE, text=True,
)
pids = {}
watch_port = None
while watch_port is None:  # the documented startup contract, in order
    line = fleet.stdout.readline()
    if line.startswith("vm-fleet backend "):
        _, _, bid, _, pid, _, _ = line.split()
        pids[int(bid)] = int(pid)
    elif line.startswith("vm-fleet watching on "):
        watch_port = int(line.rsplit(":", 1)[1])
    else:
        raise SystemExit(f"unexpected fleet startup line: {line!r}")
assert sorted(pids) == [0, 1, 2], pids

# Subscribe to the fleet's aggregated watch stream and wait for the
# first completed point: killing after it provably lands mid-sweep
# (11 of 12 points still owed) on a backend that was doing real work.
fs, ff = watch_stream(watch_port)
victim = None
while victim is None:
    frame = json.loads(ff.readline())
    if frame.get("frame") == "done":
        victim = frame["backend"]
fs.close()
os.kill(pids[victim], signal.SIGKILL)
fleet.stdout.read()  # drain the results table
assert fleet.wait(timeout=300) == 0, "a SIGKILLed backend must not fail the run"

for tag, (journal, out) in (("fleet1", (one_journal, one_out)),
                            ("fleet3", (three_journal, three_out))):
    assert read_bytes(journal) == read_bytes(ref_journal), f"{tag}: journal drifted"
    for csv in os.listdir(ref_out):
        assert read_bytes(os.path.join(out, csv)) == read_bytes(
            os.path.join(ref_out, csv)
        ), f"{tag}: {csv} drifted"

kinds = [json.loads(l).get("ev") for l in open(fleet_events)]
assert "backend_evicted" in kinds, kinds
assert "fleet_merged" in kinds, kinds
fleet_report = subprocess.run(
    [REPRO, "serve-stats", fleet_events], capture_output=True, text=True, check=True
)
assert "1 backend eviction(s)" in fleet_report.stdout, fleet_report.stdout

shutil.rmtree(state)
print(
    f"serve smoke ok: {len(resumed['results'])} points bit-identical after "
    f"SIGTERM + --resume (seeded {resumed['resumed']} from the journal) "
    f"and after a SIGKILLed worker subprocess; 12-point fleet merge "
    f"byte-identical at 1 and 3 backends (one SIGKILLed mid-sweep and evicted)"
)
