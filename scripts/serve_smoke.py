#!/usr/bin/env python3
"""vm-serve end-to-end smoke, run by CI and runnable locally:

    python3 scripts/serve_smoke.py [path/to/repro]

Boots the daemon on an ephemeral port, submits a 4-point quick sweep,
SIGTERMs it mid-run (graceful drain must exit 0), restarts with
--resume, and asserts the healed results are bit-identical to an
uninterrupted run. The uninterrupted reference run is watched over the
live `watch` stream (docs/live.md): progress frames must advance
monotonically, end in a terminal `done` frame, and — because the
resumed run was unwatched — the existing bit-identity assert doubles as
proof that watching never perturbs results. Then boots a daemon with a
supervised worker subprocess (--workers 1), SIGKILLs the worker
mid-job, and asserts the watch stream carries the `worker_crashed`
frame while the daemon stays healthy and the job's results come out
byte-identical anyway (the supervisor restarts the worker and
re-dispatches).

Finally the fleet phase (docs/fleet.md): a 12-point sweep runs once
through `repro explore --jobs 1` as the reference, once through
`repro fleet --spawn 1`, and once through `repro fleet --spawn 3`
where one backend is SIGKILLed mid-sweep (the fleet's watch proxy
reports the first completed point, so the kill provably lands with
work still pending). All three must produce byte-identical CSVs and
journals, the killed run must exit 0, and its event stream must record
the `backend_evicted`. The integrity phase (docs/robustness.md) then
re-runs the sweep across three daemons where one *lies* about its
results (`--chaos lie@0`): full audit sampling must quarantine it with
eviction reason `integrity`, the merge must stay byte-identical
anyway, and `repro verify` must pass the honest artifacts offline but
name the exact point and stage when handed a tampered journal.

The elasticity phase exercises the elastic membership layer
(docs/fleet.md): a backend that starts dead is evicted, heals, and
rejoins through probation while a fourth backend joins mid-sweep over
the join/leave/roster control channel — artifacts must stay
byte-identical and the probation/rejoin events must fold into
serve-stats. The final phase SIGKILLs the *coordinator* mid-merge and
restarts it with `--fleet-journal ... --resume`: the resumed run replays
the journaled points and converges to the same bytes.
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time

REPRO = sys.argv[1] if len(sys.argv) > 1 else "target/release/repro"
SPEC = '[mmu]\nkind = "software-tlb"\ntable = "two-tier"\n'
SUBMIT = {
    "req": "submit",
    "spec": SPEC,
    "sweep": ["tlb.entries=32,64,128,256"],
    "scale": "quick",
}


def rpc(port, obj, timeout=60):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        f = s.makefile("rw")
        f.write(json.dumps(obj) + "\n")
        f.flush()
        line = f.readline()
    assert line, f"daemon closed the connection on {obj!r}"
    return json.loads(line)


def start(extra_args):
    proc = subprocess.Popen(
        [REPRO, "serve", "--jobs", "1", *extra_args],
        stdout=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()  # the documented port-scrape contract
    assert line.startswith("vm-serve listening on "), repr(line)
    return proc, int(line.rsplit(":", 1)[1])


def watch_stream(port, job="*", timeout=120):
    """Opens a `watch` subscription; returns (socket, file) past the ack."""
    s = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    f = s.makefile("rw")
    f.write(json.dumps({"req": "watch", "job": job}) + "\n")
    f.flush()
    ack = json.loads(f.readline())
    assert ack["ok"] and ack["watching"] == job, ack
    return s, f


def collect_frames(f, job):
    """Reads frames (keepalive ticks dropped) until `job`'s terminal frame."""
    frames = []
    while True:
        line = f.readline()
        assert line, "watch stream ended before the job's terminal frame"
        frame = json.loads(line)
        if frame["frame"] == "tick":
            continue
        frames.append(frame)
        if frame["frame"] == "done" and frame.get("job") == job:
            return frames


def wait_done(port, job):
    for _ in range(6000):
        r = rpc(port, {"req": "status", "job": job})
        if r["state"] == "done":
            return
        assert r["state"] in ("queued", "running"), r
        time.sleep(0.01)
    raise SystemExit(f"job {job} never finished")


def run_to_completion(extra_args, submit, watch=False):
    proc, port = start(extra_args)
    watcher = watch_stream(port) if watch else None  # subscribe pre-submit
    if submit:
        r = rpc(port, SUBMIT)
        assert r["ok"] and r["job"] == 1, r
    frames = []
    if watcher:
        ws, wf = watcher
        frames = collect_frames(wf, 1)
        ws.close()
    wait_done(port, 1)
    result = rpc(port, {"req": "result", "job": 1})
    assert result["ok"] and result["state"] == "done", result
    rpc(port, {"req": "drain"})
    assert proc.wait(timeout=60) == 0, "drain must exit 0"
    return result, frames


state = tempfile.mkdtemp(prefix="vm-serve-smoke-")
events = os.path.join(state, "events.jsonl")

# Lifetime 1: submit, wait for the first journaled point, kill -TERM.
proc, port = start(["--state-dir", state, "--events", events])
r = rpc(port, SUBMIT)
assert r["ok"] and r["job"] == 1 and r["points"] == 4, r
for _ in range(6000):
    if rpc(port, {"req": "status", "job": 1})["done"] >= 1:
        break
    time.sleep(0.01)
proc.send_signal(signal.SIGTERM)
assert proc.wait(timeout=60) == 0, "SIGTERM drain must exit 0"

# Lifetime 2: restart with --resume; the job heals from its journal.
resumed, _ = run_to_completion(
    ["--state-dir", state, "--resume", "--events", events], submit=False
)
assert resumed["resumed"] >= 1, resumed
assert resumed["failures"] == [], resumed

# Reference: the same submission, uninterrupted, in a fresh daemon —
# watched live, so the bit-identity assert below also proves a watch
# subscriber never perturbs results (the resumed run was unwatched).
reference, frames = run_to_completion([], submit=True, watch=True)
assert json.dumps(resumed["results"], sort_keys=True) == json.dumps(
    reference["results"], sort_keys=True
), "watched results are not bit-identical to the unwatched resumed run"

# The stream brackets the job (admitted ... done) and progress frames
# advance monotonically through the sweep.
assert frames[0]["frame"] == "admitted" and frames[0]["job"] == 1, frames[0]
assert frames[-1]["frame"] == "done" and frames[-1]["state"] == "done", frames[-1]
assert frames[-1]["points"] == 4 and frames[-1]["failed"] == 0, frames[-1]
progress = [f for f in frames if f["frame"] == "progress"]
assert len(progress) >= 3, f"want >= 3 progress checkpoints, got {len(progress)}"
overall = [
    f["done"] * f["instrs_total"] + min(f["instrs"], f["instrs_total"])
    for f in progress
]
assert all(a < b for a, b in zip(overall, overall[1:])), overall
percents = [f["percent"] for f in progress]
assert all(a <= b for a, b in zip(percents, percents[1:])), percents
assert all(0.0 <= p <= 100.0 for p in percents), percents

# The event stream spans both lifetimes and folds into a report.
report = subprocess.run(
    [REPRO, "serve-stats", events], capture_output=True, text=True, check=True
)
assert "admitted 1" in report.stdout, report.stdout


# Lifetime 3: a supervised worker subprocess gets SIGKILLed mid-job.
# The daemon must stay healthy, the supervisor must restart the worker,
# and the job's merged results must still match the reference byte for
# byte.
def find_worker(daemon_pid):
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            with open(f"/proc/{pid}/status") as f:
                status = f.read()
            with open(f"/proc/{pid}/cmdline", "rb") as f:
                cmdline = f.read().split(b"\0")
        except OSError:
            continue
        ppid = next(
            (int(l.split()[1]) for l in status.splitlines() if l.startswith("PPid:")),
            None,
        )
        if ppid == daemon_pid and b"worker" in cmdline:
            return int(pid)
    return None


proc, port = start(["--workers", "1"])
ws3, wf3 = watch_stream(port)  # the crash must be visible live
r = rpc(port, SUBMIT)
assert r["ok"] and r["job"] == 1, r
for _ in range(6000):  # a finished point proves a live, warmed-up worker
    if rpc(port, {"req": "status", "job": 1})["done"] >= 1:
        break
    time.sleep(0.01)
worker = find_worker(proc.pid)
assert worker is not None, "no worker subprocess found under the daemon"
os.kill(worker, signal.SIGKILL)
crash_frames = collect_frames(wf3, 1)  # stops at the job's done frame
ws3.close()
worker_kinds = {f["kind"] for f in crash_frames if f["frame"] == "worker"}
assert "worker_crashed" in worker_kinds, (
    f"the SIGKILL must surface as a worker_crashed frame before the job "
    f"finishes; saw {sorted(worker_kinds)}"
)
wait_done(port, 1)
health = rpc(port, {"req": "health"})
assert health["state"] == "serving" and health["worker_processes"] == 1, health
survived = rpc(port, {"req": "result", "job": 1})
assert survived["ok"] and survived["failures"] == [], survived
rpc(port, {"req": "drain"})
assert proc.wait(timeout=60) == 0, "drain after a worker kill must exit 0"
assert json.dumps(survived["results"], sort_keys=True) == json.dumps(
    reference["results"], sort_keys=True
), "results after a SIGKILLed worker are not bit-identical"


# Fleet phase: the same sweep sharded across daemons must merge back
# byte-identically to a single-node run — including when one of three
# backends is SIGKILLed while points are still pending.
FLEET_SWEEP = ["--sweep", "tlb.entries=16,32,64,128", "--sweep", "cache.l1=4K,8K,16K"]
spec_path = os.path.join(state, "smoke.toml")
with open(spec_path, "w") as f:
    f.write(SPEC)


def artifacts(tag):
    return os.path.join(state, f"{tag}.journal"), os.path.join(state, tag)


def read_bytes(path):
    with open(path, "rb") as f:
        return f.read()


ref_journal, ref_out = artifacts("ref")
subprocess.run(
    [REPRO, "explore", spec_path, *FLEET_SWEEP, "--quick", "--jobs", "1",
     "--journal", ref_journal, "--out", ref_out, "-q"],
    check=True, stdout=subprocess.DEVNULL,
)

one_journal, one_out = artifacts("fleet1")
subprocess.run(
    [REPRO, "fleet", spec_path, *FLEET_SWEEP, "--quick", "--spawn", "1",
     "--journal", one_journal, "--out", one_out, "-q"],
    check=True, stdout=subprocess.DEVNULL,
)

three_journal, three_out = artifacts("fleet3")
fleet_events = os.path.join(state, "fleet-events.jsonl")
fleet = subprocess.Popen(
    [REPRO, "fleet", spec_path, *FLEET_SWEEP, "--quick", "--spawn", "3",
     "--evict-after", "1", "--watch-addr", "127.0.0.1:0",
     "--journal", three_journal, "--out", three_out,
     "--events", fleet_events, "-q"],
    stdout=subprocess.PIPE, text=True,
)
pids = {}
watch_port = None
while watch_port is None:  # the documented startup contract, in order
    line = fleet.stdout.readline()
    if line.startswith("vm-fleet backend "):
        _, _, bid, _, pid, _, _ = line.split()
        pids[int(bid)] = int(pid)
    elif line.startswith("vm-fleet watching on "):
        watch_port = int(line.rsplit(":", 1)[1])
    else:
        raise SystemExit(f"unexpected fleet startup line: {line!r}")
assert sorted(pids) == [0, 1, 2], pids

# Subscribe to the fleet's aggregated watch stream and wait for the
# first completed point: killing after it provably lands mid-sweep
# (11 of 12 points still owed) on a backend that was doing real work.
fs, ff = watch_stream(watch_port)
victim = None
while victim is None:
    frame = json.loads(ff.readline())
    if frame.get("frame") == "done":
        victim = frame["backend"]
fs.close()
os.kill(pids[victim], signal.SIGKILL)
fleet.stdout.read()  # drain the results table
assert fleet.wait(timeout=300) == 0, "a SIGKILLed backend must not fail the run"

for tag, (journal, out) in (("fleet1", (one_journal, one_out)),
                            ("fleet3", (three_journal, three_out))):
    assert read_bytes(journal) == read_bytes(ref_journal), f"{tag}: journal drifted"
    for csv in os.listdir(ref_out):
        assert read_bytes(os.path.join(out, csv)) == read_bytes(
            os.path.join(ref_out, csv)
        ), f"{tag}: {csv} drifted"

kinds = [json.loads(l).get("ev") for l in open(fleet_events)]
assert "backend_evicted" in kinds, kinds
assert "fleet_merged" in kinds, kinds
fleet_report = subprocess.run(
    [REPRO, "serve-stats", fleet_events], capture_output=True, text=True, check=True
)
assert "1 backend eviction(s)" in fleet_report.stdout, fleet_report.stdout


# Integrity phase (docs/robustness.md, Result integrity): the same
# 12-point sweep runs across three daemons, one of which *lies* —
# `--chaos lie@0` perturbs every result one ulp after simulating
# honestly, then signs the lie with a valid attestation. Only
# cross-backend comparison can catch it: with --audit-rate 1.0 every
# point is re-executed on a second backend, the divergence is charged
# to the lying daemon by 2-of-3 quorum, it is quarantined (eviction
# reason `integrity`), and the merged artifacts must still come out
# byte-identical to the honest single-node reference. Afterwards
# `repro verify` re-checks the artifacts offline — and must name the
# exact point and stage when handed a tampered journal.
SERVE_HEADROOM = ["--queue", "64", "--degrade-depth", "64"]
int_daemons = []
int_ports = []
for extra in ([], [], ["--chaos", "lie@0", "--chaos-seed", "7"]):
    d, p = start([*SERVE_HEADROOM, *extra])
    int_daemons.append(d)
    int_ports.append(p)

int_journal, int_out = artifacts("integrity")
int_events = os.path.join(state, "integrity-events.jsonl")
subprocess.run(
    [REPRO, "fleet", spec_path, *FLEET_SWEEP, "--quick",
     *(a for p in int_ports for a in ("--backend", f"127.0.0.1:{p}")),
     "--audit-rate", "1.0",
     "--journal", int_journal, "--out", int_out,
     "--events", int_events, "-q"],
    check=True, stdout=subprocess.DEVNULL,
)

int_lines = [json.loads(l) for l in open(int_events)]
ikinds = [l.get("ev") for l in int_lines]
for needed in ("audit_failed", "backend_quarantined", "backend_evicted",
               "fleet_merged"):
    assert needed in ikinds, (needed, ikinds)
quarantined = [l["backend"] for l in int_lines if l.get("ev") == "backend_quarantined"]
assert quarantined == [2], f"the lying backend must be the one quarantined: {quarantined}"
evictions = [l for l in int_lines if l.get("ev") == "backend_evicted"]
assert [e["reason"] for e in evictions] == ["integrity"], evictions

assert read_bytes(int_journal) == read_bytes(ref_journal), "integrity: journal drifted"
for csv in os.listdir(ref_out):
    assert read_bytes(os.path.join(int_out, csv)) == read_bytes(
        os.path.join(ref_out, csv)
    ), f"integrity: {csv} drifted"
int_report = subprocess.run(
    [REPRO, "serve-stats", int_events], capture_output=True, text=True, check=True
)
assert "quarantine(s)" in int_report.stdout, int_report.stdout

for daemon, port in zip(int_daemons, int_ports):
    rpc(port, {"req": "drain"})
    assert daemon.wait(timeout=60) == 0, f"daemon on {port} must drain to exit 0"

# Offline re-verification: the committed artifacts pass end to end...
verified = subprocess.run(
    [REPRO, "verify", os.path.join(int_out, "explore.csv"),
     "--journal", int_journal, "--spec", spec_path],
    capture_output=True, text=True, check=True,
)
assert "verified 12 point(s)" in verified.stdout, verified.stdout

# ... and a single flipped attestation digit is caught by name.
tampered = os.path.join(state, "tampered.journal")
text = open(int_journal).read()
marker = '"att":"'
at = text.index(marker) + len(marker)
text = text[:at] + ("1" if text[at] != "1" else "2") + text[at + 1:]
with open(tampered, "w") as f:
    f.write(text)
caught = subprocess.run(
    [REPRO, "verify", os.path.join(int_out, "explore.csv"),
     "--journal", tampered, "--spec", spec_path],
    capture_output=True, text=True,
)
assert caught.returncode != 0, "a tampered journal must fail verification"
assert "[attestation]" in caught.stderr, caught.stderr


# Elasticity phase (docs/fleet.md, Elasticity): a fleet whose membership
# changes mid-run — one backend starts dead, is evicted, heals, and
# rejoins through probation; a fourth backend joins over the control
# channel — must still merge byte-identically to a single-node run at
# the same scale. Default (non-quick) scale keeps the run long enough
# that every membership transition provably lands mid-sweep.
E_SWEEP = ["--sweep", "tlb.entries=16,32,64,128",
           "--sweep", "cache.l1=4K,8K,16K",
           "--sweep", "mmu.table=two-tier,hashed"]

eref_journal, eref_out = artifacts("eref")
subprocess.run(
    [REPRO, "explore", spec_path, *E_SWEEP, "--jobs", "1",
     "--journal", eref_journal, "--out", eref_out, "-q"],
    check=True, stdout=subprocess.DEVNULL,
)

daemon_a, port_a = start(SERVE_HEADROOM)
daemon_b, port_b = start(SERVE_HEADROOM)

# Reserve a port for backend C but leave it dead: the health gate must
# evict it, probation must pick it back up once a daemon appears there.
with socket.socket() as s:
    s.bind(("127.0.0.1", 0))
    port_c = s.getsockname()[1]

# The elastic fleet launches with the dead backend as its ONLY member,
# so the run cannot outpace the choreography below: no work can start
# until C heals, and the join lands while C still has points pending.
e1_journal, e1_out = artifacts("elastic")
e1_events = os.path.join(state, "elastic-events.jsonl")
elastic = subprocess.Popen(
    [REPRO, "fleet", spec_path, *E_SWEEP,
     "--backend", f"127.0.0.1:{port_c}",
     "--join-addr", "127.0.0.1:0", "--probation-ms", "500",
     "--journal", e1_journal, "--out", e1_out, "--events", e1_events, "-q"],
    stdout=subprocess.PIPE, text=True,
)
line = elastic.stdout.readline()  # the documented control-scrape contract
assert line.startswith("vm-fleet control on "), repr(line)
control_port = int(line.rsplit(":", 1)[1])


def roster_slot(slot):
    r = rpc(control_port, {"req": "roster"})
    assert r["ok"], r
    return r["slots"][slot] if slot < len(r["slots"]) else None


def await_slot_state(slot, states, timeout=30):
    deadline = time.time() + timeout
    while time.time() < deadline:
        row = roster_slot(slot)
        if row is not None and row["state"] in states:
            return row
        time.sleep(0.02)
    raise SystemExit(f"slot {slot} never reached {states}")


# The dead backend must leave rotation for probation, not kill the
# run: a probation slot still counts as able to return, so the fleet
# idles instead of declaring itself stuck.
await_slot_state(0, ("probation", "probing"))

# Backend C "heals": a daemon comes up on the reserved port, and the
# next probation probe must re-admit the slot — which, alone in the
# fleet, then starts completing points.
daemon_c, _ = start(["--port", str(port_c), *SERVE_HEADROOM])
healed = await_slot_state(0, ("active",))
assert healed["state"] == "active", healed

# Join daemon A while the healed slot still has most of the grid
# pending; the joined slot receives only still-pending points
# (tests/fleet_elastic.rs pins the property; this proves the verb).
joined = rpc(control_port, {"req": "join", "addr": f"127.0.0.1:{port_a}"})
assert joined["ok"] and joined["slot"] == 1, joined
assert joined["pending"] >= 1, joined

elastic.stdout.read()  # drain the results table
assert elastic.wait(timeout=600) == 0, "the elastic run must exit 0"

assert read_bytes(e1_journal) == read_bytes(eref_journal), "elastic: journal drifted"
for csv in os.listdir(eref_out):
    assert read_bytes(os.path.join(e1_out, csv)) == read_bytes(
        os.path.join(eref_out, csv)
    ), f"elastic: {csv} drifted"

ekinds = [json.loads(l).get("ev") for l in open(e1_events)]
for needed in ("backend_evicted", "backend_probation", "backend_rejoined",
               "backend_recovered", "backend_joined", "fleet_merged"):
    assert needed in ekinds, (needed, ekinds)
elastic_report = subprocess.run(
    [REPRO, "serve-stats", e1_events], capture_output=True, text=True, check=True
)
assert "1 joined" in elastic_report.stdout, elastic_report.stdout
assert "1 rejoined" in elastic_report.stdout, elastic_report.stdout
assert "health ×" in elastic_report.stdout, elastic_report.stdout


# Coordinator crash-resume phase (docs/fleet.md, Coordinator resume):
# SIGKILL the *coordinator* mid-merge — the harshest stop — and restart
# it with --resume against the same (surviving) daemons. The resumed
# run must exit 0, replay the journaled points, and produce artifacts
# byte-identical to the uninterrupted single-node reference.
e2_journal, e2_out = artifacts("resumefleet")
fj = os.path.join(state, "fleet.journal")
crash = subprocess.Popen(
    [REPRO, "fleet", spec_path, *E_SWEEP,
     "--backend", f"127.0.0.1:{port_a}", "--backend", f"127.0.0.1:{port_b}",
     "--fleet-journal", fj,
     "--journal", e2_journal, "--out", e2_out, "-q"],
    stdout=subprocess.DEVNULL,
)
for _ in range(6000):  # >= 2 journaled payloads prove a mid-run kill
    try:
        done_lines = sum(
            1 for l in open(fj) if '"j":"point"' in l and '"status":"done"' in l
        )
    except OSError:
        done_lines = 0
    if done_lines >= 2:
        break
    time.sleep(0.01)
else:
    raise SystemExit("fleet journal never accumulated two completed points")
crash.send_signal(signal.SIGKILL)
assert crash.wait(timeout=60) == -signal.SIGKILL, "the coordinator must die hard"
assert not os.path.exists(e2_journal), "a killed coordinator must not have merged"

e2_events = os.path.join(state, "resume-events.jsonl")
subprocess.run(
    [REPRO, "fleet", spec_path, *E_SWEEP,
     "--backend", f"127.0.0.1:{port_a}", "--backend", f"127.0.0.1:{port_b}",
     "--fleet-journal", fj, "--resume",
     "--journal", e2_journal, "--out", e2_out, "--events", e2_events, "-q"],
    check=True, stdout=subprocess.DEVNULL,
)
rkinds = [json.loads(l).get("ev") for l in open(e2_events)]
assert "run_resumed" in rkinds, rkinds
assert read_bytes(e2_journal) == read_bytes(eref_journal), "resume: journal drifted"
for csv in os.listdir(eref_out):
    assert read_bytes(os.path.join(e2_out, csv)) == read_bytes(
        os.path.join(eref_out, csv)
    ), f"resume: {csv} drifted"

for daemon, port in ((daemon_a, port_a), (daemon_b, port_b),
                     (daemon_c, port_c)):
    rpc(port, {"req": "drain"})
    assert daemon.wait(timeout=60) == 0, f"daemon on {port} must drain to exit 0"


# Ingest phase (docs/serving.md, Trace ingestion): a binary trace
# travels to the daemon in checksummed chunks. Backpressure sheds
# uploads past the staging watermark while the job path keeps admitting;
# a corrupt chunk is rejected without losing the staged prefix; a
# SIGKILL mid-upload leaves a resumable partial that `repro upload`
# heals into a byte-identical committed trace; and an orphaned partial
# is GC'd on TTL at the next startup.
def fnv1a(data):
    h = 0xCBF29CE484222325
    for b in data:
        h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return f"{h:016x}"


def b64(data):
    import base64

    return base64.b64encode(data).decode()


ingest_state = os.path.join(state, "ingest-state")
ingest_events = os.path.join(state, "ingest-events.jsonl")
trace_bin = os.path.join(state, "smoke.trace")
export = subprocess.run(
    [REPRO, "trace-export", "--out", trace_bin, "--instrs", "30000", "--seed", "9"],
    capture_output=True, text=True, check=True,
)
trace_blob = read_bytes(trace_bin)
assert f"{len(trace_blob)} bytes" in export.stdout, export.stdout
assert f"fnv {fnv1a(trace_blob)}" in export.stdout, export.stdout

CHUNK = 4096
proc, port = start(["--state-dir", ingest_state, "--events", ingest_events,
                    "--staging-watermark", "8K"])
begin = rpc(port, {"req": "upload-begin", "name": "smoke",
                   "bytes": len(trace_blob), "fnv": fnv1a(trace_blob)})
assert begin["ok"] and begin["upload"] == 1, begin
for seq in range(4):  # stage 16K: provably past the 8K watermark
    chunk = trace_blob[seq * CHUNK:(seq + 1) * CHUNK]
    r = rpc(port, {"req": "upload-chunk", "upload": 1, "seq": seq,
                   "fnv": fnv1a(chunk), "data": b64(chunk)})
    assert r["ok"] and r["staged"] == (seq + 1) * CHUNK, r

# A flipped chunk body fails its checksum; the staged prefix survives.
chunk = trace_blob[4 * CHUNK:5 * CHUNK]
flipped = bytes([chunk[0] ^ 1]) + chunk[1:]
bad = rpc(port, {"req": "upload-chunk", "upload": 1, "seq": 4,
                 "fnv": fnv1a(chunk), "data": b64(flipped)})
assert bad["code"] == 400 and "checksum" in bad["error"], bad

# Past the watermark a second upload is backpressured with a retry
# hint — while a job submitted the same instant is admitted and runs to
# completion: ingestion sheds, the job path never blocks.
held = rpc(port, {"req": "upload-begin", "name": "held",
                  "bytes": len(trace_blob), "fnv": fnv1a(trace_blob)})
assert held["code"] == 429 and held["retry_after"] >= 1, held
assert "shed" not in held, held  # backpressure is not a job shed
r = rpc(port, SUBMIT)
assert r["ok"] and r["job"] == 1, r
wait_done(port, 1)

# SIGKILL mid-upload: the fsynced prefix must survive the hard stop.
proc.kill()
assert proc.wait(timeout=60) == -signal.SIGKILL

proc, port = start(["--state-dir", ingest_state, "--resume",
                    "--events", ingest_events])
st = rpc(port, {"req": "upload-status", "name": "smoke"})
assert st["state"] == "staging" and st["next_seq"] == 4, st
assert st["staged"] == 4 * CHUNK, st

# `repro upload` heals the partial: an identical declaration resumes
# from the first missing chunk and commits the exact source bytes.
healed = subprocess.run(
    [REPRO, "upload", "--addr", f"127.0.0.1:{port}", "--name", "smoke",
     "--chunk-bytes", str(CHUNK), trace_bin],
    capture_output=True, text=True, check=True,
)
assert "committed trace `smoke`" in healed.stdout, healed.stdout
committed = read_bytes(os.path.join(ingest_state, "traces", "smoke.trace"))
assert committed == trace_blob, "resumed upload drifted from the source trace"

# The committed trace is a workload: status answers by name, and a
# submit against trace:smoke runs clean.
st = rpc(port, {"req": "upload-status", "name": "smoke"})
assert st["state"] == "committed" and st["workload"] == "trace:smoke", st
r = rpc(port, {"req": "submit",
               "spec": SPEC + '\n[workload]\nname = "trace:smoke"\n',
               "sweep": ["tlb.entries=32,64"], "scale": "quick"})
assert r["ok"], r
wait_done(port, r["job"])
trace_job = rpc(port, {"req": "result", "job": r["job"]})
assert trace_job["failures"] == [] and len(trace_job["results"]) == 2, trace_job

# Leave an orphaned partial behind, then restart with a 1s TTL: the
# startup sweep reclaims it without touching the committed trace.
ob = rpc(port, {"req": "upload-begin", "name": "orphan",
                "bytes": len(trace_blob), "fnv": fnv1a(trace_blob)})
assert ob["ok"], ob
chunk = trace_blob[:CHUNK]
r = rpc(port, {"req": "upload-chunk", "upload": ob["upload"], "seq": 0,
               "fnv": fnv1a(chunk), "data": b64(chunk)})
assert r["ok"], r
rpc(port, {"req": "drain"})
assert proc.wait(timeout=60) == 0, "drain with a staged partial must exit 0"
time.sleep(1.2)
proc, port = start(["--state-dir", ingest_state, "--resume",
                    "--events", ingest_events, "--upload-ttl-secs", "1"])
gone = rpc(port, {"req": "upload-status", "name": "orphan"})
assert gone["code"] == 404, gone
st = rpc(port, {"req": "upload-status", "name": "smoke"})
assert st["state"] == "committed", st
rpc(port, {"req": "drain"})
assert proc.wait(timeout=60) == 0

ingest_report = subprocess.run(
    [REPRO, "serve-stats", ingest_events], capture_output=True, text=True, check=True
)
assert "3 upload(s) (1 resumed)" in ingest_report.stdout, ingest_report.stdout
assert "1 committed" in ingest_report.stdout, ingest_report.stdout
assert "[400 ×1, 429 ×1]" in ingest_report.stdout, ingest_report.stdout
assert "1 GC'd" in ingest_report.stdout, ingest_report.stdout

shutil.rmtree(state)
print(
    f"serve smoke ok: {len(resumed['results'])} points bit-identical after "
    f"SIGTERM + --resume (seeded {resumed['resumed']} from the journal) "
    f"and after a SIGKILLed worker subprocess; 12-point fleet merge "
    f"byte-identical at 1 and 3 backends (one SIGKILLed mid-sweep and evicted); "
    f"lying backend quarantined for integrity with the merge byte-identical "
    f"and `repro verify` catching a tampered attestation by name; "
    f"24-point elastic fleet byte-identical through a probation rejoin and a "
    f"mid-sweep join; coordinator SIGKILL + --resume byte-identical with "
    f"{done_lines} points replayed from the fleet journal; ingest: uploaded "
    f"trace byte-identical after SIGKILL mid-upload + resume, corrupt chunk "
    f"rejected, backpressured job path stayed live, orphan partial GC'd"
)
