//! The sweep executor's merged results are independent of `--jobs`: the
//! ISSUE-level acceptance grid (TLB entries × page-table organization,
//! ≥ 24 points) must come back bit-identical at 1, 4, and 8 workers.

use vm_core::SystemKind;
use vm_explore::{run_sweep, Axis, ExecConfig, SweepPlan, SystemSpec};
use vm_obs::{NopSink, Reporter};

fn acceptance_plan() -> SweepPlan {
    let base = SystemSpec::for_kind(SystemKind::Ultrix);
    let axes = [
        Axis::parse("tlb.entries=16,32,64,128,256,512").unwrap(),
        Axis::parse("mmu.table=two-tier,three-tier,hashed,inverted").unwrap(),
    ];
    SweepPlan::expand(&base, &axes).unwrap()
}

#[test]
fn job_count_never_changes_merged_results() {
    let plan = acceptance_plan();
    assert!(plan.points.len() >= 24, "acceptance grid shrank to {} points", plan.points.len());
    let exec = |jobs| ExecConfig { warmup: 2_000, measure: 8_000, jobs };
    let reporter = Reporter::silent();
    let baseline = run_sweep(&plan, &exec(1), &reporter, &mut NopSink);
    for jobs in [4, 8] {
        let parallel = run_sweep(&plan, &exec(jobs), &reporter, &mut NopSink);
        assert_eq!(baseline.len(), parallel.len());
        for (a, b) in baseline.iter().zip(&parallel) {
            assert_eq!(a.index, b.index, "order drifted at --jobs {jobs}");
            assert_eq!(
                a.vm_total.to_bits(),
                b.vm_total.to_bits(),
                "`{}` VMCPI differs at --jobs {jobs}",
                a.label
            );
            assert_eq!(a, b, "`{}` result differs at --jobs {jobs}", a.label);
        }
    }
}
