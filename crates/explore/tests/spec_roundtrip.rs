//! Property test: `parse(to_toml(spec)) == spec` across a deterministic
//! sample of the representable spec space.

use vm_cache::Associativity;
use vm_core::{MmuClass, SystemKind, TableOrg};
use vm_explore::SystemSpec;
use vm_tlb::Replacement;
use vm_types::SplitMix64;

/// Builds a pseudo-random (but valid-to-print) spec from one RNG stream.
fn arbitrary_spec(rng: &mut SplitMix64) -> SystemSpec {
    let mmu = MmuClass::ALL[(rng.next_u64() % MmuClass::ALL.len() as u64) as usize];
    let table = TableOrg::ALL[(rng.next_u64() % TableOrg::ALL.len() as u64) as usize];
    let mut spec = SystemSpec::new(mmu, table);
    if rng.next_u64().is_multiple_of(2) {
        spec.name = Some(format!("SPEC-{}", rng.next_u64() % 1000));
    }
    // TLB geometry only exists on TLB-ful systems; the canonical printer
    // (correctly) drops the `[tlb]` section otherwise.
    if mmu.has_tlb() {
        spec.tlb_entries = 1 << (rng.next_u64() % 10);
        spec.tlb_replacement = match rng.next_u64() % 3 {
            0 => Replacement::Random,
            1 => Replacement::Lru,
            _ => Replacement::Fifo,
        };
        if rng.next_u64().is_multiple_of(3) {
            spec.tlb_protected = Some((rng.next_u64() % 64) as usize);
        }
    }
    spec.l1_bytes = 1 << (10 + rng.next_u64() % 8);
    spec.l1_line = 1 << (4 + rng.next_u64() % 4);
    spec.l2_bytes = 1 << (16 + rng.next_u64() % 8);
    spec.l2_line = 1 << (5 + rng.next_u64() % 4);
    spec.cache_assoc = match rng.next_u64() % 3 {
        0 => Associativity::DirectMapped,
        1 => Associativity::Ways(2),
        _ => Associativity::Ways(4),
    };
    spec.unified_l2 = rng.next_u64().is_multiple_of(2);
    spec.phys_mem_bytes = 1 << (22 + rng.next_u64() % 6);
    spec.interrupt_cycles = 1 + rng.next_u64() % 300;
    spec.seed = rng.next_u64();
    if rng.next_u64().is_multiple_of(2) {
        let names = ["gcc", "vortex", "ijpeg", "li", "compress", "perl"];
        spec.workload = Some(names[(rng.next_u64() % 6) as usize].to_owned());
    }
    spec.trace_seed = 1 + rng.next_u64() % 100;
    spec
}

#[test]
fn parse_print_parse_is_identity() {
    let mut rng = SplitMix64::new(0x0dd_b175);
    for case in 0..500 {
        let spec = arbitrary_spec(&mut rng);
        let printed = spec.to_toml();
        let reparsed = SystemSpec::parse(&printed)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{printed}"));
        assert_eq!(reparsed, spec, "case {case} drifted through print/parse:\n{printed}");
        // And printing is canonical: a second round trip is a fixpoint.
        assert_eq!(reparsed.to_toml(), printed, "case {case}: printer not canonical");
    }
}

#[test]
fn shipped_kinds_round_trip_through_files() {
    for kind in SystemKind::PAPER {
        let spec = SystemSpec::for_kind(kind);
        let reparsed = SystemSpec::parse(&spec.to_toml()).unwrap();
        assert_eq!(reparsed, spec, "{kind}");
    }
}
