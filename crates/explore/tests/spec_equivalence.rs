//! The shipped `specs/*.toml` files reproduce the hard-coded paper
//! systems: structurally (the lowered `SimConfig` equals
//! `SimConfig::paper_default`) and behaviourally (a short simulation
//! produces bit-identical VMCPI).

use std::fs;
use std::path::PathBuf;

use vm_core::cost::CostModel;
use vm_core::{simulate, SimConfig, SystemKind};
use vm_explore::SystemSpec;

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

const SHIPPED: &[(&str, SystemKind)] = &[
    ("ultrix.toml", SystemKind::Ultrix),
    ("mach.toml", SystemKind::Mach),
    ("intel.toml", SystemKind::Intel),
    ("pa-risc.toml", SystemKind::PaRisc),
    ("notlb.toml", SystemKind::NoTlb),
    ("base.toml", SystemKind::Base),
];

#[test]
fn every_shipped_spec_lowers_to_its_paper_default() {
    for &(file, kind) in SHIPPED {
        let path = specs_dir().join(file);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let spec = SystemSpec::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(spec.display_name(), kind.label(), "{file}");
        let config = spec.validate().unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(config, SimConfig::paper_default(kind), "{file} drifted from the preset");
    }
}

#[test]
fn spec_driven_simulation_is_bit_identical_to_the_preset() {
    // Behavioural check on two representative systems (one software-,
    // one hardware-refilled); the structural test above covers the rest.
    for kind in [SystemKind::Ultrix, SystemKind::Intel] {
        let file = SHIPPED.iter().find(|(_, k)| *k == kind).unwrap().0;
        let text = fs::read_to_string(specs_dir().join(file)).unwrap();
        let spec = SystemSpec::parse(&text).unwrap();
        let config = spec.validate().unwrap();

        let cost = CostModel::paper(spec.interrupt_cycles);
        let run = |config: &SimConfig| {
            let trace = vm_trace::presets::by_name(spec.workload_name())
                .unwrap()
                .build(spec.trace_seed)
                .unwrap();
            let report = simulate(config, trace, 20_000, 60_000).unwrap();
            (
                report.vmcpi(&cost).total().to_bits(),
                report.mcpi(&cost).total().to_bits(),
                report.interrupt_cpi(&cost).to_bits(),
            )
        };
        assert_eq!(
            run(&config),
            run(&SimConfig::paper_default(kind)),
            "{file}: spec-driven run diverged from the hard-coded preset"
        );
    }
}
