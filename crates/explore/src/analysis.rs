//! Analysis passes over sweep results.
//!
//! Two questions a design-space sweep should answer directly, without
//! the reader eyeballing a CSV:
//!
//! * **Which configurations are worth building?** The [`pareto_frontier`]
//!   keeps the points where no other point is both cheaper in translation
//!   hardware (the TLB area proxy) *and* faster (total VM overhead CPI).
//! * **Which knobs matter?** [`sensitivity`] reports, per swept axis, how
//!   much total VM overhead moves when only that axis varies — averaged
//!   and worst-cased over every combination of the other axes.

use std::collections::BTreeMap;

use crate::exec::PointResult;
use crate::sweep::Axis;

/// The Pareto-optimal subset of `results`, minimizing both
/// `tlb_area_bytes` and `vm_total`.
///
/// Returned sorted by area ascending (so `vm_total` is strictly
/// descending along the frontier). Ties on both objectives keep the
/// earliest point in sweep order; a point that merely *equals* a
/// frontier point on both axes is dominated, keeping the frontier
/// minimal.
pub fn pareto_frontier(results: &[PointResult]) -> Vec<PointResult> {
    let mut sorted: Vec<&PointResult> = results.iter().collect();
    // Area ascending, then overhead ascending, then sweep order: the
    // first point seen at each area is the best candidate there.
    sorted.sort_by(|a, b| {
        a.tlb_area_bytes
            .cmp(&b.tlb_area_bytes)
            .then(a.vm_total.total_cmp(&b.vm_total))
            .then(a.index.cmp(&b.index))
    });
    let mut frontier: Vec<PointResult> = Vec::new();
    for point in sorted {
        let dominated = frontier.last().is_some_and(|f| f.vm_total <= point.vm_total);
        if !dominated {
            // Same area as the previous frontier point but strictly
            // faster can't happen (sort order), so this is a new area
            // tier with a strict overhead improvement.
            frontier.push(point.clone());
        }
    }
    frontier
}

/// How much one swept axis moves the result.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisSensitivity {
    /// The axis key (`tlb.entries`, ...).
    pub key: String,
    /// Mean over groups of (max − min) `vm_total` within the group.
    pub mean_delta: f64,
    /// The largest such delta, with the group it occurred in.
    pub max_delta: f64,
    /// The fixed settings of the other axes for the worst group (empty
    /// when this is the only axis).
    pub max_group: Vec<(String, String)>,
    /// How many groups (combinations of the other axes) were measured.
    pub groups: usize,
}

/// Per-axis sensitivity of `vm_total`: for each axis, results are grouped
/// by the settings of every *other* axis, and each group's spread
/// (max − min `vm_total`) measures what that axis alone changes.
///
/// Axes with fewer than two measured values in every group — or absent
/// from the results entirely — are omitted.
pub fn sensitivity(results: &[PointResult], axes: &[Axis]) -> Vec<AxisSensitivity> {
    let mut out = Vec::new();
    for axis in axes {
        // Group key: the other axes' (key, value) pairs, in axis order.
        let mut groups: BTreeMap<Vec<(String, String)>, Vec<f64>> = BTreeMap::new();
        for r in results {
            if !r.settings.iter().any(|(k, _)| k == &axis.key) {
                continue;
            }
            let rest: Vec<(String, String)> =
                r.settings.iter().filter(|(k, _)| k != &axis.key).cloned().collect();
            groups.entry(rest).or_default().push(r.vm_total);
        }
        let mut deltas: Vec<(f64, Vec<(String, String)>)> = groups
            .into_iter()
            .filter(|(_, vs)| vs.len() >= 2)
            .map(|(rest, vs)| {
                let lo = vs.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = vs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                (hi - lo, rest)
            })
            .collect();
        if deltas.is_empty() {
            continue;
        }
        let mean = deltas.iter().map(|(d, _)| d).sum::<f64>() / deltas.len() as f64;
        deltas.sort_by(|a, b| b.0.total_cmp(&a.0));
        let (max_delta, max_group) = deltas[0].clone();
        out.push(AxisSensitivity {
            key: axis.key.clone(),
            mean_delta: mean,
            max_delta,
            max_group,
            groups: deltas.len(),
        });
    }
    // Most influential axis first.
    out.sort_by(|a, b| b.mean_delta.total_cmp(&a.mean_delta));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(index: usize, settings: &[(&str, &str)], area: u64, vm_total: f64) -> PointResult {
        PointResult {
            index,
            label: format!("P{index}"),
            settings: settings.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            system: "ULTRIX".to_owned(),
            workload: "gcc".to_owned(),
            vmcpi: vm_total,
            interrupt_cpi: 0.0,
            mcpi: 0.0,
            vm_total,
            tlb_area_bytes: area,
            tlb_miss_ratio: None,
            user_instrs: 1,
            ctx: 0,
            att: 0,
        }
    }

    #[test]
    fn frontier_keeps_only_undominated_points() {
        let results = [
            point(0, &[], 1024, 0.30),
            point(1, &[], 2048, 0.10), // frontier
            point(2, &[], 2048, 0.20), // dominated by 1
            point(3, &[], 512, 0.50),  // frontier (cheapest)
            point(4, &[], 4096, 0.10), // dominated by 1 (equal vm, more area)
            point(5, &[], 4096, 0.05), // frontier
        ];
        let frontier = pareto_frontier(&results);
        let labels: Vec<&str> = frontier.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["P3", "P0", "P1", "P5"]);
        assert!(frontier.windows(2).all(|w| w[0].tlb_area_bytes < w[1].tlb_area_bytes));
        assert!(frontier.windows(2).all(|w| w[0].vm_total > w[1].vm_total));
    }

    #[test]
    fn sensitivity_ranks_the_influential_axis_first() {
        // 2×2 grid: `big` moves vm_total by 1.0 in both groups, `small`
        // by 0.1 in both.
        let results = [
            point(0, &[("big", "a"), ("small", "x")], 0, 1.0),
            point(1, &[("big", "a"), ("small", "y")], 0, 1.1),
            point(2, &[("big", "b"), ("small", "x")], 0, 2.0),
            point(3, &[("big", "b"), ("small", "y")], 0, 2.1),
        ];
        let axes = [
            Axis { key: "small".to_owned(), values: vec!["x".into(), "y".into()] },
            Axis { key: "big".to_owned(), values: vec!["a".into(), "b".into()] },
        ];
        let sens = sensitivity(&results, &axes);
        assert_eq!(sens.len(), 2);
        assert_eq!(sens[0].key, "big");
        assert!((sens[0].mean_delta - 1.0).abs() < 1e-9);
        assert!((sens[0].max_delta - 1.0).abs() < 1e-9);
        assert_eq!(sens[0].groups, 2);
        assert_eq!(sens[1].key, "small");
        assert!((sens[1].mean_delta - 0.1).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_skips_axes_absent_from_results() {
        let results = [point(0, &[("only", "x")], 0, 1.0)];
        let axes = [
            Axis { key: "only".to_owned(), values: vec!["x".into()] },
            Axis { key: "ghost".to_owned(), values: vec!["a".into(), "b".into()] },
        ];
        assert!(sensitivity(&results, &axes).is_empty());
    }
}
