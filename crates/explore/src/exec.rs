//! The parallel, fault-isolated sweep executor.
//!
//! Points are distributed round-robin over per-worker deques; a worker
//! that drains its own queue **steals** from the back of the fullest
//! other queue (victim scan order is randomized per worker with a
//! deterministic [`SplitMix64`] stream, so contention patterns vary but
//! runs are reproducible). Every random stream a *result* depends on —
//! the workload generator and the TLB replacement RNG — is seeded from
//! the point's spec alone, never from worker identity, and outcomes are
//! merged in point order; the same sweep therefore produces bit-identical
//! results at any `--jobs` count.
//!
//! [`run_sweep_hardened`] is the full executor: each point runs inside
//! `catch_unwind` so one panicking point becomes a
//! [`PointOutcome::Failed`] data point instead of a dead run, transient
//! I/O failures are retried under a [`RetryPolicy`], a walk-cycle
//! [`HardenPolicy::point_budget`] degrades runaway points to
//! [`PointOutcome::TimedOut`], finished points stream into an optional
//! run journal for crash-safe resume, and a [`ChaosPlan`] can inject
//! faults to prove all of it works. [`run_sweep`] is the strict facade:
//! same machinery, but any failure is a panic (for callers that treat
//! the plan as pre-validated).
//!
//! Progress goes through the `vm-obs` [`Reporter`] (a heartbeat line
//! roughly every two seconds, per-point completions at Verbose), and the
//! sweep's lifecycle is emitted into any [`Sink`]: an optional
//! [`Event::RunResumed`], [`Event::SweepStarted`], then — in point
//! order, after the order-independent merge, so event streams are
//! deterministic at any worker count — [`Event::PointRetried`] per
//! retry and one [`Event::SweepPointDone`] or [`Event::PointFailed`]
//! per point.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vm_core::cost::CostModel;
use vm_core::{simulate, simulate_with_sink, SimConfig, SimReport};
use vm_harden::{
    quiet_panics, with_retry_salted, ChaosPlan, CheckedTrace, DeadlineSink, DynJournalWriter,
    FailureKind, Fault, JournalEntry, PointOutcome, RetryPolicy, SimError,
};
use vm_obs::{Event, Reporter, Sink, SnapshotSink, Tee};
use vm_supervise::WorkerPool;
use vm_types::SplitMix64;

use crate::journal::result_to_value;
use crate::progress::{PointCheckpoint, ProgressConfig};
use crate::sweep::{PlannedPoint, SweepPlan};

/// Run lengths for one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Instructions executed before counters are reset.
    pub warmup: u64,
    /// Instructions measured.
    pub measure: u64,
    /// Worker threads (clamped to at least 1, at most the point count).
    pub jobs: usize,
}

impl ExecConfig {
    /// The default experiment scale (matches the runner's default).
    pub const DEFAULT: ExecConfig = ExecConfig { warmup: 1_000_000, measure: 2_000_000, jobs: 1 };
    /// Fast smoke-test scale.
    pub const QUICK: ExecConfig = ExecConfig { warmup: 200_000, measure: 500_000, jobs: 1 };
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig::DEFAULT
    }
}

/// Fault-handling knobs for a hardened sweep.
#[derive(Debug, Clone, Default)]
pub struct HardenPolicy {
    /// Retry policy for transient (I/O) point failures.
    pub retry: RetryPolicy,
    /// Walk-cycle budget per point; exceeding it degrades the point to
    /// [`PointOutcome::TimedOut`]. `None` = unlimited.
    pub point_budget: Option<u64>,
    /// Fault-injection plan (empty = no chaos).
    pub chaos: ChaosPlan,
    /// Cooperative cancellation flag, checked between points. Once set,
    /// points that have not started become [`FailureKind::Cancelled`]
    /// failures (never journaled, so a resume re-runs them); points
    /// already simulating finish and are journaled normally.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Process-level isolation: when set, every point executes inside a
    /// sandboxed worker process leased from this supervised pool instead
    /// of in-process under `catch_unwind`. The worker runs the *same*
    /// measurement path (chaos, retries, budgets included) and replies
    /// with the bit-exact journal codec, so merged results are identical
    /// to in-process runs at any `--jobs` count — but a point that
    /// aborts, segfaults, or is OOM-killed costs one worker, not the
    /// sweep ([`FailureKind::Crash`] once the crash-loop breaker trips).
    pub process: Option<Arc<WorkerPool>>,
    /// Live progress reporting: when set, in-process points run with a
    /// [`SnapshotSink`] attached and fire
    /// [`SweepObserver::checkpoint`](crate::progress::SweepObserver::checkpoint)
    /// every `interval` retired instructions; every point (including
    /// process-isolated ones, which checkpoint only at point
    /// granularity) fires `point_finished`, and supervised-pool
    /// lifecycle events are drained to `pool_event` as points complete
    /// instead of only at sweep teardown. Observers are observers:
    /// results stay bit-identical with or without one attached.
    pub progress: Option<ProgressConfig>,
    /// Where `trace:NAME` workloads are loaded from. `None` falls back
    /// to the `VM_TRACE_LIBRARY` environment variable; a point that
    /// names a library trace with neither set fails as
    /// [`FailureKind::Ingest`]. The serve daemon sets this to
    /// `<state-dir>/traces` so uploaded traces resolve identically
    /// in-process and across the worker wire.
    pub trace_library: Option<std::path::PathBuf>,
}

/// One measured sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Position in sweep order.
    pub index: usize,
    /// The point's label (`NAME key=value ...`).
    pub label: String,
    /// The `(axis key, value)` pairs that distinguish this point.
    pub settings: Vec<(String, String)>,
    /// The composed system's paper-style label.
    pub system: String,
    /// The workload preset measured.
    pub workload: String,
    /// VM overhead CPI (Table 3 components).
    pub vmcpi: f64,
    /// Precise-interrupt CPI at the spec's interrupt cost.
    pub interrupt_cpi: f64,
    /// Baseline cache overhead CPI (Table 2 components).
    pub mcpi: f64,
    /// `vmcpi + interrupt_cpi` — the quantity the Pareto frontier and
    /// sensitivity passes minimize.
    pub vm_total: f64,
    /// The TLB area proxy (see [`tlb_area_bytes`]).
    pub tlb_area_bytes: u64,
    /// Combined I+D TLB miss ratio, when the system has TLBs.
    pub tlb_miss_ratio: Option<f64>,
    /// User instructions measured.
    pub user_instrs: u64,
    /// Lineage-context fingerprint: canonical spec TOML, label, trace
    /// seed, and exec scale, hashed where the simulation ran (see
    /// [`crate::attest`]).
    pub ctx: u64,
    /// Attestation over `ctx` plus every payload bit (index excluded);
    /// re-verified at every trust boundary downstream.
    pub att: u64,
}

/// The per-point outcome a hardened sweep produces.
pub type SweepPointOutcome = PointOutcome<PointResult>;

/// Everything a hardened sweep produced: one outcome per planned point
/// (in point order), attempt counts, and how many points came from a
/// journal instead of being simulated.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One outcome per point, in point order.
    pub outcomes: Vec<SweepPointOutcome>,
    /// Attempts consumed per point (1 = first try; journaled points
    /// keep 1).
    pub attempts: Vec<u32>,
    /// Points restored from a resume journal rather than simulated.
    pub resumed: usize,
}

impl SweepOutcome {
    /// The completed results, in point order.
    pub fn results(&self) -> impl Iterator<Item = &PointResult> {
        self.outcomes.iter().filter_map(PointOutcome::completed)
    }

    /// The failures (including timeouts), in point order.
    pub fn failures(&self) -> impl Iterator<Item = &SimError> {
        self.outcomes.iter().filter_map(PointOutcome::error)
    }

    /// How many points did not complete.
    pub fn failed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_failure()).count()
    }

    /// Whether every point completed.
    pub fn is_clean(&self) -> bool {
        self.failed_count() == 0
    }

    /// Splits into completed results and failures, both in point order.
    pub fn into_parts(self) -> (Vec<PointResult>, Vec<SimError>) {
        let mut results = Vec::new();
        let mut failures = Vec::new();
        for outcome in self.outcomes {
            match outcome {
                PointOutcome::Completed(r) => results.push(r),
                PointOutcome::Failed(e) | PointOutcome::TimedOut(e) => failures.push(e),
            }
        }
        (results, failures)
    }
}

/// A die-area proxy for the translation hardware: split I/D TLBs at 16
/// bytes per fully-associative entry (~50 tag+data bits plus CAM
/// overhead). The absolute scale is arbitrary; the Pareto frontier only
/// consumes the ordering. TLB-less systems cost 0.
pub fn tlb_area_bytes(config: &SimConfig) -> u64 {
    if config.system.uses_tlb() {
        2 * config.tlb_entries as u64 * 16
    } else {
        0
    }
}

/// Runs every point of `plan`, returning results in point order.
///
/// The strict facade over [`run_sweep_hardened`]: no retries, no budget,
/// no chaos, no journal — and any point failure panics.
///
/// `sink` receives the sweep lifecycle events ([`Event::SweepStarted`]
/// up front, one [`Event::SweepPointDone`] per point, emitted after the
/// order-independent merge so event streams are deterministic too); pass
/// [`vm_obs::NopSink`] when nothing listens.
///
/// # Panics
///
/// Panics if a point's workload fails to build or the simulation rejects
/// a config — both are validated during planning, so a failure here is a
/// programming error.
pub fn run_sweep<S: Sink>(
    plan: &SweepPlan,
    exec: &ExecConfig,
    reporter: &Reporter,
    sink: &mut S,
) -> Vec<PointResult> {
    let outcome = run_sweep_hardened(
        plan,
        exec,
        &HardenPolicy::default(),
        BTreeMap::new(),
        reporter,
        sink,
        None,
    );
    outcome
        .outcomes
        .into_iter()
        .map(|o| match o {
            PointOutcome::Completed(r) => r,
            PointOutcome::Failed(e) | PointOutcome::TimedOut(e) => panic!("{e}"),
        })
        .collect()
}

/// Runs `plan` with per-point fault isolation, returning one
/// [`SweepPointOutcome`] per point in point order.
///
/// * Points whose index appears in `seeded` (results restored from a
///   resume journal) are not re-simulated; they are merged back in
///   place, bit-identical to an uninterrupted run, and counted in
///   [`SweepOutcome::resumed`].
/// * Each simulated point runs under `catch_unwind` with the panic hook
///   quieted: a panic, corrupt trace record, or blown walk-cycle budget
///   becomes that point's [`PointOutcome`], never the run's death.
/// * Transient ([`FailureKind::Io`]) failures retry under
///   `policy.retry` with capped exponential backoff.
/// * Every finished point (completed or failed) is appended to
///   `journal` when one is given, so a killed run can resume.
pub fn run_sweep_hardened<S: Sink>(
    plan: &SweepPlan,
    exec: &ExecConfig,
    policy: &HardenPolicy,
    seeded: BTreeMap<usize, PointResult>,
    reporter: &Reporter,
    sink: &mut S,
    journal: Option<&Mutex<DynJournalWriter>>,
) -> SweepOutcome {
    let points = &plan.points;
    let total = points.len();
    let resumed = seeded.keys().filter(|&&ix| ix < total).count();
    if S::ENABLED {
        if resumed > 0 {
            sink.emit(
                0,
                &Event::RunResumed {
                    completed: resumed as u64,
                    remaining: (total - resumed) as u64,
                },
            );
        }
        sink.emit(
            0,
            &Event::SweepStarted {
                points: total as u64,
                axes: points.first().map(|p| p.settings.len() as u32).unwrap_or(0),
                jobs: exec.jobs.max(1) as u32,
            },
        );
    }

    let slots: Vec<Mutex<Option<(SweepPointOutcome, u32)>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let mut pending: Vec<usize> = Vec::with_capacity(total - resumed);
    for (ix, slot) in slots.iter().enumerate() {
        match seeded.get(&ix) {
            Some(r) => *lock_slot(slot) = Some((PointOutcome::Completed(r.clone()), 1)),
            None => pending.push(ix),
        }
    }

    if !pending.is_empty() {
        run_pending(points, &pending, exec, policy, reporter, journal, &slots, S::ENABLED);
    }

    let mut outcomes = Vec::with_capacity(total);
    let mut attempts = Vec::with_capacity(total);
    for slot in slots {
        let (outcome, tries) =
            slot.into_inner().unwrap_or_else(|e| e.into_inner()).expect("every point ran");
        outcomes.push(outcome);
        attempts.push(tries);
    }

    if S::ENABLED {
        let mut now = 0;
        for (ix, outcome) in outcomes.iter().enumerate() {
            for retry in 2..=attempts[ix] {
                sink.emit(now, &Event::PointRetried { index: ix as u64, attempt: retry });
            }
            match outcome {
                PointOutcome::Completed(r) => {
                    now += r.user_instrs;
                    sink.emit(
                        now,
                        &Event::SweepPointDone {
                            index: ix as u64,
                            instrs: r.user_instrs,
                            vm_total_micro: (r.vm_total * 1e6).round() as u64,
                        },
                    );
                }
                PointOutcome::Failed(_) | PointOutcome::TimedOut(_) => {
                    sink.emit(
                        now,
                        &Event::PointFailed {
                            index: ix as u64,
                            attempts: attempts[ix],
                            timed_out: matches!(outcome, PointOutcome::TimedOut(_)),
                        },
                    );
                }
            }
        }
        // Supervision telemetry (spawns, crashes, restarts, breaker
        // trips) trails the per-point events; the pool buffers them
        // because they happen on worker threads, off the sink.
        if let Some(pool) = &policy.process {
            for ev in pool.take_events() {
                sink.emit(now, &ev);
            }
        }
    } else if let Some(pool) = &policy.process {
        // A sink-less sweep must not accumulate events forever on a pool
        // that outlives it: drain, and hand any leftovers (events raced
        // in after the last per-point drain) to the observer instead of
        // discarding them.
        let leftovers = pool.take_events();
        if let Some(progress) = &policy.progress {
            for ev in &leftovers {
                progress.observer.pool_event(ev);
            }
        }
    }
    SweepOutcome { outcomes, attempts, resumed }
}

/// Locks a result slot, tolerating poisoning (a worker that panicked
/// between store and unlock must not cascade).
fn lock_slot<T>(slot: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

/// Simulates the `pending` points of `plan` over the work-stealing
/// worker pool, storing `(outcome, attempts)` into `slots`.
#[allow(clippy::too_many_arguments)]
fn run_pending(
    points: &[PlannedPoint],
    pending: &[usize],
    exec: &ExecConfig,
    policy: &HardenPolicy,
    reporter: &Reporter,
    journal: Option<&Mutex<DynJournalWriter>>,
    slots: &[Mutex<Option<(SweepPointOutcome, u32)>>],
    sink_enabled: bool,
) {
    let jobs = exec.jobs.max(1).min(pending.len());
    let planned_instrs = (exec.warmup + exec.measure) * pending.len() as u64;

    // Round-robin deal into per-worker deques; idle workers steal from
    // the back of the fullest queue.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new(pending.iter().copied().skip(w).step_by(jobs).collect()))
        .collect();
    let done = AtomicUsize::new(0);
    let consumed = AtomicU64::new(0);
    let finished = AtomicBool::new(false);
    let started = Instant::now();

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(jobs);
        for w in 0..jobs {
            let queues = &queues;
            let done = &done;
            let consumed = &consumed;
            workers.push(scope.spawn(move || {
                // Expected unwinds (chaos, deadlines, corrupt records)
                // are caught and classified; keep the hook from spraying
                // a backtrace banner per isolated failure.
                let _quiet = quiet_panics();
                // Deterministic per-worker stream; only steers which
                // victim is probed first, never anything a result
                // depends on.
                let mut rng = SplitMix64::new(steal_seed(w));
                while let Some(ix) = next_point(w, queues, &mut rng) {
                    let point = &points[ix];
                    if policy.cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed)) {
                        // Drain without simulating or journaling: the
                        // missing journal entry is what makes a resume
                        // re-run the point.
                        let e = point_error(
                            point,
                            FailureKind::Cancelled,
                            "sweep cancelled before this point ran",
                        );
                        *lock_slot(&slots[ix]) = Some((PointOutcome::Failed(e), 1));
                        if let Some(progress) = &policy.progress {
                            progress.observer.point_finished(ix, false);
                        }
                        continue;
                    }
                    let t0 = Instant::now();
                    let (outcome, tries) = measure_point_isolated(point, exec, policy);
                    if let Some(journal) = journal {
                        let entry = JournalEntry::from_outcome(
                            ix as u64,
                            &point.label,
                            &outcome,
                            tries,
                            result_to_value,
                        );
                        lock_slot(journal).record(&entry);
                    }
                    consumed.fetch_add(exec.warmup + exec.measure, Ordering::Relaxed);
                    let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                    reporter.detail(format!(
                        "  [explore] {k}/{} `{}` {} in {:.2}s",
                        pending.len(),
                        point.label,
                        outcome.status_label(),
                        t0.elapsed().as_secs_f64()
                    ));
                    let ok = matches!(outcome, PointOutcome::Completed(_));
                    *lock_slot(&slots[ix]) = Some((outcome, tries));
                    if let Some(progress) = &policy.progress {
                        progress.observer.point_finished(ix, ok);
                        // Deliver supervision telemetry (crashes,
                        // restarts, breaker trips) live, per point,
                        // rather than only at sweep teardown. When a
                        // recording sink is attached it keeps its
                        // deterministic teardown drain instead.
                        if !sink_enabled {
                            if let Some(pool) = &policy.process {
                                for ev in pool.take_events() {
                                    progress.observer.pool_event(&ev);
                                }
                            }
                        }
                    }
                }
            }));
        }
        // Heartbeat: silent for short sweeps, periodic progress for long
        // ones, same cadence as the experiment runner.
        scope.spawn(|| {
            let step = Duration::from_millis(100);
            let mut waited = Duration::ZERO;
            loop {
                std::thread::sleep(step);
                if finished.load(Ordering::Relaxed) {
                    break;
                }
                waited += step;
                if waited < Duration::from_secs(2) {
                    continue;
                }
                waited = Duration::ZERO;
                let instrs = consumed.load(Ordering::Relaxed);
                let elapsed = started.elapsed().as_secs_f64();
                reporter.heartbeat(format!(
                    "  [explore] {}/{} points ({:.0}% of planned instrs) at {:.1}M instrs/s",
                    done.load(Ordering::Relaxed),
                    pending.len(),
                    100.0 * instrs as f64 / planned_instrs.max(1) as f64,
                    instrs as f64 / elapsed.max(1e-9) / 1e6,
                ));
            }
        });
        let worker_panic = workers.into_iter().find_map(|h| h.join().err());
        finished.store(true, Ordering::Relaxed);
        if let Some(payload) = worker_panic {
            // Only infrastructure bugs reach here — point panics are
            // caught and classified inside measure_point_isolated.
            std::panic::resume_unwind(payload);
        }
    });
}

/// Mixes a worker id into a seed for its steal stream.
fn steal_seed(w: usize) -> u64 {
    0x5eed_ba5e_0000_0000 ^ w as u64
}

/// Pops the worker's own queue, or steals from the back of the fullest
/// other queue (first probe randomized by the worker's stream).
fn next_point(w: usize, queues: &[Mutex<VecDeque<usize>>], rng: &mut SplitMix64) -> Option<usize> {
    if let Some(ix) = lock_slot(&queues[w]).pop_front() {
        return Some(ix);
    }
    let n = queues.len();
    let start = (rng.next_u64() as usize) % n;
    // Two passes: find the fullest victim, then fall back to any victim
    // (a queue may drain between the scan and the steal).
    let mut best: Option<(usize, usize)> = None;
    for off in 0..n {
        let v = (start + off) % n;
        if v == w {
            continue;
        }
        let len = lock_slot(&queues[v]).len();
        if len > best.map(|(_, l)| l).unwrap_or(0) {
            best = Some((v, len));
        }
    }
    if let Some((v, _)) = best {
        if let Some(ix) = lock_slot(&queues[v]).pop_back() {
            return Some(ix);
        }
    }
    for off in 0..n {
        let v = (start + off) % n;
        if v == w {
            continue;
        }
        if let Some(ix) = lock_slot(&queues[v]).pop_back() {
            return Some(ix);
        }
    }
    None
}

/// A [`SimError`] carrying the point's label and axis settings.
pub(crate) fn point_error(
    point: &PlannedPoint,
    kind: FailureKind,
    detail: impl Into<String>,
) -> SimError {
    let mut e = SimError::new(point.label.clone(), kind, detail);
    e.settings = point.settings.clone();
    e
}

/// Measures one point with full isolation. With
/// [`HardenPolicy::process`] set the point crosses into a supervised
/// worker process (which runs this same function, sans pool); otherwise
/// it runs in-process: chaos injection, retries for transient failures,
/// `catch_unwind` classification of panics and sentinels. Returns the
/// outcome and the attempts consumed.
pub(crate) fn measure_point_isolated(
    point: &PlannedPoint,
    exec: &ExecConfig,
    policy: &HardenPolicy,
) -> (SweepPointOutcome, u32) {
    if let Some(pool) = &policy.process {
        return crate::process::measure_point_process(pool, point, exec, policy);
    }
    let (result, attempts) = with_retry_salted(&policy.retry, point.index as u64, |attempt| {
        if policy.chaos.fault_for(point.index) == Some(Fault::Io) {
            let failures = policy.chaos.io_failures(point.index);
            if attempt <= failures {
                return Err(point_error(
                    point,
                    FailureKind::Io,
                    format!("chaos: injected I/O failure ({attempt} of {failures})"),
                ));
            }
        }
        try_measure_point(point, exec, policy)
    });
    match result {
        Ok(r) => (PointOutcome::Completed(r), attempts),
        Err(e) if e.kind == FailureKind::Timeout => (PointOutcome::TimedOut(e), attempts),
        Err(e) => (PointOutcome::Failed(e), attempts),
    }
}

/// A point's record source: a synthetic preset or a replayed library
/// trace. Both feed the same infallible-iterator pipeline (chaos wrap,
/// [`CheckedTrace`], `simulate`); a library trace is fully decoded and
/// validated *before* this enum exists, so decode failures surface as
/// structured [`FailureKind::Ingest`] errors, never mid-simulation.
enum PointTrace {
    Synth(Box<vm_trace::SyntheticTrace>),
    Replay(std::vec::IntoIter<vm_trace::InstrRecord>),
}

impl Iterator for PointTrace {
    type Item = vm_trace::InstrRecord;

    fn next(&mut self) -> Option<vm_trace::InstrRecord> {
        match self {
            PointTrace::Synth(t) => t.next(),
            PointTrace::Replay(t) => t.next(),
        }
    }
}

/// Resolves a point's workload into a record source and display label.
fn point_trace(
    point: &PlannedPoint,
    policy: &HardenPolicy,
) -> Result<(String, PointTrace), SimError> {
    let name = point.spec.workload_name();
    if let Some(trace_name) = vm_trace::trace_workload(name) {
        let library = policy
            .trace_library
            .clone()
            .map(vm_trace::TraceLibrary::new)
            .or_else(vm_trace::TraceLibrary::from_env)
            .ok_or_else(|| {
                point_error(
                    point,
                    FailureKind::Ingest,
                    vm_trace::LibraryError::NoLibrary.to_string(),
                )
            })?;
        let records = library
            .load(trace_name)
            .map_err(|e| point_error(point, FailureKind::Ingest, e.to_string()))?;
        Ok((name.to_owned(), PointTrace::Replay(records.into_iter())))
    } else {
        let workload = vm_trace::presets::by_name(name).ok_or_else(|| {
            point_error(point, FailureKind::Workload, "workload vanished after validation")
        })?;
        let trace = workload
            .build(point.spec.trace_seed)
            .map_err(|e| point_error(point, FailureKind::Workload, e.to_string()))?;
        Ok((workload.name, PointTrace::Synth(Box::new(trace))))
    }
}

/// One attempt at simulating a point, every failure mode mapped to a
/// structured [`SimError`].
fn try_measure_point(
    point: &PlannedPoint,
    exec: &ExecConfig,
    policy: &HardenPolicy,
) -> Result<PointResult, SimError> {
    let (workload_label, trace) = point_trace(point, policy)?;
    let horizon = exec.warmup + exec.measure;
    let checked = CheckedTrace::new(policy.chaos.wrap(point.index, horizon, trace));
    let run = catch_unwind(AssertUnwindSafe(|| {
        match (&policy.progress, policy.point_budget) {
            (None, Some(budget)) => simulate_with_sink(
                &point.config,
                checked,
                exec.warmup,
                exec.measure,
                DeadlineSink::new(budget),
            )
            .map(|(report, _)| report),
            (None, None) => simulate(&point.config, checked, exec.warmup, exec.measure),
            (Some(progress), budget) => {
                // Sinks are observers by construction, so attaching the
                // snapshot sink (alone or teed with the deadline) leaves
                // the measured results bit-identical.
                let cost = CostModel::paper(point.spec.interrupt_cycles);
                let observer = &progress.observer;
                let snap = SnapshotSink::new(progress.interval, |cp| {
                    observer.checkpoint(&PointCheckpoint::from_snapshot(point, cp, horizon, &cost));
                });
                match budget {
                    Some(budget) => simulate_with_sink(
                        &point.config,
                        checked,
                        exec.warmup,
                        exec.measure,
                        Tee(DeadlineSink::new(budget), snap),
                    )
                    .map(|(report, _)| report),
                    None => {
                        simulate_with_sink(&point.config, checked, exec.warmup, exec.measure, snap)
                            .map(|(report, _)| report)
                    }
                }
            }
        }
        .map_err(|e| point_error(point, FailureKind::Build, e.to_string()))
    }));
    let report = match run {
        Ok(simulated) => simulated?,
        Err(payload) => {
            let mut e = SimError::from_panic(point.label.clone(), payload);
            e.settings = point.settings.clone();
            return Err(e);
        }
    };
    let mut result = result_row(point, workload_label, report);
    if policy.chaos.fault_for(point.index) == Some(Fault::Lie) {
        // The Byzantine chaos fault: an honest simulation, then one ulp
        // of corruption — applied BEFORE signing, so the lie leaves here
        // with a perfectly valid attestation. Only divergence detection
        // or an audit against another backend can catch it.
        result.vmcpi = f64::from_bits(result.vmcpi.to_bits() ^ 1);
        result.vm_total = result.vmcpi + result.interrupt_cpi;
    }
    crate::attest::seal(&mut result, crate::attest::context_for(point, exec));
    Ok(result)
}

/// Derives a result row from a point's finished simulation.
fn result_row(point: &PlannedPoint, workload: String, report: SimReport) -> PointResult {
    let cost = CostModel::paper(point.spec.interrupt_cycles);
    let vmcpi = report.vmcpi(&cost).total();
    let interrupt_cpi = report.interrupt_cpi(&cost);
    let tlb_miss_ratio =
        (report.itlb.is_some() || report.dtlb.is_some()).then(|| report.tlb_miss_ratio());
    PointResult {
        index: point.index,
        label: point.label.clone(),
        settings: point.settings.clone(),
        system: point.config.system.label().to_owned(),
        workload,
        vmcpi,
        interrupt_cpi,
        mcpi: report.mcpi(&cost).total(),
        vm_total: vmcpi + interrupt_cpi,
        tlb_area_bytes: tlb_area_bytes(&point.config),
        tlb_miss_ratio,
        user_instrs: report.counts.user_instrs,
        // Unsigned until the caller seals it (after any lie chaos).
        ctx: 0,
        att: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SystemSpec;
    use crate::sweep::Axis;
    use vm_core::SystemKind;
    use vm_obs::{NopSink, RecordingSink};

    fn tiny_exec(jobs: usize) -> ExecConfig {
        ExecConfig { warmup: 2_000, measure: 10_000, jobs }
    }

    fn tiny_plan() -> SweepPlan {
        let base = SystemSpec::for_kind(SystemKind::Ultrix);
        let axes = [
            Axis::parse("tlb.entries=32,64").unwrap(),
            Axis::parse("mmu.table=two-tier,hashed").unwrap(),
        ];
        SweepPlan::expand(&base, &axes).unwrap()
    }

    #[test]
    fn results_come_back_in_point_order() {
        let plan = tiny_plan();
        let out = run_sweep(&plan, &tiny_exec(2), &Reporter::silent(), &mut NopSink);
        assert_eq!(out.len(), 4);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.user_instrs, 10_000);
            assert!(r.vm_total >= 0.0);
        }
    }

    #[test]
    fn job_count_does_not_change_results() {
        let plan = tiny_plan();
        let one = run_sweep(&plan, &tiny_exec(1), &Reporter::silent(), &mut NopSink);
        let many = run_sweep(&plan, &tiny_exec(4), &Reporter::silent(), &mut NopSink);
        assert_eq!(one, many);
    }

    #[test]
    fn sweep_events_are_emitted_in_order() {
        let plan = tiny_plan();
        let mut sink = RecordingSink::new();
        let out = run_sweep(&plan, &tiny_exec(2), &Reporter::silent(), &mut sink);
        let events = &sink.events;
        assert!(matches!(events[0].1, Event::SweepStarted { points: 4, axes: 2, jobs: 2 }));
        let indices: Vec<u64> = events[1..]
            .iter()
            .map(|(_, e)| match e {
                Event::SweepPointDone { index, .. } => *index,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(indices, [0, 1, 2, 3]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn attached_observer_does_not_perturb_results_and_sees_progress() {
        use crate::progress::SweepObserver;
        use std::sync::Mutex as StdMutex;

        #[derive(Default)]
        struct Spy {
            checkpoints: StdMutex<Vec<(usize, u64, u64)>>,
            finished: StdMutex<Vec<(usize, bool)>>,
        }
        impl SweepObserver for Spy {
            fn checkpoint(&self, cp: &PointCheckpoint) {
                assert!(cp.instrs <= cp.instrs_total);
                assert!(cp.vmcpi >= 0.0 && cp.mcpi >= 0.0);
                self.checkpoints.lock().unwrap().push((cp.index, cp.seq, cp.instrs));
            }
            fn point_finished(&self, index: usize, ok: bool) {
                self.finished.lock().unwrap().push((index, ok));
            }
        }

        let plan = tiny_plan();
        let plain = run_sweep_hardened(
            &plan,
            &tiny_exec(2),
            &HardenPolicy::default(),
            BTreeMap::new(),
            &Reporter::silent(),
            &mut NopSink,
            None,
        );
        let spy = Arc::new(Spy::default());
        let policy = HardenPolicy {
            progress: Some(ProgressConfig::new(1_000, spy.clone())),
            ..HardenPolicy::default()
        };
        let watched = run_sweep_hardened(
            &plan,
            &tiny_exec(2),
            &policy,
            BTreeMap::new(),
            &Reporter::silent(),
            &mut NopSink,
            None,
        );
        // The observer is an observer: results are bit-identical.
        assert_eq!(plain.outcomes, watched.outcomes);

        let mut finished = spy.finished.lock().unwrap().clone();
        finished.sort_unstable();
        assert_eq!(finished, vec![(0, true), (1, true), (2, true), (3, true)]);
        let checkpoints = spy.checkpoints.lock().unwrap().clone();
        assert!(!checkpoints.is_empty(), "no checkpoints fired");
        for ix in 0..4 {
            let per_point: Vec<_> = checkpoints.iter().filter(|c| c.0 == ix).collect();
            assert!(per_point.len() >= 3, "point {ix} fired {} checkpoints", per_point.len());
            // seq and cumulative instrs are strictly increasing within
            // a point.
            for pair in per_point.windows(2) {
                assert!(pair[1].1 > pair[0].1);
                assert!(pair[1].2 > pair[0].2);
            }
        }
    }

    #[test]
    fn area_proxy_is_zero_without_tlbs() {
        let with = SystemSpec::for_kind(SystemKind::Intel).validate().unwrap();
        let without = SystemSpec::for_kind(SystemKind::NoTlb).validate().unwrap();
        assert_eq!(tlb_area_bytes(&with), 2 * 128 * 16);
        assert_eq!(tlb_area_bytes(&without), 0);
    }

    #[test]
    fn injected_panic_isolates_to_one_failed_point() {
        let plan = tiny_plan();
        let policy = HardenPolicy {
            chaos: ChaosPlan::parse("panic@1", 42).unwrap(),
            ..HardenPolicy::default()
        };
        let out = run_sweep_hardened(
            &plan,
            &tiny_exec(2),
            &policy,
            BTreeMap::new(),
            &Reporter::silent(),
            &mut NopSink,
            None,
        );
        assert_eq!(out.failed_count(), 1);
        let e = out.outcomes[1].error().expect("point 1 failed");
        assert_eq!(e.kind, FailureKind::Panic);
        assert!(e.detail.contains("injected panic"), "{e}");
        // The survivors match a clean run bit-for-bit.
        let clean = run_sweep(&plan, &tiny_exec(1), &Reporter::silent(), &mut NopSink);
        for ix in [0usize, 2, 3] {
            assert_eq!(out.outcomes[ix].completed(), Some(&clean[ix]));
        }
    }

    #[test]
    fn corrupt_fault_is_classified_not_fatal() {
        let plan = tiny_plan();
        let policy = HardenPolicy {
            chaos: ChaosPlan::parse("corrupt@2", 7).unwrap(),
            ..HardenPolicy::default()
        };
        let out = run_sweep_hardened(
            &plan,
            &tiny_exec(1),
            &policy,
            BTreeMap::new(),
            &Reporter::silent(),
            &mut NopSink,
            None,
        );
        let e = out.outcomes[2].error().expect("point 2 failed");
        assert_eq!(e.kind, FailureKind::CorruptTrace);
        assert!(e.detail.contains("corrupt trace record"), "{e}");
    }

    #[test]
    fn runaway_fault_times_out_under_a_budget() {
        let plan = tiny_plan();
        let policy = HardenPolicy {
            point_budget: Some(150_000),
            chaos: ChaosPlan::parse("runaway@0", 11).unwrap(),
            ..HardenPolicy::default()
        };
        let out = run_sweep_hardened(
            &plan,
            &tiny_exec(1),
            &policy,
            BTreeMap::new(),
            &Reporter::silent(),
            &mut NopSink,
            None,
        );
        assert!(matches!(out.outcomes[0], PointOutcome::TimedOut(_)));
        assert_eq!(out.outcomes[0].error().unwrap().kind, FailureKind::Timeout);
        // Healthy points live comfortably inside the same budget.
        assert!(out.outcomes[1].completed().is_some());
    }

    #[test]
    fn cancelled_sweeps_drain_without_simulating() {
        let plan = tiny_plan();
        let policy = HardenPolicy {
            cancel: Some(Arc::new(AtomicBool::new(true))), // cancelled up front
            ..HardenPolicy::default()
        };
        let out = run_sweep_hardened(
            &plan,
            &tiny_exec(2),
            &policy,
            BTreeMap::new(),
            &Reporter::silent(),
            &mut NopSink,
            None,
        );
        assert_eq!(out.failed_count(), 4);
        for o in &out.outcomes {
            assert_eq!(o.error().unwrap().kind, FailureKind::Cancelled);
        }
        // Seeded points stay merged even under cancellation.
        let clean = run_sweep(&plan, &tiny_exec(1), &Reporter::silent(), &mut NopSink);
        let seeded: BTreeMap<usize, PointResult> = [(1, clean[1].clone())].into();
        let out = run_sweep_hardened(
            &plan,
            &tiny_exec(2),
            &policy,
            seeded,
            &Reporter::silent(),
            &mut NopSink,
            None,
        );
        assert_eq!(out.failed_count(), 3);
        assert_eq!(out.outcomes[1].completed(), Some(&clean[1]));
    }

    #[test]
    fn io_faults_recover_with_retries_and_fail_without() {
        let plan = tiny_plan();
        let chaos = ChaosPlan::parse("io@3", 5).unwrap();
        let with_retries = HardenPolicy {
            retry: RetryPolicy {
                retries: 2,
                backoff_base_ms: 0,
                backoff_cap_ms: 0,
                jitter_seed: None,
            },
            chaos: chaos.clone(),
            ..HardenPolicy::default()
        };
        let out = run_sweep_hardened(
            &plan,
            &tiny_exec(1),
            &with_retries,
            BTreeMap::new(),
            &Reporter::silent(),
            &mut NopSink,
            None,
        );
        assert!(out.is_clean());
        assert_eq!(out.attempts[3], chaos.io_failures(3) + 1);

        let no_retries = HardenPolicy { chaos, ..HardenPolicy::default() };
        let out = run_sweep_hardened(
            &plan,
            &tiny_exec(1),
            &no_retries,
            BTreeMap::new(),
            &Reporter::silent(),
            &mut NopSink,
            None,
        );
        assert_eq!(out.outcomes[3].error().unwrap().kind, FailureKind::Io);
    }

    #[test]
    fn seeded_points_are_not_resimulated_and_merge_identically() {
        let plan = tiny_plan();
        let clean = run_sweep(&plan, &tiny_exec(1), &Reporter::silent(), &mut NopSink);
        let seeded: BTreeMap<usize, PointResult> =
            [(0, clean[0].clone()), (2, clean[2].clone())].into();
        let mut sink = RecordingSink::new();
        let out = run_sweep_hardened(
            &plan,
            &tiny_exec(2),
            &HardenPolicy::default(),
            seeded,
            &Reporter::silent(),
            &mut sink,
            None,
        );
        assert_eq!(out.resumed, 2);
        let merged: Vec<&PointResult> = out.results().collect();
        assert_eq!(merged.len(), 4);
        for (r, c) in merged.iter().zip(&clean) {
            assert_eq!(*r, c);
        }
        assert!(matches!(sink.events[0].1, Event::RunResumed { completed: 2, remaining: 2 }));
        assert!(matches!(sink.events[1].1, Event::SweepStarted { .. }));
    }

    #[test]
    fn failure_events_are_deterministic() {
        let plan = tiny_plan();
        let policy = HardenPolicy {
            chaos: ChaosPlan::parse("panic@1", 42).unwrap(),
            ..HardenPolicy::default()
        };
        let mut sink = RecordingSink::new();
        run_sweep_hardened(
            &plan,
            &tiny_exec(2),
            &policy,
            BTreeMap::new(),
            &Reporter::silent(),
            &mut sink,
            None,
        );
        let names: Vec<&str> = sink.events.iter().map(|(_, e)| e.name()).collect();
        assert_eq!(
            names,
            [
                "sweep_started",
                "sweep_point_done",
                "point_failed",
                "sweep_point_done",
                "sweep_point_done"
            ]
        );
    }

    #[test]
    fn trace_workloads_replay_from_the_library_or_fail_as_ingest() {
        let dir = std::env::temp_dir().join(format!("vm-exec-lib-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let records: Vec<vm_trace::InstrRecord> =
            vm_trace::presets::by_name("gcc").unwrap().build(3).unwrap().take(12_000).collect();
        let staged = dir.join("staged");
        vm_trace::write_trace(std::fs::File::create(&staged).unwrap(), records.iter().copied())
            .unwrap();
        vm_trace::TraceLibrary::new(&dir).install("captured", &staged).unwrap();

        let mut base = SystemSpec::for_kind(SystemKind::Ultrix);
        base.workload = Some("trace:captured".to_owned());
        let axes: [Axis; 0] = [];
        let plan = SweepPlan::expand(&base, &axes).unwrap();
        let exec = tiny_exec(1);

        // No library configured (explicit or env): a structured ingest
        // failure — not a panic, not a workload error.
        let (outcome, _) = measure_point_isolated(&plan.points[0], &exec, &HardenPolicy::default());
        assert_eq!(outcome.error().expect("no library").kind, FailureKind::Ingest);

        let policy = HardenPolicy { trace_library: Some(dir.clone()), ..HardenPolicy::default() };
        let (first, _) = measure_point_isolated(&plan.points[0], &exec, &policy);
        let first = first.completed().expect("replay completes").clone();
        assert_eq!(first.workload, "trace:captured");
        // Replay is deterministic: a second run is bit-identical.
        let (again, _) = measure_point_isolated(&plan.points[0], &exec, &policy);
        assert_eq!(again.completed().unwrap().vm_total.to_bits(), first.vm_total.to_bits());

        // A missing trace is also an ingest failure, naming the trace.
        let mut missing = base.clone();
        missing.workload = Some("trace:nope".to_owned());
        let plan = SweepPlan::expand(&missing, &axes).unwrap();
        let (outcome, _) = measure_point_isolated(&plan.points[0], &exec, &policy);
        let e = outcome.error().expect("missing trace fails");
        assert_eq!(e.kind, FailureKind::Ingest);
        assert!(e.detail.contains("`nope`"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
