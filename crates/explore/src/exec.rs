//! The parallel sweep executor.
//!
//! Points are distributed round-robin over per-worker deques; a worker
//! that drains its own queue **steals** from the back of the fullest
//! other queue (victim scan order is randomized per worker with a
//! deterministic [`SplitMix64`] stream, so contention patterns vary but
//! runs are reproducible). Every random stream a *result* depends on —
//! the workload generator and the TLB replacement RNG — is seeded from
//! the point's spec alone, never from worker identity, and outcomes are
//! merged in point order; the same sweep therefore produces bit-identical
//! results at any `--jobs` count.
//!
//! Progress goes through the `vm-obs` [`Reporter`] (a heartbeat line
//! roughly every two seconds, per-point completions at Verbose), and the
//! sweep's lifecycle is emitted into any [`Sink`] as
//! [`Event::SweepStarted`] / [`Event::SweepPointDone`] pairs so `--events`
//! captures exploration runs alongside simulation events.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use vm_core::cost::CostModel;
use vm_core::{simulate, SimConfig};
use vm_obs::{Event, Reporter, Sink};
use vm_types::SplitMix64;

use crate::sweep::{PlannedPoint, SweepPlan};

/// Run lengths for one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Instructions executed before counters are reset.
    pub warmup: u64,
    /// Instructions measured.
    pub measure: u64,
    /// Worker threads (clamped to at least 1, at most the point count).
    pub jobs: usize,
}

impl ExecConfig {
    /// The default experiment scale (matches the runner's default).
    pub const DEFAULT: ExecConfig = ExecConfig { warmup: 1_000_000, measure: 2_000_000, jobs: 1 };
    /// Fast smoke-test scale.
    pub const QUICK: ExecConfig = ExecConfig { warmup: 200_000, measure: 500_000, jobs: 1 };
}

/// One measured sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Position in sweep order.
    pub index: usize,
    /// The point's label (`NAME key=value ...`).
    pub label: String,
    /// The `(axis key, value)` pairs that distinguish this point.
    pub settings: Vec<(String, String)>,
    /// The composed system's paper-style label.
    pub system: String,
    /// The workload preset measured.
    pub workload: String,
    /// VM overhead CPI (Table 3 components).
    pub vmcpi: f64,
    /// Precise-interrupt CPI at the spec's interrupt cost.
    pub interrupt_cpi: f64,
    /// Baseline cache overhead CPI (Table 2 components).
    pub mcpi: f64,
    /// `vmcpi + interrupt_cpi` — the quantity the Pareto frontier and
    /// sensitivity passes minimize.
    pub vm_total: f64,
    /// The TLB area proxy (see [`tlb_area_bytes`]).
    pub tlb_area_bytes: u64,
    /// Combined I+D TLB miss ratio, when the system has TLBs.
    pub tlb_miss_ratio: Option<f64>,
    /// User instructions measured.
    pub user_instrs: u64,
}

/// A die-area proxy for the translation hardware: split I/D TLBs at 16
/// bytes per fully-associative entry (~50 tag+data bits plus CAM
/// overhead). The absolute scale is arbitrary; the Pareto frontier only
/// consumes the ordering. TLB-less systems cost 0.
pub fn tlb_area_bytes(config: &SimConfig) -> u64 {
    if config.system.uses_tlb() {
        2 * config.tlb_entries as u64 * 16
    } else {
        0
    }
}

/// Runs every point of `plan`, returning results in point order.
///
/// `sink` receives the sweep lifecycle events ([`Event::SweepStarted`]
/// up front, one [`Event::SweepPointDone`] per point, emitted after the
/// order-independent merge so event streams are deterministic too); pass
/// [`vm_obs::NopSink`] when nothing listens.
///
/// # Panics
///
/// Panics if a point's workload fails to build or the simulation rejects
/// a config — both are validated during planning, so a failure here is a
/// programming error.
pub fn run_sweep<S: Sink>(
    plan: &SweepPlan,
    exec: &ExecConfig,
    reporter: &Reporter,
    sink: &mut S,
) -> Vec<PointResult> {
    let points = &plan.points;
    if S::ENABLED {
        sink.emit(
            0,
            &Event::SweepStarted {
                points: points.len() as u64,
                axes: points.first().map(|p| p.settings.len() as u32).unwrap_or(0),
                jobs: exec.jobs.max(1) as u32,
            },
        );
    }
    if points.is_empty() {
        return Vec::new();
    }
    let jobs = exec.jobs.max(1).min(points.len());
    let planned_instrs = (exec.warmup + exec.measure) * points.len() as u64;

    // Round-robin deal into per-worker deques; idle workers steal from
    // the back of the fullest queue.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|w| Mutex::new((w..points.len()).step_by(jobs).collect())).collect();
    let results: Vec<Mutex<Option<PointResult>>> =
        points.iter().map(|_| Mutex::new(None)).collect();
    let done = AtomicUsize::new(0);
    let consumed = AtomicU64::new(0);
    let finished = AtomicBool::new(false);
    let started = Instant::now();

    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(jobs);
        for w in 0..jobs {
            let queues = &queues;
            let results = &results;
            let done = &done;
            let consumed = &consumed;
            workers.push(scope.spawn(move || {
                // Deterministic per-worker stream; only steers which
                // victim is probed first, never anything a result
                // depends on.
                let mut rng = SplitMix64::new(steal_seed(w));
                while let Some(ix) = next_point(w, queues, &mut rng) {
                    let point = &points[ix];
                    let t0 = Instant::now();
                    let result = measure_point(point, exec);
                    consumed.fetch_add(exec.warmup + exec.measure, Ordering::Relaxed);
                    let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                    reporter.detail(format!(
                        "  [explore] {k}/{} `{}` done in {:.2}s",
                        points.len(),
                        point.label,
                        t0.elapsed().as_secs_f64()
                    ));
                    *results[ix].lock().unwrap() = Some(result);
                }
            }));
        }
        // Heartbeat: silent for short sweeps, periodic progress for long
        // ones, same cadence as the experiment runner.
        scope.spawn(|| {
            let step = Duration::from_millis(100);
            let mut waited = Duration::ZERO;
            loop {
                std::thread::sleep(step);
                if finished.load(Ordering::Relaxed) {
                    break;
                }
                waited += step;
                if waited < Duration::from_secs(2) {
                    continue;
                }
                waited = Duration::ZERO;
                let instrs = consumed.load(Ordering::Relaxed);
                let elapsed = started.elapsed().as_secs_f64();
                reporter.heartbeat(format!(
                    "  [explore] {}/{} points ({:.0}% of planned instrs) at {:.1}M instrs/s",
                    done.load(Ordering::Relaxed),
                    points.len(),
                    100.0 * instrs as f64 / planned_instrs.max(1) as f64,
                    instrs as f64 / elapsed.max(1e-9) / 1e6,
                ));
            }
        });
        let worker_panic = workers.into_iter().find_map(|h| h.join().err());
        finished.store(true, Ordering::Relaxed);
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    });

    let merged: Vec<PointResult> =
        results.into_iter().map(|m| m.into_inner().unwrap().expect("every point ran")).collect();
    if S::ENABLED {
        let mut now = 0;
        for r in &merged {
            now += r.user_instrs;
            sink.emit(
                now,
                &Event::SweepPointDone {
                    index: r.index as u64,
                    instrs: r.user_instrs,
                    vm_total_micro: (r.vm_total * 1e6).round() as u64,
                },
            );
        }
    }
    merged
}

/// Mixes a worker id into a seed for its steal stream.
fn steal_seed(w: usize) -> u64 {
    0x5eed_ba5e_0000_0000 ^ w as u64
}

/// Pops the worker's own queue, or steals from the back of the fullest
/// other queue (first probe randomized by the worker's stream).
fn next_point(w: usize, queues: &[Mutex<VecDeque<usize>>], rng: &mut SplitMix64) -> Option<usize> {
    if let Some(ix) = queues[w].lock().unwrap().pop_front() {
        return Some(ix);
    }
    let n = queues.len();
    let start = (rng.next_u64() as usize) % n;
    // Two passes: find the fullest victim, then fall back to any victim
    // (a queue may drain between the scan and the steal).
    let mut best: Option<(usize, usize)> = None;
    for off in 0..n {
        let v = (start + off) % n;
        if v == w {
            continue;
        }
        let len = queues[v].lock().unwrap().len();
        if len > best.map(|(_, l)| l).unwrap_or(0) {
            best = Some((v, len));
        }
    }
    if let Some((v, _)) = best {
        if let Some(ix) = queues[v].lock().unwrap().pop_back() {
            return Some(ix);
        }
    }
    for off in 0..n {
        let v = (start + off) % n;
        if v == w {
            continue;
        }
        if let Some(ix) = queues[v].lock().unwrap().pop_back() {
            return Some(ix);
        }
    }
    None
}

/// Simulates one point and derives its result row.
fn measure_point(point: &PlannedPoint, exec: &ExecConfig) -> PointResult {
    let workload = vm_trace::presets::by_name(point.spec.workload_name())
        .unwrap_or_else(|| panic!("point `{}`: workload vanished after validation", point.label));
    let trace = workload
        .build(point.spec.trace_seed)
        .unwrap_or_else(|e| panic!("point `{}`: {e}", point.label));
    let report = simulate(&point.config, trace, exec.warmup, exec.measure)
        .unwrap_or_else(|e| panic!("point `{}`: {e}", point.label));
    let cost = CostModel::paper(point.spec.interrupt_cycles);
    let vmcpi = report.vmcpi(&cost).total();
    let interrupt_cpi = report.interrupt_cpi(&cost);
    let tlb_miss_ratio =
        (report.itlb.is_some() || report.dtlb.is_some()).then(|| report.tlb_miss_ratio());
    PointResult {
        index: point.index,
        label: point.label.clone(),
        settings: point.settings.clone(),
        system: point.config.system.label().to_owned(),
        workload: workload.name.clone(),
        vmcpi,
        interrupt_cpi,
        mcpi: report.mcpi(&cost).total(),
        vm_total: vmcpi + interrupt_cpi,
        tlb_area_bytes: tlb_area_bytes(&point.config),
        tlb_miss_ratio,
        user_instrs: report.counts.user_instrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SystemSpec;
    use crate::sweep::Axis;
    use vm_core::SystemKind;
    use vm_obs::{NopSink, RecordingSink};

    fn tiny_exec(jobs: usize) -> ExecConfig {
        ExecConfig { warmup: 2_000, measure: 10_000, jobs }
    }

    fn tiny_plan() -> SweepPlan {
        let base = SystemSpec::for_kind(SystemKind::Ultrix);
        let axes = [
            Axis::parse("tlb.entries=32,64").unwrap(),
            Axis::parse("mmu.table=two-tier,hashed").unwrap(),
        ];
        SweepPlan::expand(&base, &axes).unwrap()
    }

    #[test]
    fn results_come_back_in_point_order() {
        let plan = tiny_plan();
        let out = run_sweep(&plan, &tiny_exec(2), &Reporter::silent(), &mut NopSink);
        assert_eq!(out.len(), 4);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.user_instrs, 10_000);
            assert!(r.vm_total >= 0.0);
        }
    }

    #[test]
    fn job_count_does_not_change_results() {
        let plan = tiny_plan();
        let one = run_sweep(&plan, &tiny_exec(1), &Reporter::silent(), &mut NopSink);
        let many = run_sweep(&plan, &tiny_exec(4), &Reporter::silent(), &mut NopSink);
        assert_eq!(one, many);
    }

    #[test]
    fn sweep_events_are_emitted_in_order() {
        let plan = tiny_plan();
        let mut sink = RecordingSink::new();
        let out = run_sweep(&plan, &tiny_exec(2), &Reporter::silent(), &mut sink);
        let events = &sink.events;
        assert!(matches!(events[0].1, Event::SweepStarted { points: 4, axes: 2, jobs: 2 }));
        let indices: Vec<u64> = events[1..]
            .iter()
            .map(|(_, e)| match e {
                Event::SweepPointDone { index, .. } => *index,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(indices, [0, 1, 2, 3]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn area_proxy_is_zero_without_tlbs() {
        let with = SystemSpec::for_kind(SystemKind::Intel).validate().unwrap();
        let without = SystemSpec::for_kind(SystemKind::NoTlb).validate().unwrap();
        assert_eq!(tlb_area_bytes(&with), 2 * 128 * 16);
        assert_eq!(tlb_area_bytes(&without), 0);
    }
}
