//! Journaling sweep results: the bit-exact [`PointResult`] codec and the
//! plan↔journal compatibility checks behind `repro explore --resume`.
//!
//! The executor's determinism contract is *bit*-identity, so the CPI
//! figures stored in a journal must survive a JSON round-trip exactly.
//! JSON numbers (and this workspace's [`Value::Num`]) are `f64`, but a
//! decimal rendering can drop trailing bits — so every `f64` field is
//! stored as the 16-hex-digit big-endian rendering of its raw bit
//! pattern (`f64::to_bits`), and integers that must stay exact ride the
//! same way when they can exceed 2^53 (none do today, but the codec
//! refuses to guess).

use std::collections::BTreeMap;

use vm_harden::{fingerprint, Journal, RunHeader, JOURNAL_VERSION};
use vm_obs::json::Value;

use crate::exec::{ExecConfig, PointResult};
use crate::sweep::SweepPlan;

/// Parses the canonical hex64 rendering: exactly 16 lowercase hex
/// digits, nothing else. Encoders only ever emit this form, so the
/// strictness costs nothing — and it means a journal byte is either
/// canonical or rejected, never silently normalized (uppercase or
/// whitespace surviving a round-trip would break byte-identity and
/// would let two renderings of one value carry one attestation).
pub(crate) fn hex64_strict(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Encodes an `f64` as the hex string of its bit pattern, so decoding
/// reproduces the exact bits (a decimal rendering may not).
fn f64_bits(f: f64) -> Value {
    Value::Str(format!("{:016x}", f.to_bits()))
}

/// Decodes [`f64_bits`].
fn f64_from_bits(v: &Value) -> Option<f64> {
    hex64_strict(v.as_str()?).map(f64::from_bits)
}

/// Serializes a point result for a journal `payload`.
pub fn result_to_value(r: &PointResult) -> Value {
    let settings = r
        .settings
        .iter()
        .map(|(k, v)| Value::Arr(vec![k.clone().into(), v.clone().into()]))
        .collect();
    Value::obj([
        ("index", (r.index as u64).into()),
        ("label", r.label.clone().into()),
        ("settings", Value::Arr(settings)),
        ("system", r.system.clone().into()),
        ("workload", r.workload.clone().into()),
        ("vmcpi", f64_bits(r.vmcpi)),
        ("interrupt_cpi", f64_bits(r.interrupt_cpi)),
        ("mcpi", f64_bits(r.mcpi)),
        ("vm_total", f64_bits(r.vm_total)),
        ("tlb_area_bytes", r.tlb_area_bytes.into()),
        ("tlb_miss_ratio", r.tlb_miss_ratio.map_or(Value::Null, f64_bits)),
        ("user_instrs", r.user_instrs.into()),
        ("ctx", Value::Str(format!("{:016x}", r.ctx))),
        ("att", Value::Str(format!("{:016x}", r.att))),
    ])
}

/// Deserializes [`result_to_value`].
///
/// # Errors
///
/// Returns a message naming the first missing or malformed field.
pub fn result_from_value(v: &Value) -> Result<PointResult, String> {
    let need = |k: &str| v.get(k).ok_or_else(|| format!("payload missing `{k}`"));
    let text = |k: &str| {
        need(k).and_then(|f| {
            f.as_str().map(str::to_owned).ok_or_else(|| format!("payload field `{k}` not a string"))
        })
    };
    let int = |k: &str| {
        need(k)
            .and_then(|f| f.as_u64().ok_or_else(|| format!("payload field `{k}` not an integer")))
    };
    let float = |k: &str| {
        need(k).and_then(|f| {
            f64_from_bits(f).ok_or_else(|| format!("payload field `{k}` not an f64 bit pattern"))
        })
    };
    let hex = |k: &str| {
        need(k).and_then(|f| {
            f.as_str()
                .and_then(hex64_strict)
                .ok_or_else(|| format!("payload field `{k}` not a canonical hex64 string"))
        })
    };
    let settings = need("settings")?
        .as_array()
        .ok_or("payload field `settings` not an array")?
        .iter()
        .map(|pair| {
            let kv = pair.as_array().filter(|a| a.len() == 2);
            match kv.map(|a| (a[0].as_str(), a[1].as_str())) {
                Some((Some(k), Some(val))) => Ok((k.to_owned(), val.to_owned())),
                _ => Err("payload `settings` entries must be [key, value] string pairs".to_owned()),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let tlb_miss_ratio = match need("tlb_miss_ratio")? {
        Value::Null => None,
        other => Some(
            f64_from_bits(other).ok_or("payload field `tlb_miss_ratio` not an f64 bit pattern")?,
        ),
    };
    Ok(PointResult {
        index: int("index")? as usize,
        label: text("label")?,
        settings,
        system: text("system")?,
        workload: text("workload")?,
        vmcpi: float("vmcpi")?,
        interrupt_cpi: float("interrupt_cpi")?,
        mcpi: float("mcpi")?,
        vm_total: float("vm_total")?,
        tlb_area_bytes: int("tlb_area_bytes")?,
        tlb_miss_ratio,
        user_instrs: int("user_instrs")?,
        ctx: hex("ctx")?,
        att: hex("att")?,
    })
}

/// Hashes the identity of a sweep — every point label plus the run
/// lengths — for journal/resume compatibility checks.
pub fn plan_fingerprint(plan: &SweepPlan, exec: &ExecConfig) -> u64 {
    fingerprint(plan.points.iter().map(|p| p.label.as_str()), exec.warmup, exec.measure)
}

/// Builds the journal header for a sweep about to run.
pub fn run_header(plan: &SweepPlan, exec: &ExecConfig) -> RunHeader {
    RunHeader {
        version: JOURNAL_VERSION,
        points: plan.points.len() as u64,
        fingerprint: plan_fingerprint(plan, exec),
        warmup: exec.warmup,
        measure: exec.measure,
    }
}

/// Extracts the completed results to seed a resumed sweep with, after
/// verifying the journal belongs to exactly this plan at this scale.
/// Failed or timed-out points are *not* seeded — resume re-runs them.
///
/// # Errors
///
/// Returns a message when the journal has no header, was written by a
/// different plan or scale, or a payload fails to decode.
pub fn seeded_from_journal(
    journal: &Journal,
    plan: &SweepPlan,
    exec: &ExecConfig,
) -> Result<BTreeMap<usize, PointResult>, String> {
    let header = journal.header.ok_or("journal has no run header")?;
    let expect = run_header(plan, exec);
    if header.version != expect.version {
        return Err(format!(
            "journal version {} does not match this build's {}",
            header.version, expect.version
        ));
    }
    if header.points != expect.points || header.fingerprint != expect.fingerprint {
        return Err(
            "journal does not match this sweep (different points, axes, or run lengths)".to_owned()
        );
    }
    let mut seeded = BTreeMap::new();
    for (ix, entry) in journal.latest() {
        if ix >= expect.points {
            return Err(format!("journal point {ix} is out of range for this sweep"));
        }
        if entry.is_done() {
            let payload = entry.payload.as_ref().expect("is_done implies payload");
            let r = result_from_value(payload).map_err(|e| format!("journal point {ix}: {e}"))?;
            // The header fingerprint proves the *labels* match; the
            // attestation proves the *payload* was produced for exactly
            // this spec, seed, and scale by a binary that agrees with
            // this one — a stale-binary restart fails here instead of
            // silently merging unreproducible results.
            crate::attest::verify_in_context(
                &r,
                crate::attest::context_for(&plan.points[ix as usize], exec),
            )
            .map_err(|e| format!("journal point {ix} [integrity]: {e}"))?;
            seeded.insert(ix as usize, r);
        }
    }
    Ok(seeded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointResult {
        let mut r = PointResult {
            index: 3,
            label: "ULTRIX tlb.entries=64".to_owned(),
            settings: vec![("tlb.entries".to_owned(), "64".to_owned())],
            system: "ULTRIX".to_owned(),
            workload: "gcc".to_owned(),
            vmcpi: 0.1 + 0.2, // deliberately not exactly 0.3
            interrupt_cpi: 0.037,
            mcpi: 1.625,
            vm_total: 0.1 + 0.2 + 0.037,
            tlb_area_bytes: 2048,
            tlb_miss_ratio: Some(0.001953125),
            user_instrs: 500_000,
            ctx: 0,
            att: 0,
        };
        crate::attest::seal(&mut r, 0x0123_4567_89ab_cdef);
        r
    }

    #[test]
    fn results_round_trip_bit_exactly_through_json_text() {
        for r in [sample(), PointResult { tlb_miss_ratio: None, ..sample() }] {
            let text = result_to_value(&r).to_string();
            let parsed = vm_obs::json::parse(&text).unwrap();
            let back = result_from_value(&parsed).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.vmcpi.to_bits(), r.vmcpi.to_bits());
        }
    }

    #[test]
    fn decode_reports_the_offending_field() {
        let mut v = result_to_value(&sample());
        if let Value::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "mcpi");
        }
        let e = result_from_value(&v).unwrap_err();
        assert!(e.contains("mcpi"), "{e}");
        let bad = Value::obj([("vmcpi", 0.3.into())]);
        assert!(result_from_value(&bad).is_err());
    }

    #[test]
    fn fingerprint_tracks_plan_and_scale() {
        use crate::spec::SystemSpec;
        use crate::sweep::Axis;
        use vm_core::SystemKind;
        let base = SystemSpec::for_kind(SystemKind::Ultrix);
        let plan = SweepPlan::expand(&base, &[Axis::parse("tlb.entries=32,64").unwrap()]).unwrap();
        let other =
            SweepPlan::expand(&base, &[Axis::parse("tlb.entries=32,128").unwrap()]).unwrap();
        let quick = ExecConfig::QUICK;
        assert_eq!(plan_fingerprint(&plan, &quick), plan_fingerprint(&plan, &quick));
        assert_ne!(plan_fingerprint(&plan, &quick), plan_fingerprint(&other, &quick));
        assert_ne!(plan_fingerprint(&plan, &quick), plan_fingerprint(&plan, &ExecConfig::DEFAULT));
    }
}
