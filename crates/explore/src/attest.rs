//! Result attestation: lineage fingerprints for sweep-point payloads.
//!
//! A fleet that merges results from many processes and machines has a
//! fault class no retry or journal can see: a payload that is
//! well-formed and **wrong** — a stale binary, a flipped DRAM bit after
//! simulation, a lying backend. Every [`PointResult`] therefore carries
//! two FNV-1a fingerprints, computed *where the simulation ran* and
//! re-verified at every trust boundary (worker reply decode, serve
//! `result` response, fleet fan-in, journal resume, final merge):
//!
//! * **`ctx`** — the *context* fingerprint: canonical spec TOML, point
//!   label, trace seed, and exec scale (warmup/measure). Two results
//!   with different `ctx` answer different questions; a resume whose
//!   journaled `ctx` disagrees with the plan's expectation was written
//!   by a different spec, seed, or scale (the stale-binary restart).
//!   Uploaded `trace:NAME` workloads are named by the spec TOML; their
//!   *content* integrity is pinned separately by the ingest
//!   fingerprint at upload commit (docs/serving.md).
//! * **`att`** — the *attestation*: FNV-1a over `ctx` plus every
//!   payload bit (label, settings, system, workload, the raw `f64` bit
//!   patterns, areas, instruction counts). Any post-signing mutation of
//!   the payload breaks `att`; `att` deliberately excludes the point
//!   *index*, because the fleet restamps a backend's local index 0 to
//!   the global sweep index on fan-in.
//!
//! The fingerprints are not cryptographic — FNV-1a defends against
//! corruption and version skew, not an adversary forging hashes. The
//! adversarial case (a backend that lies *before* signing, so the lie
//! carries a valid attestation) is handled above this layer by
//! divergence detection and audit sampling (docs/robustness.md).

use crate::exec::{ExecConfig, PointResult};
use crate::sweep::PlannedPoint;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// An incremental FNV-1a hasher with explicit field separators, so
/// adjacent fields cannot alias (`"ab","c"` vs `"a","bc"`).
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) -> &mut Fnv {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    fn str(&mut self, s: &str) -> &mut Fnv {
        self.bytes(s.as_bytes()).sep()
    }

    fn u64(&mut self, v: u64) -> &mut Fnv {
        self.bytes(&v.to_be_bytes()).sep()
    }

    fn sep(&mut self) -> &mut Fnv {
        self.0 = (self.0 ^ 0xff).wrapping_mul(FNV_PRIME);
        self
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The context fingerprint for a point about to run: canonical spec
/// TOML, label, trace seed, and exec scale. Computed identically by the
/// coordinator (from its plan) and the backend (from the re-expanded
/// pinned grid), so a match proves both sides agree on *what question*
/// the payload answers.
pub fn point_context(
    spec_toml: &str,
    label: &str,
    trace_seed: u64,
    warmup: u64,
    measure: u64,
) -> u64 {
    let mut h = Fnv::new();
    h.str(spec_toml).str(label).u64(trace_seed).u64(warmup).u64(measure);
    h.finish()
}

/// [`point_context`] for a planned point at an exec scale — the form
/// every executor and trust boundary actually calls.
pub fn context_for(point: &PlannedPoint, exec: &ExecConfig) -> u64 {
    point_context(
        &point.spec.to_toml(),
        &point.label,
        point.spec.trace_seed,
        exec.warmup,
        exec.measure,
    )
}

/// FNV-1a over every payload bit of a result, index excluded (the fleet
/// restamps indices on fan-in) and `ctx`/`att` themselves excluded.
fn payload_bits(r: &PointResult) -> u64 {
    let mut h = Fnv::new();
    h.str(&r.label);
    for (k, v) in &r.settings {
        h.bytes(k.as_bytes()).sep().bytes(v.as_bytes()).sep();
    }
    h.sep();
    h.str(&r.system).str(&r.workload);
    h.u64(r.vmcpi.to_bits());
    h.u64(r.interrupt_cpi.to_bits());
    h.u64(r.mcpi.to_bits());
    h.u64(r.vm_total.to_bits());
    h.u64(r.tlb_area_bytes);
    match r.tlb_miss_ratio {
        None => h.bytes(&[0]).sep(),
        Some(m) => h.bytes(&[1]).u64(m.to_bits()),
    };
    h.u64(r.user_instrs);
    h.finish()
}

/// The attestation a sealed result must carry for its context.
fn attestation(ctx: u64, r: &PointResult) -> u64 {
    let mut h = Fnv::new();
    h.u64(ctx).u64(payload_bits(r));
    h.finish()
}

/// Signs a result in place: stamps its context fingerprint and the
/// attestation over (context, payload bits). Called exactly once, at
/// the site that ran the simulation — everything downstream verifies.
pub fn seal(r: &mut PointResult, ctx: u64) {
    r.ctx = ctx;
    r.att = attestation(ctx, r);
}

/// Verifies a result against its *own* carried context: the payload
/// bits must reproduce `att`. Catches any post-signing mutation, even
/// without access to the plan that defined the point.
///
/// # Errors
///
/// Returns a message with both hex fingerprints on mismatch.
pub fn verify_sealed(r: &PointResult) -> Result<(), String> {
    let expect = attestation(r.ctx, r);
    if r.att != expect {
        return Err(format!(
            "attestation mismatch: payload carries att {:016x} but its bits hash to {expect:016x}",
            r.att
        ));
    }
    Ok(())
}

/// Verifies a result where the verifier knows which context it *must*
/// have come from (plan in hand): the carried `ctx` must equal the
/// expectation and the payload must reproduce `att`. Catches stale
/// binaries and cross-run mixups as well as post-signing mutation.
///
/// # Errors
///
/// Returns a message naming the failing check (context vs attestation).
pub fn verify_in_context(r: &PointResult, expect_ctx: u64) -> Result<(), String> {
    if r.ctx != expect_ctx {
        return Err(format!(
            "context mismatch: payload was signed for context {:016x} but this plan expects \
             {expect_ctx:016x} (different spec, seed, or scale)",
            r.ctx
        ));
    }
    verify_sealed(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SystemSpec;
    use crate::sweep::SweepPlan;
    use vm_core::SystemKind;

    fn sealed_sample() -> PointResult {
        let mut r = PointResult {
            index: 3,
            label: "ULTRIX tlb.entries=64".to_owned(),
            settings: vec![("tlb.entries".to_owned(), "64".to_owned())],
            system: "ULTRIX".to_owned(),
            workload: "gcc".to_owned(),
            vmcpi: 0.1 + 0.2,
            interrupt_cpi: 0.037,
            mcpi: 1.625,
            vm_total: 0.1 + 0.2 + 0.037,
            tlb_area_bytes: 2048,
            tlb_miss_ratio: Some(0.001953125),
            user_instrs: 500_000,
            ctx: 0,
            att: 0,
        };
        seal(&mut r, 0x1234_5678_9abc_def0);
        r
    }

    #[test]
    fn sealed_results_verify_and_any_payload_bit_flip_is_caught() {
        let good = sealed_sample();
        assert_eq!(verify_sealed(&good), Ok(()));
        assert_eq!(verify_in_context(&good, good.ctx), Ok(()));

        // One ulp on one field — the smallest possible lie.
        let mut lied = good.clone();
        lied.vmcpi = f64::from_bits(lied.vmcpi.to_bits() ^ 1);
        assert!(verify_sealed(&lied).unwrap_err().contains("attestation mismatch"));

        // Settings with identical concatenated bytes but a shifted
        // key/value split must not alias to the same attestation.
        let mut a = good.clone();
        a.settings = vec![("tlb.entries=6".to_owned(), "4".to_owned())];
        let mut b = good.clone();
        b.settings = vec![("tlb.entries".to_owned(), "=64".to_owned())];
        seal(&mut a, good.ctx);
        seal(&mut b, good.ctx);
        assert_ne!(a.att, b.att, "separators prevent field aliasing");

        // None vs Some(0.0) for the optional ratio are distinct.
        let mut none = good.clone();
        none.tlb_miss_ratio = None;
        let mut zero = good.clone();
        zero.tlb_miss_ratio = Some(0.0);
        seal(&mut none, good.ctx);
        seal(&mut zero, good.ctx);
        assert_ne!(none.att, zero.att);
    }

    #[test]
    fn index_is_excluded_so_fan_in_restamping_keeps_the_signature() {
        let mut restamped = sealed_sample();
        restamped.index = 0;
        assert_eq!(verify_sealed(&restamped), Ok(()));
    }

    #[test]
    fn context_mismatch_names_both_fingerprints() {
        let good = sealed_sample();
        let err = verify_in_context(&good, good.ctx ^ 1).unwrap_err();
        assert!(err.contains("context mismatch"), "{err}");
        assert!(err.contains(&format!("{:016x}", good.ctx)), "{err}");
        assert!(err.contains(&format!("{:016x}", good.ctx ^ 1)), "{err}");
    }

    #[test]
    fn context_tracks_spec_label_seed_and_scale() {
        let base = point_context("[mmu]\n", "L", 1, 100, 200);
        assert_eq!(base, point_context("[mmu]\n", "L", 1, 100, 200));
        assert_ne!(base, point_context("[mmu] \n", "L", 1, 100, 200));
        assert_ne!(base, point_context("[mmu]\n", "M", 1, 100, 200));
        assert_ne!(base, point_context("[mmu]\n", "L", 2, 100, 200));
        assert_ne!(base, point_context("[mmu]\n", "L", 1, 101, 200));
        assert_ne!(base, point_context("[mmu]\n", "L", 1, 100, 201));
    }

    #[test]
    fn coordinator_and_backend_derive_the_same_context() {
        // The fleet contract: the coordinator computes the context from
        // its merged plan; the backend re-expands the pinned single-point
        // grid from the shipped spec text. Both must land on one value.
        let spec = SystemSpec::for_kind(SystemKind::Ultrix);
        let text = spec.to_toml();
        let reparsed = SystemSpec::parse(&text).unwrap();
        let plan = SweepPlan::expand(&reparsed, &[]).unwrap();
        let exec = ExecConfig::QUICK;
        let a = context_for(&plan.points[0], &exec);
        let b = point_context(
            &plan.points[0].spec.to_toml(),
            &plan.points[0].label,
            plan.points[0].spec.trace_seed,
            exec.warmup,
            exec.measure,
        );
        assert_eq!(a, b);
    }
}
