//! Declarative system specs and parallel design-space exploration.
//!
//! The hard-coded `SystemKind` presets reproduce the paper's six systems;
//! this crate makes the space *around* them explorable:
//!
//! * [`SystemSpec`] — a small declarative description (parsed from a TOML
//!   subset, no external dependencies) of one simulated machine: MMU
//!   class × page-table organization × TLB geometry × cache hierarchy ×
//!   handler costs. A minimal spec (`[mmu] kind/table` only) lowers to
//!   exactly the paper-default [`vm_core::SimConfig`] for that system,
//!   so the shipped `specs/*.toml` reproduce the paper bit-for-bit.
//! * [`SweepPlan`] — grid expansion of dotted-key axes
//!   (`tlb.entries=32,64,128`) over a base spec, with invalid grid
//!   corners recorded (not silently dropped) alongside the validator's
//!   reason.
//! * [`run_sweep`] / [`run_sweep_hardened`] — a work-stealing
//!   multi-threaded executor whose merged results are bit-identical at
//!   any `--jobs` count, reporting progress through the `vm-obs`
//!   [`vm_obs::Reporter`] and emitting `SweepStarted`/`SweepPointDone`
//!   events. The hardened variant isolates per-point faults into
//!   [`SweepPointOutcome`]s, retries transient failures, enforces
//!   walk-cycle budgets, streams finished points into a `vm-harden`
//!   run journal, and resumes from one ([`seeded_from_journal`]).
//! * [`pareto_frontier`] / [`sensitivity`] — which configurations are
//!   worth building, and which knobs matter.
//!
//! The `repro explore` subcommand is the front end; this crate holds
//! everything reusable behind it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod attest;
pub mod exec;
pub mod journal;
pub mod process;
pub mod progress;
pub mod spec;
pub mod sweep;

pub use analysis::{pareto_frontier, sensitivity, AxisSensitivity};
pub use attest::{context_for, point_context, verify_in_context, verify_sealed};
pub use exec::{
    run_sweep, run_sweep_hardened, tlb_area_bytes, ExecConfig, HardenPolicy, PointResult,
    SweepOutcome, SweepPointOutcome,
};
pub use journal::{
    plan_fingerprint, result_from_value, result_to_value, run_header, seeded_from_journal,
};
pub use process::{handle_request, request_line, serve_worker};
pub use progress::{PointCheckpoint, ProgressConfig, SweepObserver};
pub use spec::{SpecError, SystemSpec, ValidateError, PAGE_BYTES};
pub use sweep::{Axis, PlannedPoint, SkippedPoint, SweepPlan};
