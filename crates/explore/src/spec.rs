//! Declarative system specifications.
//!
//! A [`SystemSpec`] describes one point in the paper's design space —
//! refill mechanism × page-table organization × TLB geometry × cache
//! hierarchy × handler/interrupt costs — as a small, dependency-free
//! TOML-subset document:
//!
//! ```toml
//! [system]
//! name = "ULTRIX"
//!
//! [mmu]
//! kind = "software-tlb"
//! table = "two-tier"
//!
//! [tlb]
//! entries = 128
//! replacement = "random"
//!
//! [cache]
//! l1 = "16K"
//! l2 = "1M"
//! ```
//!
//! Every key is optional except `mmu.kind` and `mmu.table`; omitted keys
//! take the paper's Table 1 defaults, so each of the six published
//! systems is a ten-line file. [`SystemSpec::parse`] reads a document,
//! [`SystemSpec::validate`] rejects nonsensical combinations with precise
//! errors, and validation lowers the spec onto the `vm-core`
//! [`SimConfig`] that drives the simulator. [`SystemSpec::set`] applies a
//! dotted-key override (`tlb.entries=64`) — the primitive sweep axes are
//! built on.

use std::fmt;

use vm_cache::Associativity;
use vm_core::{AsidMode, MmuClass, SimConfig, SystemKind, TableOrg};
use vm_tlb::Replacement;

/// The paper's 4 KB page size — the only size the address arithmetic
/// models (specs saying anything else are rejected with a pointer here).
pub const PAGE_BYTES: u64 = 4096;

/// A parsed, not-necessarily-valid system specification.
///
/// Field defaults mirror [`SimConfig::paper_default`], so a spec that
/// only names its `[mmu]` section lowers to exactly the hard-coded paper
/// configuration for that system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Optional display name (`[system] name`); defaults to the composed
    /// system's label.
    pub name: Option<String>,
    /// The TLB-refill mechanism (`[mmu] kind`).
    pub mmu: MmuClass,
    /// The page-table organization (`[mmu] table`).
    pub table: TableOrg,
    /// Entries per split TLB (`[tlb] entries`).
    pub tlb_entries: usize,
    /// TLB replacement policy (`[tlb] replacement`).
    pub tlb_replacement: Replacement,
    /// Protected lower slots (`[tlb] protected`); `None` keeps the
    /// paper's per-system policy (16 for the MIPS-flavoured systems).
    pub tlb_protected: Option<usize>,
    /// Page size in bytes (`[memory] page`); only 4096 is modelled.
    pub page_bytes: u64,
    /// L1 size per side in bytes (`[cache] l1`).
    pub l1_bytes: u64,
    /// L1 line size in bytes (`[cache] l1-line`).
    pub l1_line: u64,
    /// L2 size per side in bytes (`[cache] l2`).
    pub l2_bytes: u64,
    /// L2 line size in bytes (`[cache] l2-line`).
    pub l2_line: u64,
    /// Cache associativity (`[cache] assoc`).
    pub cache_assoc: Associativity,
    /// Replace split L2s with one unified L2 of equal total capacity
    /// (`[cache] unified`).
    pub unified_l2: bool,
    /// Simulated physical memory (`[memory] phys`), which sizes the
    /// hashed/inverted tables.
    pub phys_mem_bytes: u64,
    /// Cycles per precise interrupt (`[costs] interrupt`).
    pub interrupt_cycles: u64,
    /// TLB random-replacement seed (`[sim] seed`).
    pub seed: u64,
    /// Workload preset name (`[workload] name`); defaults to `gcc`.
    pub workload: Option<String>,
    /// Workload generator seed (`[workload] seed`).
    pub trace_seed: u64,
}

impl SystemSpec {
    /// The spec for a composed system with all paper defaults.
    pub fn new(mmu: MmuClass, table: TableOrg) -> SystemSpec {
        let defaults = SimConfig::paper_default(SystemKind::Ultrix);
        SystemSpec {
            name: None,
            mmu,
            table,
            tlb_entries: defaults.tlb_entries,
            tlb_replacement: defaults.tlb_replacement,
            tlb_protected: None,
            page_bytes: PAGE_BYTES,
            l1_bytes: defaults.l1_bytes,
            l1_line: defaults.l1_line,
            l2_bytes: defaults.l2_bytes,
            l2_line: defaults.l2_line,
            cache_assoc: defaults.associativity,
            unified_l2: defaults.unified_l2,
            phys_mem_bytes: defaults.phys_mem_bytes,
            interrupt_cycles: 50,
            seed: defaults.seed,
            workload: None,
            trace_seed: 1,
        }
    }

    /// The spec equivalent of a hard-coded [`SystemKind`] preset.
    pub fn for_kind(kind: SystemKind) -> SystemSpec {
        let (mmu, table) = kind.decompose();
        let mut spec = SystemSpec::new(mmu, table);
        spec.name = Some(kind.label().to_owned());
        spec
    }

    /// The display name: `[system] name` if given, else the composed
    /// system's label (or `mmu/table` while the pair is invalid).
    pub fn display_name(&self) -> String {
        match (&self.name, SystemKind::compose(self.mmu, self.table)) {
            (Some(name), _) => name.clone(),
            (None, Ok(kind)) => kind.label().to_owned(),
            (None, Err(_)) => format!("{}/{}", self.mmu, self.table),
        }
    }

    /// The workload preset this spec runs (`gcc` unless overridden).
    pub fn workload_name(&self) -> &str {
        self.workload.as_deref().unwrap_or("gcc")
    }

    /// Parses a TOML-subset document.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] with the offending line for syntax errors,
    /// unknown sections/keys, type mismatches, and a missing `[mmu]`
    /// section. Semantic validity is checked separately by
    /// [`SystemSpec::validate`].
    pub fn parse(text: &str) -> Result<SystemSpec, SpecError> {
        let mut mmu: Option<MmuClass> = None;
        let mut table: Option<TableOrg> = None;
        let mut staged: Vec<(String, String, Raw, usize)> = Vec::new();
        let mut section = String::new();
        for (ix, raw_line) in text.lines().enumerate() {
            let line = ix + 1;
            let stripped = strip_comment(raw_line).trim();
            if stripped.is_empty() {
                continue;
            }
            if let Some(inner) = stripped.strip_prefix('[') {
                let Some(name) = inner.strip_suffix(']') else {
                    return Err(SpecError::at(line, "unterminated `[section]` header"));
                };
                section = name.trim().to_owned();
                if !SECTIONS.contains(&section.as_str()) {
                    return Err(SpecError::at(
                        line,
                        format!("unknown section `[{section}]` (known: {})", list(SECTIONS)),
                    ));
                }
                continue;
            }
            let Some((key, value)) = stripped.split_once('=') else {
                return Err(SpecError::at(
                    line,
                    format!("expected `key = value`, got `{stripped}`"),
                ));
            };
            if section.is_empty() {
                return Err(SpecError::at(line, "keys must appear inside a `[section]`"));
            }
            let key = key.trim().to_owned();
            let value = parse_value(value.trim()).map_err(|msg| SpecError::at(line, msg))?;
            // `mmu.kind`/`mmu.table` are consumed immediately (they pick
            // the struct); everything else is staged and applied below.
            match (section.as_str(), key.as_str()) {
                ("mmu", "kind") => {
                    let s = value.expect_str("mmu.kind").map_err(|m| SpecError::at(line, m))?;
                    mmu = Some(MmuClass::parse(&s).ok_or_else(|| {
                        SpecError::at(
                            line,
                            format!(
                                "unknown mmu kind `{s}` (known: {})",
                                list_of(MmuClass::ALL.iter().map(|c| c.label()))
                            ),
                        )
                    })?);
                }
                ("mmu", "table") => {
                    let s = value.expect_str("mmu.table").map_err(|m| SpecError::at(line, m))?;
                    table = Some(TableOrg::parse(&s).ok_or_else(|| {
                        SpecError::at(
                            line,
                            format!(
                                "unknown page-table organization `{s}` (known: {})",
                                list_of(TableOrg::ALL.iter().map(|t| t.label()))
                            ),
                        )
                    })?);
                }
                _ => staged.push((section.clone(), key, value, line)),
            }
        }
        let (Some(mmu), Some(table)) = (mmu, table) else {
            return Err(SpecError::at(
                0,
                "a spec needs an `[mmu]` section with both `kind` and `table`",
            ));
        };
        let mut spec = SystemSpec::new(mmu, table);
        for (section, key, value, line) in staged {
            spec.apply(&section, &key, value).map_err(|msg| SpecError::at(line, msg))?;
        }
        Ok(spec)
    }

    /// Applies a dotted-key override, e.g. `set("tlb.entries", "64")` or
    /// `set("mmu.table", "hashed")` — the primitive sweep axes use.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown keys or unparseable values.
    pub fn set(&mut self, dotted: &str, value: &str) -> Result<(), String> {
        let Some((section, key)) = dotted.split_once('.') else {
            return Err(format!("key `{dotted}` must be `section.key` (e.g. `tlb.entries`)"));
        };
        if !SECTIONS.contains(&section) {
            return Err(format!("unknown section `{section}` (known: {})", list(SECTIONS)));
        }
        let raw = parse_cli_value(value);
        match (section, key) {
            ("mmu", "kind") => {
                let s = raw.expect_str("mmu.kind")?;
                self.mmu = MmuClass::parse(&s).ok_or_else(|| {
                    format!(
                        "unknown mmu kind `{s}` (known: {})",
                        list_of(MmuClass::ALL.iter().map(|c| c.label()))
                    )
                })?;
                Ok(())
            }
            ("mmu", "table") => {
                let s = raw.expect_str("mmu.table")?;
                self.table = TableOrg::parse(&s).ok_or_else(|| {
                    format!(
                        "unknown page-table organization `{s}` (known: {})",
                        list_of(TableOrg::ALL.iter().map(|t| t.label()))
                    )
                })?;
                Ok(())
            }
            _ => self.apply(section, key, raw),
        }
    }

    /// Applies one staged `section.key = value` (everything except
    /// `mmu.kind`/`mmu.table`, which select the composition itself).
    fn apply(&mut self, section: &str, key: &str, value: Raw) -> Result<(), String> {
        match (section, key) {
            ("system", "name") => self.name = Some(value.expect_str("system.name")?),
            ("tlb", "entries") => self.tlb_entries = value.expect_count("tlb.entries")?,
            ("tlb", "assoc") => {
                let s = value.expect_str("tlb.assoc")?;
                if !s.eq_ignore_ascii_case("full") {
                    return Err(format!(
                        "tlb.assoc `{s}` is not modelled: the paper's TLBs are fully \
                         associative (use \"full\" or omit the key)"
                    ));
                }
            }
            ("tlb", "replacement") => {
                let s = value.expect_str("tlb.replacement")?;
                self.tlb_replacement = Replacement::parse(&s).ok_or_else(|| {
                    format!("unknown tlb.replacement `{s}` (known: random, lru, fifo)")
                })?;
            }
            ("tlb", "protected") => self.tlb_protected = Some(value.expect_count("tlb.protected")?),
            ("cache", "l1") => self.l1_bytes = value.expect_size("cache.l1")?,
            ("cache", "l1-line") => self.l1_line = value.expect_size("cache.l1-line")?,
            ("cache", "l2") => self.l2_bytes = value.expect_size("cache.l2")?,
            ("cache", "l2-line") => self.l2_line = value.expect_size("cache.l2-line")?,
            ("cache", "assoc") => {
                let s = value.expect_str("cache.assoc")?;
                self.cache_assoc = Associativity::parse(&s).ok_or_else(|| {
                    format!("unknown cache.assoc `{s}` (use \"direct-mapped\" or \"N-way\")")
                })?;
            }
            ("cache", "unified") => self.unified_l2 = value.expect_bool("cache.unified")?,
            ("memory", "phys") => self.phys_mem_bytes = value.expect_size("memory.phys")?,
            ("memory", "page") => self.page_bytes = value.expect_size("memory.page")?,
            ("costs", "interrupt") => {
                self.interrupt_cycles = value.expect_count("costs.interrupt")? as u64
            }
            ("sim", "seed") => self.seed = value.expect_u64("sim.seed")?,
            ("workload", "name") => self.workload = Some(value.expect_str("workload.name")?),
            ("workload", "seed") => self.trace_seed = value.expect_u64("workload.seed")?,
            _ => {
                return Err(format!(
                    "unknown key `{key}` in `[{section}]` (known: {})",
                    section_keys(section)
                ))
            }
        }
        Ok(())
    }

    /// Checks the spec for nonsensical combinations and lowers it onto
    /// the `vm-core` configuration machinery.
    ///
    /// # Errors
    ///
    /// Returns a precise, self-contained message for: an MMU/table pair
    /// the simulator has no model for, TLB geometry on a TLB-less system,
    /// unmodelled page sizes, zero interrupt cost, an unknown workload
    /// preset, and any cache/TLB geometry `vm-core` itself rejects.
    pub fn validate(&self) -> Result<SimConfig, ValidateError> {
        let err = |msg: String| Err(ValidateError { spec: self.display_name(), msg });
        let kind = match SystemKind::compose(self.mmu, self.table) {
            Ok(kind) => kind,
            Err(e) => return err(e.to_string()),
        };
        if !self.mmu.has_tlb() {
            let defaults = SystemSpec::new(self.mmu, self.table);
            if (self.tlb_entries, self.tlb_replacement, self.tlb_protected)
                != (defaults.tlb_entries, defaults.tlb_replacement, defaults.tlb_protected)
            {
                return err(format!(
                    "a `{}` system has no TLB; remove the `[tlb]` section",
                    self.mmu
                ));
            }
        }
        if self.page_bytes != PAGE_BYTES {
            return err(format!(
                "page size {} is not modelled: the address arithmetic is fixed at the \
                 paper's 4 KB pages (memory.page = 4096)",
                self.page_bytes
            ));
        }
        if self.interrupt_cycles == 0 {
            return err("costs.interrupt must be at least 1 cycle".to_owned());
        }
        if let Some(p) = self.tlb_protected {
            if p >= self.tlb_entries {
                return err(format!(
                    "tlb.protected = {p} must leave at least one user slot in a \
                     {}-entry TLB",
                    self.tlb_entries
                ));
            }
        }
        if let Some(trace) = vm_trace::trace_workload(self.workload_name()) {
            // A `trace:NAME` workload replays a library trace. Only the
            // name's grammar is checkable here — whether the trace
            // exists depends on the library directory the executor runs
            // against, so existence is resolved at measure time (as a
            // structured `ingest` failure, not a crash).
            if !vm_trace::valid_trace_name(trace) {
                return err(format!(
                    "invalid trace workload `{}` (want trace:NAME with 1-64 chars \
                     of [a-z0-9._-], not starting with `.` or `-`)",
                    self.workload_name()
                ));
            }
        } else if vm_trace::presets::by_name(self.workload_name()).is_none() {
            return err(format!(
                "unknown workload `{}` (known: gcc, vortex, ijpeg, li, compress, perl; \
                 or trace:NAME for an ingested library trace)",
                self.workload_name()
            ));
        }
        let config = self.lower(kind);
        // Delegate geometry checking (power-of-two caches, line/size
        // relations, TLB slot counts) to the builders that own the rules.
        config
            .build()
            .map_err(|e| ValidateError { spec: self.display_name(), msg: e.to_string() })?;
        Ok(config)
    }

    /// Lowers the spec onto a [`SimConfig`] without validating. Most
    /// callers want [`SystemSpec::validate`].
    fn lower(&self, kind: SystemKind) -> SimConfig {
        let mut config = SimConfig::paper_default(kind);
        config.l1_bytes = self.l1_bytes;
        config.l1_line = self.l1_line;
        config.l2_bytes = self.l2_bytes;
        config.l2_line = self.l2_line;
        config.associativity = self.cache_assoc;
        config.unified_l2 = self.unified_l2;
        config.tlb_entries = self.tlb_entries;
        config.tlb_replacement = self.tlb_replacement;
        config.tlb_protected = self.tlb_protected;
        config.asid_mode = AsidMode::Tagged;
        config.flush_tlb_every = None;
        config.phys_mem_bytes = self.phys_mem_bytes;
        config.seed = self.seed;
        config
    }

    /// Prints the canonical TOML form. `parse(to_toml(spec)) == spec`
    /// for every representable spec (the round-trip property test pins
    /// this).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        if let Some(name) = &self.name {
            line("[system]".to_owned());
            line(format!("name = \"{name}\""));
            line(String::new());
        }
        line("[mmu]".to_owned());
        line(format!("kind = \"{}\"", self.mmu));
        line(format!("table = \"{}\"", self.table));
        if self.mmu.has_tlb() {
            line(String::new());
            line("[tlb]".to_owned());
            line(format!("entries = {}", self.tlb_entries));
            line(format!("replacement = \"{}\"", self.tlb_replacement));
            if let Some(p) = self.tlb_protected {
                line(format!("protected = {p}"));
            }
        }
        line(String::new());
        line("[cache]".to_owned());
        line(format!("l1 = {}", size_toml(self.l1_bytes)));
        line(format!("l1-line = {}", self.l1_line));
        line(format!("l2 = {}", size_toml(self.l2_bytes)));
        line(format!("l2-line = {}", self.l2_line));
        line(format!("assoc = \"{}\"", self.cache_assoc));
        line(format!("unified = {}", self.unified_l2));
        line(String::new());
        line("[memory]".to_owned());
        line(format!("phys = {}", size_toml(self.phys_mem_bytes)));
        line(format!("page = {}", self.page_bytes));
        line(String::new());
        line("[costs]".to_owned());
        line(format!("interrupt = {}", self.interrupt_cycles));
        line(String::new());
        line("[sim]".to_owned());
        line(format!("seed = {}", self.seed));
        if self.workload.is_some() || self.trace_seed != 1 {
            line(String::new());
            line("[workload]".to_owned());
            if let Some(w) = &self.workload {
                line(format!("name = \"{w}\""));
            }
            line(format!("seed = {}", self.trace_seed));
        }
        out
    }
}

/// The sections a spec document may contain.
const SECTIONS: &[&str] = &["system", "mmu", "tlb", "cache", "memory", "costs", "sim", "workload"];

/// Known keys per section, for "unknown key" error messages.
fn section_keys(section: &str) -> &'static str {
    match section {
        "system" => "name",
        "mmu" => "kind, table",
        "tlb" => "entries, assoc, replacement, protected",
        "cache" => "l1, l1-line, l2, l2-line, assoc, unified",
        "memory" => "phys, page",
        "costs" => "interrupt",
        "sim" => "seed",
        "workload" => "name, seed",
        _ => "(none)",
    }
}

fn list(items: &[&str]) -> String {
    list_of(items.iter().copied())
}

fn list_of<'a>(items: impl Iterator<Item = &'a str>) -> String {
    items.map(|s| format!("`{s}`")).collect::<Vec<_>>().join(", ")
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A scalar spec value: the TOML subset knows integers, strings, and
/// booleans.
#[derive(Debug, Clone, PartialEq)]
enum Raw {
    Int(i128),
    Str(String),
    Bool(bool),
}

impl Raw {
    fn type_name(&self) -> &'static str {
        match self {
            Raw::Int(_) => "an integer",
            Raw::Str(_) => "a string",
            Raw::Bool(_) => "a boolean",
        }
    }

    fn expect_str(self, key: &str) -> Result<String, String> {
        match self {
            Raw::Str(s) => Ok(s),
            other => Err(format!("{key} expects a string, got {}", other.type_name())),
        }
    }

    fn expect_bool(self, key: &str) -> Result<bool, String> {
        match self {
            Raw::Bool(b) => Ok(b),
            other => Err(format!("{key} expects true/false, got {}", other.type_name())),
        }
    }

    fn expect_u64(self, key: &str) -> Result<u64, String> {
        match self {
            Raw::Int(n) => u64::try_from(n)
                .map_err(|_| format!("{key} must fit an unsigned 64-bit integer, got {n}")),
            other => Err(format!("{key} expects an integer, got {}", other.type_name())),
        }
    }

    fn expect_count(self, key: &str) -> Result<usize, String> {
        self.expect_u64(key).map(|n| n as usize)
    }

    /// A byte size: an integer, or a string with a K/M suffix (`"16K"`).
    fn expect_size(self, key: &str) -> Result<u64, String> {
        match self {
            Raw::Int(n) => {
                u64::try_from(n).map_err(|_| format!("{key} must be a non-negative size, got {n}"))
            }
            Raw::Str(s) => parse_size(&s)
                .ok_or_else(|| format!("{key}: `{s}` is not a size (try 16384, \"16K\", \"1M\")")),
            other => Err(format!("{key} expects a size, got {}", other.type_name())),
        }
    }
}

/// Parses `"16K"` / `"1M"` / `"512"` into bytes.
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1 << 20),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n.saturating_mul(mult))
}

/// Renders a byte count as its shortest TOML value (`"16K"`, `"1M"`, or
/// a bare integer).
fn size_toml(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("\"{}M\"", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("\"{}K\"", bytes >> 10)
    } else {
        bytes.to_string()
    }
}

/// Parses one TOML value token.
fn parse_value(token: &str) -> Result<Raw, String> {
    if let Some(rest) = token.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(format!("unterminated string `{token}`"));
        };
        if inner.contains('"') {
            return Err(format!("strings cannot contain `\"`: `{token}`"));
        }
        return Ok(Raw::Str(inner.to_owned()));
    }
    match token {
        "true" => Ok(Raw::Bool(true)),
        "false" => Ok(Raw::Bool(false)),
        // i128 covers the full u64 range (seeds) plus negatives for
        // readable "must be non-negative" errors.
        _ => token
            .replace('_', "")
            .parse::<i128>()
            .map(Raw::Int)
            .map_err(|_| format!("`{token}` is not an integer, string, or boolean")),
    }
}

/// Interprets a bare CLI token (`--sweep tlb.entries=64`): boolean, then
/// integer, then string (so `two-tier` and `16K` need no quotes).
fn parse_cli_value(token: &str) -> Raw {
    match token {
        "true" => Raw::Bool(true),
        "false" => Raw::Bool(false),
        _ => token.parse::<i128>().map(Raw::Int).unwrap_or_else(|_| Raw::Str(token.to_owned())),
    }
}

/// A syntax or typing error in a spec document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based source line (0 for document-level errors).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl SpecError {
    fn at(line: usize, msg: impl Into<String>) -> SpecError {
        SpecError { line, msg: msg.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for SpecError {}

/// A semantic rejection from [`SystemSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// The spec's display name, for multi-spec error reports.
    pub spec: String,
    /// What is nonsensical about the combination.
    pub msg: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec `{}`: {}", self.spec, self.msg)
    }
}

impl std::error::Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;

    const ULTRIX: &str = r#"
        [system]
        name = "ULTRIX"

        [mmu]
        kind = "software-tlb"   # MIPS-style refill exceptions
        table = "two-tier"

        [tlb]
        entries = 128
        replacement = "random"
    "#;

    #[test]
    fn minimal_spec_lowers_to_the_paper_default() {
        let spec = SystemSpec::parse(ULTRIX).unwrap();
        assert_eq!(spec.display_name(), "ULTRIX");
        let config = spec.validate().unwrap();
        assert_eq!(config, SimConfig::paper_default(SystemKind::Ultrix));
    }

    #[test]
    fn defaults_match_paper_default_for_every_kind() {
        for kind in SystemKind::PAPER {
            let config = SystemSpec::for_kind(kind).validate().unwrap();
            assert_eq!(config, SimConfig::paper_default(kind), "{kind}");
        }
    }

    #[test]
    fn sizes_parse_with_suffixes() {
        let spec = SystemSpec::parse(
            "[mmu]\nkind = \"hardware-tlb\"\ntable = \"top-down\"\n[cache]\nl1 = \"32K\"\nl2 = 2097152\n",
        )
        .unwrap();
        assert_eq!(spec.l1_bytes, 32 << 10);
        assert_eq!(spec.l2_bytes, 2 << 20);
    }

    #[test]
    fn set_overrides_dotted_keys() {
        let mut spec = SystemSpec::for_kind(SystemKind::Ultrix);
        spec.set("tlb.entries", "64").unwrap();
        spec.set("mmu.table", "hashed").unwrap();
        assert_eq!(spec.tlb_entries, 64);
        assert_eq!(spec.table, TableOrg::Hashed);
        assert!(spec.set("tlb.banana", "1").unwrap_err().contains("known: entries"));
        assert!(spec.set("entries", "1").unwrap_err().contains("section.key"));
    }

    #[test]
    fn nonsense_combos_are_rejected_precisely() {
        let mut spec = SystemSpec::new(MmuClass::HardwareTlb, TableOrg::ThreeTier);
        let msg = spec.validate().unwrap_err().to_string();
        assert!(msg.contains("three-tier") && msg.contains("supports"), "{msg}");

        spec = SystemSpec::new(MmuClass::SoftwareNoTlb, TableOrg::TwoTier);
        spec.tlb_entries = 64;
        let msg = spec.validate().unwrap_err().to_string();
        assert!(msg.contains("no TLB"), "{msg}");

        spec = SystemSpec::for_kind(SystemKind::Intel);
        spec.page_bytes = 8192;
        let msg = spec.validate().unwrap_err().to_string();
        assert!(msg.contains("4 KB"), "{msg}");

        spec = SystemSpec::for_kind(SystemKind::Intel);
        spec.workload = Some("specint2000".to_owned());
        let msg = spec.validate().unwrap_err().to_string();
        assert!(msg.contains("unknown workload"), "{msg}");

        spec = SystemSpec::for_kind(SystemKind::Ultrix);
        spec.l1_bytes = 3000;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = SystemSpec::parse("[mmu]\nkind: \"software-tlb\"\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("key = value"));

        let err = SystemSpec::parse("[mmu]\nkind = \"vax\"\n").unwrap_err();
        assert!(err.to_string().contains("unknown mmu kind"), "{err}");

        let err = SystemSpec::parse("[tlb]\nentries = 64\n").unwrap_err();
        assert!(err.to_string().contains("[mmu]"), "{err}");

        let err = SystemSpec::parse("[banana]\n").unwrap_err();
        assert!(err.to_string().contains("unknown section"), "{err}");
    }

    #[test]
    fn to_toml_round_trips() {
        let mut spec = SystemSpec::for_kind(SystemKind::PaRisc);
        spec.tlb_entries = 64;
        spec.workload = Some("vortex".to_owned());
        spec.trace_seed = 7;
        spec.tlb_protected = Some(8);
        let reparsed = SystemSpec::parse(&spec.to_toml()).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn comments_respect_strings() {
        assert_eq!(strip_comment("a = \"x#y\" # trailing"), "a = \"x#y\" ");
        assert_eq!(strip_comment("# whole line"), "");
    }
}
