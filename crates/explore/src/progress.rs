//! Live sweep progress: checkpoint telemetry out of a running sweep.
//!
//! A [`SweepObserver`] attached to [`HardenPolicy::progress`] receives
//! three kinds of callbacks from [`run_sweep_hardened`]:
//!
//! * [`SweepObserver::checkpoint`] — every `interval` retired
//!   instructions inside a simulating point, with running VMCPI/MCPI
//!   estimates derived from the partial [`vm_obs::ObsSnapshot`]. The
//!   schedule rides the simulation's own instruction clock (a
//!   [`vm_obs::SnapshotSink`] under the hood), so attaching an observer
//!   cannot perturb results: the merged CSV and journal stay
//!   byte-identical with or without one.
//! * [`SweepObserver::point_finished`] — once per point, in completion
//!   order (which varies with worker scheduling; consumers wanting
//!   deterministic order should use the journal or the final outcome).
//! * [`SweepObserver::pool_event`] — supervised-pool lifecycle events
//!   (`worker_*`, `breaker_tripped`) drained live as points finish,
//!   instead of only at sweep teardown.
//!
//! Callbacks run on executor worker threads: implementations must be
//! cheap and non-blocking, or they stall the sweep they are watching.
//!
//! [`HardenPolicy::progress`]: crate::exec::HardenPolicy
//! [`run_sweep_hardened`]: crate::exec::run_sweep_hardened

use std::fmt;
use std::sync::Arc;

use vm_core::cost::CostModel;
use vm_obs::snapshot::SnapshotCheckpoint;
use vm_obs::Event;

use crate::sweep::PlannedPoint;

/// Receives live progress callbacks from a hardened sweep.
///
/// All methods default to no-ops so implementations opt into only the
/// callbacks they care about.
pub trait SweepObserver: Send + Sync {
    /// A periodic checkpoint from inside a simulating point.
    fn checkpoint(&self, _cp: &PointCheckpoint) {}

    /// A point finished (successfully or as a classified failure).
    /// Called in completion order, including for points skipped by
    /// cancellation (reported as `ok = false`).
    fn point_finished(&self, _index: usize, _ok: bool) {}

    /// A supervised worker-pool lifecycle event (`worker_spawned`,
    /// `worker_crashed`, `worker_restarted`, `breaker_tripped`),
    /// delivered as soon as the executor drains it.
    fn pool_event(&self, _ev: &Event) {}
}

/// One progress checkpoint from a simulating sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointCheckpoint {
    /// The point's index in sweep order.
    pub index: usize,
    /// The point's display label (spec name plus axis settings).
    pub label: String,
    /// The workload driving the point.
    pub workload: String,
    /// 1-based checkpoint ordinal within this point's simulation.
    pub seq: u64,
    /// Cumulative instructions retired at this point so far (warm-up
    /// plus measurement) — monotonic within the point.
    pub instrs: u64,
    /// Instructions the point will retire in total (warm-up + measure).
    pub instrs_total: u64,
    /// Running VMCPI estimate: walk cycles per instruction over the
    /// current phase. An estimate for telemetry only — the final report
    /// prices the full reconciliation, not this partial stream.
    pub vmcpi: f64,
    /// Running MCPI estimate: cache-fill penalty cycles per instruction
    /// over the current phase, priced at the paper's Table 2 costs.
    pub mcpi: f64,
    /// TLB misses observed so far in the current phase.
    pub tlb_misses: u64,
    /// Completed page-table walks so far in the current phase.
    pub walks: u64,
}

impl PointCheckpoint {
    /// Fraction of the point's instructions retired, in `0.0..=1.0`.
    pub fn fraction(&self) -> f64 {
        (self.instrs as f64 / self.instrs_total.max(1) as f64).min(1.0)
    }

    /// Builds a checkpoint from a raw [`SnapshotCheckpoint`] fired
    /// inside `point`, pricing the running estimates with `cost`.
    pub fn from_snapshot(
        point: &PlannedPoint,
        cp: &SnapshotCheckpoint<'_>,
        instrs_total: u64,
        cost: &CostModel,
    ) -> PointCheckpoint {
        let phase = cp.now.max(1) as f64;
        let counters = &cp.snapshot.counters;
        let [fills_l2, fills_mem] = counters.cache_fills;
        let fill_cycles =
            (fills_l2 + fills_mem) * cost.l1_miss_cycles + fills_mem * cost.l2_miss_cycles;
        PointCheckpoint {
            index: point.index,
            label: point.label.clone(),
            workload: point.spec.workload_name().to_owned(),
            seq: cp.seq,
            instrs: cp.instrs,
            instrs_total,
            vmcpi: cp.snapshot.walk_cycles.sum() as f64 / phase,
            mcpi: fill_cycles as f64 / phase,
            tlb_misses: counters.tlb_misses.iter().sum(),
            walks: counters.walks.iter().sum(),
        }
    }
}

/// Attaches live progress reporting to a hardened sweep.
#[derive(Clone)]
pub struct ProgressConfig {
    /// Checkpoint interval in retired instructions (clamped to ≥ 1).
    pub interval: u64,
    /// The observer receiving callbacks; shared across worker threads.
    pub observer: Arc<dyn SweepObserver>,
}

impl ProgressConfig {
    /// A config checkpointing every `interval` instructions.
    pub fn new(interval: u64, observer: Arc<dyn SweepObserver>) -> ProgressConfig {
        ProgressConfig { interval, observer }
    }
}

impl fmt::Debug for ProgressConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProgressConfig")
            .field("interval", &self.interval)
            .field("observer", &"<dyn SweepObserver>")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    use crate::spec::SystemSpec;
    use crate::sweep::SweepPlan;
    use vm_obs::{ObsSnapshot, Sink, SnapshotSink, StatsSink};
    use vm_types::HandlerLevel;

    fn one_point() -> PlannedPoint {
        let spec =
            SystemSpec::parse("[mmu]\nkind = \"software-tlb\"\ntable = \"two-tier\"\n").unwrap();
        let plan = SweepPlan::expand(&spec, &[]).unwrap();
        plan.points.into_iter().next().unwrap()
    }

    #[test]
    fn checkpoint_prices_running_estimates() {
        let mut stats = StatsSink::new();
        for i in 0..10u64 {
            stats.emit(
                i * 100,
                &Event::WalkComplete { level: HandlerLevel::User, cycles: 30, memrefs: 2 },
            );
        }
        let snap = stats.snapshot().unwrap();
        let raw = SnapshotCheckpoint { seq: 3, now: 1_000, instrs: 5_000, snapshot: &snap };
        let cp = PointCheckpoint::from_snapshot(&one_point(), &raw, 10_000, &CostModel::paper(50));
        assert_eq!(cp.seq, 3);
        assert_eq!((cp.instrs, cp.instrs_total), (5_000, 10_000));
        assert!((cp.fraction() - 0.5).abs() < 1e-9);
        // 10 walks × 30 cycles over 1 000 instructions.
        assert!((cp.vmcpi - 0.3).abs() < 1e-9, "vmcpi {}", cp.vmcpi);
        assert_eq!(cp.walks, 10);
    }

    #[test]
    fn fraction_clamps_at_one() {
        let snap = ObsSnapshot::default();
        let raw = SnapshotCheckpoint { seq: 1, now: 500, instrs: 2_000, snapshot: &snap };
        let cp = PointCheckpoint::from_snapshot(&one_point(), &raw, 1_000, &CostModel::paper(50));
        assert!((cp.fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn observer_default_methods_are_no_ops() {
        struct Passive;
        impl SweepObserver for Passive {}
        let o = Passive;
        let snap = ObsSnapshot::default();
        let raw = SnapshotCheckpoint { seq: 1, now: 1, instrs: 1, snapshot: &snap };
        o.checkpoint(&PointCheckpoint::from_snapshot(
            &one_point(),
            &raw,
            10,
            &CostModel::paper(50),
        ));
        o.point_finished(0, true);
        o.pool_event(&Event::DrainStarted { pending: 0 });
    }

    #[test]
    fn snapshot_sink_drives_observer_checkpoints() {
        struct Collect(Mutex<Vec<u64>>);
        impl SweepObserver for Collect {
            fn checkpoint(&self, cp: &PointCheckpoint) {
                self.0.lock().unwrap().push(cp.instrs);
            }
        }
        let observer = Arc::new(Collect(Mutex::new(Vec::new())));
        let cfg = ProgressConfig::new(100, observer.clone());
        let point = one_point();
        let cost = CostModel::paper(point.spec.interrupt_cycles);
        let mut sink = SnapshotSink::new(cfg.interval, |cp| {
            cfg.observer.checkpoint(&PointCheckpoint::from_snapshot(&point, cp, 1_000, &cost));
        });
        for i in 1..=5u64 {
            sink.emit(
                i * 90,
                &Event::WalkComplete { level: HandlerLevel::User, cycles: 20, memrefs: 1 },
            );
        }
        let seen = observer.0.lock().unwrap().clone();
        assert_eq!(seen, vec![180, 270, 360, 450]);
    }
}
