//! The process-isolation wire protocol for sweep points.
//!
//! With `--isolation process` every sweep point crosses a process
//! boundary: the executor serializes the point as one request line,
//! a sandboxed `repro worker` (see [`serve_worker`]) deserializes it,
//! runs the *same* measurement path the in-process executor would —
//! chaos injection, salted retries, walk-cycle budgets — and replies
//! with the journal entry the executor would have written. Because the
//! reply reuses the journal's bit-exact `f64::to_bits` codec
//! ([`result_to_value`]/[`result_from_value`]) and the spec crosses as
//! its canonical TOML (`parse(to_toml(s)) == s`), a process-isolated
//! sweep merges bit-identically to an in-process one at any `--jobs`
//! count.
//!
//! What the boundary buys: a point that calls `abort()`, segfaults, is
//! SIGKILLed, or is OOM-killed costs one worker process. The supervisor
//! ([`vm_supervise::WorkerPool`]) restarts the worker and re-sends the
//! request; if the point keeps killing workers the crash-loop breaker
//! trips and the point fails as [`FailureKind::Crash`] while the sweep
//! carries on.
//!
//! Wire forms (one JSON object per line):
//!
//! * request — `{"j":"run","index":…,"label":…,"settings":[[k,v]…],
//!   "spec":"<canonical TOML>","warmup":…,"measure":…,"budget":…,
//!   "retries":…,"backoff_base_ms":…,"backoff_cap_ms":…,"jitter":…,
//!   "chaos":"panic@2,abort@5","chaos_seed":…}`. Seeds are 16-hex-digit
//!   strings (arbitrary `u64`s do not survive a JSON `f64` number).
//! * reply — the `{"j":"point",…}` journal line
//!   ([`JournalEntry::to_line`]), or `{"j":"err","detail":…}` when the
//!   request itself is malformed (mapped to [`FailureKind::Build`]).

use vm_harden::{ChaosPlan, FailureKind, JournalEntry, PointOutcome, RetryPolicy};
use vm_obs::json::{self, Value};
use vm_supervise::DEFAULT_HEARTBEAT_INTERVAL;
use vm_supervise::{maybe_kill_for_test, worker_loop, PoolError, WorkerPool};

use crate::exec::SweepPointOutcome;
use crate::exec::{measure_point_isolated, point_error, ExecConfig, HardenPolicy};
use crate::journal::{result_from_value, result_to_value};
use crate::spec::SystemSpec;
use crate::sweep::PlannedPoint;

/// Encodes an arbitrary `u64` (seeds) as a 16-hex-digit string; a JSON
/// number is an `f64` and would drop bits past 2^53.
fn u64_hex(v: u64) -> Value {
    Value::Str(format!("{v:016x}"))
}

/// Decodes [`u64_hex`] (canonical lowercase hex64 only — the encoder
/// never emits anything else, so anything else is corruption).
fn u64_from_hex(v: &Value) -> Option<u64> {
    crate::journal::hex64_strict(v.as_str()?)
}

/// Serializes one sweep point plus everything its measurement depends
/// on as a single request line.
pub fn request_line(point: &PlannedPoint, exec: &ExecConfig, policy: &HardenPolicy) -> String {
    let settings = point
        .settings
        .iter()
        .map(|(k, v)| Value::Arr(vec![k.clone().into(), v.clone().into()]))
        .collect();
    Value::obj([
        ("j", "run".into()),
        ("index", (point.index as u64).into()),
        ("label", point.label.clone().into()),
        ("settings", Value::Arr(settings)),
        ("spec", point.spec.to_toml().into()),
        ("warmup", exec.warmup.into()),
        ("measure", exec.measure.into()),
        ("budget", policy.point_budget.map_or(Value::Null, Value::from)),
        ("retries", policy.retry.retries.into()),
        ("backoff_base_ms", policy.retry.backoff_base_ms.into()),
        ("backoff_cap_ms", policy.retry.backoff_cap_ms.into()),
        ("jitter", policy.retry.jitter_seed.map_or(Value::Null, u64_hex)),
        ("chaos", policy.chaos.render().into()),
        ("chaos_seed", u64_hex(policy.chaos.seed)),
        (
            "library",
            policy.trace_library.as_ref().map_or(Value::Null, |p| p.display().to_string().into()),
        ),
    ])
    .to_string()
}

/// A request decoded back into everything [`measure_point_isolated`]
/// needs. `policy.process` and `policy.cancel` are always `None` — the
/// worker is the inside of the boundary.
struct WireRequest {
    point: PlannedPoint,
    exec: ExecConfig,
    policy: HardenPolicy,
}

/// Decodes [`request_line`], re-validating the spec (the lowered
/// `SimConfig` is derived, not shipped).
fn parse_request(line: &str) -> Result<WireRequest, String> {
    let v = json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    if v.get("j").and_then(Value::as_str) != Some("run") {
        return Err("not a run request".to_owned());
    }
    let int =
        |k: &str| v.get(k).and_then(Value::as_u64).ok_or_else(|| format!("request missing `{k}`"));
    let text = |k: &str| {
        v.get(k)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("request missing `{k}`"))
    };
    let settings = v
        .get("settings")
        .and_then(Value::as_array)
        .ok_or("request missing `settings`")?
        .iter()
        .map(|pair| {
            let kv = pair.as_array().filter(|a| a.len() == 2);
            match kv.map(|a| (a[0].as_str(), a[1].as_str())) {
                Some((Some(k), Some(val))) => Ok((k.to_owned(), val.to_owned())),
                _ => Err("request `settings` entries must be [key, value] string pairs".to_owned()),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let spec = SystemSpec::parse(&text("spec")?).map_err(|e| format!("request spec: {e}"))?;
    let config = spec.validate().map_err(|e| format!("request spec: {e}"))?;
    let budget = match v.get("budget").ok_or("request missing `budget`")? {
        Value::Null => None,
        other => Some(other.as_u64().ok_or("request `budget` not an integer")?),
    };
    let jitter_seed = match v.get("jitter").ok_or("request missing `jitter`")? {
        Value::Null => None,
        other => Some(u64_from_hex(other).ok_or("request `jitter` not a u64 hex string")?),
    };
    let chaos_seed = u64_from_hex(v.get("chaos_seed").ok_or("request missing `chaos_seed`")?)
        .ok_or("request `chaos_seed` not a u64 hex string")?;
    let chaos_text = text("chaos")?;
    let chaos = if chaos_text.is_empty() {
        ChaosPlan::new(chaos_seed)
    } else {
        ChaosPlan::parse(&chaos_text, chaos_seed).map_err(|e| format!("request chaos: {e}"))?
    };
    Ok(WireRequest {
        point: PlannedPoint {
            index: int("index")? as usize,
            label: text("label")?,
            settings,
            spec,
            config,
        },
        exec: ExecConfig { warmup: int("warmup")?, measure: int("measure")?, jobs: 1 },
        policy: HardenPolicy {
            retry: RetryPolicy {
                retries: int("retries")? as u32,
                backoff_base_ms: int("backoff_base_ms")?,
                backoff_cap_ms: int("backoff_cap_ms")?,
                jitter_seed,
            },
            point_budget: budget,
            chaos,
            cancel: None,
            process: None,
            // Checkpoints do not cross the worker wire: a supervised
            // point reports progress at point granularity only.
            progress: None,
            // Optional so requests from older coordinators still parse;
            // the worker then falls back to VM_TRACE_LIBRARY (inherited
            // from the daemon that spawned it).
            trace_library: v.get("library").and_then(Value::as_str).map(std::path::PathBuf::from),
        },
    })
}

/// Handles one request line, returning the reply line. This is the
/// worker's whole job: parse, measure exactly as the in-process
/// executor would, encode. A malformed request replies `{"j":"err"}`
/// instead of killing the worker — the request is the problem, not the
/// process.
pub fn handle_request(line: &str) -> String {
    let req = match parse_request(line) {
        Ok(req) => req,
        Err(detail) => {
            return Value::obj([("j", "err".into()), ("detail", detail.into())]).to_string()
        }
    };
    maybe_kill_for_test(req.point.index as u64);
    let (outcome, attempts) = measure_point_isolated(&req.point, &req.exec, &req.policy);
    JournalEntry::from_outcome(
        req.point.index as u64,
        &req.point.label,
        &outcome,
        attempts,
        result_to_value,
    )
    .to_line()
}

/// Runs the worker side of the protocol over stdin/stdout until EOF —
/// the body of the (hidden) `repro worker` subcommand. Heartbeats flow
/// while a point simulates, so the supervisor can tell slow from
/// wedged.
///
/// # Errors
///
/// Propagates stdin/stdout failures; a closed pipe means the supervisor
/// is gone, and exiting is the correct response.
pub fn serve_worker() -> std::io::Result<()> {
    let input = std::io::stdin().lock();
    let output = std::io::stdout().lock();
    worker_loop(input, output, DEFAULT_HEARTBEAT_INTERVAL, handle_request)
}

/// Measures one point across the process boundary: one request line to
/// a leased worker, one journal-entry line back, crashes supervised in
/// between. Failure mapping: a tripped crash-loop breaker is
/// [`FailureKind::Crash`] (restarts + 1 attempts), a wall-clock ceiling
/// is a timeout, and an unintelligible reply is [`FailureKind::Build`]
/// (a protocol bug, not a simulation result).
pub(crate) fn measure_point_process(
    pool: &WorkerPool,
    point: &PlannedPoint,
    exec: &ExecConfig,
    policy: &HardenPolicy,
) -> (SweepPointOutcome, u32) {
    let request = request_line(point, exec, policy);
    match pool.execute(point.index as u64, &request) {
        Ok(reply) => decode_reply(point, exec, &reply),
        Err(PoolError::CrashLoop { restarts, detail }) => {
            let mut e = point_error(
                point,
                FailureKind::Crash,
                format!("worker crash loop ({restarts} restart(s)): {detail}"),
            );
            e.attempts = restarts + 1;
            (PointOutcome::Failed(e), restarts + 1)
        }
        Err(PoolError::WallLimit { limit, detail }) => {
            let e = point_error(
                point,
                FailureKind::Timeout,
                format!("exceeded the {}ms wall-clock ceiling: {detail}", limit.as_millis()),
            );
            (PointOutcome::TimedOut(e), 1)
        }
    }
}

/// Decodes a worker reply back into the outcome the in-process path
/// would have produced. The supervisor trusts nothing across the wire:
/// a completed payload must verify against the attestation the worker
/// signed AND the context this side expected — a mismatch (stale worker
/// binary, corrupted pipe, lying subprocess) fails the point as
/// [`FailureKind::Integrity`] instead of merging a wrong number.
fn decode_reply(point: &PlannedPoint, exec: &ExecConfig, reply: &str) -> (SweepPointOutcome, u32) {
    let entry = match JournalEntry::parse_line(reply) {
        Ok(entry) => entry,
        Err(_) => {
            return (
                PointOutcome::Failed(point_error(point, FailureKind::Build, err_detail(reply))),
                1,
            )
        }
    };
    let attempts = entry.attempts.max(1);
    if entry.is_done() {
        let payload = entry.payload.as_ref().expect("is_done implies payload");
        return match result_from_value(payload) {
            Ok(r) => {
                let expect = crate::attest::context_for(point, exec);
                match crate::attest::verify_in_context(&r, expect) {
                    Ok(()) => (PointOutcome::Completed(r), attempts),
                    Err(e) => (
                        PointOutcome::Failed(point_error(
                            point,
                            FailureKind::Integrity,
                            format!("worker reply: {e}"),
                        )),
                        attempts,
                    ),
                }
            }
            Err(e) => (
                PointOutcome::Failed(point_error(
                    point,
                    FailureKind::Build,
                    format!("worker reply payload: {e}"),
                )),
                attempts,
            ),
        };
    }
    let mut e = entry.to_error().expect("non-done entry carries an error");
    e.settings = point.settings.clone();
    if entry.status == "timeout" {
        (PointOutcome::TimedOut(e), attempts)
    } else {
        (PointOutcome::Failed(e), attempts)
    }
}

/// The failure detail for a reply that is not a journal line: the
/// worker's own `{"j":"err"}` explanation when there is one, else the
/// raw line.
fn err_detail(reply: &str) -> String {
    if let Ok(v) = json::parse(reply) {
        if v.get("j").and_then(Value::as_str) == Some("err") {
            if let Some(detail) = v.get("detail").and_then(Value::as_str) {
                return format!("worker rejected the request: {detail}");
            }
        }
    }
    format!("unintelligible worker reply: {reply}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{Axis, SweepPlan};
    use vm_core::SystemKind;

    fn tiny_plan() -> SweepPlan {
        let base = SystemSpec::for_kind(SystemKind::Ultrix);
        let axes = [Axis::parse("tlb.entries=32,64").unwrap()];
        SweepPlan::expand(&base, &axes).unwrap()
    }

    fn tiny_exec() -> ExecConfig {
        ExecConfig { warmup: 2_000, measure: 10_000, jobs: 1 }
    }

    #[test]
    fn requests_round_trip_points_and_policy() {
        let plan = tiny_plan();
        let policy = HardenPolicy {
            retry: RetryPolicy::new(2),
            point_budget: Some(1_000_000),
            chaos: ChaosPlan::parse("io@1,abort@3", u64::MAX - 5).unwrap(),
            ..HardenPolicy::default()
        };
        let line = request_line(&plan.points[1], &tiny_exec(), &policy);
        let back = parse_request(&line).unwrap();
        assert_eq!(back.point.index, 1);
        assert_eq!(back.point.label, plan.points[1].label);
        assert_eq!(back.point.settings, plan.points[1].settings);
        assert_eq!(back.point.spec, plan.points[1].spec);
        assert_eq!(back.exec.warmup, 2_000);
        assert_eq!(back.exec.measure, 10_000);
        assert_eq!(back.policy.retry, policy.retry);
        assert_eq!(back.policy.point_budget, Some(1_000_000));
        assert_eq!(back.policy.chaos, policy.chaos);
        assert!(back.policy.process.is_none());
    }

    #[test]
    fn handled_requests_reply_the_exact_in_process_journal_line() {
        let plan = tiny_plan();
        let exec = tiny_exec();
        let policy = HardenPolicy::default();
        let reply = handle_request(&request_line(&plan.points[0], &exec, &policy));
        let entry = JournalEntry::parse_line(&reply).unwrap();
        assert!(entry.is_done());
        let got = result_from_value(entry.payload.as_ref().unwrap()).unwrap();
        let (expect, _) = measure_point_isolated(&plan.points[0], &exec, &policy);
        assert_eq!(Some(&got), expect.completed());
        assert_eq!(got.vm_total.to_bits(), expect.completed().unwrap().vm_total.to_bits());
    }

    #[test]
    fn worker_side_failures_cross_the_wire_classified() {
        let plan = tiny_plan();
        let policy = HardenPolicy {
            chaos: ChaosPlan::parse("panic@0", 42).unwrap(),
            ..HardenPolicy::default()
        };
        let reply = handle_request(&request_line(&plan.points[0], &tiny_exec(), &policy));
        let (outcome, _) = decode_reply(&plan.points[0], &tiny_exec(), &reply);
        let e = outcome.error().expect("point 0 panics");
        assert_eq!(e.kind, FailureKind::Panic);
        assert!(e.detail.contains("injected panic"), "{e}");
        assert_eq!(e.settings, plan.points[0].settings);
    }

    #[test]
    fn malformed_requests_become_err_replies_not_dead_workers() {
        let reply = handle_request("{\"j\":\"run\"}");
        let (outcome, attempts) = decode_reply(&tiny_plan().points[0], &tiny_exec(), &reply);
        assert_eq!(attempts, 1);
        let e = outcome.error().expect("malformed request fails");
        assert_eq!(e.kind, FailureKind::Build);
        assert!(e.detail.contains("worker rejected"), "{e}");

        let (outcome, _) = decode_reply(&tiny_plan().points[0], &tiny_exec(), "garbage");
        assert!(outcome.error().unwrap().detail.contains("unintelligible"));
    }

    #[test]
    fn tampered_reply_payloads_fail_closed_as_integrity() {
        let plan = tiny_plan();
        let exec = tiny_exec();
        let reply = handle_request(&request_line(&plan.points[0], &exec, &HardenPolicy::default()));

        // Flip one hex digit of the signed vmcpi bit pattern in transit:
        // the payload still decodes, but the attestation no longer holds.
        let pos = reply.find("\"vmcpi\":\"").expect("reply carries vmcpi") + "\"vmcpi\":\"".len();
        let mut bytes = reply.clone().into_bytes();
        let last = pos + 15;
        bytes[last] = if bytes[last] == b'0' { b'1' } else { b'0' };
        let tampered = String::from_utf8(bytes).unwrap();
        let (outcome, _) = decode_reply(&plan.points[0], &exec, &tampered);
        let e = outcome.error().expect("tampered payload must not complete");
        assert_eq!(e.kind, FailureKind::Integrity);
        assert!(e.detail.contains("attestation mismatch"), "{e}");

        // A well-formed reply signed for a different scale (stale worker
        // binary) is a context mismatch, not a silent merge.
        let other = ExecConfig { measure: exec.measure + 1, ..exec };
        let (outcome, _) = decode_reply(&plan.points[0], &other, &reply);
        let e = outcome.error().expect("wrong-context payload must not complete");
        assert_eq!(e.kind, FailureKind::Integrity);
        assert!(e.detail.contains("context mismatch"), "{e}");
    }

    #[test]
    fn seeds_survive_the_wire_at_full_width() {
        let v = u64_hex(u64::MAX - 3);
        assert_eq!(u64_from_hex(&v), Some(u64::MAX - 3));
        assert_eq!(u64_from_hex(&Value::Str("abc".to_owned())), None);
    }
}
