//! Sweep axes and grid expansion.
//!
//! An [`Axis`] is one swept spec key with its candidate values
//! (`tlb.entries=32,64,128`); [`SweepPlan::expand`] crosses every axis over a base
//! [`SystemSpec`] into a [`SweepPlan`] of validated points. Combinations
//! the simulator has no model for (e.g. a hardware walker over a
//! three-tiered table, mid-sweep) are not silently dropped: they land in
//! [`SweepPlan::skipped`] with the validator's reason, so reports can say
//! what part of the grid went unmeasured.

use vm_core::SimConfig;

use crate::spec::SystemSpec;

/// One swept dimension: a dotted spec key and the values to try.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    /// The dotted key (`tlb.entries`, `mmu.table`, `cache.l1`, ...).
    pub key: String,
    /// The values, as CLI tokens, in sweep order.
    pub values: Vec<String>,
}

impl Axis {
    /// Parses the CLI grammar `key=v1,v2,...`.
    ///
    /// # Errors
    ///
    /// Returns a message if the `=` is missing or the value list is
    /// empty.
    pub fn parse(s: &str) -> Result<Axis, String> {
        let Some((key, values)) = s.split_once('=') else {
            return Err(format!(
                "sweep axis `{s}` must be `key=v1,v2,...` (e.g. tlb.entries=32,64)"
            ));
        };
        let values: Vec<String> =
            values.split(',').map(str::trim).filter(|v| !v.is_empty()).map(String::from).collect();
        if values.is_empty() {
            return Err(format!("sweep axis `{key}` has no values"));
        }
        Ok(Axis { key: key.trim().to_owned(), values })
    }
}

/// One grid point ready to simulate.
#[derive(Debug, Clone)]
pub struct PlannedPoint {
    /// Position in sweep order (stable across job counts).
    pub index: usize,
    /// The base spec's display name plus this point's settings.
    pub label: String,
    /// The `(axis key, value)` pairs that distinguish this point.
    pub settings: Vec<(String, String)>,
    /// The fully-overridden spec.
    pub spec: SystemSpec,
    /// The validated lowered configuration.
    pub config: SimConfig,
}

/// A point the grid contained but the validator rejected.
#[derive(Debug, Clone)]
pub struct SkippedPoint {
    /// The would-be point's label.
    pub label: String,
    /// Why it cannot be simulated.
    pub reason: String,
}

/// An expanded sweep: the runnable points plus the rejected corners of
/// the grid.
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    /// Points to simulate, in sweep order.
    pub points: Vec<PlannedPoint>,
    /// Grid corners the validator rejected, with reasons.
    pub skipped: Vec<SkippedPoint>,
}

impl SweepPlan {
    /// Expands `axes` over `base` (first axis outermost), validating
    /// every point. With no axes the plan is the single base point.
    ///
    /// # Errors
    ///
    /// Returns a message if an axis *key* is unknown or a value fails to
    /// apply for **every** point (a key that never works is a typo, not a
    /// sparse grid).
    pub fn expand(base: &SystemSpec, axes: &[Axis]) -> Result<SweepPlan, String> {
        let mut plan = SweepPlan::default();
        let mut combo = vec![0usize; axes.len()];
        let mut any_applied = false;
        loop {
            let mut spec = base.clone();
            let mut settings = Vec::with_capacity(axes.len());
            let mut apply_err = None;
            for (axis, &ix) in axes.iter().zip(&combo) {
                let value = &axis.values[ix];
                if let Err(e) = spec.set(&axis.key, value) {
                    apply_err = Some(e);
                    break;
                }
                settings.push((axis.key.clone(), value.clone()));
            }
            let label = point_label(base, axes, &combo);
            match apply_err {
                Some(reason) => plan.skipped.push(SkippedPoint { label, reason }),
                None => {
                    any_applied = true;
                    match spec.validate() {
                        Ok(config) => plan.points.push(PlannedPoint {
                            index: plan.points.len(),
                            label,
                            settings,
                            spec,
                            config,
                        }),
                        Err(e) => plan.skipped.push(SkippedPoint { label, reason: e.msg }),
                    }
                }
            }
            // Odometer increment, last axis fastest.
            let mut i = axes.len();
            loop {
                if i == 0 {
                    if !any_applied {
                        // Every point failed at the same `set` — bad key.
                        let reason = plan
                            .skipped
                            .first()
                            .map(|s| s.reason.clone())
                            .unwrap_or_else(|| "empty sweep".to_owned());
                        return Err(reason);
                    }
                    return Ok(plan);
                }
                i -= 1;
                combo[i] += 1;
                if combo[i] < axes[i].values.len() {
                    break;
                }
                combo[i] = 0;
            }
        }
    }
}

/// `NAME tlb.entries=64 mmu.table=hashed` — the point's identity in
/// tables, CSV, and skip reports.
fn point_label(base: &SystemSpec, axes: &[Axis], combo: &[usize]) -> String {
    let mut label = base.display_name();
    for (axis, &ix) in axes.iter().zip(combo) {
        label.push(' ');
        label.push_str(&axis.key);
        label.push('=');
        label.push_str(&axis.values[ix]);
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_core::SystemKind;

    #[test]
    fn axis_grammar_parses() {
        let a = Axis::parse("tlb.entries=16, 32,64").unwrap();
        assert_eq!(a.key, "tlb.entries");
        assert_eq!(a.values, ["16", "32", "64"]);
        assert!(Axis::parse("tlb.entries").is_err());
        assert!(Axis::parse("tlb.entries=").is_err());
    }

    #[test]
    fn no_axes_is_the_base_point() {
        let plan = SweepPlan::expand(&SystemSpec::for_kind(SystemKind::Intel), &[]).unwrap();
        assert_eq!(plan.points.len(), 1);
        assert!(plan.skipped.is_empty());
        assert_eq!(plan.points[0].label, "INTEL");
    }

    #[test]
    fn grid_crosses_axes_first_outermost() {
        let axes =
            [Axis::parse("tlb.entries=32,64").unwrap(), Axis::parse("cache.l1=8K,16K").unwrap()];
        let plan = SweepPlan::expand(&SystemSpec::for_kind(SystemKind::Ultrix), &axes).unwrap();
        assert_eq!(plan.points.len(), 4);
        assert_eq!(
            plan.points[0].settings,
            [("tlb.entries".to_owned(), "32".to_owned()), ("cache.l1".to_owned(), "8K".to_owned())]
        );
        assert_eq!(plan.points[1].settings[1].1, "16K");
        assert_eq!(plan.points[2].settings[0].1, "64");
        assert!(plan.points.iter().enumerate().all(|(i, p)| p.index == i));
    }

    #[test]
    fn invalid_combos_are_skipped_with_reasons() {
        // three-tier has no hardware walker: those grid corners skip.
        let base = SystemSpec::for_kind(SystemKind::Intel);
        let axes = [Axis::parse("mmu.table=top-down,three-tier,two-tier").unwrap()];
        let plan = SweepPlan::expand(&base, &axes).unwrap();
        assert_eq!(plan.points.len(), 2);
        assert_eq!(plan.skipped.len(), 1);
        assert!(plan.skipped[0].reason.contains("three-tier"), "{}", plan.skipped[0].reason);
    }

    #[test]
    fn a_key_that_never_applies_is_an_error() {
        let base = SystemSpec::for_kind(SystemKind::Ultrix);
        let axes = [Axis::parse("tlb.banana=1,2").unwrap()];
        let err = SweepPlan::expand(&base, &axes).unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }
}
