//! The Mach/MIPS three-tiered page table, walked bottom-up (Figure 2).
//!
//! A user address space is mapped by a 2 MB table in kernel space; the
//! whole 4 GB kernel space is mapped by a 4 MB kernel page table (the top
//! 4 MB of kernel space); and that table is mapped by a 4 KB root table
//! in physical memory. At most three memory references find a mapping.
//!
//! To differentiate the MACH simulation, the paper makes the root level
//! "extremely high" cost: a 500-instruction path performing ten
//! additional "administrative" loads, standing in for the measured cost
//! of Mach's general-purpose interrupt vector (Bala et al.).

use vm_types::{AccessKind, HandlerLevel, MAddr, Vpn};

use crate::layout::{
    HIER_PTE_BYTES, KERNEL_HANDLER_BASE, MACH_ADMIN_BASE, MACH_ADMIN_BYTES, MACH_KPT_BASE,
    MACH_ROOT_TABLE_BASE, ROOT_HANDLER_BASE, USER_HANDLER_BASE,
};
use crate::walker::{TlbRefill, WalkContext};

/// The Mach/MIPS organization (software-managed TLB only — the expensive
/// software root path *is* the system being modelled).
#[derive(Debug, Clone)]
pub struct MachWalker {
    /// Rotates the administrative loads across the admin area so
    /// successive root invocations touch different lines.
    admin_cursor: u64,
}

impl MachWalker {
    /// User-level handler length (Table 4).
    pub const USER_HANDLER_INSTRS: u32 = 10;
    /// Kernel-level handler length (Table 4).
    pub const KERNEL_HANDLER_INSTRS: u32 = 20;
    /// Root-level handler length (Table 4: "500 instrs").
    pub const ROOT_HANDLER_INSTRS: u32 = 500;
    /// Administrative loads per root invocation (Table 4: `10 "admin" loads`).
    pub const ADMIN_LOADS: u32 = 10;
    /// Byte stride between successive administrative loads.
    const ADMIN_STRIDE: u64 = 64;

    /// Creates the walker.
    pub fn new() -> MachWalker {
        MachWalker { admin_cursor: 0 }
    }

    /// Kernel-virtual address of the UPT entry mapping user page `vpn` —
    /// "the virtual base address of the table is essentially
    /// Base + (processID * 2MB)" (Figure 2).
    pub fn upt_entry(vpn: Vpn) -> MAddr {
        crate::layout::two_tier_upt_entry(vpn)
    }

    /// Kernel-virtual address of the KPT entry mapping kernel page
    /// `kernel_vpn` (the KPT maps the whole 4 GB kernel space).
    pub fn kpt_entry(kernel_vpn: Vpn) -> MAddr {
        MAddr::kernel(MACH_KPT_BASE + kernel_vpn.index_in_space() * HIER_PTE_BYTES)
    }

    /// Physical address of the root PTE mapping the KPT page that holds
    /// `kernel_vpn`'s KPT entry.
    pub fn root_entry(kernel_vpn: Vpn) -> MAddr {
        let kpt_page = (Self::kpt_entry(kernel_vpn).offset() - MACH_KPT_BASE) >> 12;
        MAddr::physical(MACH_ROOT_TABLE_BASE + kpt_page * HIER_PTE_BYTES)
    }
}

impl Default for MachWalker {
    fn default() -> MachWalker {
        MachWalker::new()
    }
}

impl TlbRefill for MachWalker {
    fn name(&self) -> &'static str {
        "mach"
    }

    fn refill(&mut self, ctx: &mut dyn WalkContext, vpn: Vpn, _kind: AccessKind) {
        ctx.interrupt(HandlerLevel::User);
        ctx.exec_handler(
            HandlerLevel::User,
            MAddr::physical(USER_HANDLER_BASE),
            Self::USER_HANDLER_INSTRS,
        );

        let upt_entry = Self::upt_entry(vpn);
        if !ctx.dtlb_probe(upt_entry.vpn()) {
            ctx.interrupt(HandlerLevel::Kernel);
            ctx.exec_handler(
                HandlerLevel::Kernel,
                MAddr::physical(KERNEL_HANDLER_BASE),
                Self::KERNEL_HANDLER_INSTRS,
            );

            let kpt_entry = Self::kpt_entry(upt_entry.vpn());
            if !ctx.dtlb_probe(kpt_entry.vpn()) {
                ctx.interrupt(HandlerLevel::Root);
                ctx.exec_handler(
                    HandlerLevel::Root,
                    MAddr::physical(ROOT_HANDLER_BASE),
                    Self::ROOT_HANDLER_INSTRS,
                );
                // The administrative loads are deliberately charged to the
                // rpte components: "The primary difference between MACH
                // and ULTRIX is in rpte-MEM, which, along with rpte-L2 and
                // rhandlers, is where we account for the simulated
                // 'administrative' memory activity" (Section 4.2).
                for _ in 0..Self::ADMIN_LOADS {
                    let addr = MACH_ADMIN_BASE + self.admin_cursor;
                    ctx.pte_load(HandlerLevel::Root, MAddr::physical(addr), HIER_PTE_BYTES);
                    self.admin_cursor = (self.admin_cursor + Self::ADMIN_STRIDE) % MACH_ADMIN_BYTES;
                }
                ctx.pte_load(HandlerLevel::Root, Self::root_entry(upt_entry.vpn()), HIER_PTE_BYTES);
                ctx.dtlb_insert_protected(kpt_entry.vpn());
            }

            ctx.pte_load(HandlerLevel::Kernel, kpt_entry, HIER_PTE_BYTES);
            // Kernel-level PTEs (UPT-page mappings) go to the ordinary
            // partition; only the root-level KPT mappings are protected.
            ctx.dtlb_insert(upt_entry.vpn());
        }

        ctx.pte_load(HandlerLevel::User, upt_entry, HIER_PTE_BYTES);
    }

    fn reset(&mut self) {
        self.admin_cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::{RecordingContext, WalkEvent};
    use vm_types::AddressSpace;

    fn uvpn(i: u64) -> Vpn {
        Vpn::new(AddressSpace::User, i)
    }

    #[test]
    fn cold_miss_walks_all_three_levels() {
        let mut w = MachWalker::new();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(0x222), AccessKind::Load);
        assert_eq!(ctx.interrupts(), 3);
        assert_eq!(
            ctx.handlers_at(HandlerLevel::User),
            vec![(MAddr::physical(USER_HANDLER_BASE), 10)]
        );
        assert_eq!(
            ctx.handlers_at(HandlerLevel::Kernel),
            vec![(MAddr::physical(KERNEL_HANDLER_BASE), 20)]
        );
        assert_eq!(
            ctx.handlers_at(HandlerLevel::Root),
            vec![(MAddr::physical(ROOT_HANDLER_BASE), 500)]
        );
        // 10 admin loads + 1 root PTE load at the root level.
        assert_eq!(ctx.pte_loads_at(HandlerLevel::Root).len(), 11);
        assert_eq!(ctx.pte_loads_at(HandlerLevel::Kernel).len(), 1);
        assert_eq!(ctx.pte_loads_at(HandlerLevel::User).len(), 1);
    }

    #[test]
    fn warm_upt_page_takes_user_fast_path() {
        let vpn = uvpn(0x222);
        let mut w = MachWalker::new();
        let mut ctx = RecordingContext::new().with_dtlb([MachWalker::upt_entry(vpn).vpn()]);
        w.refill(&mut ctx, vpn, AccessKind::Load);
        assert_eq!(ctx.interrupts(), 1);
        assert_eq!(ctx.pte_loads_at(HandlerLevel::Kernel).len(), 0);
        assert_eq!(ctx.pte_loads_at(HandlerLevel::Root).len(), 0);
        assert_eq!(
            ctx.events.last(),
            Some(&WalkEvent::PteLoad {
                level: HandlerLevel::User,
                addr: MachWalker::upt_entry(vpn),
                bytes: 4
            })
        );
    }

    #[test]
    fn warm_kpt_page_skips_root_level() {
        let vpn = uvpn(0x222);
        let upt_page = MachWalker::upt_entry(vpn).vpn();
        let mut w = MachWalker::new();
        let mut ctx = RecordingContext::new().with_dtlb([MachWalker::kpt_entry(upt_page).vpn()]);
        w.refill(&mut ctx, vpn, AccessKind::Load);
        assert_eq!(ctx.interrupts(), 2);
        assert_eq!(ctx.pte_loads_at(HandlerLevel::Root).len(), 0);
        assert_eq!(ctx.pte_loads_at(HandlerLevel::Kernel).len(), 1);
        // Both intermediate mappings are now resident.
        assert!(ctx.dtlb.contains(&upt_page));
    }

    #[test]
    fn cold_miss_protects_both_intermediate_mappings() {
        let vpn = uvpn(0x7777);
        let mut w = MachWalker::new();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, vpn, AccessKind::Store);
        let upt_page = MachWalker::upt_entry(vpn).vpn();
        let kpt_page = MachWalker::kpt_entry(upt_page).vpn();
        assert!(ctx.dtlb.contains(&upt_page));
        assert!(ctx.dtlb.contains(&kpt_page));
        // A second cold user page in the same UPT page is now cheap.
        ctx.events.clear();
        w.refill(&mut ctx, uvpn(0x7778), AccessKind::Load);
        assert_eq!(ctx.interrupts(), 1);
    }

    #[test]
    fn admin_loads_rotate_through_admin_area() {
        let mut w = MachWalker::new();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(0x1), AccessKind::Load);
        let first: Vec<_> = ctx
            .pte_loads_at(HandlerLevel::Root)
            .iter()
            .map(|(a, _)| a.offset())
            .filter(|o| (MACH_ADMIN_BASE..MACH_ADMIN_BASE + MACH_ADMIN_BYTES).contains(o))
            .collect();
        assert_eq!(first.len(), 10);
        // Force another root walk with a distant page and compare.
        ctx.dtlb.clear();
        ctx.events.clear();
        w.refill(&mut ctx, uvpn(0x4_0000), AccessKind::Load);
        let second: Vec<_> = ctx
            .pte_loads_at(HandlerLevel::Root)
            .iter()
            .map(|(a, _)| a.offset())
            .filter(|o| (MACH_ADMIN_BASE..MACH_ADMIN_BASE + MACH_ADMIN_BYTES).contains(o))
            .collect();
        assert_eq!(second.len(), 10);
        assert_ne!(first, second, "admin loads should not replay identical addresses");
    }

    #[test]
    fn reset_restores_admin_cursor() {
        let mut w = MachWalker::new();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(0x1), AccessKind::Load);
        let first = ctx.pte_loads_at(HandlerLevel::Root);
        w.reset();
        let mut ctx2 = RecordingContext::new();
        w.refill(&mut ctx2, uvpn(0x1), AccessKind::Load);
        assert_eq!(first, ctx2.pte_loads_at(HandlerLevel::Root));
    }

    #[test]
    fn table_geometry_matches_figure2() {
        // UPT entries are 4 bytes apart per user page.
        assert_eq!(
            MachWalker::upt_entry(uvpn(1)).offset() - MachWalker::upt_entry(uvpn(0)).offset(),
            4
        );
        // The KPT lives in the top 4 MB of kernel space.
        let upt_page = MachWalker::upt_entry(uvpn(0)).vpn();
        let kpt = MachWalker::kpt_entry(upt_page);
        assert!(kpt.offset() >= MACH_KPT_BASE);
        assert_eq!(kpt.space(), AddressSpace::Kernel);
        // Root entries live in physical memory.
        assert_eq!(MachWalker::root_entry(upt_page).space(), AddressSpace::Physical);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(MachWalker::default().name(), "mach");
    }
}
