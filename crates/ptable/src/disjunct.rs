//! The NOTLB "disjunct" page table (Figure 5) for software-managed
//! caches.
//!
//! The NOTLB system (softvm / VMP-style) has no TLB: the processor runs
//! on virtual caches and interrupts the operating system on every **L2
//! cache miss**, whereupon software performs the page-table lookup and
//! the cache fill. Its table is a two-tiered "disjunct" table —
//! structurally an Ultrix/MIPS table over a segmented global address
//! space, traversed bottom-up, with identical costs (Table 4: user
//! handler 10 instructions + 1 PTE load, root handler 20 + 1).
//!
//! Because there is no TLB, the user-level PTE load cannot TLB-miss;
//! instead, if it **misses the L2 cache**, the root-level handler runs
//! (the "second code segment" of Section 3.1's NOTLB description). The
//! paper stresses that since the ULTRIX and NOTLB tables are alike, "the
//! differences between the measurements should be entirely due to the
//! presence/absence of a TLB".

use vm_types::{AccessKind, HandlerLevel, MAddr, MissClass, Vpn};

use crate::layout::{HIER_PTE_BYTES, ROOT_HANDLER_BASE, USER_HANDLER_BASE};
use crate::walker::{RefillMode, TlbRefill, WalkContext};

/// The NOTLB / software-managed-cache organization's miss handler.
///
/// In [`RefillMode::Software`] this is the paper's NOTLB simulation; in
/// [`RefillMode::Hardware`] it models the SPUR-style design Section 4.2
/// mentions — "a system with no TLB but a hardware-walked page table" —
/// where the state machine services L2 misses without interrupts or
/// I-cache traffic.
#[derive(Debug, Clone)]
pub struct DisjunctWalker {
    mode: RefillMode,
}

impl Default for DisjunctWalker {
    fn default() -> DisjunctWalker {
        DisjunctWalker::new()
    }
}

impl DisjunctWalker {
    /// User-level (cache-miss) handler length (Table 4).
    pub const USER_HANDLER_INSTRS: u32 = 10;
    /// Root-level handler length (Table 4).
    pub const ROOT_HANDLER_INSTRS: u32 = 20;

    /// The paper's software-managed configuration.
    pub fn new() -> DisjunctWalker {
        DisjunctWalker { mode: RefillMode::Software }
    }

    /// The same table under a chosen walk mode (hardware = SPUR-like).
    pub fn with_mode(mode: RefillMode) -> DisjunctWalker {
        DisjunctWalker { mode }
    }

    /// The global-virtual address of the page-group entry mapping `vpn`
    /// (structurally the Ultrix table; see
    /// [`crate::layout::two_tier_upt_entry`]).
    pub fn upt_entry(vpn: Vpn) -> MAddr {
        crate::layout::two_tier_upt_entry(vpn)
    }

    /// The physical address of the root entry mapping the page group that
    /// holds `vpn`'s entry.
    pub fn root_entry(vpn: Vpn) -> MAddr {
        crate::layout::two_tier_root_entry(vpn)
    }
}

impl TlbRefill for DisjunctWalker {
    fn name(&self) -> &'static str {
        match self.mode {
            RefillMode::Software => "notlb",
            RefillMode::Hardware { .. } => "notlb-hw",
        }
    }

    fn refill(&mut self, ctx: &mut dyn WalkContext, vpn: Vpn, _kind: AccessKind) {
        self.mode.dispatch_level(
            ctx,
            HandlerLevel::User,
            MAddr::physical(USER_HANDLER_BASE),
            Self::USER_HANDLER_INSTRS,
        );
        let upt_entry = Self::upt_entry(vpn);
        let class = ctx.pte_load(HandlerLevel::User, upt_entry, HIER_PTE_BYTES);
        if class == MissClass::Memory {
            // The PTE reference itself missed the L2 cache: the second
            // handler (or another state-machine pass) performs the root
            // lookup to service it.
            self.mode.dispatch_level(
                ctx,
                HandlerLevel::Root,
                MAddr::physical(ROOT_HANDLER_BASE),
                Self::ROOT_HANDLER_INSTRS,
            );
            ctx.pte_load(HandlerLevel::Root, Self::root_entry(vpn), HIER_PTE_BYTES);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::{RecordingContext, WalkEvent};
    use vm_types::AddressSpace;

    fn uvpn(i: u64) -> Vpn {
        Vpn::new(AddressSpace::User, i)
    }

    #[test]
    fn pte_hit_needs_only_the_user_handler() {
        let mut w = DisjunctWalker::new();
        let mut ctx = RecordingContext::new().with_pte_class(MissClass::L1Hit);
        w.refill(&mut ctx, uvpn(0x42), AccessKind::Load);
        assert_eq!(ctx.interrupts(), 1);
        assert_eq!(
            ctx.handlers_at(HandlerLevel::User),
            vec![(MAddr::physical(USER_HANDLER_BASE), 10)]
        );
        assert!(ctx.handlers_at(HandlerLevel::Root).is_empty());
        assert_eq!(
            ctx.pte_loads_at(HandlerLevel::User),
            vec![(DisjunctWalker::upt_entry(uvpn(0x42)), 4)]
        );
    }

    #[test]
    fn pte_l2_hit_does_not_escalate() {
        let mut w = DisjunctWalker::new();
        let mut ctx = RecordingContext::new().with_pte_class(MissClass::L2Hit);
        w.refill(&mut ctx, uvpn(0x42), AccessKind::Load);
        assert_eq!(ctx.interrupts(), 1);
        assert!(ctx.pte_loads_at(HandlerLevel::Root).is_empty());
    }

    #[test]
    fn pte_memory_miss_invokes_root_handler() {
        let mut w = DisjunctWalker::new();
        let mut ctx = RecordingContext::new().with_pte_class(MissClass::Memory);
        w.refill(&mut ctx, uvpn(0x42), AccessKind::Store);
        assert_eq!(ctx.interrupts(), 2);
        assert_eq!(
            ctx.handlers_at(HandlerLevel::Root),
            vec![(MAddr::physical(ROOT_HANDLER_BASE), 20)]
        );
        assert_eq!(
            ctx.pte_loads_at(HandlerLevel::Root),
            vec![(DisjunctWalker::root_entry(uvpn(0x42)), 4)]
        );
    }

    #[test]
    fn never_touches_the_tlb() {
        let mut w = DisjunctWalker::new();
        let mut ctx = RecordingContext::new().with_pte_class(MissClass::Memory);
        w.refill(&mut ctx, uvpn(0x7), AccessKind::Load);
        assert!(ctx.events.iter().all(|e| !matches!(
            e,
            WalkEvent::DtlbProbe { .. } | WalkEvent::DtlbInsertProtected { .. }
        )));
    }

    #[test]
    fn table_geometry_matches_ultrix() {
        // Same cost, same structure as the Ultrix table (Section 3.1).
        use crate::ultrix::UltrixWalker;
        for i in [0u64, 1, 1023, 1024, (1 << 19) - 1] {
            assert_eq!(DisjunctWalker::upt_entry(uvpn(i)), UltrixWalker::upt_entry(uvpn(i)));
            assert_eq!(DisjunctWalker::root_entry(uvpn(i)), UltrixWalker::root_entry(uvpn(i)));
        }
        assert_eq!(DisjunctWalker::upt_entry(uvpn(0)).space(), AddressSpace::Kernel);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(DisjunctWalker::default().name(), "notlb");
        assert_eq!(DisjunctWalker::with_mode(RefillMode::PAPER_HARDWARE).name(), "notlb-hw");
    }

    #[test]
    fn hardware_mode_services_l2_misses_without_interrupts() {
        let mut w = DisjunctWalker::with_mode(RefillMode::PAPER_HARDWARE);
        let mut ctx = RecordingContext::new().with_pte_class(MissClass::Memory);
        w.refill(&mut ctx, uvpn(0x42), AccessKind::Load);
        assert_eq!(ctx.interrupts(), 0);
        assert!(ctx.handlers_at(HandlerLevel::User).is_empty());
        assert!(ctx.handlers_at(HandlerLevel::Root).is_empty());
        // Both table levels are still walked.
        assert_eq!(ctx.pte_loads_at(HandlerLevel::User).len(), 1);
        assert_eq!(ctx.pte_loads_at(HandlerLevel::Root).len(), 1);
        assert!(ctx
            .events
            .iter()
            .any(|e| matches!(e, WalkEvent::Inline { level: HandlerLevel::Root, .. })));
    }
}
