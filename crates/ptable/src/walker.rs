//! The walker abstraction: refill procedures expressed over cost-neutral
//! memory-system primitives.

use vm_types::{AccessKind, HandlerLevel, MAddr, MissClass, Vpn};

/// The memory-system primitives a refill procedure is written against.
///
/// The simulator in `vm-core` implements this trait over its caches,
/// TLBs and statistics; [`crate::mock::RecordingContext`] implements it
/// for unit tests. Each method corresponds to one row of the paper's
/// event taxonomy (Table 3):
///
/// * [`exec_handler`](WalkContext::exec_handler) — run `instrs` handler
///   instructions from `base`, fetching them through the I-caches
///   (`uhandler`/`khandler`/`rhandler` base cost plus `handler-L2` /
///   `handler-MEM` I-cache events);
/// * [`exec_inline`](WalkContext::exec_inline) — charge bare cycles with
///   **no** instruction fetches, as a hardware state machine does;
/// * [`pte_load`](WalkContext::pte_load) — load a page-table entry
///   through the D-caches (`upte`/`kpte`/`rpte` × `L2`/`MEM` events);
/// * [`dtlb_probe`](WalkContext::dtlb_probe) — look a mapping up in the
///   data TLB (the bottom-up tables access their user page table through
///   virtual space, so the handler's own load can TLB-miss);
/// * [`dtlb_insert_protected`](WalkContext::dtlb_insert_protected) —
///   install a kernel-level mapping in the TLB's protected partition;
/// * [`interrupt`](WalkContext::interrupt) — take a precise interrupt
///   (pipeline flush); the cost is applied post-hoc (10/50/200 cycles).
pub trait WalkContext {
    /// Executes `instrs` handler instructions starting at page-aligned
    /// `base`, fetching each through the instruction caches.
    fn exec_handler(&mut self, level: HandlerLevel, base: MAddr, instrs: u32);

    /// Charges `cycles` of sequential hardware work with no I-cache
    /// traffic (the x86 state machine's seven cycles).
    fn exec_inline(&mut self, level: HandlerLevel, cycles: u32);

    /// Loads a `bytes`-wide page-table entry at `addr` through the data
    /// caches; returns where the load was satisfied.
    fn pte_load(&mut self, level: HandlerLevel, addr: MAddr, bytes: u64) -> MissClass;

    /// Probes the data TLB for `vpn` (counted as a TLB lookup).
    fn dtlb_probe(&mut self, vpn: Vpn) -> bool;

    /// Installs `vpn` in the data TLB's protected partition. Per Table 1,
    /// the protected slots hold **root-level** PTEs (the mappings of the
    /// structure one level below the root).
    fn dtlb_insert_protected(&mut self, vpn: Vpn);

    /// Installs `vpn` in the data TLB's ordinary user partition. Mach's
    /// kernel-level PTEs (the mappings of UPT pages) live here: only
    /// root-level PTEs earn protected slots, so user-page traffic can
    /// evict them — the source of the MACH simulation's kernel-level
    /// misses.
    fn dtlb_insert(&mut self, vpn: Vpn);

    /// Takes a precise interrupt attributed to `level`'s handler.
    fn interrupt(&mut self, level: HandlerLevel);
}

/// Whether a page table is walked by software handlers or by a hardware
/// state machine.
///
/// The paper's headline observation is that the *same* table organization
/// costs very differently under the two modes: hardware walking takes no
/// interrupt and touches no I-cache. `Hardware` mode is what the INTEL
/// simulation uses natively, and applying it to the hashed table yields
/// the PowerPC/PA-7200-style hybrid of Section 4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefillMode {
    /// Miss handlers run as interrupt-driven software.
    Software,
    /// A hardware state machine walks the table: `cycles_per_level` of
    /// sequential work per table level, no interrupt, no I-cache use.
    Hardware {
        /// Sequential cycles charged per visited table level.
        cycles_per_level: u32,
    },
}

impl RefillMode {
    /// The paper's hardware walk cost: the x86 state machine's 7 cycles
    /// cover two levels, so ~4 cycles of shift/mask/add/load per level
    /// rounded to the paper's published total.
    pub const PAPER_HARDWARE: RefillMode = RefillMode::Hardware { cycles_per_level: 4 };

    /// Returns `true` in software mode.
    pub fn is_software(self) -> bool {
        matches!(self, RefillMode::Software)
    }

    /// Dispatches one table level under this mode: in software, a
    /// precise interrupt followed by `instrs` handler instructions
    /// fetched from `base`; in hardware, `cycles_per_level` of silent
    /// state-machine work. This is the one place the software/hardware
    /// cost asymmetry is encoded — every built-in walker routes through
    /// it.
    pub fn dispatch_level(
        self,
        ctx: &mut dyn WalkContext,
        level: HandlerLevel,
        base: MAddr,
        instrs: u32,
    ) {
        match self {
            RefillMode::Software => {
                ctx.interrupt(level);
                ctx.exec_handler(level, base, instrs);
            }
            RefillMode::Hardware { cycles_per_level } => {
                ctx.exec_inline(level, cycles_per_level);
            }
        }
    }
}

/// A TLB-refill (or, for NOTLB, cache-miss) procedure for one page-table
/// organization.
///
/// `refill` is invoked by the simulator when a user reference misses the
/// TLB (or, in the NOTLB system, the L2 cache) and must express the
/// entire walk through the [`WalkContext`] primitives. After it returns,
/// the simulator installs the faulting page in the missing TLB itself.
pub trait TlbRefill {
    /// Short organization name (`"ultrix"`, `"mach"`, ...), used in
    /// experiment output.
    fn name(&self) -> &'static str;

    /// Walks the page table for faulting user page `vpn`. `kind` is the
    /// access that faulted (fetch, load or store).
    fn refill(&mut self, ctx: &mut dyn WalkContext, vpn: Vpn, kind: AccessKind);

    /// Resets any walker-internal state (hash-table contents, frame
    /// assignments) to the post-boot state. Default: stateless, no-op.
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refill_mode_queries() {
        assert!(RefillMode::Software.is_software());
        assert!(!RefillMode::PAPER_HARDWARE.is_software());
        if let RefillMode::Hardware { cycles_per_level } = RefillMode::PAPER_HARDWARE {
            assert_eq!(cycles_per_level, 4);
        } else {
            panic!("PAPER_HARDWARE must be hardware mode");
        }
    }

    #[test]
    fn trait_is_object_safe() {
        // Compile-time check: both traits must be usable as objects.
        fn _take(_: &mut dyn WalkContext, _: &mut dyn TlbRefill) {}
    }
}
