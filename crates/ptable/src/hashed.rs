//! The PA-RISC hashed (inverted) page table (Figure 4).
//!
//! The hashed page table dispenses with the classical inverted table's
//! hash anchor table, eliminating one memory reference: the faulting
//! virtual address hashes *directly* to a candidate PTE. Because there is
//! no 1:1 correspondence between table entries and page frames, each
//! 16-byte PTE stores the PFN explicitly (Huck & Hays), making a PTE load
//! touch four times the bytes of the hierarchical tables' 4-byte entries.
//! Collisions chain into an unbounded collision-resolution table (CRT).
//!
//! The paper sizes the table at a 2:1 entry:frame ratio over an 8 MB
//! physical memory — 4096 entries, expected mean chain ≈ 1.25 (and
//! ~1.3 measured for gcc). [`HashedConfig::paper`] reproduces that;
//! [`HashedConfig::scaled`] keeps the 2:1 ratio for larger memories.
//!
//! In [`crate::RefillMode::Software`] this is the paper's PA-RISC
//! simulation (one 20-instruction handler, physical-addressed, no nested
//! misses). In [`crate::RefillMode::Hardware`] it becomes the
//! PowerPC/PA-7200-style design the paper recommends in Section 4.2:
//! "merge these two and use a hardware-managed TLB with an inverted page
//! table".

use vm_types::{AccessKind, HandlerLevel, MAddr, Pfn, Vpn, PAGE_SHIFT};

use crate::frames::FrameAlloc;
use crate::layout::{CRT_BASE, FRAME_POOL_BASE, HASHED_PTE_BYTES, HPT_BASE, USER_HANDLER_BASE};
use crate::walker::{RefillMode, TlbRefill, WalkContext};

/// Geometry of the hashed page table and the physical memory behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashedConfig {
    /// Simulated physical memory size in bytes.
    pub phys_mem_bytes: u64,
    /// Number of slots in the hashed table (a power of two).
    pub entries: u64,
    /// Software handler vs. hardware state machine.
    pub mode: RefillMode,
}

impl HashedConfig {
    /// The paper's configuration: 8 MB physical memory, 4096 entries
    /// (2:1), software-managed.
    pub fn paper() -> HashedConfig {
        HashedConfig { phys_mem_bytes: 8 << 20, entries: 4096, mode: RefillMode::Software }
    }

    /// A configuration for `phys_mem_bytes` of memory, preserving the
    /// paper's 2:1 entry:frame ratio. Rounds entries up to a power of
    /// two.
    pub fn scaled(phys_mem_bytes: u64) -> HashedConfig {
        let frames = (phys_mem_bytes >> PAGE_SHIFT).max(1);
        HashedConfig {
            phys_mem_bytes,
            entries: (2 * frames).next_power_of_two(),
            mode: RefillMode::Software,
        }
    }

    /// The same geometry walked by hardware (the Section 4.2 hybrid).
    pub fn hardware(mut self) -> HashedConfig {
        self.mode = RefillMode::PAPER_HARDWARE;
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct ChainedPte {
    vpn: Vpn,
    /// Where this PTE physically lives (HPT slot or CRT slot).
    addr: MAddr,
    /// Frame the PTE maps (stored in the entry, as Huck & Hays require;
    /// unused by the virtually-addressed caches but kept for fidelity).
    #[allow(dead_code)]
    pfn: Pfn,
}

/// The PA-RISC hashed / inverted page table walker.
#[derive(Debug, Clone)]
pub struct HashedWalker {
    config: HashedConfig,
    buckets: Vec<Vec<ChainedPte>>,
    frames: FrameAlloc,
    crt_next: u64,
    /// Total PTE loads performed (for chain statistics).
    chain_loads: u64,
    walks: u64,
}

impl HashedWalker {
    /// Handler length (Table 4: "20 instrs, variable # PTE loads").
    pub const HANDLER_INSTRS: u32 = 20;

    /// Creates a walker with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a non-zero power of two.
    pub fn new(config: HashedConfig) -> HashedWalker {
        assert!(
            config.entries > 0 && config.entries.is_power_of_two(),
            "hashed table entries must be a non-zero power of two"
        );
        assert!(
            HPT_BASE + config.entries * HASHED_PTE_BYTES <= CRT_BASE,
            "hashed table of {} entries overruns its reserved span (max physical memory \
             for the default layout is ~350 MB)",
            config.entries
        );
        HashedWalker {
            config,
            buckets: vec![Vec::new(); config.entries as usize],
            frames: FrameAlloc::new(FRAME_POOL_BASE, config.phys_mem_bytes),
            crt_next: 0,
            chain_loads: 0,
            walks: 0,
        }
    }

    /// The geometry in use.
    pub fn config(&self) -> HashedConfig {
        self.config
    }

    /// Huck & Hays' hash: "a single XOR of the upper virtual address bits
    /// and the lower virtual page number bits". The raw tagged page
    /// number folds the ASID into the upper bits, so in multiprogramming
    /// runs different processes' pages spread over the one global table —
    /// the inverted table's natural fit for multiprogramming (its size
    /// tracks physical memory, not the number of address spaces).
    pub fn hash(&self, vpn: Vpn) -> u64 {
        let v = vpn.raw();
        let bits = self.config.entries.trailing_zeros();
        (v ^ (v >> bits)) & (self.config.entries - 1)
    }

    /// Ensures `vpn` has a PTE, allocating a frame and a table slot on
    /// first touch (initialization is free, as in the paper: "we ignore
    /// the cost of initializing the process address space").
    fn ensure_mapped(&mut self, vpn: Vpn) {
        let bucket = self.hash(vpn) as usize;
        if self.buckets[bucket].iter().any(|e| e.vpn == vpn) {
            return;
        }
        let addr = if self.buckets[bucket].is_empty() {
            MAddr::physical(HPT_BASE + bucket as u64 * HASHED_PTE_BYTES)
        } else {
            let a = MAddr::physical(CRT_BASE + self.crt_next * HASHED_PTE_BYTES);
            self.crt_next += 1;
            a
        };
        let pfn = self.frames.frame_of(vpn);
        self.buckets[bucket].push(ChainedPte { vpn, addr, pfn });
    }

    /// Mean number of PTE loads per walk so far — the paper's "average
    /// collision-chain length" (≈1.25 expected, ~1.3 for gcc).
    pub fn mean_chain_loads(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.chain_loads as f64 / self.walks as f64
        }
    }

    /// The longest chain currently in the table.
    pub fn max_chain_len(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean length of non-empty chains (a static table property, as
    /// opposed to the walk-weighted [`HashedWalker::mean_chain_loads`]).
    pub fn mean_chain_len(&self) -> f64 {
        let non_empty: Vec<usize> = self.buckets.iter().map(Vec::len).filter(|&l| l > 0).collect();
        if non_empty.is_empty() {
            0.0
        } else {
            non_empty.iter().sum::<usize>() as f64 / non_empty.len() as f64
        }
    }

    /// Pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.frames.touched_pages()
    }
}

impl TlbRefill for HashedWalker {
    fn name(&self) -> &'static str {
        match self.config.mode {
            RefillMode::Software => "pa-risc",
            RefillMode::Hardware { .. } => "hybrid",
        }
    }

    fn refill(&mut self, ctx: &mut dyn WalkContext, vpn: Vpn, _kind: AccessKind) {
        self.ensure_mapped(vpn);

        let bucket = self.hash(vpn) as usize;
        self.walks += 1;
        // Entries visited: up to and including the matching one (which
        // ensure_mapped guarantees exists).
        let chain = &self.buckets[bucket];
        let visited = chain.iter().position(|e| e.vpn == vpn).map_or(chain.len(), |p| p + 1);

        match self.config.mode {
            RefillMode::Software => {
                ctx.interrupt(HandlerLevel::User);
                ctx.exec_handler(
                    HandlerLevel::User,
                    MAddr::physical(USER_HANDLER_BASE),
                    Self::HANDLER_INSTRS,
                );
            }
            RefillMode::Hardware { cycles_per_level } => {
                // One state-machine invocation per walk: hash computation
                // plus sequential work per chain entry visited.
                ctx.exec_inline(HandlerLevel::User, cycles_per_level * (1 + visited as u32));
            }
        }

        for entry in self.buckets[bucket].iter().take(visited) {
            ctx.pte_load(HandlerLevel::User, entry.addr, HASHED_PTE_BYTES);
        }
        self.chain_loads += visited as u64;
    }

    fn reset(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.frames.reset();
        self.crt_next = 0;
        self.chain_loads = 0;
        self.walks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::{RecordingContext, WalkEvent};
    use vm_types::AddressSpace;

    fn uvpn(i: u64) -> Vpn {
        Vpn::new(AddressSpace::User, i)
    }

    fn paper_walker() -> HashedWalker {
        HashedWalker::new(HashedConfig::paper())
    }

    #[test]
    fn paper_config_matches_section_3() {
        let c = HashedConfig::paper();
        assert_eq!(c.phys_mem_bytes, 8 << 20);
        assert_eq!(c.entries, 4096);
        // 8 MB has 2048 4 KB pages; 2:1 ratio -> 4096 entries.
        assert_eq!(c.entries, 2 * (c.phys_mem_bytes >> 12));
    }

    #[test]
    fn scaled_preserves_two_to_one() {
        let c = HashedConfig::scaled(16 << 20);
        assert_eq!(c.entries, 8192);
    }

    #[test]
    fn hash_is_in_range_and_spreads() {
        let w = paper_walker();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let h = w.hash(uvpn(i * 37));
            assert!(h < 4096);
            seen.insert(h);
        }
        assert!(seen.len() > 2000, "hash should spread VPNs ({} buckets hit)", seen.len());
    }

    #[test]
    fn first_walk_is_handler_plus_one_16byte_load() {
        let mut w = paper_walker();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(0x99), AccessKind::Load);
        assert_eq!(ctx.interrupts(), 1);
        assert_eq!(
            ctx.handlers_at(HandlerLevel::User),
            vec![(MAddr::physical(USER_HANDLER_BASE), 20)]
        );
        let loads = ctx.pte_loads_at(HandlerLevel::User);
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].1, 16, "hashed PTEs are 16 bytes");
        // The head of the chain lives in the HPT itself.
        let expected = HPT_BASE + w.hash(uvpn(0x99)) * 16;
        assert_eq!(loads[0].0, MAddr::physical(expected));
    }

    #[test]
    fn colliding_pages_chain_through_the_crt() {
        let mut w = paper_walker();
        // Find two distinct VPNs with the same hash.
        let a = uvpn(1);
        let target = w.hash(a);
        let b = (2..1 << 19)
            .map(uvpn)
            .find(|&v| v != a && w.hash(v) == target)
            .expect("a colliding vpn exists");

        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, a, AccessKind::Load);
        w.refill(&mut ctx, b, AccessKind::Load);
        ctx.events.clear();
        // Walking b again must traverse a's head entry first (2 loads).
        w.refill(&mut ctx, b, AccessKind::Load);
        let loads = ctx.pte_loads_at(HandlerLevel::User);
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].0.offset() & !0xf, HPT_BASE + target * 16);
        assert!(loads[1].0.offset() >= CRT_BASE, "second element must be in the CRT");
        assert_eq!(w.max_chain_len(), 2);
    }

    #[test]
    fn non_colliding_pages_cost_one_load_each() {
        let mut w = paper_walker();
        let a = uvpn(1);
        let b = (2..1 << 19).map(uvpn).find(|&v| w.hash(v) != w.hash(a)).unwrap();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, a, AccessKind::Load);
        w.refill(&mut ctx, b, AccessKind::Load);
        assert_eq!(ctx.pte_loads_at(HandlerLevel::User).len(), 2);
        assert!((w.mean_chain_loads() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_statistics_match_the_paper_ballpark() {
        // Touch ~2000 pages (the paper's gcc scale) and verify the mean
        // chain length lands near the paper's 1.25–1.3.
        let mut w = paper_walker();
        let mut ctx = RecordingContext::new();
        let mut rng = vm_types::SplitMix64::new(42);
        let pages: Vec<Vpn> = (0..2000).map(|_| uvpn(rng.next_below(1 << 19))).collect();
        for &p in &pages {
            w.refill(&mut ctx, p, AccessKind::Load);
        }
        // Re-walk all pages to measure steady-state chain loads.
        ctx.events.clear();
        for &p in &pages {
            w.refill(&mut ctx, p, AccessKind::Load);
        }
        let m = w.mean_chain_loads();
        assert!(
            (1.05..1.6).contains(&m),
            "mean chain loads {m} out of the expected range around 1.25"
        );
        assert!(w.mean_chain_len() >= 1.0);
    }

    #[test]
    fn hardware_mode_takes_no_interrupt() {
        let mut w = HashedWalker::new(HashedConfig::paper().hardware());
        assert_eq!(w.name(), "hybrid");
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(0x5), AccessKind::Load);
        assert_eq!(ctx.interrupts(), 0);
        assert!(ctx.handlers_at(HandlerLevel::User).is_empty());
        assert_eq!(ctx.pte_loads_at(HandlerLevel::User).len(), 1);
        assert!(ctx.events.iter().any(|e| matches!(e, WalkEvent::Inline { .. })));
    }

    #[test]
    fn reset_clears_table_and_stats() {
        let mut w = paper_walker();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(0x5), AccessKind::Load);
        assert_eq!(w.mapped_pages(), 1);
        w.reset();
        assert_eq!(w.mapped_pages(), 0);
        assert_eq!(w.mean_chain_loads(), 0.0);
        assert_eq!(w.max_chain_len(), 0);
    }

    #[test]
    fn software_name_is_pa_risc() {
        assert_eq!(paper_walker().name(), "pa-risc");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_entries_panics() {
        let _ = HashedWalker::new(HashedConfig {
            phys_mem_bytes: 8 << 20,
            entries: 3000,
            mode: RefillMode::Software,
        });
    }
}
