//! A first-touch physical frame allocator.

use std::collections::HashMap;

use vm_types::{Pfn, Vpn, PAGE_SHIFT};

/// Assigns physical frames to virtual pages in first-touch order,
/// wrapping when the pool is exhausted.
///
/// The paper sizes physical memory at 8 MB for the PA-RISC simulation and
/// notes that page placement does not otherwise matter because the caches
/// are virtually addressed; the frame number only needs to *exist* (it is
/// stored in the hashed table's 16-byte PTEs). Wrapping on exhaustion
/// models an over-committed pool without affecting any measured quantity.
#[derive(Debug, Clone)]
pub struct FrameAlloc {
    first_pfn: u32,
    frames: u32,
    next: u32,
    map: HashMap<Vpn, Pfn>,
}

impl FrameAlloc {
    /// A pool of `pool_bytes` starting at physical `base` (page aligned).
    ///
    /// # Panics
    ///
    /// Panics if the pool is smaller than one page or `base` is not page
    /// aligned.
    pub fn new(base: u64, pool_bytes: u64) -> FrameAlloc {
        assert_eq!(base % (1 << PAGE_SHIFT), 0, "frame pool base must be page aligned");
        let frames = (pool_bytes >> PAGE_SHIFT) as u32;
        assert!(frames > 0, "frame pool must hold at least one frame");
        FrameAlloc { first_pfn: (base >> PAGE_SHIFT) as u32, frames, next: 0, map: HashMap::new() }
    }

    /// The frame backing `vpn`, allocating on first touch.
    pub fn frame_of(&mut self, vpn: Vpn) -> Pfn {
        if let Some(&pfn) = self.map.get(&vpn) {
            return pfn;
        }
        let pfn = Pfn(self.first_pfn + (self.next % self.frames));
        self.next += 1;
        self.map.insert(vpn, pfn);
        pfn
    }

    /// Number of pages that have been touched (and hence mapped).
    pub fn touched_pages(&self) -> usize {
        self.map.len()
    }

    /// Capacity of the pool in frames.
    pub fn frames(&self) -> u32 {
        self.frames
    }

    /// Forgets all assignments.
    pub fn reset(&mut self) {
        self.next = 0;
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::AddressSpace;

    fn vpn(i: u64) -> Vpn {
        Vpn::new(AddressSpace::User, i)
    }

    #[test]
    fn first_touch_is_stable() {
        let mut a = FrameAlloc::new(0x10_0000, 64 << 10);
        let f1 = a.frame_of(vpn(5));
        let f2 = a.frame_of(vpn(9));
        assert_ne!(f1, f2);
        assert_eq!(a.frame_of(vpn(5)), f1);
        assert_eq!(a.touched_pages(), 2);
    }

    #[test]
    fn frames_are_sequential_from_base() {
        let mut a = FrameAlloc::new(0x10_0000, 64 << 10);
        assert_eq!(a.frame_of(vpn(1)), Pfn(0x100));
        assert_eq!(a.frame_of(vpn(2)), Pfn(0x101));
    }

    #[test]
    fn pool_wraps_on_exhaustion() {
        let mut a = FrameAlloc::new(0, 2 << 12); // two frames
        assert_eq!(a.frames(), 2);
        let f0 = a.frame_of(vpn(0));
        let f1 = a.frame_of(vpn(1));
        let f2 = a.frame_of(vpn(2)); // wraps onto f0's frame
        assert_eq!(f0, f2);
        assert_ne!(f0, f1);
    }

    #[test]
    fn reset_forgets() {
        let mut a = FrameAlloc::new(0, 4 << 12);
        let f0 = a.frame_of(vpn(7));
        a.reset();
        assert_eq!(a.touched_pages(), 0);
        assert_eq!(a.frame_of(vpn(8)), f0); // allocation restarts
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_base_panics() {
        let _ = FrameAlloc::new(0x123, 1 << 12);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_pool_panics() {
        let _ = FrameAlloc::new(0, 100);
    }
}
