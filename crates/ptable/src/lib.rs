//! Page-table organizations and TLB-refill walkers for the Jacob & Mudge
//! (ASPLOS 1998) reproduction.
//!
//! The paper compares five memory-management organizations (Section 3.1,
//! Figures 1–5, Table 4). Each is implemented here as a [`TlbRefill`]
//! walker that expresses its refill procedure through the primitives of a
//! [`WalkContext`] — execute handler code, load PTEs, probe/insert the
//! data TLB, raise interrupts — so that *what a page table does* lives in
//! this crate while *what it costs* (Tables 2–4) is accounted centrally
//! by the simulator in `vm-core`:
//!
//! * [`UltrixWalker`] — Ultrix/MIPS two-tiered table walked bottom-up
//!   (Figure 1): a 2 MB user page table in mapped kernel space, itself
//!   mapped by a 2 KB root table in physical memory.
//! * [`MachWalker`] — Mach/MIPS three-tiered table walked bottom-up
//!   (Figure 2), with the deliberately expensive 500-instruction root
//!   path standing in for Mach's general-purpose interrupt vector.
//! * [`X86Walker`] — BSD/Intel two-tiered table walked **top-down** by a
//!   hardware state machine (Figure 3): two physical-address PTE loads,
//!   seven cycles, no interrupt, no I-cache traffic.
//! * [`HashedWalker`] — the PA-RISC hashed (inverted) page table
//!   (Figure 4): 16-byte PTEs, single-XOR hash, collision-resolution
//!   table; also runs in hardware mode to model the PowerPC/PA-7200
//!   hybrid the paper recommends in Section 4.2.
//! * [`DisjunctWalker`] — the NOTLB/softvm two-tiered "disjunct" table
//!   (Figure 5), whose handlers run on **L2 cache misses** because the
//!   system has no TLB at all.
//!
//! Custom organizations plug in the same way; see the `RecordingContext`
//! in [`mock`] for a test harness, and the repository's
//! `examples/custom_page_table.rs` for a worked example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disjunct;
mod frames;
mod hashed;
mod inverted;
pub mod layout;
mod mach;
pub mod mock;
mod ultrix;
mod walker;
mod x86;

pub use disjunct::DisjunctWalker;
pub use frames::FrameAlloc;
pub use hashed::{HashedConfig, HashedWalker};
pub use inverted::{InvertedConfig, InvertedWalker, HAT_SLOT_BYTES, INVERTED_PTE_BYTES};
pub use mach::MachWalker;
pub use ultrix::UltrixWalker;
pub use walker::{RefillMode, TlbRefill, WalkContext};
pub use x86::X86Walker;
