//! The BSD/Intel x86 two-tiered page table, walked top-down by hardware
//! (Figure 3).
//!
//! Unlike the MIPS-style tables, the x86 table is walked from the root
//! down: on *every* TLB miss the hardware makes exactly two physical
//! memory references — one into the 4 KB page directory, one into the
//! 4 KB PTE page covering the faulting 4 MB region. The state machine
//! takes seven cycles of sequential work (the paper's cycle-by-cycle
//! breakdown in Section 3.1), takes **no interrupt**, and never touches
//! the instruction cache. Root-level PTEs are *not* cached in the TLB,
//! so the TLB is unpartitioned.

use std::collections::HashMap;

use vm_types::{AccessKind, HandlerLevel, MAddr, Vpn};

use crate::layout::{HIER_PTE_BYTES, X86_PD_BASE, X86_PT_POOL_BASE};
use crate::walker::{TlbRefill, WalkContext};

/// The BSD/Windows NT on Intel x86 organization (hardware-managed TLB).
#[derive(Debug, Clone)]
pub struct X86Walker {
    /// Frames assigned to PTE pages, keyed by (asid, directory slot).
    /// Placement is deterministic (see [`X86Walker::pt_entry`]); the map
    /// records which pages exist, for [`X86Walker::pt_pages`].
    pt_frames: HashMap<(u16, u64), u64>,
}

impl X86Walker {
    /// The state machine's cost per walk (Section 3.1: seven cycles).
    pub const WALK_CYCLES: u32 = 7;
    /// PTEs per 4 KB PTE page.
    const PTES_PER_PAGE: u64 = 1024;

    /// Creates the walker with an empty page-table-page pool.
    pub fn new() -> X86Walker {
        X86Walker { pt_frames: HashMap::new() }
    }

    /// Physical address of the page-directory entry covering `vpn`'s
    /// 4 MB region (one 4 KB directory per process).
    pub fn pd_entry(vpn: Vpn) -> MAddr {
        let pd_index = vpn.index_in_space() / Self::PTES_PER_PAGE;
        let directory = X86_PD_BASE + u64::from(vpn.asid()) * 4096;
        MAddr::physical(directory + pd_index * HIER_PTE_BYTES)
    }

    /// Pages in the PTE-page pool (512 directory entries cover 2 GB).
    const POOL_PAGES: u64 = 512; // 2 MB pool

    /// Physical address of the leaf PTE for `vpn`, allocating the PTE
    /// page on first touch.
    ///
    /// The frame for directory slot `d` sits at pool offset `d` pages.
    /// This makes the leaf table's *cache-index* footprint identical to
    /// the Ultrix/Mach 2 MB virtual table's — `pool + d*4096 + (vpn %
    /// 1024)*4` and `UPT + vpn*4` index every virtually-indexed cache the
    /// same way — which is exactly the comparison the paper sets up ("the
    /// Intel page table is similar to the MIPS page table"): the systems
    /// differ in *walk mechanism*, not in table geometry. (Physically the
    /// pages remain independent frames; a PTE page is still never
    /// indexed by the full VPN.)
    pub fn pt_entry(&mut self, vpn: Vpn) -> MAddr {
        let pd_index = vpn.index_in_space() / Self::PTES_PER_PAGE;
        debug_assert!(pd_index < Self::POOL_PAGES, "2 GB user space has 512 directory slots");
        let key = (vpn.asid(), pd_index);
        let frame_base = *self.pt_frames.entry(key).or_insert_with(|| {
            let pool = X86_PT_POOL_BASE + u64::from(vpn.asid()) * (2 << 20);
            pool + pd_index * 4096
        });
        MAddr::physical(frame_base + (vpn.index_in_space() % Self::PTES_PER_PAGE) * HIER_PTE_BYTES)
    }

    /// PTE pages allocated so far.
    pub fn pt_pages(&self) -> usize {
        self.pt_frames.len()
    }
}

impl Default for X86Walker {
    fn default() -> X86Walker {
        X86Walker::new()
    }
}

impl TlbRefill for X86Walker {
    fn name(&self) -> &'static str {
        "intel"
    }

    fn refill(&mut self, ctx: &mut dyn WalkContext, vpn: Vpn, _kind: AccessKind) {
        // No interrupt, no handler code: the pipeline freezes for the
        // state machine's sequential work.
        ctx.exec_inline(HandlerLevel::User, Self::WALK_CYCLES);
        // Top-down: root first, leaf second, both physical and cacheable.
        ctx.pte_load(HandlerLevel::Root, Self::pd_entry(vpn), HIER_PTE_BYTES);
        let leaf = self.pt_entry(vpn);
        ctx.pte_load(HandlerLevel::User, leaf, HIER_PTE_BYTES);
    }

    fn reset(&mut self) {
        self.pt_frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::{RecordingContext, WalkEvent};
    use vm_types::AddressSpace;

    fn uvpn(i: u64) -> Vpn {
        Vpn::new(AddressSpace::User, i)
    }

    #[test]
    fn every_walk_is_two_loads_no_interrupt_no_code() {
        let mut w = X86Walker::new();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(0x345), AccessKind::Load);
        assert_eq!(ctx.interrupts(), 0);
        assert!(ctx.handlers_at(HandlerLevel::User).is_empty());
        assert_eq!(ctx.events.len(), 3);
        assert_eq!(ctx.events[0], WalkEvent::Inline { level: HandlerLevel::User, cycles: 7 });
        // Root (directory) load comes before the leaf load: top-down.
        assert!(matches!(ctx.events[1], WalkEvent::PteLoad { level: HandlerLevel::Root, .. }));
        assert!(matches!(ctx.events[2], WalkEvent::PteLoad { level: HandlerLevel::User, .. }));
    }

    #[test]
    fn repeat_walks_always_reload_the_directory() {
        // The root level is accessed on every TLB miss — the behaviour
        // behind the paper's visible rpte-L2/rpte-MEM components.
        let mut w = X86Walker::new();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(1), AccessKind::Load);
        w.refill(&mut ctx, uvpn(2), AccessKind::Load);
        assert_eq!(ctx.pte_loads_at(HandlerLevel::Root).len(), 2);
    }

    #[test]
    fn pages_in_same_region_share_a_pte_page() {
        let mut w = X86Walker::new();
        let a = w.pt_entry(uvpn(0));
        let b = w.pt_entry(uvpn(1));
        assert_eq!(b.offset() - a.offset(), 4);
        assert_eq!(w.pt_pages(), 1);
    }

    #[test]
    fn distinct_regions_get_distinct_pte_pages() {
        let mut w = X86Walker::new();
        let far = w.pt_entry(uvpn(5 * 1024)); // region 5, touched first
        let near = w.pt_entry(uvpn(0)); // region 0, touched second
        let frame_of = |a: MAddr| a.offset() & !0xfff;
        assert_ne!(frame_of(far), frame_of(near));
        for a in [far, near] {
            assert!(frame_of(a) >= X86_PT_POOL_BASE);
            assert!(frame_of(a) < X86_PT_POOL_BASE + X86Walker::POOL_PAGES * 4096);
        }
        assert_eq!(w.pt_pages(), 2);
    }

    #[test]
    fn leaf_index_footprint_matches_the_mips_style_table() {
        // The Intel leaf entry for vpn and the Ultrix UPT entry for vpn
        // must land on the same cache index (same offset modulo any
        // power-of-two cache size up to the 2 MB table span).
        use crate::ultrix::UltrixWalker;
        let mut w = X86Walker::new();
        for v in [0u64, 1, 1023, 1024, 123_456, (1 << 19) - 1] {
            let intel = w.pt_entry(uvpn(v)).offset() - X86_PT_POOL_BASE;
            let ultrix = UltrixWalker::upt_entry(uvpn(v)).offset() - crate::layout::UPT_BASE;
            assert_eq!(intel, ultrix, "vpn {v}");
        }
    }

    #[test]
    fn pool_allocation_never_hands_out_the_same_frame_twice() {
        let mut w = X86Walker::new();
        let mut frames = std::collections::HashSet::new();
        for region in 0..512u64 {
            let e = w.pt_entry(uvpn(region * 1024));
            assert!(frames.insert(e.offset() & !0xfff), "duplicate frame for region {region}");
        }
        assert_eq!(w.pt_pages(), 512);
    }

    #[test]
    fn pd_entries_step_by_4mb_regions() {
        let a = X86Walker::pd_entry(uvpn(0));
        let b = X86Walker::pd_entry(uvpn(1024));
        assert_eq!(b.offset() - a.offset(), 4);
        assert_eq!(X86Walker::pd_entry(uvpn(1023)), a);
        assert_eq!(a.space(), AddressSpace::Physical);
    }

    #[test]
    fn reset_forgets_frame_assignments() {
        let mut w = X86Walker::new();
        let first = w.pt_entry(uvpn(5 * 1024));
        w.reset();
        assert_eq!(w.pt_pages(), 0);
        let again = w.pt_entry(uvpn(5 * 1024));
        assert_eq!(first, again, "placement is deterministic across resets");
        assert_eq!(w.pt_pages(), 1);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(X86Walker::default().name(), "intel");
    }
}
