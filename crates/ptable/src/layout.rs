//! The simulated memory map: where handlers and page tables live.
//!
//! All handler code sits in unmapped (physical) space, as in every
//! simulated system of the paper ("the handlers are located in unmapped
//! space, so executing them cannot cause I-TLB misses"), each on its own
//! page boundary ("the beginning of each section of handler code is
//! aligned on a page boundary"). Page tables live where each
//! organization's figure puts them: user tables in mapped virtual space
//! for the bottom-up tables, and in physical space for the top-down and
//! hashed tables.
//!
//! The exact values are model parameters, not magic: they only matter in
//! that (a) distinct structures do not overlap and (b) everything still
//! contends for the same virtually-indexed cache frames, which any choice
//! of addresses produces.

/// Physical base of the user-level TLB-miss handler code (one page).
pub const USER_HANDLER_BASE: u64 = 0x0000_1000;
/// Physical base of the kernel-level TLB-miss handler code (one page).
pub const KERNEL_HANDLER_BASE: u64 = 0x0000_3000;
/// Physical base of the root-level TLB-miss handler code. The Mach root
/// path is 500 instructions (~2 KB), so give it room before the next
/// structure.
pub const ROOT_HANDLER_BASE: u64 = 0x0000_5000;

/// Kernel-virtual base of the 2 MB linear user page table used by the
/// Ultrix, Mach and NOTLB organizations (Figures 1, 2, 5). 2 MB-aligned.
pub const UPT_BASE: u64 = 0x0020_0000;

/// Kernel-virtual base of Mach's 4 MB kernel page table: the top 4 MB of
/// the 4 GB kernel space (Figure 2).
pub const MACH_KPT_BASE: u64 = 0xFFC0_0000;

/// Physical base of the 2 KB Ultrix / NOTLB root page table (Figure 1).
pub const ROOT_TABLE_BASE: u64 = 0x0001_0000;

/// Physical base of Mach's 4 KB root page table (Figure 2).
pub const MACH_ROOT_TABLE_BASE: u64 = 0x0001_2000;

/// Physical base of the kernel "administrative" data the Mach root path
/// churns through (the simulated general-vector bookkeeping).
pub const MACH_ADMIN_BASE: u64 = 0x0002_0000;
/// Bytes of administrative data the Mach root path cycles over.
pub const MACH_ADMIN_BYTES: u64 = 0x1000;

/// Physical base of the x86 page directories (4 KB per process; 256
/// ASIDs reserve 1 MB).
pub const X86_PD_BASE: u64 = 0x0010_0000;

/// Physical base of the pool holding x86 4 KB PTE pages (2 MB per
/// process, mirroring each process's 2 MB virtual table footprint; 256
/// ASIDs reserve 512 MB, far above every other structure).
pub const X86_PT_POOL_BASE: u64 = 0x4000_0000;

/// Physical base of the PA-RISC hashed page table (Figure 4).
pub const HPT_BASE: u64 = 0x0004_0000;

/// Physical base of the PA-RISC collision-resolution table, from which
/// overflow PTEs are allocated in first-touch order.
pub const CRT_BASE: u64 = 0x0030_0000;

/// Physical base of the classical inverted table's hash anchor table
/// (one 4-byte slot per frame).
pub const HAT_BASE: u64 = 0x0006_0000;

/// Physical base of the classical inverted page table proper (one
/// 8-byte entry per frame).
pub const INVERTED_TABLE_BASE: u64 = 0x0040_0000;

/// Physical base of the frame pool backing user pages (used by
/// [`crate::FrameAlloc`]).
pub const FRAME_POOL_BASE: u64 = 0x0080_0000;

/// Size of a hierarchical page-table entry: 4 bytes ("a PTE for a
/// hierarchical page table scales with the size of the physical
/// address").
pub const HIER_PTE_BYTES: u64 = 4;

/// The kernel-virtual address of the two-tier user-page-table entry
/// mapping `vpn` — shared by the Ultrix, Mach and NOTLB organizations,
/// whose tables are structurally identical ("the Intel page table is
/// similar to the MIPS and NOTLB page tables"). Each process's 2 MB
/// table sits at `UPT_BASE + asid * 2 MB`.
pub fn two_tier_upt_entry(vpn: vm_types::Vpn) -> vm_types::MAddr {
    let table = UPT_BASE + u64::from(vpn.asid()) * (2 << 20);
    vm_types::MAddr::kernel(table + vpn.index_in_space() * HIER_PTE_BYTES)
}

/// The physical address of the two-tier root entry mapping the UPT page
/// that holds `vpn`'s entry (a 2 KB wired root table per process).
pub fn two_tier_root_entry(vpn: vm_types::Vpn) -> vm_types::MAddr {
    let upt_page = vpn.index_in_space() >> 10;
    let table = ROOT_TABLE_BASE + u64::from(vpn.asid()) * 2048;
    vm_types::MAddr::physical(table + upt_page * HIER_PTE_BYTES)
}

/// Size of a PA-RISC hashed-table entry: 16 bytes (Huck & Hays), which is
/// why a PTE load in the PA-RISC simulation "impacts the data cache four
/// times as much as in other simulations".
pub const HASHED_PTE_BYTES: u64 = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_structures_do_not_overlap_within_any_one_system() {
        // Exactly one walker exists per simulation, so disjointness is
        // required only among the structures *one* system uses — each at
        // its full 256-ASID extent. (Cross-system overlaps are fine:
        // e.g. the Ultrix per-process root tables grow across addresses
        // PA-RISC would use for its hashed table.)
        let handlers: Vec<(u64, u64)> = vec![
            (USER_HANDLER_BASE, 0x1000),
            (KERNEL_HANDLER_BASE, 0x1000),
            (ROOT_HANDLER_BASE, 0x1000),
        ];
        let systems: Vec<(&str, Vec<(u64, u64)>)> = vec![
            ("ultrix/notlb", vec![(ROOT_TABLE_BASE, 256 * 0x800)]),
            ("mach", vec![(MACH_ROOT_TABLE_BASE, 0x1000), (MACH_ADMIN_BASE, MACH_ADMIN_BYTES)]),
            ("x86", vec![(X86_PD_BASE, 256 * 0x1000), (X86_PT_POOL_BASE, 256 * 0x20_0000)]),
            ("pa-risc", vec![(HPT_BASE, 0x2_0000), (CRT_BASE, 0x10_0000)]),
            ("inverted", vec![(HAT_BASE, 0x1_0000), (INVERTED_TABLE_BASE, 0x4_0000)]),
        ];
        for (name, structures) in systems {
            let mut spans = handlers.clone();
            spans.extend(structures);
            for (i, &(a, asz)) in spans.iter().enumerate() {
                for &(b, bsz) in &spans[i + 1..] {
                    assert!(
                        a + asz <= b || b + bsz <= a,
                        "{name}: {a:#x}+{asz:#x} overlaps {b:#x}+{bsz:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn handler_bases_are_page_aligned() {
        for base in [USER_HANDLER_BASE, KERNEL_HANDLER_BASE, ROOT_HANDLER_BASE] {
            assert_eq!(base % 4096, 0);
        }
    }

    #[test]
    fn upt_base_is_2mb_aligned() {
        assert_eq!(UPT_BASE % (2 << 20), 0);
        // Mach's KPT occupies the top 4 MB of the 4 GB kernel space.
        assert_eq!(MACH_KPT_BASE, (1u64 << 32) - (4 << 20));
    }
}
