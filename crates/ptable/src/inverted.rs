//! The classical inverted page table, with a hash anchor table (HAT).
//!
//! This is the design the PA-RISC hashed table improved upon: "the
//! PA-RISC hashed page table is similar in spirit to the classical
//! inverted page table, but it dispenses with the hash anchor table,
//! thereby eliminating one memory reference from the lookup algorithm"
//! (Figure 4's caption). Building the classical table lets that claim be
//! *measured* instead of asserted:
//!
//! 1. hash the faulting VPN into the **hash anchor table**, a table of
//!    pointers sized like the frame count;
//! 2. load the anchor (one memory reference the hashed table does not
//!    make);
//! 3. follow it into the **inverted table proper**, which has exactly one
//!    entry per physical frame (the PFN *is* the entry index);
//! 4. walk the collision chain within the table.
//!
//! The anchor table is an extra structure contending for D-cache space,
//! and every walk starts with its load — the per-walk reference count is
//! `2 + (chain position - 1)` against the hashed table's
//! `1 + (chain position - 1)`.

use vm_types::{AccessKind, HandlerLevel, MAddr, Pfn, Vpn, PAGE_SHIFT};

use crate::frames::FrameAlloc;
use crate::layout::{FRAME_POOL_BASE, HAT_BASE, INVERTED_TABLE_BASE, USER_HANDLER_BASE};
use crate::walker::{RefillMode, TlbRefill, WalkContext};

/// Bytes per classical inverted-table entry: the full VPN tag, ASID,
/// protection bits, and the collision-chain link — the same 16 bytes as
/// the PA-RISC entry (which trades the link field for an explicit PFN),
/// so the comparison isolates the anchor reference and the 1:1 sizing
/// rather than entry width.
pub const INVERTED_PTE_BYTES: u64 = 16;

/// Bytes per hash-anchor-table slot (a frame index).
pub const HAT_SLOT_BYTES: u64 = 4;

/// Geometry of the classical inverted table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvertedConfig {
    /// Simulated physical memory size in bytes; the table has one entry
    /// per frame and the anchor table one slot per frame (the classical
    /// 1:1 sizing, "average chain length 1.5" in the paper's Figure 4
    /// caption).
    pub phys_mem_bytes: u64,
    /// Software handler vs. hardware state machine.
    pub mode: RefillMode,
}

impl InvertedConfig {
    /// One entry and one anchor slot per frame of `phys_mem_bytes`.
    pub fn new(phys_mem_bytes: u64) -> InvertedConfig {
        InvertedConfig { phys_mem_bytes, mode: RefillMode::Software }
    }

    /// The same geometry walked by hardware.
    pub fn hardware(mut self) -> InvertedConfig {
        self.mode = RefillMode::PAPER_HARDWARE;
        self
    }

    /// Frames (= table entries = anchor slots), rounded up to a power of
    /// two for the hash.
    pub fn slots(&self) -> u64 {
        (self.phys_mem_bytes >> PAGE_SHIFT).max(1).next_power_of_two()
    }
}

/// The classical inverted page table walker.
#[derive(Debug, Clone)]
pub struct InvertedWalker {
    config: InvertedConfig,
    /// `buckets[h]` lists the VPNs chained from anchor slot `h`, in
    /// chain order; a VPN's position is its frame's entry.
    buckets: Vec<Vec<Vpn>>,
    frames: FrameAlloc,
    /// Frame index assigned to each mapped VPN (entry position).
    entry_of: std::collections::HashMap<Vpn, u64>,
    next_entry: u64,
    walk_loads: u64,
    walks: u64,
}

impl InvertedWalker {
    /// Handler length: same 20-instruction software path as the PA-RISC
    /// simulation (the difference under test is memory references, not
    /// instruction count).
    pub const HANDLER_INSTRS: u32 = 20;

    /// Creates the walker.
    pub fn new(config: InvertedConfig) -> InvertedWalker {
        InvertedWalker {
            config,
            buckets: vec![Vec::new(); config.slots() as usize],
            frames: FrameAlloc::new(FRAME_POOL_BASE, config.phys_mem_bytes),
            entry_of: std::collections::HashMap::new(),
            next_entry: 0,
            walk_loads: 0,
            walks: 0,
        }
    }

    /// The geometry in use.
    pub fn config(&self) -> InvertedConfig {
        self.config
    }

    /// The same fold as the hashed table, over the anchor-slot count.
    pub fn hash(&self, vpn: Vpn) -> u64 {
        let v = vpn.raw();
        let slots = self.config.slots();
        let bits = slots.trailing_zeros();
        (v ^ (v >> bits)) & (slots - 1)
    }

    /// Physical address of anchor slot `h`.
    fn anchor_addr(&self, h: u64) -> MAddr {
        MAddr::physical(HAT_BASE + h * HAT_SLOT_BYTES)
    }

    /// Physical address of table entry `i`.
    fn entry_addr(&self, i: u64) -> MAddr {
        MAddr::physical(INVERTED_TABLE_BASE + i * INVERTED_PTE_BYTES)
    }

    fn ensure_mapped(&mut self, vpn: Vpn) {
        if self.entry_of.contains_key(&vpn) {
            return;
        }
        let entry = self.next_entry % self.config.slots();
        self.next_entry += 1;
        // The inverted table is strictly one entry per frame: reclaiming
        // a frame evicts its previous page's mapping (the page would be
        // paged out on real hardware).
        if let Some(old) = self.entry_of.iter().find(|&(_, &e)| e == entry).map(|(v, _)| *v) {
            self.entry_of.remove(&old);
            let ob = self.hash(old) as usize;
            self.buckets[ob].retain(|v| *v != old);
        }
        let _pfn: Pfn = self.frames.frame_of(vpn);
        self.entry_of.insert(vpn, entry);
        let bucket = self.hash(vpn) as usize;
        self.buckets[bucket].push(vpn);
    }

    /// Mean memory references per walk so far (anchor load included).
    pub fn mean_walk_loads(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.walk_loads as f64 / self.walks as f64
        }
    }

    /// Pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.entry_of.len()
    }
}

impl TlbRefill for InvertedWalker {
    fn name(&self) -> &'static str {
        match self.config.mode {
            RefillMode::Software => "inverted-hat",
            RefillMode::Hardware { .. } => "inverted-hat-hw",
        }
    }

    fn refill(&mut self, ctx: &mut dyn WalkContext, vpn: Vpn, _kind: AccessKind) {
        self.ensure_mapped(vpn);

        self.config.mode.dispatch_level(
            ctx,
            HandlerLevel::User,
            MAddr::physical(USER_HANDLER_BASE),
            Self::HANDLER_INSTRS,
        );

        self.walks += 1;
        // 1. The anchor load — the reference the hashed table eliminates.
        let bucket = self.hash(vpn) as usize;
        ctx.pte_load(HandlerLevel::User, self.anchor_addr(bucket as u64), HAT_SLOT_BYTES);
        // 2. Chain through the inverted table entries, up to the match.
        let chain = &self.buckets[bucket];
        let visited = chain.iter().position(|v| *v == vpn).map_or(chain.len(), |p| p + 1);
        for v in chain.iter().take(visited) {
            ctx.pte_load(HandlerLevel::User, self.entry_addr(self.entry_of[v]), INVERTED_PTE_BYTES);
        }
        self.walk_loads += 1 + visited as u64;
    }

    fn reset(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.frames.reset();
        self.entry_of.clear();
        self.next_entry = 0;
        self.walk_loads = 0;
        self.walks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::{RecordingContext, WalkEvent};
    use vm_types::AddressSpace;

    fn uvpn(i: u64) -> Vpn {
        Vpn::new(AddressSpace::User, i)
    }

    fn walker() -> InvertedWalker {
        InvertedWalker::new(InvertedConfig::new(8 << 20))
    }

    #[test]
    fn geometry_is_one_entry_per_frame() {
        let c = InvertedConfig::new(8 << 20);
        assert_eq!(c.slots(), 2048);
    }

    #[test]
    fn every_walk_pays_the_anchor_load() {
        let mut w = walker();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(0x17), AccessKind::Load);
        let loads = ctx.pte_loads_at(HandlerLevel::User);
        // Anchor (4 B) then one chain entry (8 B).
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].1, HAT_SLOT_BYTES);
        assert!(loads[0].0.offset() >= HAT_BASE);
        assert_eq!(loads[1].1, INVERTED_PTE_BYTES);
        assert!(loads[1].0.offset() >= INVERTED_TABLE_BASE);
        assert!((w.mean_walk_loads() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn costs_one_more_reference_than_the_hashed_table() {
        use crate::hashed::{HashedConfig, HashedWalker};
        let mut classical = walker();
        let mut hashed = HashedWalker::new(HashedConfig::paper());
        let mut c1 = RecordingContext::new();
        let mut c2 = RecordingContext::new();
        for i in 0..200 {
            classical.refill(&mut c1, uvpn(i * 37), AccessKind::Load);
            hashed.refill(&mut c2, uvpn(i * 37), AccessKind::Load);
        }
        let classical_loads = c1.pte_loads_at(HandlerLevel::User).len();
        let hashed_loads = c2.pte_loads_at(HandlerLevel::User).len();
        // Exactly +1 reference per walk relative to whatever chain
        // behaviour each table exhibits; on average the gap is ~1.
        assert!(
            classical_loads >= hashed_loads + 200 - 20,
            "classical {classical_loads} vs hashed {hashed_loads}"
        );
    }

    #[test]
    fn collision_chains_walk_in_insertion_order() {
        let mut w = walker();
        let a = uvpn(1);
        let target = w.hash(a);
        let b = (2..1 << 19).map(uvpn).find(|&v| v != a && w.hash(v) == target).unwrap();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, a, AccessKind::Load);
        w.refill(&mut ctx, b, AccessKind::Load);
        ctx.events.clear();
        w.refill(&mut ctx, b, AccessKind::Load);
        // anchor + a's entry + b's entry.
        assert_eq!(ctx.pte_loads_at(HandlerLevel::User).len(), 3);
    }

    #[test]
    fn hardware_mode_takes_no_interrupt() {
        let mut w = InvertedWalker::new(InvertedConfig::new(8 << 20).hardware());
        assert_eq!(w.name(), "inverted-hat-hw");
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(5), AccessKind::Load);
        assert_eq!(ctx.interrupts(), 0);
        assert!(ctx.events.iter().any(|e| matches!(e, WalkEvent::Inline { .. })));
    }

    #[test]
    fn reset_clears_state() {
        let mut w = walker();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(5), AccessKind::Load);
        assert_eq!(w.mapped_pages(), 1);
        w.reset();
        assert_eq!(w.mapped_pages(), 0);
        assert_eq!(w.mean_walk_loads(), 0.0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(walker().name(), "inverted-hat");
    }
}
