//! The Ultrix/MIPS two-tiered page table, walked bottom-up (Figure 1).
//!
//! The 2 GB user address space is mapped by a 2 MB linear array of 4-byte
//! PTEs in mapped kernel space (the *user page table*, UPT), which is in
//! turn mapped by a 2 KB array wired down in physical memory (the *root
//! page table*, RPT). A refill therefore needs at most two memory
//! references:
//!
//! 1. the ten-instruction user-level handler indexes the UPT virtually —
//!    a load that itself goes through the data TLB;
//! 2. if that load misses the D-TLB, the twenty-instruction root-level
//!    handler loads the root PTE from physical memory and installs the
//!    UPT-page mapping in the TLB's protected partition.

use vm_types::{AccessKind, HandlerLevel, MAddr, Vpn};

use crate::layout::{HIER_PTE_BYTES, ROOT_HANDLER_BASE, USER_HANDLER_BASE};
use crate::walker::{RefillMode, TlbRefill, WalkContext};

/// The Ultrix/MIPS organization.
///
/// In [`RefillMode::Software`] this is the paper's ULTRIX simulation; in
/// [`RefillMode::Hardware`] it models a MIPS-style table walked by a
/// state machine (one of the hypothetical designs Section 4.2 invites the
/// reader to interpolate).
#[derive(Debug, Clone)]
pub struct UltrixWalker {
    mode: RefillMode,
}

impl UltrixWalker {
    /// User-level handler length (Table 4: "10 instrs, 1 PTE load").
    pub const USER_HANDLER_INSTRS: u32 = 10;
    /// Root-level handler length (Table 4: "20 instrs, 1 PTE load").
    pub const ROOT_HANDLER_INSTRS: u32 = 20;

    /// The paper's software-managed configuration.
    pub fn new() -> UltrixWalker {
        UltrixWalker { mode: RefillMode::Software }
    }

    /// The same table under a chosen walk mode.
    pub fn with_mode(mode: RefillMode) -> UltrixWalker {
        UltrixWalker { mode }
    }

    /// The kernel-virtual address of the UPT entry mapping `vpn`
    /// (shared two-tier geometry; see [`crate::layout::two_tier_upt_entry`]).
    pub fn upt_entry(vpn: Vpn) -> MAddr {
        crate::layout::two_tier_upt_entry(vpn)
    }

    /// The physical address of the root PTE mapping the UPT page that
    /// holds `vpn`'s entry.
    pub fn root_entry(vpn: Vpn) -> MAddr {
        crate::layout::two_tier_root_entry(vpn)
    }
}

impl Default for UltrixWalker {
    fn default() -> UltrixWalker {
        UltrixWalker::new()
    }
}

impl TlbRefill for UltrixWalker {
    fn name(&self) -> &'static str {
        "ultrix"
    }

    fn refill(&mut self, ctx: &mut dyn WalkContext, vpn: Vpn, _kind: AccessKind) {
        self.mode.dispatch_level(
            ctx,
            HandlerLevel::User,
            MAddr::physical(USER_HANDLER_BASE),
            Self::USER_HANDLER_INSTRS,
        );

        let upt_entry = Self::upt_entry(vpn);
        if !ctx.dtlb_probe(upt_entry.vpn()) {
            self.mode.dispatch_level(
                ctx,
                HandlerLevel::Root,
                MAddr::physical(ROOT_HANDLER_BASE),
                Self::ROOT_HANDLER_INSTRS,
            );
            ctx.pte_load(HandlerLevel::Root, Self::root_entry(vpn), HIER_PTE_BYTES);
            ctx.dtlb_insert_protected(upt_entry.vpn());
        }

        ctx.pte_load(HandlerLevel::User, upt_entry, HIER_PTE_BYTES);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{ROOT_TABLE_BASE, UPT_BASE};
    use crate::mock::{RecordingContext, WalkEvent};
    use vm_types::AddressSpace;

    fn uvpn(i: u64) -> Vpn {
        Vpn::new(AddressSpace::User, i)
    }

    #[test]
    fn fast_path_is_one_handler_one_load() {
        let vpn = uvpn(0x123);
        let mut w = UltrixWalker::new();
        let mut ctx = RecordingContext::new().with_dtlb([UltrixWalker::upt_entry(vpn).vpn()]);
        w.refill(&mut ctx, vpn, AccessKind::Load);
        assert_eq!(
            ctx.events,
            vec![
                WalkEvent::Interrupt { level: HandlerLevel::User },
                WalkEvent::Handler {
                    level: HandlerLevel::User,
                    base: MAddr::physical(USER_HANDLER_BASE),
                    instrs: 10,
                },
                WalkEvent::DtlbProbe { vpn: UltrixWalker::upt_entry(vpn).vpn(), hit: true },
                WalkEvent::PteLoad {
                    level: HandlerLevel::User,
                    addr: UltrixWalker::upt_entry(vpn),
                    bytes: 4,
                },
            ]
        );
    }

    #[test]
    fn slow_path_invokes_root_handler_and_protects_upt_page() {
        let vpn = uvpn(0x123);
        let mut w = UltrixWalker::new();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, vpn, AccessKind::Fetch);
        assert_eq!(ctx.interrupts(), 2);
        assert_eq!(
            ctx.handlers_at(HandlerLevel::Root),
            vec![(MAddr::physical(ROOT_HANDLER_BASE), 20)]
        );
        assert_eq!(ctx.pte_loads_at(HandlerLevel::Root), vec![(UltrixWalker::root_entry(vpn), 4)]);
        assert!(ctx.dtlb.contains(&UltrixWalker::upt_entry(vpn).vpn()));
        // The user PTE load happens last.
        assert_eq!(
            ctx.events.last(),
            Some(&WalkEvent::PteLoad {
                level: HandlerLevel::User,
                addr: UltrixWalker::upt_entry(vpn),
                bytes: 4
            })
        );
    }

    #[test]
    fn second_miss_in_same_upt_page_takes_fast_path() {
        let mut w = UltrixWalker::new();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(0x100), AccessKind::Load);
        let events_first = ctx.events.len();
        ctx.events.clear();
        // 0x101 shares the UPT page with 0x100 (1024 PTEs per page).
        w.refill(&mut ctx, uvpn(0x101), AccessKind::Load);
        assert!(ctx.events.len() < events_first);
        assert_eq!(ctx.interrupts(), 1);
        assert!(ctx.handlers_at(HandlerLevel::Root).is_empty());
    }

    #[test]
    fn vpns_a_upt_page_apart_use_distinct_root_entries() {
        // 1024 4-byte PTEs per UPT page.
        let a = UltrixWalker::root_entry(uvpn(0));
        let b = UltrixWalker::root_entry(uvpn(1024));
        assert_eq!(b.offset() - a.offset(), 4);
        assert_eq!(
            UltrixWalker::root_entry(uvpn(1023)),
            a,
            "vpns in the same UPT page share a root entry"
        );
    }

    #[test]
    fn adjacent_vpns_have_adjacent_upt_entries() {
        let a = UltrixWalker::upt_entry(uvpn(7));
        let b = UltrixWalker::upt_entry(uvpn(8));
        assert_eq!(b.offset() - a.offset(), 4);
        assert_eq!(a.space(), AddressSpace::Kernel);
    }

    #[test]
    fn upt_spans_2mb() {
        let last = UltrixWalker::upt_entry(uvpn((1 << 19) - 1));
        assert_eq!(last.offset() - UPT_BASE, (2 << 20) - 4);
        // ...and the root table spans 2 KB.
        let last_root = UltrixWalker::root_entry(uvpn((1 << 19) - 1));
        assert_eq!(last_root.offset() - ROOT_TABLE_BASE, 2048 - 4);
    }

    #[test]
    fn hardware_mode_takes_no_interrupt_and_fetches_no_code() {
        let mut w = UltrixWalker::with_mode(RefillMode::PAPER_HARDWARE);
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, uvpn(0x55), AccessKind::Load);
        assert_eq!(ctx.interrupts(), 0);
        assert!(ctx.handlers_at(HandlerLevel::User).is_empty());
        assert!(ctx.handlers_at(HandlerLevel::Root).is_empty());
        // Same table accesses as software mode.
        assert_eq!(ctx.pte_loads_at(HandlerLevel::User).len(), 1);
        assert_eq!(ctx.pte_loads_at(HandlerLevel::Root).len(), 1);
        assert!(ctx
            .events
            .iter()
            .any(|e| matches!(e, WalkEvent::Inline { level: HandlerLevel::User, .. })));
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(UltrixWalker::default().name(), "ultrix");
    }
}
