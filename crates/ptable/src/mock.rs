//! A recording [`WalkContext`] for testing walkers in isolation.

use std::collections::HashSet;

use vm_types::{HandlerLevel, MAddr, MissClass, Vpn};

use crate::walker::WalkContext;

/// One primitive invocation observed by a [`RecordingContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkEvent {
    /// `exec_handler(level, base, instrs)`.
    Handler {
        /// Handler tier.
        level: HandlerLevel,
        /// Code base address.
        base: MAddr,
        /// Instructions executed.
        instrs: u32,
    },
    /// `exec_inline(level, cycles)`.
    Inline {
        /// Handler tier the cycles are attributed to.
        level: HandlerLevel,
        /// Cycles charged.
        cycles: u32,
    },
    /// `pte_load(level, addr, bytes)`.
    PteLoad {
        /// Handler tier.
        level: HandlerLevel,
        /// Entry address.
        addr: MAddr,
        /// Entry width.
        bytes: u64,
    },
    /// `dtlb_probe(vpn)` and its outcome.
    DtlbProbe {
        /// Probed page.
        vpn: Vpn,
        /// Whether the probe hit.
        hit: bool,
    },
    /// `dtlb_insert_protected(vpn)`.
    DtlbInsertProtected {
        /// Inserted page.
        vpn: Vpn,
    },
    /// `dtlb_insert(vpn)` (user partition).
    DtlbInsertUser {
        /// Inserted page.
        vpn: Vpn,
    },
    /// `interrupt(level)`.
    Interrupt {
        /// Handler tier the interrupt dispatched to.
        level: HandlerLevel,
    },
}

/// A scripted, recording implementation of [`WalkContext`].
///
/// PTE loads answer with a fixed [`MissClass`] (default
/// [`MissClass::L1Hit`]); the data TLB is a plain set that
/// [`WalkContext::dtlb_insert_protected`] adds to. Every call is appended
/// to [`RecordingContext::events`], letting tests assert the *exact*
/// sequence a walker performs — the Table 4 behaviour.
#[derive(Debug)]
pub struct RecordingContext {
    /// Every primitive call, in order.
    pub events: Vec<WalkEvent>,
    /// Pages the mock D-TLB currently holds.
    pub dtlb: HashSet<Vpn>,
    /// The class every `pte_load` reports.
    pub pte_class: MissClass,
}

impl Default for RecordingContext {
    fn default() -> RecordingContext {
        RecordingContext::new()
    }
}

impl RecordingContext {
    /// An empty context whose PTE loads hit the L1.
    pub fn new() -> RecordingContext {
        RecordingContext { events: Vec::new(), dtlb: HashSet::new(), pte_class: MissClass::L1Hit }
    }

    /// Pre-populates the mock D-TLB.
    pub fn with_dtlb<I: IntoIterator<Item = Vpn>>(mut self, vpns: I) -> RecordingContext {
        self.dtlb.extend(vpns);
        self
    }

    /// Sets the class every PTE load reports.
    pub fn with_pte_class(mut self, class: MissClass) -> RecordingContext {
        self.pte_class = class;
        self
    }

    /// Convenience: the number of recorded interrupts.
    pub fn interrupts(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, WalkEvent::Interrupt { .. })).count()
    }

    /// Convenience: the PTE loads recorded at `level`.
    pub fn pte_loads_at(&self, level: HandlerLevel) -> Vec<(MAddr, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                WalkEvent::PteLoad { level: l, addr, bytes } if *l == level => {
                    Some((*addr, *bytes))
                }
                _ => None,
            })
            .collect()
    }

    /// Convenience: handler executions recorded at `level`.
    pub fn handlers_at(&self, level: HandlerLevel) -> Vec<(MAddr, u32)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                WalkEvent::Handler { level: l, base, instrs } if *l == level => {
                    Some((*base, *instrs))
                }
                _ => None,
            })
            .collect()
    }
}

impl WalkContext for RecordingContext {
    fn exec_handler(&mut self, level: HandlerLevel, base: MAddr, instrs: u32) {
        self.events.push(WalkEvent::Handler { level, base, instrs });
    }

    fn exec_inline(&mut self, level: HandlerLevel, cycles: u32) {
        self.events.push(WalkEvent::Inline { level, cycles });
    }

    fn pte_load(&mut self, level: HandlerLevel, addr: MAddr, bytes: u64) -> MissClass {
        self.events.push(WalkEvent::PteLoad { level, addr, bytes });
        self.pte_class
    }

    fn dtlb_probe(&mut self, vpn: Vpn) -> bool {
        let hit = self.dtlb.contains(&vpn);
        self.events.push(WalkEvent::DtlbProbe { vpn, hit });
        hit
    }

    fn dtlb_insert_protected(&mut self, vpn: Vpn) {
        self.events.push(WalkEvent::DtlbInsertProtected { vpn });
        self.dtlb.insert(vpn);
    }

    fn dtlb_insert(&mut self, vpn: Vpn) {
        self.events.push(WalkEvent::DtlbInsertUser { vpn });
        self.dtlb.insert(vpn);
    }

    fn interrupt(&mut self, level: HandlerLevel) {
        self.events.push(WalkEvent::Interrupt { level });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::AddressSpace;

    #[test]
    fn records_in_order() {
        let mut ctx = RecordingContext::new();
        ctx.interrupt(HandlerLevel::User);
        ctx.exec_handler(HandlerLevel::User, MAddr::physical(0x1000), 10);
        let class = ctx.pte_load(HandlerLevel::User, MAddr::kernel(0x20), 4);
        assert_eq!(class, MissClass::L1Hit);
        assert_eq!(ctx.events.len(), 3);
        assert_eq!(ctx.interrupts(), 1);
        assert_eq!(ctx.handlers_at(HandlerLevel::User), vec![(MAddr::physical(0x1000), 10)]);
    }

    #[test]
    fn dtlb_probe_reflects_inserts() {
        let vpn = Vpn::new(AddressSpace::Kernel, 9);
        let mut ctx = RecordingContext::new();
        assert!(!ctx.dtlb_probe(vpn));
        ctx.dtlb_insert_protected(vpn);
        assert!(ctx.dtlb_probe(vpn));
    }

    #[test]
    fn scripted_pte_class_is_returned() {
        let mut ctx = RecordingContext::new().with_pte_class(MissClass::Memory);
        assert_eq!(ctx.pte_load(HandlerLevel::Root, MAddr::physical(0), 4), MissClass::Memory);
    }

    #[test]
    fn with_dtlb_preloads() {
        let vpn = Vpn::new(AddressSpace::Kernel, 3);
        let mut ctx = RecordingContext::new().with_dtlb([vpn]);
        assert!(ctx.dtlb_probe(vpn));
    }
}
