//! Randomized tests of the page-table walkers against a recording
//! context: structural invariants that must hold for *any* faulting page.
//! Driven by a seeded [`SplitMix64`] stream (the workspace carries no
//! third-party property-testing framework).

use vm_ptable::mock::{RecordingContext, WalkEvent};
use vm_ptable::{
    DisjunctWalker, HashedConfig, HashedWalker, MachWalker, TlbRefill, UltrixWalker, X86Walker,
};
use vm_types::{AccessKind, AddressSpace, HandlerLevel, MissClass, SplitMix64, Vpn};

const CASES: usize = 40;

fn uvpn(rng: &mut SplitMix64) -> Vpn {
    Vpn::new(AddressSpace::User, rng.next_below(1 << 19))
}

fn uvpns(rng: &mut SplitMix64, min: u64, max: u64) -> Vec<Vpn> {
    let n = min + rng.next_below(max - min);
    (0..n).map(|_| uvpn(rng)).collect()
}

fn any_kind(rng: &mut SplitMix64) -> AccessKind {
    match rng.next_below(3) {
        0 => AccessKind::Fetch,
        1 => AccessKind::Load,
        _ => AccessKind::Store,
    }
}

/// Interrupts precede their handler execution, pairwise, for software
/// walkers.
fn interrupts_precede_handlers(events: &[WalkEvent]) -> bool {
    let mut pending: Vec<HandlerLevel> = Vec::new();
    for e in events {
        match e {
            WalkEvent::Interrupt { level } => pending.push(*level),
            WalkEvent::Handler { level, .. } => {
                if pending.last() != Some(level) {
                    return false;
                }
                pending.pop();
            }
            _ => {}
        }
    }
    pending.is_empty()
}

#[test]
fn ultrix_walks_are_bounded_and_well_formed() {
    let mut rng = SplitMix64::new(0x317);
    for case in 0..CASES {
        let vpns = uvpns(&mut rng, 1, 50);
        let kind = any_kind(&mut rng);
        let mut w = UltrixWalker::new();
        let mut ctx = RecordingContext::new();
        for vpn in vpns {
            let start = ctx.events.len();
            w.refill(&mut ctx, vpn, kind);
            let new = &ctx.events[start..];
            // At most two levels, at most two PTE loads, ordered root->user.
            let loads: Vec<_> =
                new.iter().filter(|e| matches!(e, WalkEvent::PteLoad { .. })).collect();
            assert!(loads.len() <= 2, "case {case}");
            let last_is_user = matches!(
                loads.last().unwrap(),
                WalkEvent::PteLoad { level: HandlerLevel::User, .. }
            );
            assert!(last_is_user, "case {case}");
            assert!(interrupts_precede_handlers(new), "case {case}");
        }
    }
}

#[test]
fn ultrix_second_walk_same_page_region_is_cheap() {
    let mut rng = SplitMix64::new(0x2e9);
    for case in 0..CASES {
        let vpn = uvpn(&mut rng);
        let mut w = UltrixWalker::new();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, vpn, AccessKind::Load);
        let first = ctx.events.len();
        w.refill(&mut ctx, vpn, AccessKind::Load);
        let second = ctx.events.len() - first;
        assert!(second <= first, "case {case}: warm walk must not exceed cold walk");
        // The warm walk is exactly interrupt + handler + probe + PTE load.
        assert_eq!(second, 4, "case {case}");
    }
}

#[test]
fn mach_nests_at_most_three_levels() {
    let mut rng = SplitMix64::new(0x3ac4);
    for case in 0..CASES {
        let vpns = uvpns(&mut rng, 1, 50);
        let mut w = MachWalker::new();
        let mut ctx = RecordingContext::new();
        for vpn in vpns {
            let start = ctx.events.len();
            w.refill(&mut ctx, vpn, AccessKind::Load);
            let new = &ctx.events[start..];
            let interrupts =
                new.iter().filter(|e| matches!(e, WalkEvent::Interrupt { .. })).count();
            assert!(interrupts <= 3, "case {case}");
            assert!(interrupts_precede_handlers(new), "case {case}");
            // The user-level PTE load always concludes the walk.
            let ends_with_user_load =
                matches!(new.last().unwrap(), WalkEvent::PteLoad { level: HandlerLevel::User, .. });
            assert!(ends_with_user_load, "case {case}");
        }
    }
}

#[test]
fn x86_walks_are_always_exactly_three_events() {
    let mut rng = SplitMix64::new(0x86);
    for case in 0..CASES {
        let vpns = uvpns(&mut rng, 1, 80);
        let mut w = X86Walker::new();
        let mut ctx = RecordingContext::new();
        for vpn in vpns {
            let start = ctx.events.len();
            w.refill(&mut ctx, vpn, AccessKind::Fetch);
            let new = &ctx.events[start..];
            assert_eq!(new.len(), 3, "case {case}");
            assert!(matches!(new[0], WalkEvent::Inline { cycles: 7, .. }), "case {case}");
            assert!(
                matches!(new[1], WalkEvent::PteLoad { level: HandlerLevel::Root, bytes: 4, .. }),
                "case {case}"
            );
            assert!(
                matches!(new[2], WalkEvent::PteLoad { level: HandlerLevel::User, bytes: 4, .. }),
                "case {case}"
            );
        }
    }
}

#[test]
fn x86_leaf_matches_ultrix_upt_index() {
    // The apples-to-apples placement property, for any page.
    let mut rng = SplitMix64::new(0xa11);
    for case in 0..200 {
        let vpn = uvpn(&mut rng);
        let mut w = X86Walker::new();
        let intel = w.pt_entry(vpn).offset() - vm_ptable::layout::X86_PT_POOL_BASE;
        let ultrix = UltrixWalker::upt_entry(vpn).offset() - vm_ptable::layout::UPT_BASE;
        assert_eq!(intel, ultrix, "case {case}");
    }
}

#[test]
fn hashed_walk_load_count_equals_chain_position() {
    let mut rng = SplitMix64::new(0x4a54);
    for case in 0..CASES {
        let vpns = uvpns(&mut rng, 1, 60);
        let mut w = HashedWalker::new(HashedConfig::paper());
        let mut ctx = RecordingContext::new();
        // Install all pages first (first walks), then verify re-walk costs.
        for &vpn in &vpns {
            w.refill(&mut ctx, vpn, AccessKind::Load);
        }
        for &vpn in &vpns {
            let start = ctx.events.len();
            w.refill(&mut ctx, vpn, AccessKind::Load);
            let loads = ctx.events[start..]
                .iter()
                .filter(|e| matches!(e, WalkEvent::PteLoad { bytes: 16, .. }))
                .count();
            assert!(loads >= 1, "case {case}");
            assert!(loads <= vpns.len(), "case {case}: chain cannot exceed installed pages");
            // Every load is 16 bytes (the Huck & Hays PTE).
            let all_16b = ctx.events[start..]
                .iter()
                .filter(|e| matches!(e, WalkEvent::PteLoad { .. }))
                .all(|e| matches!(e, WalkEvent::PteLoad { bytes: 16, .. }));
            assert!(all_16b, "case {case}");
        }
        assert!(w.mean_chain_loads() >= 1.0, "case {case}");
        assert!(w.max_chain_len() <= vpns.len(), "case {case}");
    }
}

#[test]
fn hashed_hash_is_stable_and_in_range() {
    let mut rng = SplitMix64::new(0x4a5);
    for case in 0..200 {
        let vpn = uvpn(&mut rng);
        let w = HashedWalker::new(HashedConfig::paper());
        let h1 = w.hash(vpn);
        let h2 = w.hash(vpn);
        assert_eq!(h1, h2, "case {case}");
        assert!(h1 < 4096, "case {case}");
    }
}

#[test]
fn disjunct_escalates_iff_pte_misses_l2() {
    let mut rng = SplitMix64::new(0xd15);
    for case in 0..120 {
        let vpn = uvpn(&mut rng);
        let class = match rng.next_below(3) {
            0 => MissClass::L1Hit,
            1 => MissClass::L2Hit,
            _ => MissClass::Memory,
        };
        let mut w = DisjunctWalker::new();
        let mut ctx = RecordingContext::new().with_pte_class(class);
        w.refill(&mut ctx, vpn, AccessKind::Load);
        let escalated = ctx
            .events
            .iter()
            .any(|e| matches!(e, WalkEvent::Handler { level: HandlerLevel::Root, .. }));
        assert_eq!(escalated, class == MissClass::Memory, "case {case}");
        assert!(interrupts_precede_handlers(&ctx.events), "case {case}");
    }
}

#[test]
fn walkers_never_touch_the_itlb_and_only_protect_mapped_pages() {
    // All protected insertions must be kernel-space pages (the tables
    // live in kernel virtual space); user pages are inserted by the
    // simulator, not the walker.
    let mut rng = SplitMix64::new(0x9a9);
    for case in 0..CASES {
        let vpns = uvpns(&mut rng, 1, 40);
        let mut walkers: Vec<Box<dyn TlbRefill>> = vec![
            Box::new(UltrixWalker::new()),
            Box::new(MachWalker::new()),
            Box::new(X86Walker::new()),
            Box::new(HashedWalker::new(HashedConfig::paper())),
        ];
        for w in &mut walkers {
            let mut ctx = RecordingContext::new();
            for &vpn in &vpns {
                w.refill(&mut ctx, vpn, AccessKind::Load);
            }
            for e in &ctx.events {
                if let WalkEvent::DtlbInsertProtected { vpn } | WalkEvent::DtlbInsertUser { vpn } =
                    e
                {
                    assert_eq!(vpn.space(), AddressSpace::Kernel, "case {case}: {}", w.name());
                }
            }
        }
    }
}
