//! Property-based tests of the page-table walkers against a recording
//! context: structural invariants that must hold for *any* faulting page.

use proptest::prelude::*;
use vm_ptable::mock::{RecordingContext, WalkEvent};
use vm_ptable::{
    DisjunctWalker, HashedConfig, HashedWalker, MachWalker, TlbRefill, UltrixWalker, X86Walker,
};
use vm_types::{AccessKind, AddressSpace, HandlerLevel, MissClass, Vpn};

fn uvpn() -> impl Strategy<Value = Vpn> {
    (0u64..(1 << 19)).prop_map(|i| Vpn::new(AddressSpace::User, i))
}

fn any_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![Just(AccessKind::Fetch), Just(AccessKind::Load), Just(AccessKind::Store)]
}

/// Interrupts precede their handler execution, pairwise, for software
/// walkers.
fn interrupts_precede_handlers(events: &[WalkEvent]) -> bool {
    let mut pending: Vec<HandlerLevel> = Vec::new();
    for e in events {
        match e {
            WalkEvent::Interrupt { level } => pending.push(*level),
            WalkEvent::Handler { level, .. } => {
                if pending.last() != Some(level) {
                    return false;
                }
                pending.pop();
            }
            _ => {}
        }
    }
    pending.is_empty()
}

proptest! {
    #[test]
    fn ultrix_walks_are_bounded_and_well_formed(vpns in prop::collection::vec(uvpn(), 1..50), kind in any_kind()) {
        let mut w = UltrixWalker::new();
        let mut ctx = RecordingContext::new();
        for vpn in vpns {
            let start = ctx.events.len();
            w.refill(&mut ctx, vpn, kind);
            let new = &ctx.events[start..];
            // At most two levels, at most two PTE loads, ordered root->user.
            let loads: Vec<_> = new.iter().filter(|e| matches!(e, WalkEvent::PteLoad { .. })).collect();
            prop_assert!(loads.len() <= 2);
            let last_is_user = matches!(loads.last().unwrap(), WalkEvent::PteLoad { level: HandlerLevel::User, .. });
            prop_assert!(last_is_user);
            prop_assert!(interrupts_precede_handlers(new));
        }
    }

    #[test]
    fn ultrix_second_walk_same_page_region_is_cheap(vpn in uvpn()) {
        let mut w = UltrixWalker::new();
        let mut ctx = RecordingContext::new();
        w.refill(&mut ctx, vpn, AccessKind::Load);
        let first = ctx.events.len();
        w.refill(&mut ctx, vpn, AccessKind::Load);
        let second = ctx.events.len() - first;
        prop_assert!(second <= first, "warm walk must not exceed cold walk");
        // The warm walk is exactly interrupt + handler + probe + PTE load.
        prop_assert_eq!(second, 4);
    }

    #[test]
    fn mach_nests_at_most_three_levels(vpns in prop::collection::vec(uvpn(), 1..50)) {
        let mut w = MachWalker::new();
        let mut ctx = RecordingContext::new();
        for vpn in vpns {
            let start = ctx.events.len();
            w.refill(&mut ctx, vpn, AccessKind::Load);
            let new = &ctx.events[start..];
            let interrupts = new.iter().filter(|e| matches!(e, WalkEvent::Interrupt { .. })).count();
            prop_assert!(interrupts <= 3);
            prop_assert!(interrupts_precede_handlers(new));
            // The user-level PTE load always concludes the walk.
            let ends_with_user_load =
                matches!(new.last().unwrap(), WalkEvent::PteLoad { level: HandlerLevel::User, .. });
            prop_assert!(ends_with_user_load);
        }
    }

    #[test]
    fn x86_walks_are_always_exactly_three_events(vpns in prop::collection::vec(uvpn(), 1..80)) {
        let mut w = X86Walker::new();
        let mut ctx = RecordingContext::new();
        for vpn in vpns {
            let start = ctx.events.len();
            w.refill(&mut ctx, vpn, AccessKind::Fetch);
            let new = &ctx.events[start..];
            prop_assert_eq!(new.len(), 3);
            let shape = (
                matches!(new[0], WalkEvent::Inline { cycles: 7, .. }),
                matches!(new[1], WalkEvent::PteLoad { level: HandlerLevel::Root, bytes: 4, .. }),
                matches!(new[2], WalkEvent::PteLoad { level: HandlerLevel::User, bytes: 4, .. }),
            );
            prop_assert_eq!(shape, (true, true, true));
        }
    }

    #[test]
    fn x86_leaf_matches_ultrix_upt_index(vpn in uvpn()) {
        // The apples-to-apples placement property, for any page.
        let mut w = X86Walker::new();
        let intel = w.pt_entry(vpn).offset() - vm_ptable::layout::X86_PT_POOL_BASE;
        let ultrix = UltrixWalker::upt_entry(vpn).offset() - vm_ptable::layout::UPT_BASE;
        prop_assert_eq!(intel, ultrix);
    }

    #[test]
    fn hashed_walk_load_count_equals_chain_position(vpns in prop::collection::vec(uvpn(), 1..60)) {
        let mut w = HashedWalker::new(HashedConfig::paper());
        let mut ctx = RecordingContext::new();
        // Install all pages first (first walks), then verify re-walk costs.
        for &vpn in &vpns {
            w.refill(&mut ctx, vpn, AccessKind::Load);
        }
        for &vpn in &vpns {
            let start = ctx.events.len();
            w.refill(&mut ctx, vpn, AccessKind::Load);
            let loads = ctx.events[start..]
                .iter()
                .filter(|e| matches!(e, WalkEvent::PteLoad { bytes: 16, .. }))
                .count();
            prop_assert!(loads >= 1);
            prop_assert!(loads <= vpns.len(), "chain cannot exceed installed pages");
            // The last load must be the matching entry; every load is
            // 16 bytes (the Huck & Hays PTE).
            let all_16b = ctx.events[start..]
                .iter()
                .filter(|e| matches!(e, WalkEvent::PteLoad { .. }))
                .all(|e| matches!(e, WalkEvent::PteLoad { bytes: 16, .. }));
            prop_assert!(all_16b);
        }
        prop_assert!(w.mean_chain_loads() >= 1.0);
        prop_assert!(w.max_chain_len() <= vpns.len());
    }

    #[test]
    fn hashed_hash_is_stable_and_in_range(vpn in uvpn()) {
        let w = HashedWalker::new(HashedConfig::paper());
        let h1 = w.hash(vpn);
        let h2 = w.hash(vpn);
        prop_assert_eq!(h1, h2);
        prop_assert!(h1 < 4096);
    }

    #[test]
    fn disjunct_escalates_iff_pte_misses_l2(vpn in uvpn(), class_sel in 0u8..3) {
        let class = match class_sel {
            0 => MissClass::L1Hit,
            1 => MissClass::L2Hit,
            _ => MissClass::Memory,
        };
        let mut w = DisjunctWalker::new();
        let mut ctx = RecordingContext::new().with_pte_class(class);
        w.refill(&mut ctx, vpn, AccessKind::Load);
        let escalated = ctx
            .events
            .iter()
            .any(|e| matches!(e, WalkEvent::Handler { level: HandlerLevel::Root, .. }));
        prop_assert_eq!(escalated, class == MissClass::Memory);
        prop_assert!(interrupts_precede_handlers(&ctx.events));
    }

    #[test]
    fn walkers_never_touch_the_itlb_and_only_protect_mapped_pages(
        vpns in prop::collection::vec(uvpn(), 1..40),
    ) {
        // All protected insertions must be kernel-space pages (the tables
        // live in kernel virtual space); user pages are inserted by the
        // simulator, not the walker.
        let mut walkers: Vec<Box<dyn TlbRefill>> = vec![
            Box::new(UltrixWalker::new()),
            Box::new(MachWalker::new()),
            Box::new(X86Walker::new()),
            Box::new(HashedWalker::new(HashedConfig::paper())),
        ];
        for w in &mut walkers {
            let mut ctx = RecordingContext::new();
            for &vpn in &vpns {
                w.refill(&mut ctx, vpn, AccessKind::Load);
            }
            for e in &ctx.events {
                if let WalkEvent::DtlbInsertProtected { vpn } | WalkEvent::DtlbInsertUser { vpn } = e {
                    prop_assert_eq!(vpn.space(), AddressSpace::Kernel, "{}", w.name());
                }
            }
        }
    }
}
