//! The multiprogramming experiment: ASID-tagged vs untagged TLBs under
//! round-robin process scheduling.
//!
//! The paper's traces are single-process, but two of its threads point
//! here: the interrupt-cost discussion (context switches multiply
//! software-TLB work) and the virtual-cache caveat ("the need to
//! maintain ASIDs ... with the cache tags"). This experiment runs a
//! process mix under both TLB designs across scheduling quanta:
//!
//! * **Tagged** (MIPS-style): TLB entries carry the owning ASID and
//!   survive switches — the only cost of a switch is whatever re-use the
//!   processes steal from each other.
//! * **Untagged** (period x86-style): both TLBs flush on every switch,
//!   so each quantum starts translation-cold.

use vm_core::cost::CostModel;
use vm_core::{simulate, AsidMode, SimConfig, SystemKind};
use vm_trace::{Multiprogram, WorkloadSpec};

use crate::claim::Claim;
use crate::runner::RunScale;
use crate::table::TextTable;

/// Parameter space for the multiprogramming experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// The process mix (each entry is one process).
    pub mix: Vec<WorkloadSpec>,
    /// Scheduling quanta to sweep, in instructions.
    pub quanta: Vec<u64>,
    /// Systems to measure (TLB-based ones; others see no difference).
    pub systems: Vec<SystemKind>,
    /// Run lengths.
    pub scale: RunScale,
}

impl Config {
    /// A gcc + vortex + ijpeg mix on ULTRIX and INTEL over three quanta.
    pub fn default_mix(mix: Vec<WorkloadSpec>) -> Config {
        Config {
            mix,
            quanta: vec![500_000, 100_000, 20_000],
            systems: vec![SystemKind::Ultrix, SystemKind::Intel],
            scale: RunScale::DEFAULT,
        }
    }
}

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Simulated system.
    pub system: SystemKind,
    /// Scheduling quantum.
    pub quantum: u64,
    /// TLB ASID handling.
    pub mode: AsidMode,
    /// VMCPI + interrupt CPI at the default cost.
    pub vm_total: f64,
    /// Combined TLB miss ratio.
    pub tlb_miss_ratio: f64,
    /// Whole-TLB flushes during the measured window.
    pub flushes: u64,
}

/// The measured experiment.
#[derive(Debug, Clone)]
pub struct Result {
    /// Names of the processes in the mix.
    pub mix: Vec<String>,
    /// All rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the mix is empty or a preset fails to build — experiment
/// definitions use validated presets.
pub fn run(config: &Config) -> Result {
    let cost = CostModel::default();
    let mut rows = Vec::new();
    for &system in &config.systems {
        for &quantum in &config.quanta {
            for mode in [AsidMode::Tagged, AsidMode::Untagged] {
                let trace = Multiprogram::new(config.mix.clone(), quantum, 42)
                    .expect("experiment mixes use validated presets");
                let mut sim = SimConfig::paper_default(system);
                sim.asid_mode = mode;
                let report = simulate(&sim, trace, config.scale.warmup, config.scale.measure)
                    .expect("paper defaults always build");
                rows.push(Row {
                    system,
                    quantum,
                    mode,
                    vm_total: report.vmcpi(&cost).total() + report.interrupt_cpi(&cost),
                    tlb_miss_ratio: report.tlb_miss_ratio(),
                    flushes: report.counts.tlb_flushes,
                });
            }
        }
    }
    Result { mix: config.mix.iter().map(|w| w.name.clone()).collect(), rows }
}

impl Result {
    /// Renders the tagged-vs-untagged comparison.
    pub fn render(&self) -> String {
        let mut t =
            TextTable::new(["system", "quantum", "TLB", "VM total", "miss ratio", "flushes"]);
        for r in &self.rows {
            t.row([
                r.system.label().to_owned(),
                r.quantum.to_string(),
                match r.mode {
                    AsidMode::Tagged => "tagged".to_owned(),
                    AsidMode::Untagged => "untagged".to_owned(),
                },
                format!("{:.5}", r.vm_total),
                format!("{:.5}", r.tlb_miss_ratio),
                r.flushes.to_string(),
            ]);
        }
        format!("process mix: {}\n{}", self.mix.join(" + "), t.render())
    }

    /// CSV of all rows.
    pub fn to_csv(&self) -> String {
        let mut t =
            TextTable::new(["system", "quantum", "mode", "vm_total", "tlb_miss_ratio", "flushes"]);
        for r in &self.rows {
            t.row([
                r.system.label().to_owned(),
                r.quantum.to_string(),
                format!("{:?}", r.mode),
                format!("{:.6}", r.vm_total),
                format!("{:.6}", r.tlb_miss_ratio),
                r.flushes.to_string(),
            ]);
        }
        t.to_csv()
    }

    /// Checks the multiprogramming expectations.
    pub fn claims(&self) -> Vec<Claim> {
        let mut claims = Vec::new();
        let of = |system: SystemKind, quantum: u64, mode: AsidMode| {
            self.rows
                .iter()
                .find(|r| r.system == system && r.quantum == quantum && r.mode == mode)
                .map(|r| r.vm_total)
        };
        let mut quanta: Vec<u64> = self.rows.iter().map(|r| r.quantum).collect();
        quanta.sort_unstable();
        quanta.dedup();
        // 1. At the shortest quantum, flushing on every switch costs
        //    substantially more than keeping tagged entries. (At long
        //    quanta the comparison can *invert*: descheduled processes'
        //    stale entries pollute a tagged TLB, while a flushed TLB
        //    hands the running process all 128 slots — a crossover this
        //    experiment exists to expose.)
        if let Some(&shortest) = quanta.first() {
            let mut untagged_much_worse = 0;
            let mut comparisons = 0;
            for &system in &[SystemKind::Ultrix, SystemKind::Intel] {
                if let (Some(t), Some(u)) = (
                    of(system, shortest, AsidMode::Tagged),
                    of(system, shortest, AsidMode::Untagged),
                ) {
                    comparisons += 1;
                    if u > 1.3 * t {
                        untagged_much_worse += 1;
                    }
                }
            }
            if comparisons > 0 {
                claims.push(Claim::new(
                    format!(
                        "at {shortest}-instruction quanta, flushing on switch costs >1.3x the ASID-tagged TLB"
                    ),
                    untagged_much_worse == comparisons,
                    format!("{untagged_much_worse}/{comparisons} systems show the blow-up"),
                ));
            }
        }
        if quanta.len() >= 2 {
            let (fast, slow) = (quanta[0], *quanta.last().unwrap());
            if let (Some(tf), Some(uf), Some(ts), Some(us)) = (
                of(SystemKind::Ultrix, fast, AsidMode::Tagged),
                of(SystemKind::Ultrix, fast, AsidMode::Untagged),
                of(SystemKind::Ultrix, slow, AsidMode::Tagged),
                of(SystemKind::Ultrix, slow, AsidMode::Untagged),
            ) {
                let gap_fast = uf / tf.max(1e-12);
                let gap_slow = us / ts.max(1e-12);
                claims.push(Claim::new(
                    "the ASID advantage grows as scheduling quanta shrink",
                    gap_fast > gap_slow,
                    format!(
                        "untagged/tagged ratio: {gap_fast:.2} at {fast}-instr quanta vs {gap_slow:.2} at {slow}"
                    ),
                ));
            }
        }
        claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_trace::presets;

    fn tiny() -> Config {
        Config {
            mix: vec![presets::ijpeg_spec(), presets::compress_spec()],
            quanta: vec![5_000, 50_000],
            systems: vec![SystemKind::Ultrix],
            scale: RunScale { warmup: 30_000, measure: 150_000 },
        }
    }

    #[test]
    fn produces_a_row_per_cell() {
        let r = run(&tiny());
        assert_eq!(r.rows.len(), 2 * 2); // 2 quanta x 2 modes
        assert_eq!(r.mix, ["ijpeg", "compress"]);
    }

    #[test]
    fn untagged_mode_flushes_tagged_does_not() {
        let r = run(&tiny());
        for row in &r.rows {
            match row.mode {
                AsidMode::Tagged => assert_eq!(row.flushes, 0, "{row:?}"),
                AsidMode::Untagged => assert!(row.flushes > 0, "{row:?}"),
            }
        }
    }

    #[test]
    fn untagged_misses_more_at_small_quanta() {
        let r = run(&tiny());
        let tagged =
            r.rows.iter().find(|x| x.quantum == 5_000 && x.mode == AsidMode::Tagged).unwrap();
        let untagged =
            r.rows.iter().find(|x| x.quantum == 5_000 && x.mode == AsidMode::Untagged).unwrap();
        assert!(
            untagged.tlb_miss_ratio > tagged.tlb_miss_ratio,
            "untagged {untagged:?} vs tagged {tagged:?}"
        );
    }

    #[test]
    fn render_and_csv() {
        let r = run(&tiny());
        assert!(r.render().contains("ijpeg + compress"));
        assert_eq!(r.to_csv().lines().count(), r.rows.len() + 1);
    }
}
