//! Machine-checked reproductions of the paper's qualitative findings.

use std::fmt;

/// One qualitative claim from the paper, checked against this run.
///
/// Claims encode the *shape* of a result — orderings, crossovers, rough
/// factors — rather than absolute numbers, since the workloads are
/// synthetic models of the SPEC '95 traces (see DESIGN.md).
#[derive(Debug, Clone)]
pub struct Claim {
    /// The paper's statement, paraphrased.
    pub statement: String,
    /// What this run measured.
    pub evidence: String,
    /// Whether the measurement reproduces the statement.
    pub holds: bool,
}

impl Claim {
    /// Records a checked claim.
    pub fn new(statement: impl Into<String>, holds: bool, evidence: impl Into<String>) -> Claim {
        Claim { statement: statement.into(), evidence: evidence.into(), holds }
    }

    /// Renders a claim list as a PASS/FAIL report.
    pub fn render_all(claims: &[Claim]) -> String {
        let mut out = String::new();
        for c in claims {
            out.push_str(&format!("{c}\n"));
        }
        let passed = claims.iter().filter(|c| c.holds).count();
        out.push_str(&format!("claims reproduced: {passed}/{}\n", claims.len()));
        out
    }
}

/// Mean of an iterator of samples; `None` when empty. Claims built on
/// means should distinguish "no data" (skip the claim) from a mean of
/// zero — see the callers in the experiment modules.
pub(crate) fn mean_of<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

impl fmt::Display for Claim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — {}",
            if self.holds { "PASS" } else { "FAIL" },
            self.statement,
            self.evidence
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_verdict() {
        let c = Claim::new("x beats y", true, "x=1 y=2");
        assert!(c.to_string().starts_with("[PASS]"));
        let c = Claim::new("x beats y", false, "x=2 y=1");
        assert!(c.to_string().starts_with("[FAIL]"));
    }

    #[test]
    fn render_all_counts() {
        let cs =
            vec![Claim::new("a", true, ""), Claim::new("b", false, ""), Claim::new("c", true, "")];
        let r = Claim::render_all(&cs);
        assert!(r.contains("claims reproduced: 2/3"));
    }
}
