//! Tables 1–4: the simulated parameter space, the cost components, and
//! the per-system handler events, regenerated from the code that
//! actually implements them (so drift between the documentation and the
//! simulator is impossible).

use vm_core::cost::CostModel;
use vm_core::paper;
use vm_ptable::{DisjunctWalker, HashedConfig, HashedWalker, MachWalker, UltrixWalker, X86Walker};

use crate::table::{size_label, TextTable};

/// Renders Table 1: the range of values simulated.
pub fn table1() -> String {
    let mut t = TextTable::new(["characteristic", "range of values simulated"]);
    t.row(["benchmarks", "synthetic gcc / vortex / ijpeg models (see vm-trace)"]);
    t.row([
        "cache organization",
        "split, direct-mapped, virtually-addressed; blocking, write-allocate, write-through",
    ]);
    t.row([
        "L1 cache size".to_owned(),
        paper::L1_SIZES.iter().map(|&s| size_label(s)).collect::<Vec<_>>().join(", ")
            + " (per side)",
    ]);
    t.row([
        "L2 cache size".to_owned(),
        paper::L2_SIZES.iter().map(|&s| size_label(s)).collect::<Vec<_>>().join(", ")
            + " (per side)",
    ]);
    t.row([
        "cache line sizes".to_owned(),
        paper::LINE_SIZES.iter().map(|s| format!("{s} bytes")).collect::<Vec<_>>().join(", "),
    ]);
    t.row([
        "TLB organization".to_owned(),
        format!(
            "fully associative, random replacement; ULTRIX/MACH reserve {} protected slots",
            paper::TLB_PROTECTED
        ),
    ]);
    t.row([
        "TLB size".to_owned(),
        format!("{0}-entry I-TLB / {0}-entry D-TLB", paper::TLB_ENTRIES),
    ]);
    t.row(["page size", "4 KB"]);
    t.row([
        "cost of interrupt".to_owned(),
        paper::INTERRUPT_COSTS.iter().map(|c| format!("{c}")).collect::<Vec<_>>().join(", ")
            + " cycles",
    ]);
    t.row(["systems", "ULTRIX, MACH, INTEL, PA-RISC, NOTLB, BASE"]);
    format!("Table 1: simulation details\n{}", t.render())
}

/// Renders Table 2: components of MCPI and their costs.
pub fn table2() -> String {
    let c = CostModel::default();
    let mut t = TextTable::new(["tag", "cost per occurrence"]);
    t.row(["L1i-miss".to_owned(), format!("{} cycles", c.l1_miss_cycles)]);
    t.row(["L1d-miss".to_owned(), format!("{} cycles", c.l1_miss_cycles)]);
    t.row(["L2i-miss".to_owned(), format!("{} cycles", c.l2_miss_cycles)]);
    t.row(["L2d-miss".to_owned(), format!("{} cycles", c.l2_miss_cycles)]);
    format!("Table 2: components of MCPI\n{}", t.render())
}

/// Renders Table 3: components of VMCPI and their costs.
pub fn table3() -> String {
    let c = CostModel::default();
    let l2 = format!("{} cycles", c.l1_miss_cycles);
    let mem = format!("{} cycles", c.l2_miss_cycles);
    let mut t = TextTable::new(["tag", "cost per", "description"]);
    t.row(["uhandler", "variable", "a TLB miss (or NOTLB L2 miss) during application processing invokes the user-level handler"]);
    t.row([
        "upte-L2".to_owned(),
        l2.clone(),
        "the UPTE lookup misses the L1 data cache; goes to L2".to_owned(),
    ]);
    t.row([
        "upte-MEM".to_owned(),
        mem.clone(),
        "the UPTE lookup misses the L2 data cache; goes to memory".to_owned(),
    ]);
    t.row([
        "khandler",
        "variable",
        "a TLB miss during the user-level handler invokes the kernel-level handler",
    ]);
    t.row([
        "kpte-L2".to_owned(),
        l2.clone(),
        "the KPTE lookup misses the L1 data cache".to_owned(),
    ]);
    t.row([
        "kpte-MEM".to_owned(),
        mem.clone(),
        "the KPTE lookup misses the L2 data cache".to_owned(),
    ]);
    t.row(["rhandler", "variable", "a miss during either handler invokes the root-level handler"]);
    t.row([
        "rpte-L2".to_owned(),
        l2.clone(),
        "the RPTE lookup misses the L1 data cache".to_owned(),
    ]);
    t.row([
        "rpte-MEM".to_owned(),
        mem.clone(),
        "the RPTE lookup misses the L2 data cache".to_owned(),
    ]);
    t.row(["handler-L2".to_owned(), l2, "handler code misses the L1 instruction cache".to_owned()]);
    t.row([
        "handler-MEM".to_owned(),
        mem,
        "handler code misses the L2 instruction cache".to_owned(),
    ]);
    format!("Table 3: components of VMCPI\n{}", t.render())
}

/// Renders Table 4: simulated page-table events, straight from the
/// walker constants.
pub fn table4() -> String {
    let mut t = TextTable::new(["VM sim", "user handler", "kernel handler", "root handler"]);
    t.row([
        "ULTRIX".to_owned(),
        format!("{} instrs, 1 PTE load", UltrixWalker::USER_HANDLER_INSTRS),
        "n.a.".to_owned(),
        format!("{} instrs, 1 PTE load", UltrixWalker::ROOT_HANDLER_INSTRS),
    ]);
    t.row([
        "MACH".to_owned(),
        format!("{} instrs, 1 PTE load", MachWalker::USER_HANDLER_INSTRS),
        format!("{} instrs, 1 PTE load", MachWalker::KERNEL_HANDLER_INSTRS),
        format!(
            "{} instrs, {} \"admin\" loads + 1 PTE load",
            MachWalker::ROOT_HANDLER_INSTRS,
            MachWalker::ADMIN_LOADS
        ),
    ]);
    t.row([
        "INTEL".to_owned(),
        format!("{} cycles, 2 PTE loads", X86Walker::WALK_CYCLES),
        "n.a.".to_owned(),
        "n.a.".to_owned(),
    ]);
    t.row([
        "PA-RISC".to_owned(),
        format!("{} instrs, variable # PTE loads", HashedWalker::HANDLER_INSTRS),
        "n.a.".to_owned(),
        "n.a.".to_owned(),
    ]);
    t.row([
        "NOTLB".to_owned(),
        format!("{} instrs, 1 PTE load", DisjunctWalker::USER_HANDLER_INSTRS),
        "n.a.".to_owned(),
        format!("{} instrs, 1 PTE load", DisjunctWalker::ROOT_HANDLER_INSTRS),
    ]);
    format!("Table 4: simulated page-table events\n{}", t.render())
}

/// Extra substrate facts worth checking at a glance: the PA-RISC hashed
/// table geometry (Section 3.1's "2:1 ratio ... average collision-chain
/// length 1.25").
pub fn hashed_geometry() -> String {
    let paper_cfg = HashedConfig::paper();
    let scaled = HashedConfig::scaled(16 << 20);
    let mut t = TextTable::new(["configuration", "phys mem", "entries", "entry:frame"]);
    for (name, c) in [("paper (8 MB)", paper_cfg), ("default (16 MB)", scaled)] {
        t.row([
            name.to_owned(),
            size_label(c.phys_mem_bytes),
            c.entries.to_string(),
            format!("{}:1", c.entries / (c.phys_mem_bytes >> 12)),
        ]);
    }
    format!("PA-RISC hashed-table geometry\n{}", t.render())
}

/// All four tables plus the substrate geometry, concatenated.
pub fn render_all() -> String {
    format!("{}\n{}\n{}\n{}\n{}", table1(), table2(), table3(), table4(), hashed_geometry())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_the_sweep_space() {
        let t = table1();
        assert!(t.contains("1K, 2K, 4K, 8K, 16K, 32K, 64K, 128K"));
        assert!(t.contains("512K, 1M, 2M"));
        assert!(t.contains("10, 50, 200 cycles"));
        assert!(t.contains("128-entry I-TLB / 128-entry D-TLB"));
    }

    #[test]
    fn table2_has_paper_costs() {
        let t = table2();
        assert!(t.contains("20 cycles"));
        assert!(t.contains("500 cycles"));
    }

    #[test]
    fn table3_names_all_eleven_components() {
        let t = table3();
        for tag in [
            "uhandler",
            "upte-L2",
            "upte-MEM",
            "khandler",
            "kpte-L2",
            "kpte-MEM",
            "rhandler",
            "rpte-L2",
            "rpte-MEM",
            "handler-L2",
            "handler-MEM",
        ] {
            assert!(t.contains(tag), "missing {tag}");
        }
    }

    #[test]
    fn table4_matches_the_paper() {
        let t = table4();
        assert!(t.contains("10 instrs, 1 PTE load"));
        assert!(t.contains("20 instrs, 1 PTE load"));
        assert!(t.contains("7 cycles, 2 PTE loads"));
        assert!(t.contains("500 instrs, 10 \"admin\" loads + 1 PTE load"));
        assert!(t.contains("20 instrs, variable # PTE loads"));
    }

    #[test]
    fn hashed_geometry_shows_two_to_one() {
        let t = hashed_geometry();
        assert!(t.contains("2:1"));
        assert!(t.contains("4096"));
        assert!(t.contains("8192"));
    }

    #[test]
    fn render_all_concatenates() {
        let all = render_all();
        for part in ["Table 1", "Table 2", "Table 3", "Table 4", "hashed-table"] {
            assert!(all.contains(part));
        }
    }
}
