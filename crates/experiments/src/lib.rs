//! Experiment drivers regenerating every table and figure of Jacob &
//! Mudge (ASPLOS 1998), plus the ablations the paper sketches in
//! Section 4.2.
//!
//! Each experiment module exposes
//!
//! * a `Config` describing the swept parameter space (defaulting to the
//!   paper's Table 1 values, scaled per [`RunScale`]),
//! * a `run` function that executes the sweep and returns a typed result,
//! * a rendering of the result as the paper's rows/series
//!   ([`TextTable`]), and
//! * [`Claim`]s — machine-checked statements of the paper's qualitative
//!   findings ("INTEL has the lowest VMCPI", "NOTLB is hypersensitive to
//!   L2 organization", ...), each reporting whether this run reproduced
//!   it.
//!
//! The `repro` binary (`cargo run -p vm-experiments --bin repro --release`)
//! drives everything from the command line; EXPERIMENTS.md in the
//! repository root records a full paper-vs-measured comparison.
//!
//! | Experiment | Paper artefact | Module |
//! |------------|----------------|--------|
//! | `tables`   | Tables 1–4     | [`tables`] |
//! | `fig6`/`fig7` | VMCPI vs cache organization (gcc / vortex) | [`fig6`] |
//! | `fig8`/`fig9` | VMCPI component breakdowns | [`fig8`] |
//! | `fig10`*   | interrupt-cost sensitivity | [`interrupts`] |
//! | `fig11`*   | TLB-size sensitivity | [`tlbsize`] |
//! | `fig12`*   | MCPI inflicted on the application | [`mcpi`] |
//! | `fig13`*   | total VM overhead | [`total`] |
//! | `abl-*`    | Section 4.2 interpolations | [`ablations`] |
//! | `suite`    | six-workload overview with seed replication | [`suite`] |
//! | `abl-mp`   | multiprogramming: ASID-tagged vs untagged TLBs | [`multiprog`] |
//!
//! \* the supplied paper text truncates after Section 4.2; these
//! reconstruct the remaining evaluation from the abstract's quantitative
//! claims (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod chart;
pub mod explore;
pub mod fig6;
pub mod fig8;
pub mod interrupts;
pub mod mcpi;
pub mod multiprog;
pub mod registry;
pub mod suite;
pub mod tables;
pub mod telemetry;
pub mod tlbsize;
pub mod total;

mod claim;
mod runner;
mod table;

pub use claim::Claim;
// The reporter moved to `vm-obs` so lower layers (the `vm-explore` sweep
// executor) can heartbeat through it; re-exported here for continuity.
pub use runner::{run_jobs, run_jobs_checked, run_jobs_reported, Job, Outcome, RunScale};
pub use table::TextTable;
pub use vm_obs::{set_global_verbosity, Reporter, Verbosity};
