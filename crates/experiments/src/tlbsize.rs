//! Figure 11 (reconstructed): sensitivity to TLB size.
//!
//! The abstract reports that "systems are fairly sensitive to TLB size".
//! This sweep varies the (split) TLB entry count from 16 to 512 around
//! the paper's 128-entry operating point and measures VMCPI plus TLB
//! miss rates for the TLB-based systems.

use vm_core::cost::CostModel;
use vm_core::{SimConfig, SystemKind};
use vm_trace::WorkloadSpec;

use crate::claim::Claim;
use crate::runner::{run_jobs, Job, RunScale};
use crate::table::TextTable;

/// Parameter space for the TLB-size sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workloads to sweep.
    pub workloads: Vec<WorkloadSpec>,
    /// Systems (must be TLB-based).
    pub systems: Vec<SystemKind>,
    /// TLB entry counts to sweep.
    pub entries: Vec<usize>,
    /// Run lengths.
    pub scale: RunScale,
    /// Worker threads.
    pub threads: usize,
}

impl Config {
    /// The default sweep: 16–512 entries around the paper's 128.
    pub fn paper(workloads: Vec<WorkloadSpec>) -> Config {
        Config {
            workloads,
            systems: vec![
                SystemKind::Ultrix,
                SystemKind::Mach,
                SystemKind::Intel,
                SystemKind::PaRisc,
            ],
            entries: vec![16, 32, 64, 128, 256, 512],
            scale: RunScale::DEFAULT,
            threads: 1,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Workload name.
    pub workload: String,
    /// Simulated system.
    pub system: SystemKind,
    /// Entries per (split) TLB.
    pub entries: usize,
    /// Measured VMCPI.
    pub vmcpi: f64,
    /// Combined I+D TLB miss ratio.
    pub tlb_miss_ratio: f64,
}

/// The measured sweep.
#[derive(Debug, Clone)]
pub struct Result {
    /// All points.
    pub points: Vec<Point>,
}

/// Runs the sweep.
pub fn run(config: &Config) -> Result {
    let mut jobs = Vec::new();
    for workload in &config.workloads {
        for &system in &config.systems {
            for &entries in &config.entries {
                let mut sim = SimConfig::paper_default(system);
                sim.tlb_entries = entries;
                jobs.push(Job::new(
                    format!("{system}/{}/{entries}", workload.name),
                    sim,
                    workload.clone(),
                    config.scale,
                ));
            }
        }
    }
    let outcomes = run_jobs(jobs, config.threads);
    let cost = CostModel::default();
    let points = outcomes
        .iter()
        .map(|o| Point {
            workload: o.job.workload.name.clone(),
            system: o.job.config.system,
            entries: o.job.config.tlb_entries,
            vmcpi: o.report.vmcpi(&cost).total(),
            tlb_miss_ratio: o.report.tlb_miss_ratio(),
        })
        .collect();
    Result { points }
}

impl Result {
    /// Renders one row per (workload, system) with VMCPI per TLB size.
    pub fn render(&self) -> String {
        let mut entries: Vec<usize> = self.points.iter().map(|p| p.entries).collect();
        entries.sort_unstable();
        entries.dedup();
        let mut headers = vec!["workload".to_owned(), "system".to_owned()];
        headers.extend(entries.iter().map(|e| format!("VMCPI@{e}")));
        let mut t = TextTable::new(headers);
        let mut keys: Vec<(String, SystemKind)> =
            self.points.iter().map(|p| (p.workload.clone(), p.system)).collect();
        keys.dedup();
        for (workload, system) in keys {
            let mut row = vec![workload.clone(), system.label().to_owned()];
            for &e in &entries {
                let v = self
                    .points
                    .iter()
                    .find(|p| p.workload == workload && p.system == system && p.entries == e)
                    .map(|p| format!("{:.5}", p.vmcpi))
                    .unwrap_or_default();
                row.push(v);
            }
            t.row(row);
        }
        t.render()
    }

    /// CSV of all points.
    pub fn to_csv(&self) -> String {
        let mut t = TextTable::new(["workload", "system", "entries", "vmcpi", "tlb_miss_ratio"]);
        for p in &self.points {
            t.row([
                p.workload.clone(),
                p.system.label().to_owned(),
                p.entries.to_string(),
                format!("{:.6}", p.vmcpi),
                format!("{:.6}", p.tlb_miss_ratio),
            ]);
        }
        t.to_csv()
    }

    /// Checks the TLB-size findings.
    pub fn claims(&self) -> Vec<Claim> {
        let mut claims = Vec::new();
        // VMCPI is monotone non-increasing in TLB size (within noise) and
        // sensitive: quartering the TLB from 128 to 32 should raise VMCPI
        // substantially for the page-thrashing workloads.
        let mut keys: Vec<(String, SystemKind)> =
            self.points.iter().map(|p| (p.workload.clone(), p.system)).collect();
        keys.dedup();
        let mut sensitive = 0;
        let mut total = 0;
        let mut monotone_violations = 0;
        for (w, s) in &keys {
            let of = |e: usize| {
                self.points
                    .iter()
                    .find(|p| &p.workload == w && p.system == *s && p.entries == e)
                    .map(|p| p.vmcpi)
            };
            if let (Some(small), Some(med)) = (of(32), of(128)) {
                total += 1;
                if small > 1.5 * med {
                    sensitive += 1;
                }
            }
            let mut series_points: Vec<&Point> =
                self.points.iter().filter(|p| &p.workload == w && p.system == *s).collect();
            series_points.sort_by_key(|p| p.entries);
            let series: Vec<f64> = series_points.iter().map(|p| p.vmcpi).collect();
            monotone_violations += series.windows(2).filter(|win| win[1] > win[0] * 1.15).count();
        }
        if total > 0 {
            claims.push(Claim::new(
                "systems are fairly sensitive to TLB size (quartering 128 -> 32 entries raises VMCPI by >1.5x)",
                sensitive * 2 >= total,
                format!("{sensitive}/{total} (workload, system) pairs show the blow-up"),
            ));
        }
        claims.push(Claim::new(
            "VMCPI decreases (within noise) as the TLB grows",
            monotone_violations == 0,
            format!("{monotone_violations} >15% monotonicity violations"),
        ));
        claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_trace::presets;

    fn tiny() -> Config {
        Config {
            workloads: vec![presets::gcc_spec()],
            systems: vec![SystemKind::Ultrix],
            entries: vec![16, 128],
            scale: RunScale { warmup: 20_000, measure: 100_000 },
            threads: 1,
        }
    }

    #[test]
    fn sweeps_the_grid() {
        let r = run(&tiny());
        assert_eq!(r.points.len(), 2);
        assert!(r.points.iter().all(|p| p.tlb_miss_ratio >= 0.0));
    }

    #[test]
    fn tiny_tlbs_miss_more() {
        let r = run(&tiny());
        let small = r.points.iter().find(|p| p.entries == 16).unwrap();
        let large = r.points.iter().find(|p| p.entries == 128).unwrap();
        assert!(
            small.tlb_miss_ratio > large.tlb_miss_ratio,
            "16-entry TLB must miss more than 128-entry ({} vs {})",
            small.tlb_miss_ratio,
            large.tlb_miss_ratio
        );
        assert!(small.vmcpi > large.vmcpi);
    }

    #[test]
    fn render_has_a_column_per_size() {
        let r = run(&tiny());
        let text = r.render();
        assert!(text.contains("VMCPI@16"));
        assert!(text.contains("VMCPI@128"));
    }
}
