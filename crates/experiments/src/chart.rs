//! Minimal ASCII line charts for terminal figure rendering.
//!
//! The paper's Figures 6–7 are families of VMCPI-vs-L1-size curves; the
//! tables carry the exact numbers, and [`AsciiChart`] draws the same
//! series as a quick visual so crossovers and scale differences (like
//! NOTLB's famously different y-axis) are visible at a glance.

use std::fmt;

/// One named series of (x-label, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// Y values, one per x position.
    pub values: Vec<f64>,
}

/// A fixed-grid ASCII chart over shared x positions.
///
/// ```
/// use vm_experiments::chart::{AsciiChart, Series};
///
/// let chart = AsciiChart::new(
///     vec!["1K".into(), "4K".into(), "16K".into()],
///     vec![Series { name: "a".into(), values: vec![3.0, 2.0, 1.0] }],
///     24,
///     8,
/// );
/// let drawing = chart.render();
/// assert!(drawing.contains("a"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    x_labels: Vec<String>,
    series: Vec<Series>,
    width: usize,
    height: usize,
}

/// Glyphs assigned to series, in order.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

impl AsciiChart {
    /// Creates a chart. `width`/`height` are the plot-area dimensions in
    /// characters (clamped to sane minimums).
    pub fn new(
        x_labels: Vec<String>,
        series: Vec<Series>,
        width: usize,
        height: usize,
    ) -> AsciiChart {
        AsciiChart { x_labels, series, width: width.max(16), height: height.max(4) }
    }

    fn bounds(&self) -> (f64, f64) {
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for s in &self.series {
            for &v in &s.values {
                if v.is_finite() {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        if lo > hi {
            (0.0, 1.0)
        } else if (hi - lo).abs() < 1e-15 {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        }
    }

    /// Renders the chart with a y-axis, glyph legend, and x labels.
    pub fn render(&self) -> String {
        let (lo, hi) = self.bounds();
        let rows = self.height;
        let cols = self.width;
        let mut grid = vec![vec![' '; cols]; rows];

        let n = self.x_labels.len().max(1);
        let x_of = |i: usize| {
            if n == 1 {
                0
            } else {
                i * (cols - 1) / (n - 1)
            }
        };
        let y_of = |v: f64| {
            let t = (v - lo) / (hi - lo);
            let r = ((1.0 - t) * (rows - 1) as f64).round();
            (r as usize).min(rows - 1)
        };

        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (i, &v) in s.values.iter().enumerate().take(n) {
                if v.is_finite() {
                    grid[y_of(v)][x_of(i)] = glyph;
                }
            }
        }

        let mut out = String::new();
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                format!("{hi:>9.4} |")
            } else if r == rows - 1 {
                format!("{lo:>9.4} |")
            } else {
                format!("{:>9} |", "")
            };
            out.push_str(&label);
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(cols)));
        // X labels: first and last.
        if !self.x_labels.is_empty() {
            let first = &self.x_labels[0];
            let last = self.x_labels.last().unwrap();
            let pad = cols.saturating_sub(first.len() + last.len());
            out.push_str(&format!("{:>9}  {first}{}{last}\n", "", " ".repeat(pad)));
        }
        // Legend.
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{} {}", GLYPHS[i % GLYPHS.len()], s.name))
            .collect();
        out.push_str(&format!("{:>9}  {}\n", "", legend.join("   ")));
        out
    }
}

impl fmt::Display for AsciiChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn renders_all_series_glyphs_in_legend() {
        let chart = AsciiChart::new(
            labels(4),
            vec![
                Series { name: "alpha".into(), values: vec![1.0, 2.0, 3.0, 4.0] },
                Series { name: "beta".into(), values: vec![4.0, 3.0, 2.0, 1.0] },
            ],
            30,
            8,
        );
        let r = chart.render();
        assert!(r.contains("* alpha"));
        assert!(r.contains("o beta"));
        assert!(r.contains("x0"));
        assert!(r.contains("x3"));
    }

    #[test]
    fn extremes_land_on_first_and_last_rows() {
        let chart = AsciiChart::new(
            labels(2),
            vec![Series { name: "s".into(), values: vec![0.0, 10.0] }],
            20,
            6,
        );
        let r = chart.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[0].contains('*'), "max value on top row: {r}");
        assert!(lines[5].contains('*'), "min value on bottom row: {r}");
        assert!(lines[0].starts_with("  10.0000"));
        assert!(lines[5].starts_with("   0.0000"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let chart = AsciiChart::new(
            labels(3),
            vec![Series { name: "flat".into(), values: vec![2.0, 2.0, 2.0] }],
            20,
            5,
        );
        let r = chart.render();
        assert!(r.contains('*'));
    }

    #[test]
    fn empty_series_renders_axes_only() {
        let chart = AsciiChart::new(labels(3), vec![], 20, 5);
        let r = chart.render();
        assert!(r.contains('+'));
        assert!(!r.contains('*'));
    }

    #[test]
    fn nan_points_are_skipped() {
        let chart = AsciiChart::new(
            labels(3),
            vec![Series { name: "s".into(), values: vec![1.0, f64::NAN, 3.0] }],
            20,
            5,
        );
        let r = chart.render();
        // Two data points plus the legend's glyph.
        assert_eq!(r.matches('*').count(), 3);
    }

    #[test]
    fn dimensions_are_clamped() {
        let chart = AsciiChart::new(labels(2), vec![], 1, 1);
        assert!(chart.render().lines().count() >= 4);
    }
}
