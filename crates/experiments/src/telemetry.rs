//! The instrumented telemetry pass: re-runs systems with a full
//! observability stack attached — [`StatsSink`] histograms, optional
//! JSONL event streams, optional Chrome `trace_event` output — and
//! renders the per-system walk-latency summary table.
//!
//! The pass warms caches and TLBs with the zero-cost [`vm_obs::NopSink`]
//! and attaches the instrumented sink only for the measurement phase, so
//! exported event streams reconcile exactly with the reported counters.

use std::time::Instant;

use vm_core::{SimConfig, SimReport, SystemKind};
use vm_obs::json::Value;
use vm_obs::{summary_line, ChromeTraceSink, JsonlSink, ObsSnapshot, Sink, StatsSink, Tee};
use vm_trace::WorkloadSpec;

use crate::runner::RunScale;
use crate::TextTable;
use vm_obs::Reporter;

/// Shifts every event's timestamp by a fixed base, so several sequential
/// runs can share one Chrome-trace timeline without overlapping.
struct Shift<S> {
    base: u64,
    inner: S,
}

impl<S: Sink> Sink for Shift<S> {
    const ENABLED: bool = S::ENABLED;

    fn emit(&mut self, now: u64, ev: &vm_obs::Event) {
        self.inner.emit(self.base + now, ev);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// What to instrument: a list of labelled system configurations run
/// against one workload.
#[derive(Debug, Clone)]
pub struct Config {
    /// The systems to run, in order.
    pub configs: Vec<SimConfig>,
    /// The workload model every system replays.
    pub workload: WorkloadSpec,
    /// Workload generator seed.
    pub seed: u64,
    /// Run lengths.
    pub scale: RunScale,
}

impl Config {
    /// The paper's six systems (Table 1) against `workload`.
    pub fn paper_systems(workload: WorkloadSpec, scale: RunScale) -> Config {
        Config {
            configs: SystemKind::PAPER.into_iter().map(SimConfig::paper_default).collect(),
            workload,
            seed: 1,
            scale,
        }
    }

    /// A single custom configuration (the `repro run` subcommand).
    pub fn single(config: SimConfig, workload: WorkloadSpec, seed: u64, scale: RunScale) -> Config {
        Config { configs: vec![config], workload, seed, scale }
    }
}

/// One instrumented system run.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// The full simulation report (with `report.obs` populated).
    pub report: SimReport,
    /// The observability snapshot (also on `report.obs`; duplicated here
    /// for convenience).
    pub snapshot: ObsSnapshot,
}

/// Everything the telemetry pass produced.
#[derive(Debug)]
pub struct Telemetry {
    /// Per-system runs, in configuration order.
    pub runs: Vec<SystemRun>,
    /// The JSONL event stream, when requested: `run_start` marker,
    /// events, and a `run_summary` line per system.
    pub events_jsonl: Option<Vec<u8>>,
    /// The Chrome `trace_event` document, when requested: one span per
    /// system plus instants on per-event-kind lanes, on a shared
    /// timeline (1 user instruction = 1 µs).
    pub chrome_trace: Option<Vec<u8>>,
}

/// Gap inserted between systems on the shared Chrome timeline.
const TIMELINE_GAP: u64 = 1_000;

/// Runs the telemetry pass. `want_events` / `want_chrome` select which
/// export streams to materialize; histograms are always computed.
///
/// # Panics
///
/// Panics if a configuration or the workload fails to build (both come
/// from validated presets or CLI-checked values).
pub fn run(cfg: &Config, want_events: bool, want_chrome: bool, reporter: &Reporter) -> Telemetry {
    let mut runs = Vec::with_capacity(cfg.configs.len());
    let mut jsonl_buf: Vec<u8> = Vec::new();
    let mut chrome = want_chrome.then(|| ChromeTraceSink::new(Vec::new()));
    let mut base = 0u64;

    for config in &cfg.configs {
        let started = Instant::now();
        let mut system =
            config.build().unwrap_or_else(|e| panic!("telemetry {}: {e}", config.system));
        let mut trace =
            cfg.workload.build(cfg.seed).unwrap_or_else(|e| panic!("telemetry workload: {e}"));
        // Warm up at full speed, un-instrumented.
        system.run(&mut trace, cfg.scale.warmup);

        // Attach the full stack for the measurement phase. Disabled
        // streams still type-check as sinks but skip all I/O.
        if want_events {
            let marker = Value::obj([
                ("t", 0u64.into()),
                ("ev", "run_start".into()),
                ("system", config.system.label().into()),
            ]);
            jsonl_buf.extend_from_slice(marker.to_string().as_bytes());
            jsonl_buf.push(b'\n');
        }
        let jsonl = want_events.then(|| JsonlSink::new(&mut jsonl_buf));
        let sink = Tee(StatsSink::default(), Tee(jsonl, Shift { base, inner: chrome.as_mut() }));
        let mut system = system.with_sink(sink);
        system.reset_counters();
        system.run(&mut trace, cfg.scale.measure);
        let report = system.report();
        let Tee(stats, Tee(jsonl, _)) = system.into_sink();

        let snapshot = stats.snapshot().expect("StatsSink always snapshots");
        if let Some(jsonl) = jsonl {
            if let Err(e) = jsonl.finish() {
                reporter.progress(format!("telemetry: JSONL write failed: {e}"));
            }
            jsonl_buf.extend_from_slice(
                summary_line(config.system.label(), report.counts.user_instrs, &snapshot)
                    .to_string()
                    .as_bytes(),
            );
            jsonl_buf.push(b'\n');
        }
        if let Some(chrome) = chrome.as_mut() {
            chrome.span(
                config.system.label(),
                base,
                base + report.counts.user_instrs,
                [
                    ("instrs", report.counts.user_instrs.into()),
                    ("tlb_misses", snapshot.total_tlb_misses().into()),
                    ("walks", snapshot.counters.walks[0].into()),
                ],
            );
        }
        base += report.counts.user_instrs + TIMELINE_GAP;
        reporter.detail(format!(
            "  [telemetry] {} done in {:.2}s ({} events captured)",
            config.system.label(),
            started.elapsed().as_secs_f64(),
            snapshot.total_tlb_misses(),
        ));
        runs.push(SystemRun { report, snapshot });
    }

    Telemetry {
        runs,
        events_jsonl: want_events.then_some(jsonl_buf),
        chrome_trace: chrome.map(|c| c.finish().expect("Vec<u8> writes cannot fail")),
    }
}

impl Telemetry {
    /// The per-system histogram summary table: walk latency (p50 / p90 /
    /// max cycles), handler footprint (mean memory references per walk),
    /// and inter-miss distance (median instructions between TLB misses).
    pub fn render_summary(&self) -> String {
        let mut t = TextTable::new([
            "system",
            "tlb-misses",
            "walks",
            "walk-cyc p50",
            "p90",
            "max",
            "memrefs mean",
            "inter-miss p50",
        ]);
        for run in &self.runs {
            let s = &run.snapshot;
            let wc = s.walk_cycles.summary();
            let im = s.inter_miss.summary();
            t.row([
                run.report.system.clone(),
                s.total_tlb_misses().to_string(),
                wc.count.to_string(),
                wc.p50.to_string(),
                wc.p90.to_string(),
                wc.max.to_string(),
                format!("{:.2}", s.walk_memrefs.mean()),
                im.p50.to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_obs::json;
    use vm_trace::presets;

    fn tiny() -> Config {
        let mut cfg = Config::paper_systems(
            presets::ijpeg_spec(),
            RunScale { warmup: 2_000, measure: 20_000 },
        );
        cfg.configs.truncate(2); // ULTRIX + MACH keep the test fast
        cfg
    }

    #[test]
    fn stats_only_pass_populates_snapshots() {
        let t = run(&tiny(), false, false, &Reporter::silent());
        assert_eq!(t.runs.len(), 2);
        assert!(t.events_jsonl.is_none());
        assert!(t.chrome_trace.is_none());
        for r in &t.runs {
            assert_eq!(r.report.counts.user_instrs, 20_000);
            assert_eq!(r.report.obs.as_ref(), Some(&r.snapshot));
            // ULTRIX/MACH software-walk: every user walk is histogrammed.
            assert_eq!(r.snapshot.walk_cycles.count(), r.snapshot.counters.walks[0]);
        }
        let table = t.render_summary();
        assert!(table.contains("ULTRIX"), "{table}");
        assert!(table.contains("walk-cyc p50"), "{table}");
    }

    #[test]
    fn jsonl_stream_has_markers_events_and_summaries() {
        let t = run(&tiny(), true, false, &Reporter::silent());
        let text = String::from_utf8(t.events_jsonl.unwrap()).unwrap();
        let mut starts = 0;
        let mut summaries = 0;
        let mut events = 0;
        for line in text.lines() {
            let v = json::parse(line).expect("every line is one JSON object");
            assert!(v.get("t").is_some() && v.get("ev").is_some(), "stable schema: {line}");
            match v.get("ev").unwrap().as_str().unwrap() {
                "run_start" => starts += 1,
                "run_summary" => summaries += 1,
                _ => events += 1,
            }
        }
        assert_eq!(starts, 2);
        assert_eq!(summaries, 2);
        assert!(events > 0, "instrumented runs must emit events");
    }

    #[test]
    fn chrome_trace_parses_with_one_span_per_system() {
        let t = run(&tiny(), false, true, &Reporter::silent());
        let text = String::from_utf8(t.chrome_trace.unwrap()).unwrap();
        let doc = json::parse(&text).expect("chrome trace must be valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let spans: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
        assert_eq!(spans.len(), 2);
        // The second system's span starts after the first one ends.
        let end0 = spans[0].get("ts").unwrap().as_u64().unwrap()
            + spans[0].get("dur").unwrap().as_u64().unwrap();
        assert!(spans[1].get("ts").unwrap().as_u64().unwrap() >= end0);
    }
}
