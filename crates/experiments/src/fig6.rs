//! Figures 6 and 7: VMCPI as a function of L1/L2 cache size and line
//! size, per VM organization.
//!
//! The paper plots, for each of the five VM systems, VMCPI against L1
//! cache size (1–128 KB per side) with one curve per L1/L2 line-size
//! pair, in three panels for 1, 2 and 4 MB total L2. Figure 6 is gcc;
//! Figure 7 is vortex (run this module with the vortex workload).

use vm_core::cost::CostModel;
use vm_core::{paper, SimConfig, SystemKind};
use vm_trace::WorkloadSpec;

use crate::chart::{AsciiChart, Series};
use crate::claim::Claim;
use crate::runner::{run_jobs, Job, Outcome, RunScale};
use crate::table::{size_label, TextTable};

/// Parameter space for a Figure 6/7 sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// The workload (gcc for Figure 6, vortex for Figure 7).
    pub workload: WorkloadSpec,
    /// Systems to sweep (default: the five VM systems).
    pub systems: Vec<SystemKind>,
    /// L1 sizes per side.
    pub l1_sizes: Vec<u64>,
    /// `(l1_line, l2_line)` pairs — the paper's curves.
    pub line_pairs: Vec<(u64, u64)>,
    /// L2 sizes per side.
    pub l2_sizes: Vec<u64>,
    /// Run lengths.
    pub scale: RunScale,
    /// Worker threads.
    pub threads: usize,
}

impl Config {
    /// The paper's sweep for the given workload: all eight L1 sizes,
    /// four representative line pairs, all three L2 sizes.
    pub fn paper(workload: WorkloadSpec) -> Config {
        Config {
            workload,
            systems: SystemKind::VM_SYSTEMS.to_vec(),
            l1_sizes: paper::L1_SIZES.to_vec(),
            line_pairs: vec![(16, 32), (32, 64), (64, 128), (128, 128)],
            l2_sizes: paper::L2_SIZES.to_vec(),
            scale: RunScale::DEFAULT,
            threads: 1,
        }
    }

    /// A reduced sweep for smoke tests: four L1 sizes, two line pairs,
    /// two L2 sizes.
    pub fn quick(workload: WorkloadSpec) -> Config {
        Config {
            l1_sizes: vec![4 << 10, 16 << 10, 64 << 10, 128 << 10],
            line_pairs: vec![(32, 64), (64, 128)],
            l2_sizes: vec![512 << 10, 2 << 20],
            scale: RunScale::QUICK,
            ..Config::paper(workload)
        }
    }
}

/// One measured point of the figure.
#[derive(Debug, Clone)]
pub struct Point {
    /// Simulated system.
    pub system: SystemKind,
    /// L1 size per side.
    pub l1: u64,
    /// L1 line size.
    pub l1_line: u64,
    /// L2 size per side.
    pub l2: u64,
    /// L2 line size.
    pub l2_line: u64,
    /// Measured VMCPI (interrupt cost excluded, as in the figures).
    pub vmcpi: f64,
}

/// The full figure: points over the swept space.
#[derive(Debug, Clone)]
pub struct Result {
    /// Workload name.
    pub workload: String,
    /// All measured points.
    pub points: Vec<Point>,
}

/// Runs the sweep.
pub fn run(config: &Config) -> Result {
    let mut jobs = Vec::new();
    for &system in &config.systems {
        for &l2 in &config.l2_sizes {
            for &(l1_line, l2_line) in &config.line_pairs {
                for &l1 in &config.l1_sizes {
                    let mut sim = SimConfig::paper_default(system);
                    sim.l1_bytes = l1;
                    sim.l1_line = l1_line;
                    sim.l2_bytes = l2;
                    sim.l2_line = l2_line;
                    jobs.push(Job::new(
                        format!("{system}/{}/{}", size_label(l1), size_label(l2)),
                        sim,
                        config.workload.clone(),
                        config.scale,
                    ));
                }
            }
        }
    }
    let outcomes = run_jobs(jobs, config.threads);
    let cost = CostModel::default();
    let points = outcomes
        .iter()
        .map(|o: &Outcome| Point {
            system: o.job.config.system,
            l1: o.job.config.l1_bytes,
            l1_line: o.job.config.l1_line,
            l2: o.job.config.l2_bytes,
            l2_line: o.job.config.l2_line,
            vmcpi: o.report.vmcpi(&cost).total(),
        })
        .collect();
    Result { workload: config.workload.name.clone(), points }
}

impl Result {
    /// Renders one table per (system, L2 size): rows are line pairs,
    /// columns are L1 sizes — the figure's curves as numbers.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut systems: Vec<SystemKind> = self.points.iter().map(|p| p.system).collect();
        systems.dedup();
        let mut l2s: Vec<u64> = self.points.iter().map(|p| p.l2).collect();
        l2s.sort_unstable();
        l2s.dedup();
        let mut l1s: Vec<u64> = self.points.iter().map(|p| p.l1).collect();
        l1s.sort_unstable();
        l1s.dedup();
        let mut pairs: Vec<(u64, u64)> =
            self.points.iter().map(|p| (p.l1_line, p.l2_line)).collect();
        pairs.sort_unstable();
        pairs.dedup();

        for &system in &systems {
            for &l2 in &l2s {
                out.push_str(&format!(
                    "\n{} — {} ({} total L2, split I/D): VMCPI\n",
                    system,
                    self.workload,
                    size_label(2 * l2)
                ));
                let mut headers = vec!["lines L1/L2".to_owned()];
                headers.extend(l1s.iter().map(|&s| format!("L1={}", size_label(s))));
                let mut table = TextTable::new(headers);
                for &(a, b) in &pairs {
                    let mut row = vec![format!("{a}/{b}")];
                    for &l1 in &l1s {
                        let v = self
                            .points
                            .iter()
                            .find(|p| {
                                p.system == system
                                    && p.l2 == l2
                                    && p.l1 == l1
                                    && (p.l1_line, p.l2_line) == (a, b)
                            })
                            .map(|p| format!("{:.5}", p.vmcpi))
                            .unwrap_or_default();
                        row.push(v);
                    }
                    table.row(row);
                }
                out.push_str(&table.render());
                // The same panel as an ASCII chart, one curve per line pair.
                let series: Vec<Series> = pairs
                    .iter()
                    .map(|&(a, b)| Series {
                        name: format!("{a}/{b}"),
                        values: l1s
                            .iter()
                            .map(|&l1| {
                                self.points
                                    .iter()
                                    .find(|p| {
                                        p.system == system
                                            && p.l2 == l2
                                            && p.l1 == l1
                                            && (p.l1_line, p.l2_line) == (a, b)
                                    })
                                    .map(|p| p.vmcpi)
                                    .unwrap_or(f64::NAN)
                            })
                            .collect(),
                    })
                    .collect();
                let labels: Vec<String> = l1s.iter().map(|&s| size_label(s)).collect();
                out.push_str(&AsciiChart::new(labels, series, 56, 10).render());
            }
        }
        out
    }

    /// CSV of all points.
    pub fn to_csv(&self) -> String {
        let mut t =
            TextTable::new(["workload", "system", "l1", "l1_line", "l2", "l2_line", "vmcpi"]);
        for p in &self.points {
            t.row([
                self.workload.clone(),
                p.system.label().to_owned(),
                p.l1.to_string(),
                p.l1_line.to_string(),
                p.l2.to_string(),
                p.l2_line.to_string(),
                format!("{:.6}", p.vmcpi),
            ]);
        }
        t.to_csv()
    }

    fn mean_vmcpi(&self, system: SystemKind) -> f64 {
        let vs: Vec<f64> =
            self.points.iter().filter(|p| p.system == system).map(|p| p.vmcpi).collect();
        vs.iter().sum::<f64>() / vs.len().max(1) as f64
    }

    /// Sensitivity of a system to the cache organization: max/min VMCPI
    /// over the swept space.
    fn sensitivity(&self, system: SystemKind) -> f64 {
        let vs: Vec<f64> =
            self.points.iter().filter(|p| p.system == system).map(|p| p.vmcpi).collect();
        let max = vs.iter().cloned().fold(f64::MIN, f64::max);
        let min = vs.iter().cloned().fold(f64::MAX, f64::min);
        if min > 0.0 {
            max / min
        } else {
            f64::INFINITY
        }
    }

    /// Checks the paper's Section 4.1 findings against this sweep.
    pub fn claims(&self) -> Vec<Claim> {
        let mut claims = Vec::new();
        let have = |s: SystemKind| self.points.iter().any(|p| p.system == s);

        if have(SystemKind::Ultrix) && have(SystemKind::Mach) {
            let (u, m) = (self.mean_vmcpi(SystemKind::Ultrix), self.mean_vmcpi(SystemKind::Mach));
            claims.push(Claim::new(
                "ULTRIX and MACH have surprisingly similar overheads despite MACH's costly root level",
                (m - u).abs() / u.max(1e-12) < 0.35 && m >= u * 0.9,
                format!("mean VMCPI: ULTRIX {u:.4}, MACH {m:.4}"),
            ));
        }
        if have(SystemKind::NoTlb) && have(SystemKind::Ultrix) {
            let (n, u) =
                (self.sensitivity(SystemKind::NoTlb), self.sensitivity(SystemKind::Ultrix));
            claims.push(Claim::new(
                "NOTLB is much more sensitive to cache organization than TLB-based schemes",
                n > 1.5 * u,
                format!("max/min VMCPI over sweep: NOTLB {n:.1}x, ULTRIX {u:.1}x"),
            ));
        }
        if have(SystemKind::NoTlb) {
            // "does about as well as the other schemes, once the L2 cache is
            // large enough (2MB+ total) and L2 linesize >= 64 bytes"
            let best_cfg: Vec<&Point> = self
                .points
                .iter()
                .filter(|p| {
                    p.system == SystemKind::NoTlb && 2 * p.l2 >= (2 << 20) && p.l2_line >= 64
                })
                .collect();
            let others_best: f64 = SystemKind::VM_SYSTEMS
                .iter()
                .filter(|&&s| s != SystemKind::NoTlb && have(s))
                .map(|&s| self.mean_vmcpi(s))
                .fold(f64::MAX, f64::min);
            if !best_cfg.is_empty() {
                let notlb_best =
                    best_cfg.iter().map(|p| p.vmcpi).sum::<f64>() / best_cfg.len() as f64;
                claims.push(Claim::new(
                    "with a large L2 and >=64-byte L2 lines, NOTLB is competitive (within ~4x of the best TLB scheme)",
                    notlb_best < 4.0 * others_best,
                    format!("NOTLB large-L2 mean {notlb_best:.4} vs best TLB-scheme mean {others_best:.4}"),
                ));
            }
        }
        claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_trace::presets;

    fn tiny_config() -> Config {
        Config {
            l1_sizes: vec![4 << 10, 64 << 10],
            line_pairs: vec![(32, 64)],
            l2_sizes: vec![512 << 10],
            scale: RunScale { warmup: 5_000, measure: 20_000 },
            systems: vec![SystemKind::Ultrix, SystemKind::NoTlb],
            ..Config::paper(presets::ijpeg_spec())
        }
    }

    #[test]
    fn sweep_produces_full_grid() {
        let r = run(&tiny_config());
        assert_eq!(r.points.len(), 2 * 2); // 2 systems x 2 L1 sizes
        assert!(r.points.iter().all(|p| p.vmcpi >= 0.0));
    }

    #[test]
    fn render_mentions_each_system_and_size() {
        let r = run(&tiny_config());
        let text = r.render();
        assert!(text.contains("ULTRIX"));
        assert!(text.contains("NOTLB"));
        assert!(text.contains("L1=4K"));
        assert!(text.contains("L1=64K"));
        assert!(text.contains("1M total L2"));
    }

    #[test]
    fn csv_has_a_line_per_point_plus_header() {
        let r = run(&tiny_config());
        assert_eq!(r.to_csv().lines().count(), r.points.len() + 1);
    }

    #[test]
    fn quick_config_is_smaller_than_paper() {
        let q = Config::quick(presets::gcc_spec());
        let p = Config::paper(presets::gcc_spec());
        assert!(q.l1_sizes.len() < p.l1_sizes.len());
        assert!(q.scale.measure < p.scale.measure);
    }
}
