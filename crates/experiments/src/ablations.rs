//! The Section 4.2 interpolations and other design ablations.
//!
//! After presenting the five systems, the paper invites the reader to
//! "interpolate for the costs of other VM organizations, such as an
//! inverted page table with a hardware-managed TLB [PowerPC, PA-7200], a
//! MIPS-style page table with a hardware-managed TLB, or a system with
//! no TLB but a hardware-walked page table". These ablations build those
//! systems instead of interpolating, and additionally vary the design
//! knobs the paper held fixed (cache associativity, TLB replacement).

use vm_cache::Associativity;
use vm_core::cost::CostModel;
use vm_core::{SimConfig, SystemKind};
use vm_tlb::Replacement;
use vm_trace::WorkloadSpec;

use crate::claim::Claim;
use crate::runner::{run_jobs, Job, Outcome, RunScale};
use crate::table::TextTable;

/// Which ablation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// `abl-hybrid`: hardware-managed TLB over the hashed/inverted table
    /// (PowerPC / PA-7200) against its software parent and INTEL.
    Hybrid,
    /// `abl-walkmode`: the same MIPS-style table walked by software
    /// vs. by a hardware state machine, next to INTEL's top-down walk.
    WalkMode,
    /// `abl-assoc`: cache associativity (the paper fixed direct-mapped
    /// "to avoid obscuring performance differences").
    Associativity,
    /// `abl-tlb`: TLB replacement policy and the protected partition
    /// (the paper fixed random replacement and 16 protected slots).
    TlbPolicy,
    /// `abl-ctx`: context-switch pressure — flush the TLBs every N
    /// instructions, the multiprogramming effect the paper's
    /// single-process traces exclude.
    ContextSwitch,
    /// `abl-unified`: split vs unified L2 at equal total capacity — the
    /// comparison Table 1 sets aside ("unified caches, while giving
    /// better performance, would add too many variables").
    UnifiedL2,
}

impl Ablation {
    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Ablation::Hybrid => "abl-hybrid",
            Ablation::WalkMode => "abl-walkmode",
            Ablation::Associativity => "abl-assoc",
            Ablation::TlbPolicy => "abl-tlb",
            Ablation::ContextSwitch => "abl-ctx",
            Ablation::UnifiedL2 => "abl-unified",
        }
    }

    /// One-line description for `--help` (via the experiment registry).
    pub fn describe(self) -> &'static str {
        match self {
            Ablation::Hybrid => "hardware TLB over the hashed/inverted table (PowerPC, PA-7200)",
            Ablation::WalkMode => "MIPS-style table walked by software vs a hardware state machine",
            Ablation::Associativity => "cache associativity (the paper fixed direct-mapped)",
            Ablation::TlbPolicy => "TLB replacement policy and the protected partition",
            Ablation::ContextSwitch => {
                "context-switch pressure: flush the TLBs every N instructions"
            }
            Ablation::UnifiedL2 => "split vs unified L2 at equal total capacity",
        }
    }

    /// All ablations.
    pub const ALL: [Ablation; 6] = [
        Ablation::Hybrid,
        Ablation::WalkMode,
        Ablation::Associativity,
        Ablation::TlbPolicy,
        Ablation::ContextSwitch,
        Ablation::UnifiedL2,
    ];
}

/// Configuration for an ablation run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Which ablation.
    pub ablation: Ablation,
    /// Workloads to measure.
    pub workloads: Vec<WorkloadSpec>,
    /// Run lengths.
    pub scale: RunScale,
    /// Worker threads.
    pub threads: usize,
}

impl Config {
    /// Default configuration for an ablation.
    pub fn new(ablation: Ablation, workloads: Vec<WorkloadSpec>) -> Config {
        Config { ablation, workloads, scale: RunScale::DEFAULT, threads: 1 }
    }
}

/// One measured variant.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Variant label (system or knob setting).
    pub variant: String,
    /// VMCPI excluding interrupts.
    pub vmcpi: f64,
    /// Interrupt CPI at the default 50-cycle cost.
    pub interrupt_cpi: f64,
    /// MCPI (user references).
    pub mcpi: f64,
    /// Mean PTE loads per user-level walk (0 when no walks ran).
    pub pte_loads_per_walk: f64,
}

/// The measured ablation.
#[derive(Debug, Clone)]
pub struct Result {
    /// Which ablation ran.
    pub ablation: Ablation,
    /// All rows.
    pub rows: Vec<Row>,
}

fn job(label: &str, config: SimConfig, workload: &WorkloadSpec, scale: RunScale) -> Job {
    Job::new(label, config, workload.clone(), scale)
}

/// Runs the chosen ablation.
pub fn run(config: &Config) -> Result {
    let mut jobs = Vec::new();
    for w in &config.workloads {
        match config.ablation {
            Ablation::Hybrid => {
                for system in [
                    SystemKind::InvertedHat,
                    SystemKind::PaRisc,
                    SystemKind::Hybrid,
                    SystemKind::Intel,
                ] {
                    jobs.push(job(
                        system.label(),
                        SimConfig::paper_default(system),
                        w,
                        config.scale,
                    ));
                }
            }
            Ablation::WalkMode => {
                for system in [
                    SystemKind::Ultrix,
                    SystemKind::UltrixHw,
                    SystemKind::Intel,
                    SystemKind::NoTlb,
                    SystemKind::NoTlbHw,
                ] {
                    jobs.push(job(
                        system.label(),
                        SimConfig::paper_default(system),
                        w,
                        config.scale,
                    ));
                }
            }
            Ablation::Associativity => {
                for (label, assoc) in [
                    ("direct-mapped", Associativity::DirectMapped),
                    ("2-way", Associativity::Ways(2)),
                    ("4-way", Associativity::Ways(4)),
                ] {
                    let mut sim = SimConfig::paper_default(SystemKind::Ultrix);
                    sim.associativity = assoc;
                    jobs.push(job(label, sim, w, config.scale));
                }
            }
            Ablation::TlbPolicy => {
                for (label, policy) in [
                    ("random", Replacement::Random),
                    ("LRU", Replacement::Lru),
                    ("FIFO", Replacement::Fifo),
                ] {
                    let mut sim = SimConfig::paper_default(SystemKind::Ultrix);
                    sim.tlb_replacement = policy;
                    jobs.push(job(label, sim, w, config.scale));
                }
                // The partition ablation: give ULTRIX no protected slots,
                // so root-level PTEs fight user entries for residency.
                let mut sim = SimConfig::paper_default(SystemKind::Ultrix);
                sim.tlb_protected = Some(0);
                jobs.push(job("unpartitioned", sim, w, config.scale));
            }
            Ablation::UnifiedL2 => {
                for system in [SystemKind::Ultrix, SystemKind::NoTlb] {
                    for (suffix, unified) in [("split", false), ("unified", true)] {
                        let mut sim = SimConfig::paper_default(system);
                        sim.unified_l2 = unified;
                        jobs.push(job(
                            &format!("{}-{suffix}", system.label()),
                            sim,
                            w,
                            config.scale,
                        ));
                    }
                }
            }
            Ablation::ContextSwitch => {
                for (label, every) in [
                    ("no-switches", None),
                    ("every-1M", Some(1_000_000)),
                    ("every-100k", Some(100_000)),
                    ("every-10k", Some(10_000)),
                ] {
                    let mut sim = SimConfig::paper_default(SystemKind::Ultrix);
                    sim.flush_tlb_every = every;
                    jobs.push(job(label, sim, w, config.scale));
                }
            }
        }
    }
    let outcomes = run_jobs(jobs, config.threads);
    let cost = CostModel::default();
    let rows = outcomes
        .iter()
        .map(|o: &Outcome| Row {
            workload: o.job.workload.name.clone(),
            variant: o.job.label.clone(),
            vmcpi: o.report.vmcpi(&cost).total(),
            interrupt_cpi: o.report.interrupt_cpi(&cost),
            mcpi: o.report.mcpi(&cost).total(),
            pte_loads_per_walk: {
                let walks = o.report.counts.handler_invocations[0];
                if walks == 0 {
                    0.0
                } else {
                    o.report.counts.pte_loads.iter().sum::<u64>() as f64 / walks as f64
                }
            },
        })
        .collect();
    Result { ablation: config.ablation, rows }
}

impl Result {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t =
            TextTable::new(["workload", "variant", "VMCPI", "int CPI@50", "VM total", "MCPI"]);
        for r in &self.rows {
            t.row([
                r.workload.clone(),
                r.variant.clone(),
                format!("{:.5}", r.vmcpi),
                format!("{:.5}", r.interrupt_cpi),
                format!("{:.5}", r.vmcpi + r.interrupt_cpi),
                format!("{:.4}", r.mcpi),
            ]);
        }
        format!("{}\n{}", self.ablation.name(), t.render())
    }

    /// CSV of all rows.
    pub fn to_csv(&self) -> String {
        let mut t = TextTable::new(["workload", "variant", "vmcpi", "interrupt_cpi", "mcpi"]);
        for r in &self.rows {
            t.row([
                r.workload.clone(),
                r.variant.clone(),
                format!("{:.6}", r.vmcpi),
                format!("{:.6}", r.interrupt_cpi),
                format!("{:.6}", r.mcpi),
            ]);
        }
        t.to_csv()
    }

    fn mean_total(&self, variant: &str) -> Option<f64> {
        crate::claim::mean_of(
            self.rows.iter().filter(|r| r.variant == variant).map(|r| r.vmcpi + r.interrupt_cpi),
        )
    }

    /// Checks the expectation attached to each ablation.
    pub fn claims(&self) -> Vec<Claim> {
        let mut claims = Vec::new();
        match self.ablation {
            Ablation::Hybrid => {
                if let (Some(hybrid), Some(parisc)) =
                    (self.mean_total("HYBRID"), self.mean_total("PA-RISC"))
                {
                    claims.push(Claim::new(
                        "the hardware-walked inverted table (PowerPC/PA-7200 style) beats its software-walked parent",
                        hybrid < parisc,
                        format!("VM total: HYBRID {hybrid:.5} vs PA-RISC {parisc:.5}"),
                    ));
                }
                // Figure 4's claim is about the lookup *algorithm*: the
                // hashed table "eliminat[es] one memory reference". The
                // cache-weighted totals can still favour the classical
                // table (its 1:1 sizing halves the table's cache
                // footprint) — both facts are reported.
                let loads_of = |variant: &str| {
                    crate::claim::mean_of(
                        self.rows
                            .iter()
                            .filter(|r| r.variant == variant)
                            .map(|r| r.pte_loads_per_walk),
                    )
                };
                if let (Some(classical), Some(hashed)) = (loads_of("INV-HAT"), loads_of("PA-RISC"))
                {
                    claims.push(Claim::new(
                        "the hashed table eliminates roughly one memory reference per walk vs the classical+HAT design",
                        classical > hashed + 0.7,
                        format!("PTE loads per walk: classical+HAT {classical:.2} vs hashed {hashed:.2}"),
                    ));
                }
            }
            Ablation::WalkMode => {
                if let (Some(hw), Some(sw)) =
                    (self.mean_total("ULTRIX-HW"), self.mean_total("ULTRIX"))
                {
                    claims.push(Claim::new(
                        "hardware-walking the MIPS-style table removes the interrupt and I-cache costs",
                        hw < sw,
                        format!("VM total: ULTRIX-HW {hw:.5} vs ULTRIX {sw:.5}"),
                    ));
                }
                if let (Some(hw), Some(sw)) =
                    (self.mean_total("NOTLB-HW"), self.mean_total("NOTLB"))
                {
                    claims.push(Claim::new(
                        "a SPUR-like hardware walker rescues the TLB-less design from its interrupt costs",
                        hw < 0.7 * sw,
                        format!("VM total: NOTLB-HW {hw:.5} vs NOTLB {sw:.5}"),
                    ));
                }
            }
            Ablation::Associativity => {
                let dm: Vec<f64> = self
                    .rows
                    .iter()
                    .filter(|r| r.variant == "direct-mapped")
                    .map(|r| r.mcpi)
                    .collect();
                let w4: Vec<f64> =
                    self.rows.iter().filter(|r| r.variant == "4-way").map(|r| r.mcpi).collect();
                if !dm.is_empty() && !w4.is_empty() {
                    let (dm, w4) = (
                        dm.iter().sum::<f64>() / dm.len() as f64,
                        w4.iter().sum::<f64>() / w4.len() as f64,
                    );
                    claims.push(Claim::new(
                        "set associativity improves cache behaviour (the paper's reason for fixing DM was clarity, not performance)",
                        w4 < dm,
                        format!("MCPI: direct-mapped {dm:.4} vs 4-way {w4:.4}"),
                    ));
                }
            }
            Ablation::TlbPolicy => {
                if let (Some(rand), Some(lru)) = (self.mean_total("random"), self.mean_total("LRU"))
                {
                    claims.push(Claim::new(
                        "TLB replacement policy is a second-order effect (random within 2x of LRU)",
                        rand < 2.0 * lru && lru < 2.0 * rand,
                        format!("VM total: random {rand:.5} vs LRU {lru:.5}"),
                    ));
                }
                if let (Some(part), Some(flat)) =
                    (self.mean_total("random"), self.mean_total("unpartitioned"))
                {
                    claims.push(Claim::new(
                        "removing the protected partition does not help (root PTEs must fight user traffic)",
                        flat > 0.9 * part,
                        format!("VM total: partitioned {part:.5} vs unpartitioned {flat:.5}"),
                    ));
                }
            }
            Ablation::UnifiedL2 => {
                for sys in ["ULTRIX", "NOTLB"] {
                    if let (Some(split), Some(unified)) = (
                        self.mean_total(&format!("{sys}-split")),
                        self.mean_total(&format!("{sys}-unified")),
                    ) {
                        claims.push(Claim::new(
                            format!("{sys}: a unified L2 of equal total capacity performs at least comparably (Table 1's set-aside)"),
                            unified < 1.25 * split,
                            format!("VM total: split {split:.5} vs unified {unified:.5}"),
                        ));
                    }
                }
            }
            Ablation::ContextSwitch => {
                if let (Some(none), Some(hot)) =
                    (self.mean_total("no-switches"), self.mean_total("every-10k"))
                {
                    claims.push(Claim::new(
                        "frequent context switches multiply software-managed-TLB overhead",
                        hot > 1.5 * none,
                        format!("VM total: no switches {none:.5} vs every 10k instrs {hot:.5}"),
                    ));
                }
            }
        }
        claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_trace::presets;

    fn tiny(ablation: Ablation) -> Config {
        Config {
            ablation,
            workloads: vec![presets::gcc_spec()],
            scale: RunScale { warmup: 20_000, measure: 80_000 },
            threads: 1,
        }
    }

    #[test]
    fn hybrid_ablation_runs_four_variants() {
        let r = run(&tiny(Ablation::Hybrid));
        let variants: Vec<&str> = r.rows.iter().map(|x| x.variant.as_str()).collect();
        assert_eq!(variants, ["INV-HAT", "PA-RISC", "HYBRID", "INTEL"]);
        // The hybrid never interrupts; the software tables do.
        let hybrid = r.rows.iter().find(|x| x.variant == "HYBRID").unwrap();
        assert_eq!(hybrid.interrupt_cpi, 0.0);
        let classical = r.rows.iter().find(|x| x.variant == "INV-HAT").unwrap();
        assert!(classical.interrupt_cpi > 0.0);
    }

    #[test]
    fn walkmode_hw_beats_sw() {
        let r = run(&tiny(Ablation::WalkMode));
        let claims = r.claims();
        assert!(!claims.is_empty());
        assert!(claims[0].holds, "{}", claims[0]);
    }

    #[test]
    fn assoc_ablation_uses_all_three_geometries() {
        let r = run(&tiny(Ablation::Associativity));
        assert_eq!(r.rows.len(), 3);
        assert!(r.render().contains("4-way"));
    }

    #[test]
    fn tlb_policy_rows_have_distinct_labels() {
        let r = run(&tiny(Ablation::TlbPolicy));
        let mut v: Vec<&str> = r.rows.iter().map(|x| x.variant.as_str()).collect();
        v.dedup();
        assert_eq!(v, ["random", "LRU", "FIFO", "unpartitioned"]);
    }

    #[test]
    fn context_switch_ablation_escalates_with_switch_rate() {
        let r = run(&tiny(Ablation::ContextSwitch));
        assert_eq!(r.rows.len(), 4);
        let none = r.rows.iter().find(|x| x.variant == "no-switches").unwrap();
        let hot = r.rows.iter().find(|x| x.variant == "every-10k").unwrap();
        assert!(
            hot.vmcpi > none.vmcpi,
            "flushing TLBs every 10k instructions must raise VMCPI ({} vs {})",
            hot.vmcpi,
            none.vmcpi
        );
    }

    #[test]
    fn walkmode_includes_the_spur_variant() {
        let r = run(&tiny(Ablation::WalkMode));
        let variants: Vec<&str> = r.rows.iter().map(|x| x.variant.as_str()).collect();
        assert!(variants.contains(&"NOTLB-HW"));
        let spur = r.rows.iter().find(|x| x.variant == "NOTLB-HW").unwrap();
        assert_eq!(spur.interrupt_cpi, 0.0, "the SPUR-like walker never interrupts");
    }

    #[test]
    fn names_round_trip() {
        for a in Ablation::ALL {
            assert!(a.name().starts_with("abl-"));
        }
    }
}
