//! Parallel execution of simulation jobs, with an optional heartbeat
//! reporting throughput (instructions/second) and the fraction of the
//! planned trace consumed.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use vm_core::{simulate, SimConfig, SimReport};
use vm_trace::{InstrRecord, WorkloadSpec};

use vm_obs::Reporter;

/// Run-length presets trading fidelity against wall-clock time.
///
/// The paper ran ≤200 M instructions per point; cache/TLB behaviour
/// stabilizes far earlier for the megabyte-scale working sets simulated
/// here, so the default measures 2 M instructions after a 1 M warm-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Instructions executed before counters are reset.
    pub warmup: u64,
    /// Instructions measured.
    pub measure: u64,
}

impl RunScale {
    /// Fast smoke-test scale (CI, examples).
    pub const QUICK: RunScale = RunScale { warmup: 200_000, measure: 500_000 };
    /// The default experiment scale.
    pub const DEFAULT: RunScale = RunScale { warmup: 1_000_000, measure: 2_000_000 };
    /// High-fidelity scale for final numbers.
    pub const FULL: RunScale = RunScale { warmup: 2_000_000, measure: 8_000_000 };
}

impl Default for RunScale {
    fn default() -> RunScale {
        RunScale::DEFAULT
    }
}

/// One simulation to run: a system configuration against a workload.
#[derive(Debug, Clone)]
pub struct Job {
    /// Free-form label carried into the outcome.
    pub label: String,
    /// The system and geometry to simulate.
    pub config: SimConfig,
    /// The workload model to generate.
    pub workload: WorkloadSpec,
    /// Seed for the workload generator.
    pub trace_seed: u64,
    /// Run lengths.
    pub scale: RunScale,
}

impl Job {
    /// Creates a job with the default trace seed.
    pub fn new(
        label: impl Into<String>,
        config: SimConfig,
        workload: WorkloadSpec,
        scale: RunScale,
    ) -> Job {
        Job { label: label.into(), config, workload, trace_seed: 1, scale }
    }
}

/// A completed job.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The job that produced this outcome.
    pub job: Job,
    /// The measured report.
    pub report: SimReport,
}

/// Wraps a trace iterator, periodically flushing the number of records
/// consumed into a shared counter the heartbeat thread reads.
struct CountedTrace<'a, I> {
    inner: I,
    consumed: &'a AtomicU64,
    local: u64,
}

/// Flush granularity for [`CountedTrace`]: coarse enough that the shared
/// counter stays off the simulation's hot path.
const FLUSH_EVERY: u64 = 8192;

impl<I: Iterator<Item = InstrRecord>> Iterator for CountedTrace<'_, I> {
    type Item = InstrRecord;

    #[inline]
    fn next(&mut self) -> Option<InstrRecord> {
        let item = self.inner.next();
        if item.is_some() {
            self.local += 1;
            if self.local == FLUSH_EVERY {
                self.consumed.fetch_add(self.local, Ordering::Relaxed);
                self.local = 0;
            }
        }
        item
    }
}

impl<I> Drop for CountedTrace<'_, I> {
    fn drop(&mut self) {
        if self.local > 0 {
            self.consumed.fetch_add(self.local, Ordering::Relaxed);
        }
    }
}

/// Renders an instruction count as `1.2M` / `340k` / `999`.
fn fmt_instrs(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.0}M", n as f64 / 1e6)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}

/// Runs `jobs` on up to `threads` worker threads, returning outcomes in
/// job order. Results are deterministic regardless of thread count.
///
/// Equivalent to [`run_jobs_reported`] with the process-global reporter
/// (silent unless a binary raised the global verbosity).
///
/// # Panics
///
/// Panics if any job's configuration or workload fails to build — jobs
/// are constructed from validated presets, so a failure is a programming
/// error in the experiment definition, not an input error.
pub fn run_jobs(jobs: Vec<Job>, threads: usize) -> Vec<Outcome> {
    run_jobs_reported(jobs, threads, &Reporter::global(), "sweep")
}

/// [`run_jobs`] with progress reporting: a heartbeat line roughly every
/// two seconds giving cumulative instructions simulated, simulation
/// throughput, and the percentage of the planned trace consumed, plus a
/// per-job completion line at Verbose.
pub fn run_jobs_reported(
    jobs: Vec<Job>,
    threads: usize,
    reporter: &Reporter,
    label: &str,
) -> Vec<Outcome> {
    let threads = threads.max(1).min(jobs.len().max(1));
    let planned: u64 = jobs.iter().map(|j| j.scale.warmup + j.scale.measure).sum();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let consumed = AtomicU64::new(0);
    let finished = AtomicBool::new(false);
    let started = Instant::now();
    let results: Vec<std::sync::Mutex<Option<Outcome>>> =
        jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            workers.push(scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let job_start = Instant::now();
                let trace = job
                    .workload
                    .build(job.trace_seed)
                    .unwrap_or_else(|e| panic!("job `{}`: {e}", job.label));
                let counted = CountedTrace { inner: trace, consumed: &consumed, local: 0 };
                let report = simulate(&job.config, counted, job.scale.warmup, job.scale.measure)
                    .unwrap_or_else(|e| panic!("job `{}`: {e}", job.label));
                let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                reporter.detail(format!(
                    "  [{label}] {k}/{} `{}` done in {:.2}s",
                    jobs.len(),
                    job.label,
                    job_start.elapsed().as_secs_f64()
                ));
                *results[i].lock().unwrap() = Some(Outcome { job: job.clone(), report });
            }));
        }
        // Heartbeat: silent for short sweeps (first beat after ~2s),
        // periodic progress for long ones.
        scope.spawn(|| {
            let mut waited = Duration::ZERO;
            let step = Duration::from_millis(100);
            loop {
                std::thread::sleep(step);
                if finished.load(Ordering::Relaxed) {
                    break;
                }
                waited += step;
                if waited < Duration::from_secs(2) {
                    continue;
                }
                waited = Duration::ZERO;
                let instrs = consumed.load(Ordering::Relaxed);
                let elapsed = started.elapsed().as_secs_f64();
                let pct = if planned == 0 { 100.0 } else { 100.0 * instrs as f64 / planned as f64 };
                reporter.heartbeat(format!(
                    "  [{label}] {}/{} jobs, {} instrs ({:.0}% of trace) at {}/s",
                    done.load(Ordering::Relaxed),
                    jobs.len(),
                    fmt_instrs(instrs),
                    pct.min(100.0),
                    fmt_instrs((instrs as f64 / elapsed.max(1e-9)) as u64),
                ));
            }
        });
        let worker_panic = workers.into_iter().find_map(|w| w.join().err());
        // Stop the heartbeat before (possibly) re-panicking, or the scope
        // would block forever joining it.
        finished.store(true, Ordering::Relaxed);
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    });
    results.into_iter().map(|m| m.into_inner().unwrap().expect("every job ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_core::SystemKind;
    use vm_trace::presets;

    fn tiny_job(label: &str, system: SystemKind) -> Job {
        Job::new(
            label,
            SimConfig::paper_default(system),
            presets::ijpeg_spec(),
            RunScale { warmup: 2_000, measure: 10_000 },
        )
    }

    #[test]
    fn preserves_job_order() {
        let jobs = vec![
            tiny_job("a", SystemKind::Base),
            tiny_job("b", SystemKind::Intel),
            tiny_job("c", SystemKind::Ultrix),
        ];
        let out = run_jobs(jobs, 3);
        let labels: Vec<&str> = out.iter().map(|o| o.job.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c"]);
        assert_eq!(out[1].report.system, "INTEL");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mk = || vec![tiny_job("a", SystemKind::Ultrix), tiny_job("b", SystemKind::PaRisc)];
        let seq = run_jobs(mk(), 1);
        let par = run_jobs(mk(), 4);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.report.counts, p.report.counts);
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_jobs(Vec::new(), 4).is_empty());
    }

    #[test]
    fn scales_are_ordered() {
        let scales = [RunScale::QUICK, RunScale::DEFAULT, RunScale::FULL];
        assert!(scales.windows(2).all(|w| w[0].measure < w[1].measure));
        assert_eq!(RunScale::default(), RunScale::DEFAULT);
    }
}
