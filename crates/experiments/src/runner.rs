//! Parallel execution of simulation jobs, with an optional heartbeat
//! reporting throughput (instructions/second) and the fraction of the
//! planned trace consumed.
//!
//! [`run_jobs_checked`] is the fault-isolated entry point: each job runs
//! under `catch_unwind`, failures come back as structured
//! [`SimError`]s, and the remaining workers drain instead of dying.
//! [`run_jobs`] / [`run_jobs_reported`] are the strict facades the
//! experiment drivers use — their jobs are built from validated presets,
//! so a failure is a programming error and panics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use vm_core::{simulate, SimConfig, SimReport};
use vm_harden::{quiet_panics, FailureKind, SimError};
use vm_trace::{InstrRecord, WorkloadSpec};

use vm_obs::Reporter;

/// Locks tolerating poisoning: a panicking sibling worker must not
/// cascade into every later lock site.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run-length presets trading fidelity against wall-clock time.
///
/// The paper ran ≤200 M instructions per point; cache/TLB behaviour
/// stabilizes far earlier for the megabyte-scale working sets simulated
/// here, so the default measures 2 M instructions after a 1 M warm-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Instructions executed before counters are reset.
    pub warmup: u64,
    /// Instructions measured.
    pub measure: u64,
}

impl RunScale {
    /// Fast smoke-test scale (CI, examples).
    pub const QUICK: RunScale = RunScale { warmup: 200_000, measure: 500_000 };
    /// The default experiment scale.
    pub const DEFAULT: RunScale = RunScale { warmup: 1_000_000, measure: 2_000_000 };
    /// High-fidelity scale for final numbers.
    pub const FULL: RunScale = RunScale { warmup: 2_000_000, measure: 8_000_000 };
}

impl Default for RunScale {
    fn default() -> RunScale {
        RunScale::DEFAULT
    }
}

/// One simulation to run: a system configuration against a workload.
#[derive(Debug, Clone)]
pub struct Job {
    /// Free-form label carried into the outcome.
    pub label: String,
    /// The system and geometry to simulate.
    pub config: SimConfig,
    /// The workload model to generate.
    pub workload: WorkloadSpec,
    /// Seed for the workload generator.
    pub trace_seed: u64,
    /// Run lengths.
    pub scale: RunScale,
}

impl Job {
    /// Creates a job with the default trace seed.
    pub fn new(
        label: impl Into<String>,
        config: SimConfig,
        workload: WorkloadSpec,
        scale: RunScale,
    ) -> Job {
        Job { label: label.into(), config, workload, trace_seed: 1, scale }
    }
}

/// A completed job.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The job that produced this outcome.
    pub job: Job,
    /// The measured report.
    pub report: SimReport,
}

/// Wraps a trace iterator, periodically flushing the number of records
/// consumed into a shared counter the heartbeat thread reads.
struct CountedTrace<'a, I> {
    inner: I,
    consumed: &'a AtomicU64,
    local: u64,
}

/// Flush granularity for [`CountedTrace`]: coarse enough that the shared
/// counter stays off the simulation's hot path.
const FLUSH_EVERY: u64 = 8192;

impl<I: Iterator<Item = InstrRecord>> Iterator for CountedTrace<'_, I> {
    type Item = InstrRecord;

    #[inline]
    fn next(&mut self) -> Option<InstrRecord> {
        let item = self.inner.next();
        if item.is_some() {
            self.local += 1;
            if self.local == FLUSH_EVERY {
                self.consumed.fetch_add(self.local, Ordering::Relaxed);
                self.local = 0;
            }
        }
        item
    }
}

impl<I> Drop for CountedTrace<'_, I> {
    fn drop(&mut self) {
        if self.local > 0 {
            self.consumed.fetch_add(self.local, Ordering::Relaxed);
        }
    }
}

/// Renders an instruction count as `1.2M` / `340k` / `999`.
fn fmt_instrs(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.0}M", n as f64 / 1e6)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}

/// Runs `jobs` on up to `threads` worker threads, returning outcomes in
/// job order. Results are deterministic regardless of thread count.
///
/// Equivalent to [`run_jobs_reported`] with the process-global reporter
/// (silent unless a binary raised the global verbosity).
///
/// # Panics
///
/// Panics if any job's configuration or workload fails to build — jobs
/// are constructed from validated presets, so a failure is a programming
/// error in the experiment definition, not an input error.
pub fn run_jobs(jobs: Vec<Job>, threads: usize) -> Vec<Outcome> {
    run_jobs_reported(jobs, threads, &Reporter::global(), "sweep")
}

/// [`run_jobs`] with progress reporting: a heartbeat line roughly every
/// two seconds giving cumulative instructions simulated, simulation
/// throughput, and the percentage of the planned trace consumed, plus a
/// per-job completion line at Verbose.
///
/// # Panics
///
/// As [`run_jobs`]: any job failure (bad config, bad workload, panic
/// during simulation) panics with the classified error. Callers that
/// must survive failures use [`run_jobs_checked`].
pub fn run_jobs_reported(
    jobs: Vec<Job>,
    threads: usize,
    reporter: &Reporter,
    label: &str,
) -> Vec<Outcome> {
    match run_jobs_checked(jobs, threads, reporter, label) {
        Ok(outcomes) => outcomes,
        Err(e) => panic!("{e}"),
    }
}

/// Runs one job, mapping every failure mode — bad workload, rejected
/// config, panic mid-simulation — to a structured [`SimError`].
fn run_job_isolated(job: &Job, consumed: &AtomicU64) -> Result<Outcome, SimError> {
    let trace = job
        .workload
        .build(job.trace_seed)
        .map_err(|e| SimError::new(job.label.clone(), FailureKind::Workload, e.to_string()))?;
    let counted = CountedTrace { inner: trace, consumed, local: 0 };
    let run = catch_unwind(AssertUnwindSafe(|| {
        simulate(&job.config, counted, job.scale.warmup, job.scale.measure)
            .map_err(|e| SimError::new(job.label.clone(), FailureKind::Build, e.to_string()))
    }));
    match run {
        Ok(simulated) => Ok(Outcome { job: job.clone(), report: simulated? }),
        Err(payload) => Err(SimError::from_panic(job.label.clone(), payload)),
    }
}

/// Fault-isolated [`run_jobs_reported`]: outcomes in job order, or the
/// failure with the lowest job index among those that ran. Remaining
/// jobs are abandoned after the first failure (experiment tables need
/// every cell, so partial sweeps have no value here — unlike `explore`
/// sweeps, where each point stands alone).
///
/// # Errors
///
/// Returns the classified failure of the first failing job.
pub fn run_jobs_checked(
    jobs: Vec<Job>,
    threads: usize,
    reporter: &Reporter,
    label: &str,
) -> Result<Vec<Outcome>, SimError> {
    let threads = threads.max(1).min(jobs.len().max(1));
    let planned: u64 = jobs.iter().map(|j| j.scale.warmup + j.scale.measure).sum();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let consumed = AtomicU64::new(0);
    let finished = AtomicBool::new(false);
    let failed = AtomicBool::new(false);
    let started = Instant::now();
    let results: Vec<Mutex<Option<Result<Outcome, SimError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            workers.push(scope.spawn(|| {
                // Job panics are caught and classified; keep the hook
                // from printing a banner per isolated failure.
                let _quiet = quiet_panics();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() || failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let job = &jobs[i];
                    let job_start = Instant::now();
                    let outcome = run_job_isolated(job, &consumed);
                    if outcome.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                    reporter.detail(format!(
                        "  [{label}] {k}/{} `{}` {} in {:.2}s",
                        jobs.len(),
                        job.label,
                        if outcome.is_ok() { "done" } else { "FAILED" },
                        job_start.elapsed().as_secs_f64()
                    ));
                    *lock(&results[i]) = Some(outcome);
                }
            }));
        }
        // Heartbeat: silent for short sweeps (first beat after ~2s),
        // periodic progress for long ones.
        scope.spawn(|| {
            let mut waited = Duration::ZERO;
            let step = Duration::from_millis(100);
            loop {
                std::thread::sleep(step);
                if finished.load(Ordering::Relaxed) {
                    break;
                }
                waited += step;
                if waited < Duration::from_secs(2) {
                    continue;
                }
                waited = Duration::ZERO;
                let instrs = consumed.load(Ordering::Relaxed);
                let elapsed = started.elapsed().as_secs_f64();
                let pct = if planned == 0 { 100.0 } else { 100.0 * instrs as f64 / planned as f64 };
                reporter.heartbeat(format!(
                    "  [{label}] {}/{} jobs, {} instrs ({:.0}% of trace) at {}/s",
                    done.load(Ordering::Relaxed),
                    jobs.len(),
                    fmt_instrs(instrs),
                    pct.min(100.0),
                    fmt_instrs((instrs as f64 / elapsed.max(1e-9)) as u64),
                ));
            }
        });
        for w in workers {
            // Workers catch job panics internally; a join error would be
            // an infrastructure bug, which the facade's panic surfaces.
            if let Err(payload) = w.join() {
                finished.store(true, Ordering::Relaxed);
                std::panic::resume_unwind(payload);
            }
        }
        finished.store(true, Ordering::Relaxed);
    });
    let mut outcomes = Vec::with_capacity(jobs.len());
    for slot in results {
        match lock(&slot).take() {
            Some(Ok(outcome)) => outcomes.push(outcome),
            Some(Err(e)) => return Err(e),
            // Abandoned after a failure: jobs are claimed in index order,
            // so abandoned slots form a suffix behind the failing slot
            // that already returned above.
            None => continue,
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_core::SystemKind;
    use vm_trace::presets;

    fn tiny_job(label: &str, system: SystemKind) -> Job {
        Job::new(
            label,
            SimConfig::paper_default(system),
            presets::ijpeg_spec(),
            RunScale { warmup: 2_000, measure: 10_000 },
        )
    }

    #[test]
    fn preserves_job_order() {
        let jobs = vec![
            tiny_job("a", SystemKind::Base),
            tiny_job("b", SystemKind::Intel),
            tiny_job("c", SystemKind::Ultrix),
        ];
        let out = run_jobs(jobs, 3);
        let labels: Vec<&str> = out.iter().map(|o| o.job.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c"]);
        assert_eq!(out[1].report.system, "INTEL");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mk = || vec![tiny_job("a", SystemKind::Ultrix), tiny_job("b", SystemKind::PaRisc)];
        let seq = run_jobs(mk(), 1);
        let par = run_jobs(mk(), 4);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.report.counts, p.report.counts);
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_jobs(Vec::new(), 4).is_empty());
    }

    #[test]
    fn checked_runner_classifies_a_bad_job_and_keeps_good_ones() {
        let mut bad = tiny_job("broken", SystemKind::Intel);
        bad.workload.code.functions = 0; // degenerate spec: build() rejects it
        let jobs = vec![tiny_job("ok", SystemKind::Base), bad];
        let reporter = Reporter::silent();
        let err = run_jobs_checked(jobs, 2, &reporter, "test")
            .expect_err("degenerate workload must surface as an error");
        assert_eq!(err.label, "broken");
        assert_eq!(err.kind, FailureKind::Workload);

        // An all-good list still round-trips through the checked path.
        let ok = run_jobs_checked(vec![tiny_job("ok", SystemKind::Base)], 1, &reporter, "test")
            .expect("clean jobs must succeed");
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].job.label, "ok");
    }

    #[test]
    fn scales_are_ordered() {
        let scales = [RunScale::QUICK, RunScale::DEFAULT, RunScale::FULL];
        assert!(scales.windows(2).all(|w| w[0].measure < w[1].measure));
        assert_eq!(RunScale::default(), RunScale::DEFAULT);
    }
}
