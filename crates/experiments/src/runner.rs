//! Parallel execution of simulation jobs.

use vm_core::{simulate, SimConfig, SimReport};
use vm_trace::WorkloadSpec;

/// Run-length presets trading fidelity against wall-clock time.
///
/// The paper ran ≤200 M instructions per point; cache/TLB behaviour
/// stabilizes far earlier for the megabyte-scale working sets simulated
/// here, so the default measures 2 M instructions after a 1 M warm-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Instructions executed before counters are reset.
    pub warmup: u64,
    /// Instructions measured.
    pub measure: u64,
}

impl RunScale {
    /// Fast smoke-test scale (CI, examples).
    pub const QUICK: RunScale = RunScale { warmup: 200_000, measure: 500_000 };
    /// The default experiment scale.
    pub const DEFAULT: RunScale = RunScale { warmup: 1_000_000, measure: 2_000_000 };
    /// High-fidelity scale for final numbers.
    pub const FULL: RunScale = RunScale { warmup: 2_000_000, measure: 8_000_000 };
}

impl Default for RunScale {
    fn default() -> RunScale {
        RunScale::DEFAULT
    }
}

/// One simulation to run: a system configuration against a workload.
#[derive(Debug, Clone)]
pub struct Job {
    /// Free-form label carried into the outcome.
    pub label: String,
    /// The system and geometry to simulate.
    pub config: SimConfig,
    /// The workload model to generate.
    pub workload: WorkloadSpec,
    /// Seed for the workload generator.
    pub trace_seed: u64,
    /// Run lengths.
    pub scale: RunScale,
}

impl Job {
    /// Creates a job with the default trace seed.
    pub fn new(
        label: impl Into<String>,
        config: SimConfig,
        workload: WorkloadSpec,
        scale: RunScale,
    ) -> Job {
        Job { label: label.into(), config, workload, trace_seed: 1, scale }
    }
}

/// A completed job.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The job that produced this outcome.
    pub job: Job,
    /// The measured report.
    pub report: SimReport,
}

/// Runs `jobs` on up to `threads` worker threads, returning outcomes in
/// job order. Results are deterministic regardless of thread count.
///
/// # Panics
///
/// Panics if any job's configuration or workload fails to build — jobs
/// are constructed from validated presets, so a failure is a programming
/// error in the experiment definition, not an input error.
pub fn run_jobs(jobs: Vec<Job>, threads: usize) -> Vec<Outcome> {
    let threads = threads.max(1).min(jobs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<Outcome>>> =
        jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let trace = job
                    .workload
                    .build(job.trace_seed)
                    .unwrap_or_else(|e| panic!("job `{}`: {e}", job.label));
                let report = simulate(&job.config, trace, job.scale.warmup, job.scale.measure)
                    .unwrap_or_else(|e| panic!("job `{}`: {e}", job.label));
                *results[i].lock().unwrap() = Some(Outcome { job: job.clone(), report });
            });
        }
    });
    results.into_iter().map(|m| m.into_inner().unwrap().expect("every job ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_core::SystemKind;
    use vm_trace::presets;

    fn tiny_job(label: &str, system: SystemKind) -> Job {
        Job::new(
            label,
            SimConfig::paper_default(system),
            presets::ijpeg_spec(),
            RunScale { warmup: 2_000, measure: 10_000 },
        )
    }

    #[test]
    fn preserves_job_order() {
        let jobs = vec![
            tiny_job("a", SystemKind::Base),
            tiny_job("b", SystemKind::Intel),
            tiny_job("c", SystemKind::Ultrix),
        ];
        let out = run_jobs(jobs, 3);
        let labels: Vec<&str> = out.iter().map(|o| o.job.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c"]);
        assert_eq!(out[1].report.system, "INTEL");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mk = || vec![tiny_job("a", SystemKind::Ultrix), tiny_job("b", SystemKind::PaRisc)];
        let seq = run_jobs(mk(), 1);
        let par = run_jobs(mk(), 4);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.report.counts, p.report.counts);
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_jobs(Vec::new(), 4).is_empty());
    }

    #[test]
    fn scales_are_ordered() {
        let scales = [RunScale::QUICK, RunScale::DEFAULT, RunScale::FULL];
        assert!(scales.windows(2).all(|w| w[0].measure < w[1].measure));
        assert_eq!(RunScale::default(), RunScale::DEFAULT);
    }
}
