//! Figures 8 and 9: VMCPI component break-downs at the best-performing
//! line sizes (64/128-byte L1/L2 lines).
//!
//! The paper shows, for each VM system, stacked bars of the eleven
//! Table 3 components against L1 cache size, with one bar per L2 size.
//! Figure 8 is gcc; Figure 9 is vortex.

use vm_core::cost::CostModel;
use vm_core::{paper, SimConfig, SystemKind, VmcpiBreakdown};
use vm_trace::WorkloadSpec;

use crate::claim::Claim;
use crate::runner::{run_jobs, Job, RunScale};
use crate::table::{size_label, TextTable};

/// Parameter space for a Figure 8/9 breakdown sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// The workload (gcc for Figure 8, vortex for Figure 9).
    pub workload: WorkloadSpec,
    /// Systems to break down.
    pub systems: Vec<SystemKind>,
    /// L1 sizes per side.
    pub l1_sizes: Vec<u64>,
    /// L2 sizes per side.
    pub l2_sizes: Vec<u64>,
    /// Run lengths.
    pub scale: RunScale,
    /// Worker threads.
    pub threads: usize,
}

impl Config {
    /// The paper's breakdown space: 64/128-byte lines fixed, all L1 and
    /// L2 sizes, all five VM systems.
    pub fn paper(workload: WorkloadSpec) -> Config {
        Config {
            workload,
            systems: SystemKind::VM_SYSTEMS.to_vec(),
            l1_sizes: paper::L1_SIZES.to_vec(),
            l2_sizes: paper::L2_SIZES.to_vec(),
            scale: RunScale::DEFAULT,
            threads: 1,
        }
    }

    /// A reduced space for smoke tests.
    pub fn quick(workload: WorkloadSpec) -> Config {
        Config {
            l1_sizes: vec![4 << 10, 32 << 10, 128 << 10],
            l2_sizes: vec![1 << 20],
            scale: RunScale::QUICK,
            ..Config::paper(workload)
        }
    }
}

/// One stacked bar: the component breakdown at a cache configuration.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Simulated system.
    pub system: SystemKind,
    /// L1 size per side.
    pub l1: u64,
    /// L2 size per side.
    pub l2: u64,
    /// The Table 3 component values.
    pub breakdown: VmcpiBreakdown,
    /// Interrupts per 1000 user instructions (reported alongside,
    /// since the figures exclude interrupt cost).
    pub interrupts_per_kilo_instr: f64,
}

/// The measured figure.
#[derive(Debug, Clone)]
pub struct Result {
    /// Workload name.
    pub workload: String,
    /// All bars.
    pub bars: Vec<Bar>,
}

/// Runs the breakdown sweep.
pub fn run(config: &Config) -> Result {
    let mut jobs = Vec::new();
    for &system in &config.systems {
        for &l2 in &config.l2_sizes {
            for &l1 in &config.l1_sizes {
                let mut sim = SimConfig::paper_default(system);
                sim.l1_bytes = l1;
                sim.l1_line = 64;
                sim.l2_bytes = l2;
                sim.l2_line = 128;
                jobs.push(Job::new(
                    format!("{system}/{}/{}", size_label(l1), size_label(l2)),
                    sim,
                    config.workload.clone(),
                    config.scale,
                ));
            }
        }
    }
    let outcomes = run_jobs(jobs, config.threads);
    let cost = CostModel::default();
    let bars = outcomes
        .iter()
        .map(|o| Bar {
            system: o.job.config.system,
            l1: o.job.config.l1_bytes,
            l2: o.job.config.l2_bytes,
            breakdown: o.report.vmcpi(&cost),
            interrupts_per_kilo_instr: o.report.interrupts_per_kilo_instr(),
        })
        .collect();
    Result { workload: config.workload.name.clone(), bars }
}

impl Result {
    /// Renders one table per system: rows are the Table 3 components,
    /// columns are (L1, L2) pairs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut systems: Vec<SystemKind> = self.bars.iter().map(|b| b.system).collect();
        systems.dedup();
        for &system in &systems {
            let bars: Vec<&Bar> = self.bars.iter().filter(|b| b.system == system).collect();
            out.push_str(&format!(
                "\n{} — {} (64/128-byte L1/L2 lines): VMCPI components\n",
                system, self.workload
            ));
            let mut headers = vec!["component".to_owned()];
            headers.extend(
                bars.iter().map(|b| format!("{}/{}", size_label(b.l1), size_label(2 * b.l2))),
            );
            let mut table = TextTable::new(headers);
            for i in 0..11 {
                let name = bars[0].breakdown.components()[i].0;
                let mut row = vec![name.to_owned()];
                row.extend(bars.iter().map(|b| format!("{:.5}", b.breakdown.components()[i].1)));
                table.row(row);
            }
            let mut total = vec!["TOTAL".to_owned()];
            total.extend(bars.iter().map(|b| format!("{:.5}", b.breakdown.total())));
            table.row(total);
            let mut ints = vec!["(interrupts/1k instr)".to_owned()];
            ints.extend(bars.iter().map(|b| format!("{:.3}", b.interrupts_per_kilo_instr)));
            table.row(ints);
            out.push_str(&table.render());
        }
        out
    }

    /// CSV of all components of all bars.
    pub fn to_csv(&self) -> String {
        let mut t = TextTable::new(["workload", "system", "l1", "l2", "component", "cpi"]);
        for b in &self.bars {
            for (name, value) in b.breakdown.components() {
                t.row([
                    self.workload.clone(),
                    b.system.label().to_owned(),
                    b.l1.to_string(),
                    b.l2.to_string(),
                    name.to_owned(),
                    format!("{value:.6}"),
                ]);
            }
        }
        t.to_csv()
    }

    fn bars_of(&self, system: SystemKind) -> Vec<&Bar> {
        self.bars.iter().filter(|b| b.system == system).collect()
    }

    /// Checks the paper's Section 4.2 observations.
    pub fn claims(&self) -> Vec<Claim> {
        let mut claims = Vec::new();
        let have = |s: SystemKind| self.bars.iter().any(|b| b.system == s);

        // INTEL: no interrupts, no handler I-cache traffic, but visible
        // root-level (page-directory) components.
        if have(SystemKind::Intel) {
            let bars = self.bars_of(SystemKind::Intel);
            let no_int = bars.iter().all(|b| b.interrupts_per_kilo_instr == 0.0);
            let no_icache = bars
                .iter()
                .all(|b| b.breakdown.handler_l2 == 0.0 && b.breakdown.handler_mem == 0.0);
            claims.push(Claim::new(
                "INTEL takes no interrupts and its walker never touches the I-caches",
                no_int && no_icache,
                format!("interrupts=0: {no_int}, handler I-fetch components=0: {no_icache}"),
            ));
            let rpte_visible = bars.iter().any(|b| {
                b.breakdown.rpte_l2 + b.breakdown.rpte_mem > 0.2 * b.breakdown.total() / 11.0
            });
            claims.push(Claim::new(
                "INTEL shows a noticeable root-level PTE component (the directory is walked on every miss)",
                rpte_visible,
                format!(
                    "max rpte share {:.3}",
                    bars.iter()
                        .map(|b| (b.breakdown.rpte_l2 + b.breakdown.rpte_mem)
                            / b.breakdown.total().max(1e-12))
                        .fold(0.0, f64::max)
                ),
            ));
        }

        // uhandler constant over cache organization for TLB schemes,
        // decreasing with L2 size for NOTLB.
        for system in [SystemKind::Ultrix, SystemKind::PaRisc] {
            if !have(system) {
                continue;
            }
            let bars = self.bars_of(system);
            let uh: Vec<f64> = bars.iter().map(|b| b.breakdown.uhandler).collect();
            let (min, max) = (
                uh.iter().cloned().fold(f64::MAX, f64::min),
                uh.iter().cloned().fold(0.0, f64::max),
            );
            claims.push(Claim::new(
                format!(
                    "{system}: uhandler cost is constant across cache organizations (TLB-driven)"
                ),
                max < 1.5 * min.max(1e-12),
                format!("uhandler range {min:.5}..{max:.5}"),
            ));
        }
        if have(SystemKind::NoTlb) {
            let bars = self.bars_of(SystemKind::NoTlb);
            let mut l2s: Vec<u64> = bars.iter().map(|b| b.l2).collect();
            l2s.sort_unstable();
            l2s.dedup();
            if l2s.len() >= 2 {
                let mean_uh = |l2: u64| {
                    let v: Vec<f64> =
                        bars.iter().filter(|b| b.l2 == l2).map(|b| b.breakdown.uhandler).collect();
                    v.iter().sum::<f64>() / v.len() as f64
                };
                let small = mean_uh(l2s[0]);
                let large = mean_uh(*l2s.last().unwrap());
                claims.push(Claim::new(
                    "NOTLB: uhandler cost decreases with L2 size (handlers run on L2 misses)",
                    large < small,
                    format!(
                        "uhandler at {}: {small:.5}, at {}: {large:.5}",
                        size_label(l2s[0]),
                        size_label(*l2s.last().unwrap())
                    ),
                ));
            }
        }

        // MACH vs ULTRIX: the difference is confined to the kernel/root
        // components (the administrative activity).
        if have(SystemKind::Mach) && have(SystemKind::Ultrix) {
            let m: f64 = self
                .bars_of(SystemKind::Mach)
                .iter()
                .map(|b| {
                    b.breakdown.khandler
                        + b.breakdown.kpte_l2
                        + b.breakdown.kpte_mem
                        + b.breakdown.rhandler
                        + b.breakdown.rpte_l2
                        + b.breakdown.rpte_mem
                })
                .sum();
            let mu: f64 = self
                .bars_of(SystemKind::Mach)
                .iter()
                .map(|b| b.breakdown.uhandler + b.breakdown.upte_l2 + b.breakdown.upte_mem)
                .sum();
            let uu: f64 = self
                .bars_of(SystemKind::Ultrix)
                .iter()
                .map(|b| b.breakdown.uhandler + b.breakdown.upte_l2 + b.breakdown.upte_mem)
                .sum();
            claims.push(Claim::new(
                "MACH and ULTRIX match on user-level components; MACH adds kernel/root overhead",
                (mu - uu).abs() / uu.max(1e-12) < 0.25 && m > 0.0,
                format!("user-level sums: MACH {mu:.4} vs ULTRIX {uu:.4}; MACH k+r extra {m:.4}"),
            ));
        }
        claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_trace::presets;

    fn tiny() -> Config {
        Config {
            systems: vec![SystemKind::Ultrix, SystemKind::Intel],
            l1_sizes: vec![8 << 10],
            l2_sizes: vec![512 << 10],
            scale: RunScale { warmup: 5_000, measure: 30_000 },
            ..Config::paper(presets::gcc_spec())
        }
    }

    #[test]
    fn produces_a_bar_per_config() {
        let r = run(&tiny());
        assert_eq!(r.bars.len(), 2);
    }

    #[test]
    fn render_lists_all_components() {
        let r = run(&tiny());
        let text = r.render();
        for name in ["uhandler", "upte-MEM", "rpte-L2", "handler-MEM", "TOTAL"] {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn intel_claims_hold_even_on_tiny_runs() {
        let r = run(&tiny());
        let claims = r.claims();
        let intel_claim = claims
            .iter()
            .find(|c| c.statement.contains("INTEL takes no interrupts"))
            .expect("claim present");
        assert!(intel_claim.holds, "{intel_claim}");
    }

    #[test]
    fn csv_is_component_granular() {
        let r = run(&tiny());
        assert_eq!(r.to_csv().lines().count(), r.bars.len() * 11 + 1);
    }
}
