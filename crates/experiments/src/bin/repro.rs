//! `repro` — regenerate every table and figure of Jacob & Mudge
//! (ASPLOS 1998).
//!
//! ```text
//! repro <experiment>... [--quick|--full] [--threads N] [--out DIR] [--strict]
//!                       [--events FILE] [--chrome-trace FILE]
//!                       [--verbosity 0|1|2 | -q | -v]
//!
//! experiments:
//!   tables                    Tables 1-4
//!   fig6 fig7                 VMCPI vs cache organization (gcc / vortex)
//!   fig8 fig9                 VMCPI component breakdowns (gcc / vortex)
//!   fig10                     interrupt-cost sensitivity (all benchmarks)
//!   fig11                     TLB-size sensitivity
//!   fig12                     MCPI inflicted on the application
//!   fig13                     total VM overhead (the 5-10% -> 10-30% result)
//!   abl-hybrid abl-walkmode abl-assoc abl-tlb abl-ctx abl-unified abl-mp
//!   suite                     six workloads x five systems, seed-replicated
//!   telemetry                 instrumented pass: walk-latency histograms
//!                             per system (implied by --events/--chrome-trace)
//!   figs                      fig6..fig13
//!   all                       everything above
//!
//! design-space exploration:
//!   explore <spec.toml | dir>... [--sweep key=v1,v2,...]... [--jobs N]
//!           [--check] [--quick|--full] [--out DIR] [--events FILE]
//!           [--retries N] [--point-budget CYCLES] [--journal FILE]
//!           [--resume FILE] [--chaos fault@ix,...] [--chaos-seed N]
//!           [--isolation unwind|process]
//!   worker                    (internal) supervised sweep-point worker;
//!                             spawned by --isolation process, speaks
//!                             NDJSON on stdin/stdout
//!
//! one-off simulation:
//!   run [--system S] [--workload W] [--l1 16K] [--l1-line 64]
//!       [--l2 1M] [--l2-line 128] [--tlb-entries 128] [--unified]
//!       [--instrs N] [--seed N] [--events FILE] [--chrome-trace FILE]
//!
//! simulation service (see docs/serving.md):
//!   serve [--addr HOST:PORT] [--port N] [--jobs N] [--workers N] [--queue N]
//!         [--degrade-depth N] [--state-dir DIR] [--resume] [--events FILE]
//!         [--io-timeout-ms N] [--max-request-bytes N]
//!         [--checkpoint-interval N] [--watch-buffer N]
//!         [--chaos fault@ix,...] [--chaos-seed N]
//!   serve-stats <events.jsonl>...
//!   serve-bench [--batch N]
//!   watch --addr HOST:PORT [JOB | --all] [--json]   (see docs/live.md)
//!   trace-export --out FILE [--workload W] [--seed N] [--instrs N]
//!   upload --addr HOST:PORT --name NAME <trace.bin> [--chunk-bytes SIZE]
//!          [--max-retries N] [--chaos corrupt@seq|truncate@seq|stall@seq,...]
//!
//! fleet exploration (see docs/fleet.md):
//!   fleet <spec.toml | dir>... [--sweep key=v1,v2,...]...
//!         (--spawn N | --backend HOST:PORT)... [--quick|--full]
//!         [--out DIR] [--journal FILE] [--events FILE] [--retries N]
//!         [--point-budget CYCLES] [--hedge-ms N] [--evict-after N]
//!         [--evict-window-ms N] [--audit-rate P] [--watch-addr HOST:PORT]
//!
//! result integrity (see docs/robustness.md):
//!   verify <explore.csv> --journal FILE [--spec system.toml]
//!
//! Results (tables, claims, CSV) go to stdout; progress (headings,
//! heartbeats, timings) goes to stderr, gated by --verbosity.
//! ```

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vm_core::cost::CostModel;
use vm_core::{SimConfig, SystemKind};
use vm_experiments::{
    ablations, explore, fig6, fig8, interrupts, mcpi, multiprog, registry, suite, tables,
    telemetry, tlbsize, total,
};
use vm_experiments::{set_global_verbosity, Claim, Reporter, RunScale, Verbosity};
use vm_explore::{Axis, ExecConfig, HardenPolicy, SystemSpec};
use vm_fleet::{
    fleet_plan, fleet_throughput, run_fleet, seed_fleet_resume, Backend, ControlChannel,
    FleetOptions, FleetSession, WatchProxy,
};
use vm_harden::{ChaosPlan, Journal, JournalWriter, RetryPolicy};
use vm_obs::json::Value;
use vm_obs::JsonlSink;
use vm_serve::{bench_json, throughput, EventReport, ServeConfig, Server, WatchHub};
use vm_supervise::{PoolConfig, WorkerCommand, WorkerPool};
use vm_trace::presets;

/// Parses "16K" / "1M" / "512" style size strings into bytes.
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1 << 20),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

/// Writes an export buffer to `path`, reporting the outcome on stderr.
fn write_export(reporter: &Reporter, path: &Path, bytes: &[u8]) {
    match std::fs::write(path, bytes) {
        Ok(()) => reporter.progress(format!("wrote {} ({} bytes)", path.display(), bytes.len())),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

/// The `run` subcommand: one custom simulation, full report.
fn run_one(args: &[String]) -> Result<(), String> {
    let mut config = SimConfig::paper_default(SystemKind::Ultrix);
    let mut workload = presets::gcc_spec();
    let mut instrs: u64 = 2_000_000;
    let mut seed: u64 = 42;
    let mut events: Option<PathBuf> = None;
    let mut chrome: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--system" => {
                let v = value("--system")?;
                config.system =
                    SystemKind::from_label(&v).ok_or_else(|| format!("unknown system `{v}`"))?;
            }
            "--workload" => {
                let v = value("--workload")?;
                workload = presets::by_name(&v).ok_or_else(|| format!("unknown workload `{v}`"))?;
            }
            "--l1" => config.l1_bytes = parse_size(&value("--l1")?).ok_or("bad --l1 size")?,
            "--l2" => config.l2_bytes = parse_size(&value("--l2")?).ok_or("bad --l2 size")?,
            "--l1-line" => {
                config.l1_line = value("--l1-line")?.parse().map_err(|e| format!("{e}"))?
            }
            "--l2-line" => {
                config.l2_line = value("--l2-line")?.parse().map_err(|e| format!("{e}"))?
            }
            "--tlb-entries" => {
                config.tlb_entries = value("--tlb-entries")?.parse().map_err(|e| format!("{e}"))?
            }
            "--unified" => config.unified_l2 = true,
            "--instrs" => instrs = value("--instrs")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--events" => events = Some(PathBuf::from(value("--events")?)),
            "--chrome-trace" => chrome = Some(PathBuf::from(value("--chrome-trace")?)),
            "--verbosity" => {
                let v = value("--verbosity")?;
                set_global_verbosity(
                    Verbosity::parse(&v).ok_or_else(|| format!("bad --verbosity `{v}`"))?,
                );
            }
            "-q" | "--quiet" => set_global_verbosity(Verbosity::Quiet),
            "-v" | "--verbose" => set_global_verbosity(Verbosity::Verbose),
            other => return Err(format!("unknown flag `{other}` for run")),
        }
    }
    // Validate CLI-supplied geometry and workload up front so errors
    // surface as messages instead of telemetry-pass panics.
    config.build().map_err(|e| e.to_string())?;
    workload.build(seed).map_err(|e| e.to_string())?;
    let reporter = Reporter::global();
    let scale = RunScale { warmup: instrs / 4, measure: instrs };
    let tele = telemetry::run(
        &telemetry::Config::single(config, workload.clone(), seed, scale),
        events.is_some(),
        chrome.is_some(),
        &reporter,
    );
    let report = &tele.runs[0].report;
    let cost = CostModel::default();
    println!(
        "{} on {} — {} measured instructions (seed {seed})",
        config.system, workload.name, instrs
    );
    println!(
        "caches: {}K/{}B L1, {}K/{}B L2{}; TLBs: 2 x {} entries
",
        config.l1_bytes >> 10,
        config.l1_line,
        config.l2_bytes >> 10,
        config.l2_line,
        if config.unified_l2 { " (unified, 2x capacity)" } else { " (split)" },
        config.tlb_entries
    );
    let m = report.mcpi(&cost);
    println!(
        "MCPI  = {:.5}  (l1i {:.5}, l1d {:.5}, l2i {:.5}, l2d {:.5})",
        m.total(),
        m.l1i,
        m.l1d,
        m.l2i,
        m.l2d
    );
    let v = report.vmcpi(&cost);
    print!("VMCPI = {:.5}  (", v.total());
    let mut first = true;
    for (name, x) in v.components() {
        if x > 1e-6 {
            if !first {
                print!(", ");
            }
            print!("{name} {x:.5}");
            first = false;
        }
    }
    println!(")");
    for c in vm_core::cost::CostModel::INTERRUPT_COSTS {
        println!(
            "interrupt CPI @{c:>3} cycles = {:.5}",
            report.interrupt_cpi(&CostModel::paper(c))
        );
    }
    if let (Some(i), Some(d)) = (report.itlb, report.dtlb) {
        println!(
            "TLBs: I {} lookups / {:.5} miss ratio; D {} lookups / {:.5} miss ratio",
            i.lookups,
            i.miss_ratio(),
            d.lookups,
            d.miss_ratio()
        );
    }
    println!("total CPI @50-cycle interrupts = {:.4}", report.total_cpi(&cost));
    let s = &tele.runs[0].snapshot;
    let wc = s.walk_cycles.summary();
    let im = s.inter_miss.summary();
    println!(
        "walk latency (cycles): n={} p50={} p90={} p99={} max={}",
        wc.count, wc.p50, wc.p90, wc.p99, wc.max
    );
    println!(
        "handler footprint {:.2} memrefs/walk; inter-miss distance p50 = {} instrs",
        s.walk_memrefs.mean(),
        im.p50
    );
    if let (Some(path), Some(buf)) = (&events, &tele.events_jsonl) {
        write_export(&reporter, path, buf);
    }
    if let (Some(path), Some(buf)) = (&chrome, &tele.chrome_trace) {
        write_export(&reporter, path, buf);
    }
    Ok(())
}

/// Collects spec files from a path argument: a `.toml` file itself, or
/// every `*.toml` directly inside a directory (sorted by name).
fn collect_specs(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_dir() {
        let mut found = Vec::new();
        let entries =
            std::fs::read_dir(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        for entry in entries {
            let p = entry.map_err(|e| format!("{}: {e}", path.display()))?.path();
            if p.extension().is_some_and(|x| x == "toml") {
                found.push(p);
            }
        }
        if found.is_empty() {
            return Err(format!("{} contains no .toml spec files", path.display()));
        }
        found.sort();
        out.extend(found);
        Ok(())
    } else if path.is_file() {
        out.push(path.to_path_buf());
        Ok(())
    } else {
        Err(format!("{}: no such file or directory", path.display()))
    }
}

/// The `explore` subcommand: spec files in, sweep report out.
fn explore_cmd(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut axes: Vec<Axis> = Vec::new();
    let mut exec = ExecConfig { jobs: parallelism(), ..ExecConfig::DEFAULT };
    let mut check = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut events: Option<PathBuf> = None;
    let mut harden = HardenPolicy::default();
    let mut journal: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut chaos_spec: Option<String> = None;
    let mut chaos_seed: u64 = 42;
    let mut isolation: String = "unwind".to_owned();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--sweep" => axes.push(Axis::parse(&value("--sweep")?)?),
            "--isolation" => isolation = value("--isolation")?,
            "--jobs" => {
                exec.jobs = value("--jobs")?.parse().map_err(|e| format!("bad --jobs: {e}"))?
            }
            "--check" => check = true,
            "--retries" => {
                harden.retry = RetryPolicy::new(
                    value("--retries")?.parse().map_err(|e| format!("bad --retries: {e}"))?,
                )
            }
            "--point-budget" => {
                harden.point_budget = Some(
                    value("--point-budget")?
                        .parse()
                        .map_err(|e| format!("bad --point-budget: {e}"))?,
                )
            }
            "--journal" => journal = Some(PathBuf::from(value("--journal")?)),
            "--resume" => resume = Some(PathBuf::from(value("--resume")?)),
            "--chaos" => chaos_spec = Some(value("--chaos")?),
            "--chaos-seed" => {
                chaos_seed =
                    value("--chaos-seed")?.parse().map_err(|e| format!("bad --chaos-seed: {e}"))?
            }
            "--quick" => {
                (exec.warmup, exec.measure) = (RunScale::QUICK.warmup, RunScale::QUICK.measure)
            }
            "--full" => {
                (exec.warmup, exec.measure) = (RunScale::FULL.warmup, RunScale::FULL.measure)
            }
            "--out" => out_dir = Some(PathBuf::from(value("--out")?)),
            "--events" => events = Some(PathBuf::from(value("--events")?)),
            "--verbosity" => {
                let v = value("--verbosity")?;
                set_global_verbosity(
                    Verbosity::parse(&v).ok_or_else(|| format!("bad --verbosity `{v}`"))?,
                );
            }
            "-q" | "--quiet" => set_global_verbosity(Verbosity::Quiet),
            "-v" | "--verbose" => set_global_verbosity(Verbosity::Verbose),
            "--help" | "-h" => {
                println!(
                    "usage: repro explore <spec.toml | dir>... [--sweep key=v1,v2,...]... [--jobs N]\n\
                     \x20                    [--check] [--quick|--full] [--out DIR] [--events FILE]\n\
                     \x20                    [--retries N] [--point-budget CYCLES]\n\
                     \x20                    [--journal FILE] [--resume FILE]\n\
                     \x20                    [--chaos fault@ix,...] [--chaos-seed N]\n\
                     \x20                    [--isolation unwind|process]\n\
                     \x20                    [--verbosity 0|1|2 | -q | -v]\n\
                     specs:   TOML-subset system descriptions (see docs/exploring.md and specs/)\n\
                     sweep:   dotted spec keys, e.g. --sweep tlb.entries=32,64,128 --sweep mmu.table=two-tier,hashed\n\
                     check:   parse and validate only; print each spec's lowered system and exit\n\
                     robustness (see docs/robustness.md):\n\
                     \x20 --retries       retry transient point failures with capped exponential backoff\n\
                     \x20 --point-budget  walk-cycle budget per point; over-budget points become `timeout` outcomes\n\
                     \x20 --journal       append finished points to a durable JSONL run journal\n\
                     \x20 --resume        skip a journal's completed points, re-run the rest, keep appending\n\
                     \x20 --chaos         inject faults (panic|io|corrupt|runaway|abort|oom|stall|truncate)\n\
                     \x20                 at point indices, e.g. panic@2,io@5 (abort/oom need --isolation process)\n\
                     \x20 --isolation     unwind (catch_unwind, default) or process: run every point in a\n\
                     \x20                 supervised worker process that survives abort/SIGSEGV/SIGKILL/OOM"
                );
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}` for explore (try --help)"))
            }
            path => collect_specs(Path::new(path), &mut paths)?,
        }
    }
    if paths.is_empty() {
        return Err(
            "explore needs at least one spec file or directory (e.g. `repro explore specs`)"
                .to_owned(),
        );
    }
    let mut bases = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let spec = SystemSpec::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if check {
            let config = spec.validate().map_err(|e| format!("{}: {e}", path.display()))?;
            let tlbs = if config.system.uses_tlb() {
                format!("{} entries x2 TLB", config.tlb_entries)
            } else {
                "no TLB".to_owned()
            };
            println!(
                "{}: ok — {} on {} ({tlbs}, L1 {}K/L2 {}K)",
                path.display(),
                config.system.label(),
                spec.workload_name(),
                config.l1_bytes >> 10,
                config.l2_bytes >> 10,
            );
        }
        bases.push(spec);
    }
    if check {
        // Axes still get a dry validation so `--check --sweep ...`
        // catches bad keys without simulating.
        if !axes.is_empty() {
            let plan = explore::plan(&bases, &axes)?;
            println!(
                "sweep: {} runnable point(s), {} skipped",
                plan.points.len(),
                plan.skipped.len()
            );
            for s in &plan.skipped {
                println!("  skipped {} — {}", s.label, s.reason);
            }
        }
        return Ok(());
    }
    if let Some(spec) = &chaos_spec {
        harden.chaos = ChaosPlan::parse(spec, chaos_seed)?;
        // Refuse nonsensical combinations up front, with the offending
        // spec part and column: a process-killing fault without process
        // isolation would kill the whole exploration.
        ChaosPlan::check_isolation(spec, isolation == "process")?;
    }
    match isolation.as_str() {
        "unwind" => {}
        "process" => {
            let command = WorkerCommand::current_exe(&["worker"])
                .map_err(|e| format!("cannot resolve the worker executable: {e}"))?;
            let mut pool = PoolConfig::new(command);
            pool.workers = exec.jobs.max(1);
            harden.process = Some(std::sync::Arc::new(WorkerPool::new(pool)));
        }
        other => return Err(format!("bad --isolation `{other}` (unwind|process)")),
    }
    if journal.is_some() && resume.is_some() {
        return Err("--journal and --resume are mutually exclusive (resume keeps \
                    appending to the journal it reads)"
            .to_owned());
    }
    let reporter = Reporter::global();
    let cfg = explore::Config { bases, axes, exec, harden, journal, resume };
    let run = explore::run(&cfg, events.is_some(), &reporter)?;
    println!("{}", run.render());
    if !run.failures.is_empty() {
        reporter.progress(format!(
            "{} of {} point(s) failed (see report above{})",
            run.failures.len(),
            run.failures.len() + run.results.len(),
            if cfg.journal.is_some() || cfg.resume.is_some() {
                "; failures are journaled for --resume"
            } else {
                ""
            }
        ));
    }
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        for (name, csv) in [
            ("explore", run.to_csv()),
            ("explore-frontier", run.frontier_to_csv()),
            ("explore-sensitivity", run.sensitivity_to_csv()),
        ] {
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, csv.as_bytes())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            reporter.progress(format!("wrote {}", path.display()));
        }
    }
    if let (Some(path), Some(buf)) = (&events, &run.events_jsonl) {
        write_export(&reporter, path, buf);
    }
    Ok(())
}

/// Set by the SIGTERM/SIGINT handler; the daemon's accept loop polls it
/// and treats it exactly like a `drain` request.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn request_shutdown(_signum: i32) {
    // A relaxed atomic store is async-signal-safe.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Routes SIGTERM and SIGINT into [`SHUTDOWN`] so `repro serve` drains
/// gracefully instead of dying mid-job. The vm-serve crate itself stays
/// `forbid(unsafe_code)`; the binary owns the one `signal(2)` call.
fn install_shutdown_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: signal(2) with a handler that only stores to a static
        // atomic is async-signal-safe process setup, performed once
        // before the listener starts.
        unsafe {
            signal(SIGTERM, request_shutdown as *const () as usize);
            signal(SIGINT, request_shutdown as *const () as usize);
        }
    }
}

/// The `serve` subcommand: run the fault-tolerant simulation daemon
/// until drained (by request, SIGTERM, or SIGINT).
fn serve_cmd(args: &[String]) -> Result<(), String> {
    let mut config = ServeConfig { shutdown: Some(&SHUTDOWN), ..ServeConfig::default() };
    let mut chaos_spec: Option<String> = None;
    let mut chaos_seed: u64 = 42;
    let mut port: Option<u16> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--port" => {
                port = Some(value("--port")?.parse().map_err(|e| format!("bad --port: {e}"))?)
            }
            "--jobs" => {
                config.workers = value("--jobs")?.parse().map_err(|e| format!("bad --jobs: {e}"))?
            }
            "--workers" => {
                config.worker_processes =
                    value("--workers")?.parse().map_err(|e| format!("bad --workers: {e}"))?
            }
            "--queue" => {
                config.queue_cap =
                    value("--queue")?.parse().map_err(|e| format!("bad --queue: {e}"))?
            }
            "--degrade-depth" => {
                config.degrade_depth = value("--degrade-depth")?
                    .parse()
                    .map_err(|e| format!("bad --degrade-depth: {e}"))?
            }
            "--state-dir" => config.state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--resume" => config.resume = true,
            "--events" => config.events = Some(PathBuf::from(value("--events")?)),
            "--io-timeout-ms" => {
                config.io_timeout = std::time::Duration::from_millis(
                    value("--io-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("bad --io-timeout-ms: {e}"))?,
                )
            }
            "--max-request-bytes" => {
                config.max_request_bytes = value("--max-request-bytes")?
                    .parse()
                    .map_err(|e| format!("bad --max-request-bytes: {e}"))?
            }
            "--max-trace-bytes" => {
                config.ingest.max_trace_bytes = parse_size(&value("--max-trace-bytes")?)
                    .ok_or("bad --max-trace-bytes size (e.g. 64M)")?
            }
            "--conn-upload-quota" => {
                config.ingest.max_conn_bytes = parse_size(&value("--conn-upload-quota")?)
                    .ok_or("bad --conn-upload-quota size (e.g. 256M)")?
            }
            "--staging-watermark" => {
                config.ingest.staging_watermark = parse_size(&value("--staging-watermark")?)
                    .ok_or("bad --staging-watermark size (e.g. 256M)")?
            }
            "--upload-ttl-secs" => {
                config.ingest.partial_ttl = std::time::Duration::from_secs(
                    value("--upload-ttl-secs")?
                        .parse()
                        .map_err(|e| format!("bad --upload-ttl-secs: {e}"))?,
                )
            }
            "--retry-after-ms" => {
                config.ingest.retry_after_ms = value("--retry-after-ms")?
                    .parse()
                    .map_err(|e| format!("bad --retry-after-ms: {e}"))?
            }
            "--chaos" => chaos_spec = Some(value("--chaos")?),
            "--chaos-seed" => {
                chaos_seed =
                    value("--chaos-seed")?.parse().map_err(|e| format!("bad --chaos-seed: {e}"))?
            }
            "--checkpoint-interval" => {
                config.checkpoint_interval = value("--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-interval: {e}"))?
            }
            "--watch-buffer" => {
                config.watch_buffer = value("--watch-buffer")?
                    .parse()
                    .map_err(|e| format!("bad --watch-buffer: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro serve [--addr HOST:PORT] [--port N] [--jobs N] [--workers N] [--queue N]\n\
                     \x20                  [--degrade-depth N] [--state-dir DIR] [--resume] [--events FILE]\n\
                     \x20                  [--io-timeout-ms N] [--max-request-bytes N]\n\
                     \x20                  [--checkpoint-interval N] [--watch-buffer N]\n\
                     \x20                  [--max-trace-bytes SIZE] [--conn-upload-quota SIZE]\n\
                     \x20                  [--staging-watermark SIZE] [--upload-ttl-secs N] [--retry-after-ms N]\n\
                     \x20                  [--chaos fault@ix,...] [--chaos-seed N]\n\
                     Runs the newline-delimited-JSON simulation service until drained\n\
                     (drain request, SIGTERM, or SIGINT). See docs/serving.md.\n\
                     \x20 --addr          bind address; port 0 picks an ephemeral port (default 127.0.0.1:0)\n\
                     \x20 --port          rewrite just the port of the bind address; 0 binds an\n\
                     \x20                 ephemeral port and the bound address is printed as the\n\
                     \x20                 first stdout line (the fleet spawner's contract)\n\
                     \x20 --jobs          worker threads running sweeps (default 2)\n\
                     \x20 --workers       supervised worker *subprocesses* for point execution\n\
                     \x20                 (default 0 = in-process); a crashed point costs its job\n\
                     \x20                 a 500, never the daemon\n\
                     \x20 --queue         queued-job bound; submissions past it shed with 503 (default 8)\n\
                     \x20 --degrade-depth queue depth at which new jobs clamp to quick scale (default 4)\n\
                     \x20 --state-dir     persist job specs + journals here (enables --resume)\n\
                     \x20 --resume        reload persisted jobs from --state-dir at startup\n\
                     \x20 --events        append vm-obs lifecycle events (JSONL) for serve-stats\n\
                     \x20 --checkpoint-interval  instructions between live progress frames\n\
                     \x20                 on the watch stream (default 100000; see docs/live.md)\n\
                     \x20 --watch-buffer  per-subscriber frame queue bound; slower subscribers\n\
                     \x20                 are dropped with a lagged frame (default 256)\n\
                     trace ingestion (needs --state-dir; see docs/serving.md):\n\
                     \x20 --max-trace-bytes    largest accepted trace (default 64M; sizes take K/M)\n\
                     \x20 --conn-upload-quota  upload bytes one connection may declare (default 256M)\n\
                     \x20 --staging-watermark  staged-bytes level past which upload-begin answers\n\
                     \x20                      429 + retry_after instead of admitting (default 256M)\n\
                     \x20 --upload-ttl-secs    GC idle partial uploads after this (default 3600)\n\
                     \x20 --retry-after-ms     the retry hint carried by 429 responses (default 500)\n\
                     \x20 --chaos         inject faults into every job's sweep (chaos testing);\n\
                     \x20                 abort/oom faults need --workers N (process isolation)"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}` for serve (try --help)")),
        }
    }
    // Limits are validated here, at parse time: a daemon that boots and
    // then rejects every request (or drops every watcher) is a
    // misconfiguration, not a service.
    if config.max_request_bytes == 0 {
        return Err("--max-request-bytes 0 would reject every request line; \
                    give a positive byte bound (default 1048576)"
            .to_owned());
    }
    if config.watch_buffer == 0 {
        return Err("--watch-buffer 0 would drop every subscriber on its first frame; \
                    give a positive frame bound (default 256)"
            .to_owned());
    }
    if config.ingest.max_trace_bytes == 0 {
        return Err("--max-trace-bytes 0 would reject every upload; \
                    give a positive per-trace quota (default 64M)"
            .to_owned());
    }
    if config.ingest.max_conn_bytes == 0 {
        return Err("--conn-upload-quota 0 would reject every upload; \
                    give a positive per-connection quota (default 256M)"
            .to_owned());
    }
    if config.ingest.staging_watermark == 0 {
        return Err("--staging-watermark 0 would backpressure every upload; \
                    give a positive staging bound (default 256M)"
            .to_owned());
    }
    if let Some(spec) = &chaos_spec {
        config.chaos = ChaosPlan::parse(spec, chaos_seed)?;
        // Serve-side chaos applies to every job's sweep: a fault that
        // kills the host process needs worker subprocesses to absorb it.
        ChaosPlan::check_isolation(spec, config.worker_processes > 0)?;
    }
    // `--port` rewrites the bind address's port, whichever order the
    // flags came in; `--port 0` is the fleet spawner's contract (bind
    // ephemeral, print the bound address on the first stdout line).
    if let Some(port) = port {
        let host = config.addr.rsplit_once(':').map_or("127.0.0.1", |(host, _)| host);
        config.addr = format!("{host}:{port}");
    }
    if config.resume && config.state_dir.is_none() {
        return Err("--resume needs --state-dir (that is where jobs persist)".to_owned());
    }
    install_shutdown_handler();
    let server = Server::start(config).map_err(|e| format!("cannot start daemon: {e}"))?;
    let addr = server.local_addr().map_err(|e| format!("no local address: {e}"))?;
    // CI and scripts scrape this exact line for the ephemeral port.
    println!("vm-serve listening on {addr}");
    std::io::stdout().flush().ok();
    let s = server.serve().map_err(|e| format!("serve failed: {e}"))?;
    eprintln!(
        "vm-serve drained: {} admitted, {} done, {} failed, {} cancelled, {} shed, {} pending",
        s.admitted, s.done, s.failed_jobs, s.cancelled, s.shed, s.pending
    );
    if s.pending > 0 {
        eprintln!("restart with --state-dir ... --resume to finish the pending job(s)");
    }
    Ok(())
}

/// The `serve-stats` subcommand: fold daemon event streams (possibly
/// spanning several lifetimes) into a lifecycle report.
fn serve_stats_cmd(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: repro serve-stats <events.jsonl>...\n\
                     Folds vm-serve --events streams into admission/shed/latency telemetry.\n\
                     Several files (daemon lifetimes) concatenate naturally."
                );
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}` for serve-stats (try --help)"))
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.is_empty() {
        return Err("serve-stats needs at least one events JSONL file".to_owned());
    }
    let mut text = String::new();
    for path in &paths {
        text.push_str(
            &std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?,
        );
        if !text.ends_with('\n') {
            text.push('\n');
        }
    }
    let report = EventReport::from_jsonl(&text)?;
    print!("{}", report.render());
    Ok(())
}

/// The `trace-export` subcommand: synthesize a workload trace into the
/// compact binary format — the file `repro upload` ships to a daemon.
fn trace_export_cmd(args: &[String]) -> Result<(), String> {
    let mut workload = "gcc".to_owned();
    let mut seed: u64 = 42;
    let mut instrs: u64 = 100_000;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--workload" => workload = value("--workload")?,
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--instrs" => {
                instrs = value("--instrs")?.parse().map_err(|e| format!("bad --instrs: {e}"))?
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => {
                println!(
                    "usage: repro trace-export --out FILE [--workload W] [--seed N] [--instrs N]\n\
                     Synthesizes a workload's instruction trace into the compact binary\n\
                     format and prints its size and FNV-1a fingerprint. Feed the file to\n\
                     `repro upload` to ingest it into a daemon as a trace:NAME workload."
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}` for trace-export (try --help)")),
        }
    }
    let out = out.ok_or("trace-export needs --out FILE (try --help)")?;
    let spec =
        presets::by_name(&workload).ok_or_else(|| format!("unknown workload `{workload}`"))?;
    if instrs == 0 {
        return Err("--instrs 0 would export an empty trace; give a positive count".to_owned());
    }
    let gen = spec.build(seed).map_err(|e| format!("cannot build `{workload}`: {e:?}"))?;
    let file =
        std::fs::File::create(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let mut writer = std::io::BufWriter::new(file);
    let records = vm_trace::write_trace(&mut writer, gen.take(instrs as usize))
        .map_err(|e| format!("cannot write {}: {e:?}", out.display()))?;
    writer.flush().map_err(|e| format!("cannot flush {}: {e}", out.display()))?;
    let bytes =
        std::fs::read(&out).map_err(|e| format!("cannot re-read {}: {e}", out.display()))?;
    println!(
        "wrote {} — {} record(s), {} bytes, fnv {}",
        out.display(),
        records,
        bytes.len(),
        vm_serve::proto::hex64(vm_trace::wire::fnv1a(&bytes))
    );
    Ok(())
}

/// One chunk-granular fault for `repro upload --chaos`: the client
/// corrupts, truncates (drops the connection), or stalls exactly once
/// at the given sequence number, then heals — exercising the server's
/// checksum rejection and resume paths end to end.
struct UploadFault {
    kind: String,
    seq: u64,
    spent: bool,
}

fn parse_upload_chaos(spec: &str) -> Result<Vec<UploadFault>, String> {
    spec.split(',')
        .map(|part| {
            let part = part.trim();
            let (kind, seq) = part
                .split_once('@')
                .ok_or_else(|| format!("bad upload chaos `{part}` (want fault@seq)"))?;
            let kind = kind.trim();
            if !matches!(kind, "corrupt" | "truncate" | "stall") {
                return Err(format!("bad upload chaos fault `{kind}` (corrupt|truncate|stall)"));
            }
            let seq = seq.trim().parse().map_err(|e| format!("bad chaos seq in `{part}`: {e}"))?;
            Ok(UploadFault { kind: kind.to_owned(), seq, spent: false })
        })
        .collect()
}

/// The `upload` subcommand: stream a binary trace into a daemon's
/// library over the chunked upload protocol — checksummed, quota- and
/// backpressure-aware, and resumable across connection loss, daemon
/// restarts, and its own `--chaos` faults.
fn upload_cmd(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut name: Option<String> = None;
    let mut file: Option<PathBuf> = None;
    let mut chunk_bytes: usize = 256 << 10;
    let mut chaos: Vec<UploadFault> = Vec::new();
    let mut max_retries: u32 = 30;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--name" => name = Some(value("--name")?),
            "--chunk-bytes" => {
                chunk_bytes = parse_size(&value("--chunk-bytes")?)
                    .ok_or("bad --chunk-bytes size (e.g. 256K)")?
                    as usize
            }
            "--chaos" => chaos = parse_upload_chaos(&value("--chaos")?)?,
            "--max-retries" => {
                max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("bad --max-retries: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro upload --addr HOST:PORT --name NAME <trace.bin>\n\
                     \x20                   [--chunk-bytes SIZE] [--max-retries N]\n\
                     \x20                   [--chaos corrupt@seq|truncate@seq|stall@seq,...]\n\
                     Streams a binary trace (see `repro trace-export`) into a daemon's\n\
                     library as the workload `trace:NAME`. Every chunk carries an FNV-1a\n\
                     checksum; commit verifies a whole-trace fingerprint. 429 backpressure\n\
                     is honored via its retry_after hint, and a dropped connection (or a\n\
                     daemon restart) resumes from the first missing chunk via\n\
                     upload-status — the committed trace is byte-identical either way.\n\
                     \x20 --chunk-bytes  raw bytes per chunk (default 256K; must fit the\n\
                     \x20                daemon's --max-request-bytes after base64)\n\
                     \x20 --max-retries  give up after this many retryable faults (default 30)\n\
                     \x20 --chaos        inject one client-side fault per entry, then heal:\n\
                     \x20                corrupt@2 flips a byte of chunk 2 (server must 400),\n\
                     \x20                truncate@2 drops the connection after sending chunk 2,\n\
                     \x20                stall@2 sleeps 100ms before chunk 2"
                );
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}` for upload (try --help)"))
            }
            path => file = Some(PathBuf::from(path)),
        }
    }
    let addr = addr.ok_or("upload needs --addr HOST:PORT (try --help)")?;
    let name = name.ok_or("upload needs --name NAME (try --help)")?;
    let file = file.ok_or("upload needs a trace file (see `repro trace-export`)")?;
    if chunk_bytes == 0 {
        return Err("--chunk-bytes 0 would never make progress; give a positive size".to_owned());
    }
    let bytes = std::fs::read(&file).map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    upload_trace(&addr, &name, &bytes, chunk_bytes, &mut chaos, max_retries)
}

/// The upload state machine: sync via `upload-status`, open or resume
/// via `upload-begin`, stream chunks, commit. Any transport loss or
/// sequence drift re-enters the sync step; `max_retries` bounds the
/// total number of retryable faults before giving up.
fn upload_trace(
    addr: &str,
    name: &str,
    bytes: &[u8],
    chunk_bytes: usize,
    chaos: &mut [UploadFault],
    max_retries: u32,
) -> Result<(), String> {
    use vm_serve::proto::hex64;
    use vm_trace::wire::{b64_encode, fnv1a};
    let reporter = Reporter::global();
    let total = bytes.len() as u64;
    let fnv = fnv1a(bytes);
    let mut retries = 0u32;
    let mut spend_retry = |what: &str| -> Result<(), String> {
        retries += 1;
        if retries > max_retries {
            return Err(format!("giving up after {max_retries} retryable fault(s): {what}"));
        }
        Ok(())
    };
    let connect = || -> Result<vm_serve::Client, String> {
        vm_serve::Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
    };
    let code_of = |v: &Value| v.get("code").and_then(Value::as_u64).unwrap_or(0);
    let mut client = connect()?;
    'sync: loop {
        // Where does the daemon think this upload stands?
        let status =
            client.request(&Value::obj([("req", "upload-status".into()), ("name", name.into())]));
        let status = match status {
            Ok(v) => v,
            Err(e) => {
                spend_retry(&e)?;
                std::thread::sleep(std::time::Duration::from_millis(100));
                client = connect()?;
                continue 'sync;
            }
        };
        if status.get("state").and_then(Value::as_str) == Some("committed") {
            println!(
                "trace `{name}` is already committed — submit jobs against workload trace:{name}"
            );
            return Ok(());
        }
        // Open or resume. Identical declaration resumes the partial;
        // the daemon answers with the first missing sequence number.
        let begin = client.request(&Value::obj([
            ("req", "upload-begin".into()),
            ("name", name.into()),
            ("bytes", total.into()),
            ("fnv", hex64(fnv).into()),
        ]));
        let begin = match begin {
            Ok(v) => v,
            Err(e) => {
                spend_retry(&e)?;
                std::thread::sleep(std::time::Duration::from_millis(100));
                client = connect()?;
                continue 'sync;
            }
        };
        match code_of(&begin) {
            200 => {}
            429 => {
                let wait = begin.get("retry_after").and_then(Value::as_u64).unwrap_or(500);
                spend_retry("backpressure (429)")?;
                reporter.progress(format!("daemon backpressured; retrying in {wait}ms"));
                std::thread::sleep(std::time::Duration::from_millis(wait.min(5_000)));
                continue 'sync;
            }
            code => {
                let detail = begin.get("error").and_then(Value::as_str).unwrap_or("(no detail)");
                return Err(format!("upload-begin rejected ({code}): {detail}"));
            }
        }
        let id = begin.get("upload").and_then(Value::as_u64).ok_or("response lacks upload id")?;
        let mut offset = begin.get("staged").and_then(Value::as_u64).unwrap_or(0) as usize;
        let mut seq = begin.get("next_seq").and_then(Value::as_u64).unwrap_or(0);
        if begin.get("resumed") == Some(&Value::Bool(true)) {
            reporter
                .progress(format!("resuming upload {id} at chunk {seq} ({offset} bytes staged)"));
        }
        while offset < bytes.len() {
            let end = (offset + chunk_bytes).min(bytes.len());
            let chunk = &bytes[offset..end];
            let mut body = chunk.to_vec();
            let mut drop_connection = false;
            for fault in chaos.iter_mut().filter(|f| !f.spent && f.seq == seq) {
                fault.spent = true;
                match fault.kind.as_str() {
                    "corrupt" => {
                        // Checksum is computed over the true bytes, so
                        // the daemon must detect the flipped body.
                        body[0] ^= 0x01;
                        reporter.progress(format!("chaos: corrupting chunk {seq}"));
                    }
                    "stall" => {
                        reporter.progress(format!("chaos: stalling before chunk {seq}"));
                        std::thread::sleep(std::time::Duration::from_millis(100));
                    }
                    _ => {
                        reporter.progress(format!("chaos: dropping connection after chunk {seq}"));
                        drop_connection = true;
                    }
                }
            }
            let req = Value::obj([
                ("req", "upload-chunk".into()),
                ("upload", id.into()),
                ("seq", seq.into()),
                ("fnv", hex64(fnv1a(chunk)).into()),
                ("data", b64_encode(&body).into()),
            ]);
            if drop_connection {
                // Send without reading the reply, then sever — the
                // daemon may or may not have staged the chunk; resync
                // via upload-status decides.
                let _ = client.send(&req);
                spend_retry("chaos truncate")?;
                client = connect()?;
                continue 'sync;
            }
            let resp = match client.request(&req) {
                Ok(v) => v,
                Err(e) => {
                    spend_retry(&e)?;
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    client = connect()?;
                    continue 'sync;
                }
            };
            match code_of(&resp) {
                200 => {
                    seq = resp.get("next_seq").and_then(Value::as_u64).unwrap_or(seq + 1);
                    offset =
                        resp.get("staged").and_then(Value::as_u64).unwrap_or(end as u64) as usize;
                }
                400 => {
                    // Checksum/encoding rejection: the staged prefix is
                    // intact, resend this same sequence number.
                    let detail = resp.get("error").and_then(Value::as_str).unwrap_or("(no detail)");
                    spend_retry(detail)?;
                    reporter.progress(format!("chunk {seq} rejected ({detail}); resending"));
                }
                409 => {
                    spend_retry("sequence drift (409)")?;
                    continue 'sync;
                }
                code => {
                    let detail = resp.get("error").and_then(Value::as_str).unwrap_or("(no detail)");
                    return Err(format!("chunk {seq} rejected ({code}): {detail}"));
                }
            }
        }
        let commit = match client
            .request(&Value::obj([("req", "upload-commit".into()), ("upload", id.into())]))
        {
            Ok(v) => v,
            Err(e) => {
                spend_retry(&e)?;
                std::thread::sleep(std::time::Duration::from_millis(100));
                client = connect()?;
                continue 'sync;
            }
        };
        match code_of(&commit) {
            200 => {
                let records = commit.get("records").and_then(Value::as_u64).unwrap_or(0);
                println!(
                    "committed trace `{name}`: {total} bytes, {records} record(s), fnv {} — \
                     submit jobs against workload trace:{name}",
                    hex64(fnv)
                );
                return Ok(());
            }
            code => {
                let detail = commit.get("error").and_then(Value::as_str).unwrap_or("(no detail)");
                return Err(format!("upload-commit rejected ({code}): {detail}"));
            }
        }
    }
}

/// The `watch` subcommand: subscribe to a daemon's live telemetry
/// stream and render it as a terminal dashboard (or raw frames with
/// `--json`). See docs/live.md for the frame schema.
fn watch_cmd(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut job: Option<u64> = None;
    let mut all = false;
    let mut raw = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr needs HOST:PORT")?.clone()),
            "--all" => all = true,
            "--json" => raw = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro watch --addr HOST:PORT [JOB | --all] [--json]\n\
                     Subscribes to a running vm-serve daemon and renders live job\n\
                     telemetry: progress bars, instrs/sec, per-system partial VMCPI,\n\
                     and a worker-health strip. With a JOB id the stream ends at that\n\
                     job's terminal frame; --all watches everything until the daemon\n\
                     drains. --json prints the raw NDJSON frames instead (one per\n\
                     line, schema in docs/live.md)."
                );
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}` for watch (try --help)"))
            }
            id => job = Some(id.parse().map_err(|_| format!("bad job id `{id}` (try --help)"))?),
        }
    }
    let addr = addr.ok_or("watch needs --addr HOST:PORT (try --help)")?;
    if all && job.is_some() {
        return Err("pick one of JOB or --all, not both".to_owned());
    }
    let mut client =
        vm_serve::Client::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut req = vec![("req".to_owned(), Value::from("watch"))];
    match job {
        Some(id) => req.push(("job".to_owned(), Value::from(id))),
        None => req.push(("job".to_owned(), Value::from("*"))),
    }
    client.send(&Value::Obj(req)).map_err(|e| format!("cannot subscribe: {e}"))?;
    let ack = client.next_line().map_err(|e| format!("no subscription ack: {e}"))?;
    if ack.get("ok") != Some(&Value::Bool(true)) {
        return Err(format!("daemon refused the watch: {ack}"));
    }
    // The daemon emits a keepalive tick every ~5 s of idle, so a read
    // timeout here means it died rather than went quiet.
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| format!("{e}"))?;
    let mut board = vm_serve::Dashboard::new();
    let mut painted_lines = 0usize;
    let mut saw_done = false;
    loop {
        let frame = match client.next_line() {
            Ok(frame) => frame,
            // For a single-job watch the daemon hangs up right after the
            // terminal frame; that close is the normal end of stream.
            Err(_) if saw_done => break,
            Err(e) if e.contains("connection closed") => {
                if !raw {
                    eprintln!("daemon closed the stream (drained or restarted)");
                }
                break;
            }
            Err(e) => return Err(format!("watch stream failed: {e}")),
        };
        let kind = frame.get("frame").and_then(Value::as_str).unwrap_or("").to_owned();
        if raw {
            println!("{frame}");
        } else {
            board.apply(&frame);
            if kind != "tick" {
                let paint = board.repaint(painted_lines);
                print!("{paint}");
                let _ = std::io::stdout().flush();
                painted_lines = board.render().lines().count();
            }
        }
        match kind.as_str() {
            "done" if job.is_some() => saw_done = true,
            "lagged" => return Err("dropped as a slow subscriber — reconnect to resume".to_owned()),
            _ => {}
        }
    }
    Ok(())
}

/// The `serve-bench` subcommand: throughput baseline at 1 and 4 workers
/// plus the 1/2/4-backend fleet scaling curve (the committed
/// `BENCH_serve.json` body goes to stdout).
fn serve_bench_cmd(args: &[String]) -> Result<(), String> {
    let mut batch: usize = 8;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--batch" => {
                batch = it
                    .next()
                    .ok_or("--batch needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --batch: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro serve-bench [--batch N]\n\
                     Boots an in-process daemon at 1 then 4 workers, pushes N small sweep\n\
                     jobs through the wire protocol, then runs a fixed grid through fleets\n\
                     of 1, 2, and 4 in-process daemons, and prints BENCH_serve.json."
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}` for serve-bench (try --help)")),
        }
    }
    let mut points = Vec::new();
    for workers in [1usize, 4] {
        let p = throughput(workers, batch)?;
        eprintln!(
            "serve-bench: {} worker(s), {} jobs -> {:.2} jobs/s ({} ms)",
            p.workers, p.jobs, p.jobs_per_sec, p.wall_ms
        );
        points.push(p);
    }
    let mut fleet_rows = Vec::new();
    for backends in [1usize, 2, 4] {
        let p = fleet_throughput(backends)?;
        eprintln!(
            "serve-bench: fleet of {}, {} points -> {:.2} points/s ({} ms)",
            p.backends, p.points, p.points_per_sec, p.wall_ms
        );
        fleet_rows.push(p.to_value());
    }
    println!("{}", bench_json(&points, &fleet_rows));
    Ok(())
}

/// The `fleet` subcommand: shard one sweep across several serve
/// daemons (spawned locally and/or already running) and merge the
/// shards back byte-identically to a single-node run. See docs/fleet.md.
fn fleet_cmd(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut axes: Vec<Axis> = Vec::new();
    let mut exec = ExecConfig { jobs: 1, ..ExecConfig::DEFAULT };
    let mut spawn: usize = 0;
    let mut addrs: Vec<String> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut events: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut fleet_journal: Option<PathBuf> = None;
    let mut resume = false;
    let mut watch_addr: Option<String> = None;
    let mut join_addr: Option<String> = None;
    let mut opts = FleetOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--sweep" => axes.push(Axis::parse(&value("--sweep")?)?),
            "--spawn" => {
                spawn = value("--spawn")?.parse().map_err(|e| format!("bad --spawn: {e}"))?
            }
            "--backend" => addrs.push(value("--backend")?),
            "--quick" => {
                (exec.warmup, exec.measure) = (RunScale::QUICK.warmup, RunScale::QUICK.measure)
            }
            "--full" => {
                (exec.warmup, exec.measure) = (RunScale::FULL.warmup, RunScale::FULL.measure)
            }
            "--out" => out_dir = Some(PathBuf::from(value("--out")?)),
            "--events" => events = Some(PathBuf::from(value("--events")?)),
            "--journal" => journal = Some(PathBuf::from(value("--journal")?)),
            "--fleet-journal" => fleet_journal = Some(PathBuf::from(value("--fleet-journal")?)),
            "--resume" => resume = true,
            "--watch-addr" => watch_addr = Some(value("--watch-addr")?),
            "--join-addr" => join_addr = Some(value("--join-addr")?),
            "--probation-ms" => {
                let ms: u64 = value("--probation-ms")?
                    .parse()
                    .map_err(|e| format!("bad --probation-ms: {e}"))?;
                opts.probation = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--keepalive-ms" => {
                let ms: u64 = value("--keepalive-ms")?
                    .parse()
                    .map_err(|e| format!("bad --keepalive-ms: {e}"))?;
                opts.keepalive = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--retries" => {
                opts.retries =
                    value("--retries")?.parse().map_err(|e| format!("bad --retries: {e}"))?
            }
            "--point-budget" => {
                opts.point_budget = Some(
                    value("--point-budget")?
                        .parse()
                        .map_err(|e| format!("bad --point-budget: {e}"))?,
                )
            }
            "--hedge-ms" => {
                let ms: u64 =
                    value("--hedge-ms")?.parse().map_err(|e| format!("bad --hedge-ms: {e}"))?;
                opts.hedge_after = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--evict-after" => {
                opts.evict.max_failures = value("--evict-after")?
                    .parse()
                    .map_err(|e| format!("bad --evict-after: {e}"))?
            }
            "--evict-window-ms" => {
                opts.evict.window = std::time::Duration::from_millis(
                    value("--evict-window-ms")?
                        .parse()
                        .map_err(|e| format!("bad --evict-window-ms: {e}"))?,
                )
            }
            "--poll-ms" => {
                opts.poll = std::time::Duration::from_millis(
                    value("--poll-ms")?.parse().map_err(|e| format!("bad --poll-ms: {e}"))?,
                )
            }
            "--audit-rate" => {
                let rate: f64 =
                    value("--audit-rate")?.parse().map_err(|e| format!("bad --audit-rate: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("bad --audit-rate: {rate} is not in 0..=1"));
                }
                opts.audit_rate = rate;
            }
            "--verbosity" => {
                let v = value("--verbosity")?;
                set_global_verbosity(
                    Verbosity::parse(&v).ok_or_else(|| format!("bad --verbosity `{v}`"))?,
                );
            }
            "-q" | "--quiet" => set_global_verbosity(Verbosity::Quiet),
            "-v" | "--verbose" => set_global_verbosity(Verbosity::Verbose),
            "--help" | "-h" => {
                println!(
                    "usage: repro fleet <spec.toml | dir>... [--sweep key=v1,v2,...]...\n\
                     \x20                  (--spawn N | --backend HOST:PORT)...\n\
                     \x20                  [--quick|--full] [--out DIR] [--journal FILE] [--events FILE]\n\
                     \x20                  [--fleet-journal FILE [--resume]]\n\
                     \x20                  [--retries N] [--point-budget CYCLES]\n\
                     \x20                  [--hedge-ms N] [--evict-after N] [--evict-window-ms N]\n\
                     \x20                  [--probation-ms N] [--keepalive-ms N] [--audit-rate P]\n\
                     \x20                  [--poll-ms N] [--watch-addr HOST:PORT] [--join-addr HOST:PORT]\n\
                     \x20                  [--verbosity 0|1|2 | -q | -v]\n\
                     Shards the sweep across a fleet of vm-serve daemons and merges the\n\
                     shards back byte-identically to a single-node `repro explore --jobs 1`\n\
                     run — same tables, same CSV, same journal bytes. See docs/fleet.md.\n\
                     \x20 --spawn         fork N local `repro serve --port 0` children\n\
                     \x20                 (drained and reaped at exit)\n\
                     \x20 --backend       dispatch to an already-running daemon (repeatable,\n\
                     \x20                 mixes with --spawn)\n\
                     \x20 --journal       write the merged run journal (readable by\n\
                     \x20                 `repro explore --resume`)\n\
                     \x20 --fleet-journal append the coordinator's own crash-resume journal\n\
                     \x20                 (assignments + payloads) as the run progresses\n\
                     \x20 --resume        seed completed points from an existing --fleet-journal\n\
                     \x20                 and dispatch only the remainder\n\
                     \x20 --events        append fleet lifecycle events (JSONL) for serve-stats\n\
                     \x20 --hedge-ms      re-dispatch a point in flight longer than this on an\n\
                     \x20                 idle backend; first result wins (0 disables; default 2000)\n\
                     \x20 --evict-after   failures inside the window before a backend is\n\
                     \x20                 evicted from rotation (default 3)\n\
                     \x20 --evict-window-ms  the sliding eviction window (default 60000)\n\
                     \x20 --probation-ms  cool-down before an evicted backend is re-probed for\n\
                     \x20                 rejoin (0 makes eviction permanent; default 5000)\n\
                     \x20 --keepalive-ms  idle health-probe interval so dead-idle backends are\n\
                     \x20                 evicted promptly (0 disables; default 1000)\n\
                     \x20 --audit-rate    re-run this fraction of completed points on a second\n\
                     \x20                 backend and compare bit-for-bit; a mismatch quarantines\n\
                     \x20                 the losing backend (0 disables; default 0)\n\
                     \x20 --join-addr     listen here for join/leave/roster control verbs\n\
                     \x20                 (NDJSON; port 0 binds an ephemeral port; the bound\n\
                     \x20                 address is printed on stdout)\n\
                     \x20 --watch-addr    serve the fleet's aggregated live telemetry here for\n\
                     \x20                 `repro watch` (port 0 binds an ephemeral port; the\n\
                     \x20                 bound address is printed on stdout)"
                );
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}` for fleet (try --help)"))
            }
            path => collect_specs(Path::new(path), &mut paths)?,
        }
    }
    if paths.is_empty() {
        return Err(
            "fleet needs at least one spec file or directory (e.g. `repro fleet specs --spawn 2`)"
                .to_owned(),
        );
    }
    if spawn == 0 && addrs.is_empty() {
        return Err("fleet needs backends: --spawn N and/or --backend HOST:PORT".to_owned());
    }
    if resume && fleet_journal.is_none() {
        return Err("--resume needs --fleet-journal FILE".to_owned());
    }
    let mut specs = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        // Parse errors surface here with the file name; fleet_plan only
        // re-parses known-good text.
        SystemSpec::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        specs.push(text);
    }
    let fplan = fleet_plan(&specs, &axes)?;
    let reporter = Reporter::global();

    let mut session = FleetSession::default();
    if let Some(path) = &fleet_journal {
        if resume {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let prior = seed_fleet_resume(&text, &fplan.plan, &exec)?;
            reporter.progress(format!(
                "resume: {} completed point(s) restored from {} ({} dispatch note(s))",
                prior.seeded.len(),
                path.display(),
                prior.assigns
            ));
            session.seeded = prior.seeded;
            // The prior coordinator already wrote the header; this run
            // appends to its lines.
            session.write_header = false;
            // A SIGKILL can tear the final line mid-write; appending
            // after it would fuse the torn tail with this run's first
            // line. Drop the tail (seeding already tolerated it).
            if !text.is_empty() && !text.ends_with('\n') {
                let keep = text.rfind('\n').map_or(0, |p| p + 1);
                let file = std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| format!("cannot reopen {}: {e}", path.display()))?;
                file.set_len(keep as u64)
                    .map_err(|e| format!("cannot trim {}: {e}", path.display()))?;
            }
        } else {
            // A fresh run owns the file outright: stale lines from an
            // unrelated run must never leak into this run's resume.
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(format!("cannot reset {}: {e}", path.display())),
            }
            session.write_header = true;
        }
        session.journal = Some(
            JournalWriter::open_path(path)
                .map_err(|e| format!("cannot open {}: {e}", path.display()))?,
        );
    }
    if let Some(addr) = &join_addr {
        let control =
            ControlChannel::bind(addr.as_str()).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let bound = control.local_addr().map_err(|e| format!("no local address: {e}"))?;
        // The smoke harness (and operators) scrape this line to reach
        // the control channel.
        println!("vm-fleet control on {bound}");
        std::io::stdout().flush().ok();
        session.control = Some(control);
    }

    let mut backends: Vec<Backend> = Vec::new();
    for addr in addrs {
        backends.push(Backend::from_addr(backends.len(), addr));
    }
    if spawn > 0 {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot resolve my own executable: {e}"))?;
        // Spawned children get queue headroom and a parked degrade
        // watermark: a degraded admission would clamp run lengths and
        // break bit-identity, so the coordinator treats it as a fault.
        let extra = ["--queue", "64", "--degrade-depth", "64"].map(String::from);
        for _ in 0..spawn {
            let b = Backend::spawn(backends.len(), &exe, &extra)?;
            // The smoke harness scrapes these lines to find (and kill)
            // specific children mid-sweep.
            println!("vm-fleet backend {} pid {} at {}", b.id, b.pid().unwrap_or(0), b.addr);
            backends.push(b);
        }
        std::io::stdout().flush().ok();
    }

    static WATCH_STOP: AtomicBool = AtomicBool::new(false);
    let mut hub: Option<Arc<WatchHub>> = None;
    let mut proxy_thread = None;
    if let Some(addr) = &watch_addr {
        let h = Arc::new(WatchHub::new());
        let proxy =
            WatchProxy::bind(addr.as_str()).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let bound = proxy.local_addr().map_err(|e| format!("no local address: {e}"))?;
        println!("vm-fleet watching on {bound}");
        std::io::stdout().flush().ok();
        let serve_hub = Arc::clone(&h);
        proxy_thread = Some(std::thread::spawn(move || proxy.serve(&serve_hub, &WATCH_STOP)));
        hub = Some(h);
    }

    let mut sink = events.is_some().then(|| JsonlSink::new(Vec::new()));
    let run_result =
        run_fleet(&fplan, &exec, backends, &opts, &reporter, &mut sink, hub.as_ref(), session);
    WATCH_STOP.store(true, Ordering::Release);
    if let Some(t) = proxy_thread {
        let _ = t.join();
    }
    let outcome = run_result?;
    for row in &outcome.roster {
        reporter.progress(format!(
            "backend {} at {}: {}{}, {} point(s) completed, teardown {}",
            row.slot,
            row.addr,
            row.state,
            if row.joined { " (joined mid-run)" } else { "" },
            row.completed,
            row.shutdown.label()
        ));
    }

    let vm_fleet::MergedRun { results, failures, journal: journal_bytes } = outcome.merged;
    let run =
        explore::ExploreRun::from_results(results, failures, fplan.plan.skipped.clone(), &axes);
    println!("{}", run.render());
    if !run.failures.is_empty() {
        reporter.progress(format!(
            "{} of {} point(s) failed permanently (each was dispatched to several backends)",
            run.failures.len(),
            run.failures.len() + run.results.len(),
        ));
    }
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        for (name, csv) in [
            ("explore", run.to_csv()),
            ("explore-frontier", run.frontier_to_csv()),
            ("explore-sensitivity", run.sensitivity_to_csv()),
        ] {
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, csv.as_bytes())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            reporter.progress(format!("wrote {}", path.display()));
        }
    }
    if let Some(path) = &journal {
        std::fs::write(path, &journal_bytes)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        reporter.progress(format!(
            "wrote {} ({} bytes, byte-identical to a single-node --jobs 1 journal)",
            path.display(),
            journal_bytes.len()
        ));
    }
    if let (Some(path), Some(sink)) = (&events, sink) {
        match sink.finish() {
            Ok(buf) => write_export(&reporter, path, &buf),
            Err(e) => eprintln!("events capture failed: {e}"),
        }
    }
    Ok(())
}

/// The `verify` subcommand: offline integrity audit of committed run
/// artifacts. Re-derives every attestation in a journal, optionally
/// re-derives every context fingerprint from the base spec, and checks
/// the exported CSV is exactly what the journal's payloads render to.
/// Every failure names the point index and the stage that caught it
/// (`decode`, `attestation`, `context`, `csv`).
fn verify_cmd(args: &[String]) -> Result<(), String> {
    let mut csv_path: Option<PathBuf> = None;
    let mut journal_path: Option<PathBuf> = None;
    let mut spec_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--journal" => journal_path = Some(PathBuf::from(value("--journal")?)),
            "--spec" => spec_path = Some(PathBuf::from(value("--spec")?)),
            "--help" | "-h" => {
                println!(
                    "usage: repro verify <explore.csv> --journal FILE [--spec system.toml]\n\
                     Offline result-integrity audit of committed artifacts: re-derives the\n\
                     attestation of every journaled payload, optionally re-derives each\n\
                     point's context fingerprint from the base spec, and re-renders the\n\
                     CSV from the journal to prove the two artifacts agree byte-for-byte.\n\
                     Failures name the point index and stage (decode | attestation |\n\
                     context | csv). See docs/robustness.md.\n\
                     \x20 --journal  the run journal the CSV was merged from (required)\n\
                     \x20 --spec     the base spec TOML the sweep expanded from; enables the\n\
                     \x20            context stage (detects payloads signed by a different\n\
                     \x20            spec, seed, or scale)"
                );
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}` for verify (try --help)"))
            }
            path => csv_path = Some(PathBuf::from(path)),
        }
    }
    let csv_path = csv_path.ok_or("verify needs the exported CSV file (try --help)")?;
    let journal_path = journal_path.ok_or("verify needs --journal FILE (try --help)")?;
    let journal = Journal::load(&journal_path)?;
    let header = journal.header.ok_or("journal has no run header — nothing pins the scale")?;
    let exec = ExecConfig { warmup: header.warmup, measure: header.measure, jobs: 1 };
    let base = match &spec_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            Some(SystemSpec::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?)
        }
        None => None,
    };

    // Later journal lines supersede earlier ones (resume appends), so
    // fold entries in order before judging anything but decode.
    let mut results: std::collections::BTreeMap<u64, vm_explore::PointResult> =
        std::collections::BTreeMap::new();
    for entry in &journal.entries {
        let ix = entry.index;
        if entry.status != "done" {
            results.remove(&ix);
            continue;
        }
        let payload = entry
            .payload
            .as_ref()
            .ok_or_else(|| format!("point {ix} [decode]: done entry carries no payload"))?;
        let r = vm_explore::result_from_value(payload)
            .map_err(|e| format!("point {ix} [decode]: {e}"))?;
        if r.index as u64 != ix || r.label != entry.label {
            return Err(format!(
                "point {ix} [decode]: entry is `{}` but its payload claims point {} `{}`",
                entry.label, r.index, r.label
            ));
        }
        vm_explore::verify_sealed(&r).map_err(|e| format!("point {ix} [attestation]: {e}"))?;
        if let Some(base) = &base {
            // Re-expand the point exactly as a fleet backend would: the
            // payload's settings are the pinned axis assignment.
            let pinned: Vec<Axis> = r
                .settings
                .iter()
                .map(|(k, v)| Axis::parse(&format!("{k}={v}")))
                .collect::<Result<_, _>>()
                .map_err(|e| format!("point {ix} [context]: {e}"))?;
            let sub = vm_explore::SweepPlan::expand(base, &pinned)
                .map_err(|e| format!("point {ix} [context]: {e}"))?;
            let point = match sub.points.as_slice() {
                [point] => point,
                other => {
                    return Err(format!(
                        "point {ix} [context]: settings re-expand to {} point(s), not one",
                        other.len()
                    ))
                }
            };
            if point.label != r.label {
                return Err(format!(
                    "point {ix} [context]: settings re-expand to `{}`, not `{}`",
                    point.label, r.label
                ));
            }
            let expect = vm_explore::context_for(point, &exec);
            vm_explore::verify_in_context(&r, expect)
                .map_err(|e| format!("point {ix} [context]: {e}"))?;
        }
        results.insert(ix, r);
    }

    let csv_text = std::fs::read_to_string(&csv_path)
        .map_err(|e| format!("cannot read {}: {e}", csv_path.display()))?;
    let ordered: Vec<vm_explore::PointResult> = results.into_values().collect();
    let count = ordered.len();
    let derived = explore::ExploreRun::from_results(ordered, Vec::new(), Vec::new(), &[]).to_csv();
    if derived != csv_text {
        let want: Vec<&str> = derived.lines().collect();
        let got: Vec<&str> = csv_text.lines().collect();
        let row = (0..want.len().max(got.len()))
            .find(|&i| want.get(i) != got.get(i))
            .expect("unequal text differs on some line");
        let name = if row == 0 {
            "csv header row".to_owned()
        } else {
            // Row i renders the i-th journaled result; name it by the
            // label so the operator can find the point without counting.
            want.get(row)
                .or_else(|| got.get(row))
                .and_then(|line| line.split(',').next())
                .map_or_else(|| format!("csv row {row}"), |l| format!("point `{l}`"))
        };
        return Err(format!(
            "{name} [csv]: journal renders `{}` but the CSV says `{}`",
            want.get(row).copied().unwrap_or("<nothing — CSV has extra rows>"),
            got.get(row).copied().unwrap_or("<nothing — CSV is short>"),
        ));
    }
    println!(
        "verified {count} point(s): decode ok, attestation ok, context {}, csv ok",
        if base.is_some() { "ok" } else { "skipped (no --spec)" }
    );
    Ok(())
}

struct Options {
    scale: RunScale,
    threads: usize,
    out: Option<PathBuf>,
    strict: bool,
    workload: Option<String>,
    events: Option<PathBuf>,
    chrome: Option<PathBuf>,
}

/// Restores the default SIGPIPE disposition so piping into `head`/`less`
/// terminates the process quietly instead of panicking on a broken-pipe
/// write error (Rust ignores SIGPIPE by default).
fn reset_sigpipe() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGPIPE: i32 = 13;
        const SIG_DFL: usize = 0;
        // SAFETY: signal(2) with SIG_DFL is async-signal-safe process setup
        // performed once before any other work.
        unsafe {
            signal(SIGPIPE, SIG_DFL);
        }
    }
}

fn parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn save(opts: &Options, name: &str, csv: &str) {
    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            Ok(()) => Reporter::global().progress(format!("wrote {}", path.display())),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

/// Applies the global `--workload` override, falling back to the
/// experiment's paper default.
fn resolve_workload(
    opts: &Options,
    default: vm_trace::WorkloadSpec,
) -> Option<vm_trace::WorkloadSpec> {
    match &opts.workload {
        None => Some(default),
        Some(name) => match presets::by_name(name) {
            Some(w) => Some(w),
            None => {
                eprintln!("unknown workload `{name}` (gcc|vortex|ijpeg|li|compress|perl)");
                None
            }
        },
    }
}

fn report_claims(all: &mut Vec<Claim>, claims: Vec<Claim>) {
    print!("{}", Claim::render_all(&claims));
    all.extend(claims);
}

fn run_experiment(
    name: &str,
    opts: &Options,
    reporter: &Reporter,
    all_claims: &mut Vec<Claim>,
) -> bool {
    match name {
        "tables" => {
            reporter.progress("== tables: cost parameters and system survey ==");
            println!("{}", tables::render_all());
        }
        "fig6" | "fig7" => {
            let default = if name == "fig6" { presets::gcc_spec() } else { presets::vortex_spec() };
            let Some(workload) = resolve_workload(opts, default) else { return false };
            reporter.progress(format!(
                "== {name}: VMCPI vs L1/L2 cache size and line size — {} ==",
                workload.name
            ));
            let mut cfg = if opts.scale == RunScale::QUICK {
                fig6::Config::quick(workload)
            } else {
                fig6::Config::paper(workload)
            };
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = fig6::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "fig8" | "fig9" => {
            let default = if name == "fig8" { presets::gcc_spec() } else { presets::vortex_spec() };
            let Some(workload) = resolve_workload(opts, default) else { return false };
            reporter.progress(format!(
                "== {name}: VMCPI break-downs — {} (64/128-byte lines) ==",
                workload.name
            ));
            let mut cfg = if opts.scale == RunScale::QUICK {
                fig8::Config::quick(workload)
            } else {
                fig8::Config::paper(workload)
            };
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = fig8::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "fig10" => {
            reporter.progress("== fig10: the cost of precise interrupts ==");
            let mut cfg = interrupts::Config::paper(presets::paper_benchmarks());
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = interrupts::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "fig11" => {
            reporter.progress("== fig11: TLB-size sensitivity ==");
            let mut cfg = tlbsize::Config::paper(vec![presets::gcc_spec(), presets::vortex_spec()]);
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = tlbsize::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "fig12" => {
            reporter.progress("== fig12: cache misses inflicted on the application ==");
            let mut cfg = mcpi::Config::paper(presets::paper_benchmarks());
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = mcpi::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "fig13" => {
            reporter.progress("== fig13: total VM overhead ==");
            let mut cfg = total::Config::paper(presets::paper_benchmarks());
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = total::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "abl-mp" => {
            reporter.progress("== abl-mp: multiprogramming — ASID-tagged vs untagged TLBs ==");
            let mut cfg = multiprog::Config::default_mix(vec![
                presets::gcc_spec(),
                presets::vortex_spec(),
                presets::ijpeg_spec(),
            ]);
            cfg.scale = opts.scale;
            let r = multiprog::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "suite" => {
            reporter.progress("== suite: six workloads x five systems, seed-replicated ==");
            let mut cfg = suite::Config::default_suite(presets::all_benchmarks());
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = suite::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "abl-hybrid" | "abl-walkmode" | "abl-assoc" | "abl-tlb" | "abl-ctx" | "abl-unified" => {
            let ablation = ablations::Ablation::ALL
                .into_iter()
                .find(|a| a.name() == name)
                .expect("matched above");
            reporter.progress(format!("== {name} =="));
            let mut cfg =
                ablations::Config::new(ablation, vec![presets::gcc_spec(), presets::vortex_spec()]);
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = ablations::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "telemetry" => {
            let Some(workload) = resolve_workload(opts, presets::gcc_spec()) else { return false };
            reporter.progress(format!(
                "== telemetry: instrumented pass over the paper systems — {} ==",
                workload.name
            ));
            let cfg = telemetry::Config::paper_systems(workload, opts.scale);
            let t = telemetry::run(&cfg, opts.events.is_some(), opts.chrome.is_some(), reporter);
            println!("{}", t.render_summary());
            if let (Some(path), Some(buf)) = (&opts.events, &t.events_jsonl) {
                write_export(reporter, path, buf);
            }
            if let (Some(path), Some(buf)) = (&opts.chrome, &t.chrome_trace) {
                write_export(reporter, path, buf);
            }
        }
        other => {
            // Names are validated against the registry before dispatch,
            // so this only fires if the registry and this match drift.
            eprintln!("experiment `{other}` is registered but has no driver");
            return false;
        }
    }
    println!();
    true
}

fn main() -> ExitCode {
    reset_sigpipe();
    // Binaries default to Normal (library callers stay Quiet); the
    // verbosity flags below override.
    set_global_verbosity(Verbosity::Normal);
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("worker") {
        // The (internal) supervised worker: NDJSON requests on stdin,
        // one reply line per point on stdout, heartbeats in between.
        // Spawned by `--isolation process` / `serve --workers`; exits at
        // stdin EOF (i.e. when its supervisor goes away).
        set_global_verbosity(Verbosity::Quiet);
        return match vm_explore::serve_worker() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("repro worker: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("run") {
        return match run_one(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("repro run: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("explore") {
        return match explore_cmd(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("repro explore: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(
        cmd @ ("serve" | "serve-stats" | "serve-bench" | "watch" | "fleet" | "upload"
        | "trace-export" | "verify"),
    ) = args.first().map(String::as_str)
    {
        let run = match cmd {
            "serve" => serve_cmd(&args[1..]),
            "serve-stats" => serve_stats_cmd(&args[1..]),
            "watch" => watch_cmd(&args[1..]),
            "fleet" => fleet_cmd(&args[1..]),
            "upload" => upload_cmd(&args[1..]),
            "trace-export" => trace_export_cmd(&args[1..]),
            "verify" => verify_cmd(&args[1..]),
            _ => serve_bench_cmd(&args[1..]),
        };
        return match run {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("repro {cmd}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut opts = Options {
        scale: RunScale::DEFAULT,
        threads: parallelism(),
        out: None,
        strict: false,
        workload: None,
        events: None,
        chrome: None,
    };
    let mut verbosity = Verbosity::Normal;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.scale = RunScale::QUICK,
            "--strict" => opts.strict = true,
            "--events" => match it.next() {
                Some(p) => opts.events = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--events needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--chrome-trace" => match it.next() {
                Some(p) => opts.chrome = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--chrome-trace needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--verbosity" => match it.next().as_deref().and_then(Verbosity::parse) {
                Some(v) => verbosity = v,
                None => {
                    eprintln!("--verbosity needs 0|1|2 (or quiet|normal|verbose)");
                    return ExitCode::FAILURE;
                }
            },
            "-q" | "--quiet" => verbosity = Verbosity::Quiet,
            "-v" | "--verbose" => verbosity = Verbosity::Verbose,
            "--workload" => match it.next() {
                Some(w) => opts.workload = Some(w),
                None => {
                    eprintln!("--workload needs a name (gcc|vortex|ijpeg|li|compress|perl)");
                    return ExitCode::FAILURE;
                }
            },
            "--full" => opts.scale = RunScale::FULL,
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.threads = n,
                None => {
                    eprintln!("--threads needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(dir) => opts.out = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                // The experiment list comes from the registry so this
                // text cannot drift from what actually runs.
                println!(
                    "usage: repro <experiment>... [--quick|--full] [--threads N] [--out DIR] [--strict]\n\
                     \x20                       [--events FILE] [--chrome-trace FILE] [--verbosity 0|1|2 | -q | -v]\n\
                     experiments:\n{}\
                     telemetry:   --events writes a JSONL event stream, --chrome-trace a chrome://tracing\n\
                     \x20            document; either implies the `telemetry` experiment\n\
                     exploration: repro explore <spec.toml | dir> [--sweep key=v1,v2]... [--jobs N] (see explore --help)\n\
                     one-off:     repro run [--system S] [--workload W] [--l1 16K] [--l2 1M] ... (see --help in source)\n\
                     service:     repro serve | serve-stats | serve-bench | watch (see serve --help, docs/serving.md,\n\
                     \x20            and docs/live.md)\n\
                     ingestion:   repro trace-export --out t.bin; repro upload --addr H:P --name NAME t.bin\n\
                     \x20            streams a binary trace into a daemon as workload trace:NAME (see docs/serving.md)\n\
                     fleet:       repro fleet <spec.toml | dir> --spawn N [--sweep ...] shards a sweep across\n\
                     \x20            several serve daemons and merges it back bit-identically (see docs/fleet.md)",
                    registry::help_block()
                );
                return ExitCode::SUCCESS;
            }
            name => names.push(name.to_owned()),
        }
    }
    set_global_verbosity(verbosity);
    let reporter = Reporter::global();
    if names.is_empty() {
        names.push("all".to_owned());
    }

    // Group aliases and name validation both come from the registry.
    let mut expanded = Vec::new();
    for n in names {
        match n.as_str() {
            "figs" => expanded.extend(registry::fig_names()),
            "all" => expanded.extend(registry::all_names()),
            other => {
                if !registry::is_known(other) {
                    eprintln!("unknown experiment `{other}` (known: {})", registry::name_line());
                    return ExitCode::FAILURE;
                }
                expanded.push(other.to_owned());
            }
        }
    }
    // --events/--chrome-trace imply the instrumented pass.
    if (opts.events.is_some() || opts.chrome.is_some())
        && !expanded.iter().any(|n| n == "telemetry")
    {
        expanded.push("telemetry".to_owned());
    }

    let started = std::time::Instant::now();
    let mut all_claims = Vec::new();
    for name in &expanded {
        let t = std::time::Instant::now();
        if !run_experiment(name, &opts, &reporter, &mut all_claims) {
            return ExitCode::FAILURE;
        }
        reporter.progress(format!("[{name}] finished in {:.1}s", t.elapsed().as_secs_f64()));
    }
    if !all_claims.is_empty() {
        let passed = all_claims.iter().filter(|c| c.holds).count();
        println!(
            "== overall: {passed}/{} paper claims reproduced in {:.1}s ==",
            all_claims.len(),
            started.elapsed().as_secs_f64()
        );
        if opts.strict && passed != all_claims.len() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
