//! `repro` — regenerate every table and figure of Jacob & Mudge
//! (ASPLOS 1998).
//!
//! ```text
//! repro <experiment>... [--quick|--full] [--threads N] [--out DIR] [--strict]
//!
//! experiments:
//!   tables                    Tables 1-4
//!   fig6 fig7                 VMCPI vs cache organization (gcc / vortex)
//!   fig8 fig9                 VMCPI component breakdowns (gcc / vortex)
//!   fig10                     interrupt-cost sensitivity (all benchmarks)
//!   fig11                     TLB-size sensitivity
//!   fig12                     MCPI inflicted on the application
//!   fig13                     total VM overhead (the 5-10% -> 10-30% result)
//!   abl-hybrid abl-walkmode abl-assoc abl-tlb abl-ctx abl-unified abl-mp
//!   suite                     six workloads x five systems, seed-replicated
//!   figs                      fig6..fig13
//!   all                       everything above
//!
//! one-off simulation:
//!   run [--system S] [--workload W] [--l1 16K] [--l1-line 64]
//!       [--l2 1M] [--l2-line 128] [--tlb-entries 128] [--unified]
//!       [--instrs N] [--seed N]
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use vm_core::cost::CostModel;
use vm_core::{simulate, SimConfig, SystemKind};
use vm_experiments::{
    ablations, fig6, fig8, interrupts, mcpi, multiprog, suite, tables, tlbsize, total,
};
use vm_experiments::{Claim, RunScale};
use vm_trace::presets;

/// Parses "16K" / "1M" / "512" style size strings into bytes.
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1 << 20),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

/// The `run` subcommand: one custom simulation, full report.
fn run_one(args: &[String]) -> Result<(), String> {
    let mut config = SimConfig::paper_default(SystemKind::Ultrix);
    let mut workload = presets::gcc_spec();
    let mut instrs: u64 = 2_000_000;
    let mut seed: u64 = 42;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--system" => {
                let v = value("--system")?;
                config.system =
                    SystemKind::from_label(&v).ok_or_else(|| format!("unknown system `{v}`"))?;
            }
            "--workload" => {
                let v = value("--workload")?;
                workload = presets::by_name(&v).ok_or_else(|| format!("unknown workload `{v}`"))?;
            }
            "--l1" => config.l1_bytes = parse_size(&value("--l1")?).ok_or("bad --l1 size")?,
            "--l2" => config.l2_bytes = parse_size(&value("--l2")?).ok_or("bad --l2 size")?,
            "--l1-line" => {
                config.l1_line = value("--l1-line")?.parse().map_err(|e| format!("{e}"))?
            }
            "--l2-line" => {
                config.l2_line = value("--l2-line")?.parse().map_err(|e| format!("{e}"))?
            }
            "--tlb-entries" => {
                config.tlb_entries = value("--tlb-entries")?.parse().map_err(|e| format!("{e}"))?
            }
            "--unified" => config.unified_l2 = true,
            "--instrs" => instrs = value("--instrs")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag `{other}` for run")),
        }
    }
    let trace = workload.build(seed).map_err(|e| e.to_string())?;
    let report = simulate(&config, trace, instrs / 4, instrs).map_err(|e| e.to_string())?;
    let cost = CostModel::default();
    println!(
        "{} on {} — {} measured instructions (seed {seed})",
        config.system, workload.name, instrs
    );
    println!(
        "caches: {}K/{}B L1, {}K/{}B L2{}; TLBs: 2 x {} entries
",
        config.l1_bytes >> 10,
        config.l1_line,
        config.l2_bytes >> 10,
        config.l2_line,
        if config.unified_l2 { " (unified, 2x capacity)" } else { " (split)" },
        config.tlb_entries
    );
    let m = report.mcpi(&cost);
    println!(
        "MCPI  = {:.5}  (l1i {:.5}, l1d {:.5}, l2i {:.5}, l2d {:.5})",
        m.total(),
        m.l1i,
        m.l1d,
        m.l2i,
        m.l2d
    );
    let v = report.vmcpi(&cost);
    print!("VMCPI = {:.5}  (", v.total());
    let mut first = true;
    for (name, x) in v.components() {
        if x > 1e-6 {
            if !first {
                print!(", ");
            }
            print!("{name} {x:.5}");
            first = false;
        }
    }
    println!(")");
    for c in vm_core::cost::CostModel::INTERRUPT_COSTS {
        println!(
            "interrupt CPI @{c:>3} cycles = {:.5}",
            report.interrupt_cpi(&CostModel::paper(c))
        );
    }
    if let (Some(i), Some(d)) = (report.itlb, report.dtlb) {
        println!(
            "TLBs: I {} lookups / {:.5} miss ratio; D {} lookups / {:.5} miss ratio",
            i.lookups,
            i.miss_ratio(),
            d.lookups,
            d.miss_ratio()
        );
    }
    println!("total CPI @50-cycle interrupts = {:.4}", report.total_cpi(&cost));
    Ok(())
}

struct Options {
    scale: RunScale,
    threads: usize,
    out: Option<PathBuf>,
    strict: bool,
    workload: Option<String>,
}

/// Restores the default SIGPIPE disposition so piping into `head`/`less`
/// terminates the process quietly instead of panicking on a broken-pipe
/// write error (Rust ignores SIGPIPE by default).
fn reset_sigpipe() {
    // SAFETY: signal(2) with SIG_DFL is async-signal-safe process setup
    // performed once before any other work.
    #[cfg(unix)]
    unsafe {
        libc::signal(libc::SIGPIPE, libc::SIG_DFL);
    }
}

fn parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn save(opts: &Options, name: &str, csv: &str) {
    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

/// Applies the global `--workload` override, falling back to the
/// experiment's paper default.
fn resolve_workload(
    opts: &Options,
    default: vm_trace::WorkloadSpec,
) -> Option<vm_trace::WorkloadSpec> {
    match &opts.workload {
        None => Some(default),
        Some(name) => match presets::by_name(name) {
            Some(w) => Some(w),
            None => {
                eprintln!("unknown workload `{name}` (gcc|vortex|ijpeg|li|compress|perl)");
                None
            }
        },
    }
}

fn report_claims(all: &mut Vec<Claim>, claims: Vec<Claim>) {
    print!("{}", Claim::render_all(&claims));
    all.extend(claims);
}

fn run_experiment(name: &str, opts: &Options, all_claims: &mut Vec<Claim>) -> bool {
    match name {
        "tables" => {
            println!("{}", tables::render_all());
        }
        "fig6" | "fig7" => {
            let default = if name == "fig6" { presets::gcc_spec() } else { presets::vortex_spec() };
            let Some(workload) = resolve_workload(opts, default) else { return false };
            println!("== {name}: VMCPI vs L1/L2 cache size and line size — {} ==", workload.name);
            let mut cfg = if opts.scale == RunScale::QUICK {
                fig6::Config::quick(workload)
            } else {
                fig6::Config::paper(workload)
            };
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = fig6::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "fig8" | "fig9" => {
            let default = if name == "fig8" { presets::gcc_spec() } else { presets::vortex_spec() };
            let Some(workload) = resolve_workload(opts, default) else { return false };
            println!("== {name}: VMCPI break-downs — {} (64/128-byte lines) ==", workload.name);
            let mut cfg = if opts.scale == RunScale::QUICK {
                fig8::Config::quick(workload)
            } else {
                fig8::Config::paper(workload)
            };
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = fig8::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "fig10" => {
            println!("== fig10: the cost of precise interrupts ==");
            let mut cfg = interrupts::Config::paper(presets::paper_benchmarks());
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = interrupts::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "fig11" => {
            println!("== fig11: TLB-size sensitivity ==");
            let mut cfg = tlbsize::Config::paper(vec![presets::gcc_spec(), presets::vortex_spec()]);
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = tlbsize::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "fig12" => {
            println!("== fig12: cache misses inflicted on the application ==");
            let mut cfg = mcpi::Config::paper(presets::paper_benchmarks());
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = mcpi::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "fig13" => {
            println!("== fig13: total VM overhead ==");
            let mut cfg = total::Config::paper(presets::paper_benchmarks());
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = total::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "abl-mp" => {
            println!("== abl-mp: multiprogramming — ASID-tagged vs untagged TLBs ==");
            let mut cfg = multiprog::Config::default_mix(vec![
                presets::gcc_spec(),
                presets::vortex_spec(),
                presets::ijpeg_spec(),
            ]);
            cfg.scale = opts.scale;
            let r = multiprog::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "suite" => {
            println!("== suite: six workloads x five systems, seed-replicated ==");
            let mut cfg = suite::Config::default_suite(presets::all_benchmarks());
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = suite::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        "abl-hybrid" | "abl-walkmode" | "abl-assoc" | "abl-tlb" | "abl-ctx" | "abl-unified" => {
            let ablation = ablations::Ablation::ALL
                .into_iter()
                .find(|a| a.name() == name)
                .expect("matched above");
            println!("== {name} ==");
            let mut cfg =
                ablations::Config::new(ablation, vec![presets::gcc_spec(), presets::vortex_spec()]);
            cfg.scale = opts.scale;
            cfg.threads = opts.threads;
            let r = ablations::run(&cfg);
            println!("{}", r.render());
            save(opts, name, &r.to_csv());
            report_claims(all_claims, r.claims());
        }
        other => {
            eprintln!("unknown experiment `{other}` (try: tables figs all)");
            return false;
        }
    }
    println!();
    true
}

fn main() -> ExitCode {
    reset_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("run") {
        return match run_one(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("repro run: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut opts = Options {
        scale: RunScale::DEFAULT,
        threads: parallelism(),
        out: None,
        strict: false,
        workload: None,
    };
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.scale = RunScale::QUICK,
            "--strict" => opts.strict = true,
            "--workload" => match it.next() {
                Some(w) => opts.workload = Some(w),
                None => {
                    eprintln!("--workload needs a name (gcc|vortex|ijpeg|li|compress|perl)");
                    return ExitCode::FAILURE;
                }
            },
            "--full" => opts.scale = RunScale::FULL,
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.threads = n,
                None => {
                    eprintln!("--threads needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(dir) => opts.out = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: repro <experiment>... [--quick|--full] [--threads N] [--out DIR] [--strict]\n\
                     experiments: tables fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13\n\
                                  abl-hybrid abl-walkmode abl-assoc abl-tlb abl-ctx abl-unified abl-mp suite figs all\n\
                     one-off:     repro run [--system S] [--workload W] [--l1 16K] [--l2 1M] ... (see --help in source)"
                );
                return ExitCode::SUCCESS;
            }
            name => names.push(name.to_owned()),
        }
    }
    if names.is_empty() {
        names.push("all".to_owned());
    }

    let figs = ["fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"];
    let mut expanded = Vec::new();
    for n in names {
        match n.as_str() {
            "figs" => expanded.extend(figs.iter().map(|s| s.to_string())),
            "all" => {
                expanded.push("tables".to_owned());
                expanded.extend(figs.iter().map(|s| s.to_string()));
                expanded.push("suite".to_owned());
                expanded.extend(ablations::Ablation::ALL.iter().map(|a| a.name().to_owned()));
                expanded.push("abl-mp".to_owned());
            }
            other => expanded.push(other.to_owned()),
        }
    }

    let started = std::time::Instant::now();
    let mut all_claims = Vec::new();
    for name in &expanded {
        if !run_experiment(name, &opts, &mut all_claims) {
            return ExitCode::FAILURE;
        }
    }
    if !all_claims.is_empty() {
        let passed = all_claims.iter().filter(|c| c.holds).count();
        println!(
            "== overall: {passed}/{} paper claims reproduced in {:.1}s ==",
            all_claims.len(),
            started.elapsed().as_secs_f64()
        );
        if opts.strict && passed != all_claims.len() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
