//! Aligned text tables and CSV output for experiment results.

use std::fmt;

/// A simple column-aligned text table that can also serialize as CSV.
///
/// ```
/// use vm_experiments::TextTable;
///
/// let mut t = TextTable::new(["L1", "VMCPI"]);
/// t.row(["4K", "0.0123"]);
/// let text = t.render();
/// assert!(text.contains("L1"));
/// assert!(t.to_csv().starts_with("L1,VMCPI"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> TextTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// extend the table width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut TextTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == widths.len() {
                    out.push_str(cell);
                } else {
                    out.push_str(&format!("{cell:<w$}  "));
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// Serializes as RFC-4180-ish CSV (quotes cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            let line: Vec<String> = row.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a byte count the way the paper labels sizes (1K, 16K, 1M...).
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.row(["xxxxx", "1"]);
        t.row(["y", "2"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // The second column starts at the same offset on every line.
        let col = lines[0].find("long-header").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(&lines[3][col..col + 1], "2");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().lines().count() == 3);
        assert_eq!(t.to_csv().lines().nth(1).unwrap(), "1");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(["x"]);
        t.row(["a,b"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn emptiness() {
        let t = TextTable::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn size_labels_match_paper_style() {
        assert_eq!(size_label(1024), "1K");
        assert_eq!(size_label(128 << 10), "128K");
        assert_eq!(size_label(1 << 20), "1M");
        assert_eq!(size_label(512 << 10), "512K");
        assert_eq!(size_label(64), "64B");
    }
}
