//! The benchmark-suite overview: every workload model against every
//! system, replicated over multiple trace seeds.
//!
//! The paper reports three benchmarks in depth "due to space
//! constraints" but simulated the SPEC '95 integer suite. This
//! experiment plays that role for the six synthetic models (the paper's
//! trio plus li, compress and perl), and doubles as the reproduction's
//! *stability check*: each (workload, system) cell is measured at
//! several workload seeds and reported as mean ± max deviation, so
//! seed-sensitivity is visible rather than hidden in a single draw.

use vm_core::cost::CostModel;
use vm_core::{SimConfig, SystemKind};
use vm_trace::WorkloadSpec;

use crate::claim::Claim;
use crate::runner::{run_jobs, Job, RunScale};
use crate::table::TextTable;

/// Parameter space for the suite sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workloads to measure.
    pub workloads: Vec<WorkloadSpec>,
    /// Systems to measure.
    pub systems: Vec<SystemKind>,
    /// Trace seeds to replicate over.
    pub seeds: Vec<u64>,
    /// Run lengths.
    pub scale: RunScale,
    /// Worker threads.
    pub threads: usize,
}

impl Config {
    /// All six workload models on the five VM systems, three seeds.
    pub fn default_suite(workloads: Vec<WorkloadSpec>) -> Config {
        Config {
            workloads,
            systems: SystemKind::VM_SYSTEMS.to_vec(),
            seeds: vec![42, 1, 7],
            scale: RunScale::DEFAULT,
            threads: 1,
        }
    }
}

/// One aggregated cell: a (workload, system) pair over all seeds.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload name.
    pub workload: String,
    /// Simulated system.
    pub system: SystemKind,
    /// Mean VM total (VMCPI + interrupt CPI @50) over seeds.
    pub vm_total_mean: f64,
    /// Largest absolute deviation from the mean over seeds.
    pub vm_total_spread: f64,
    /// Mean MCPI over seeds.
    pub mcpi_mean: f64,
    /// Per-seed VM totals, in seed order.
    pub per_seed: Vec<f64>,
}

/// The measured suite.
#[derive(Debug, Clone)]
pub struct Result {
    /// The seeds used.
    pub seeds: Vec<u64>,
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Runs the suite.
///
/// # Panics
///
/// Panics if `config.seeds` is empty (there would be nothing to
/// aggregate).
pub fn run(config: &Config) -> Result {
    assert!(!config.seeds.is_empty(), "suite needs at least one seed");
    let mut jobs = Vec::new();
    for workload in &config.workloads {
        for &system in &config.systems {
            for &seed in &config.seeds {
                let mut job = Job::new(
                    format!("{system}/{}/{seed}", workload.name),
                    SimConfig::paper_default(system),
                    workload.clone(),
                    config.scale,
                );
                job.trace_seed = seed;
                jobs.push(job);
            }
        }
    }
    let outcomes = run_jobs(jobs, config.threads);
    let cost = CostModel::default();
    let mut cells = Vec::new();
    // Jobs are emitted seeds-innermost, so consecutive `seeds.len()`-sized
    // chunks are exactly one (workload, system) cell; the debug assert
    // below guards the invariant against job-construction reordering.
    let per_cell = config.seeds.len();
    for chunk in outcomes.chunks(per_cell) {
        debug_assert!(
            chunk.iter().all(|o| o.job.config.system == chunk[0].job.config.system
                && o.job.workload.name == chunk[0].job.workload.name),
            "suite chunking no longer matches job construction order"
        );
        let per_seed: Vec<f64> = chunk
            .iter()
            .map(|o| o.report.vmcpi(&cost).total() + o.report.interrupt_cpi(&cost))
            .collect();
        let mean = per_seed.iter().sum::<f64>() / per_seed.len() as f64;
        let spread = per_seed.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
        let mcpi_mean =
            chunk.iter().map(|o| o.report.mcpi(&cost).total()).sum::<f64>() / per_cell as f64;
        cells.push(Cell {
            workload: chunk[0].job.workload.name.clone(),
            system: chunk[0].job.config.system,
            vm_total_mean: mean,
            vm_total_spread: spread,
            mcpi_mean,
            per_seed,
        });
    }
    Result { seeds: config.seeds.clone(), cells }
}

impl Result {
    /// Renders the suite matrix.
    pub fn render(&self) -> String {
        let mut t =
            TextTable::new(["workload", "system", "VM total (mean)", "± spread", "MCPI (mean)"]);
        for c in &self.cells {
            t.row([
                c.workload.clone(),
                c.system.label().to_owned(),
                format!("{:.5}", c.vm_total_mean),
                format!("{:.5}", c.vm_total_spread),
                format!("{:.4}", c.mcpi_mean),
            ]);
        }
        format!("suite over seeds {:?}\n{}", self.seeds, t.render())
    }

    /// CSV of all cells with per-seed values.
    pub fn to_csv(&self) -> String {
        let mut headers = vec![
            "workload".to_owned(),
            "system".to_owned(),
            "vm_total_mean".to_owned(),
            "spread".to_owned(),
            "mcpi_mean".to_owned(),
        ];
        headers.extend(self.seeds.iter().map(|s| format!("seed_{s}")));
        let mut t = TextTable::new(headers);
        for c in &self.cells {
            let mut row = vec![
                c.workload.clone(),
                c.system.label().to_owned(),
                format!("{:.6}", c.vm_total_mean),
                format!("{:.6}", c.vm_total_spread),
                format!("{:.6}", c.mcpi_mean),
            ];
            row.extend(c.per_seed.iter().map(|v| format!("{v:.6}")));
            t.row(row);
        }
        t.to_csv()
    }

    /// Suite-level claims: stability across seeds and the persistence of
    /// the paper's orderings beyond its three reported benchmarks.
    pub fn claims(&self) -> Vec<Claim> {
        let mut claims = Vec::new();
        // Stability: relative spread stays small for non-trivial cells of
        // the TLB-based systems. NOTLB is excluded deliberately: its
        // overhead rides entirely on L2 cache behaviour, so it *is*
        // seed-sensitive — the very hypersensitivity Figure 6 reports.
        let meaningful: Vec<&Cell> =
            self.cells.iter().filter(|c| c.vm_total_mean > 1e-3 && c.system.uses_tlb()).collect();
        if !meaningful.is_empty() && self.seeds.len() > 1 {
            let worst =
                meaningful.iter().map(|c| c.vm_total_spread / c.vm_total_mean).fold(0.0, f64::max);
            claims.push(Claim::new(
                "TLB-based results are stable across workload seeds (max relative spread < 40%)",
                worst < 0.40,
                format!("worst relative spread {:.1}%", 100.0 * worst),
            ));
        }
        // INTEL's win generalizes beyond the paper's three benchmarks.
        let mut workloads: Vec<&str> = self.cells.iter().map(|c| c.workload.as_str()).collect();
        workloads.dedup();
        let mut intel_wins = 0;
        let mut contests = 0;
        for w in &workloads {
            let of = |s: SystemKind| {
                self.cells
                    .iter()
                    .find(|c| c.workload == *w && c.system == s)
                    .map(|c| c.vm_total_mean)
            };
            if let (Some(intel), Some(ultrix), Some(mach)) =
                (of(SystemKind::Intel), of(SystemKind::Ultrix), of(SystemKind::Mach))
            {
                contests += 1;
                if intel <= ultrix && intel <= mach {
                    intel_wins += 1;
                }
            }
        }
        if contests > 0 {
            claims.push(Claim::new(
                "the hardware-managed TLB keeps its advantage across the wider suite",
                intel_wins == contests,
                format!("INTEL cheapest-or-tied in {intel_wins}/{contests} workloads"),
            ));
        }
        claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_trace::presets;

    fn tiny() -> Config {
        Config {
            workloads: vec![presets::ijpeg_spec()],
            systems: vec![SystemKind::Ultrix, SystemKind::Intel],
            seeds: vec![1, 2],
            scale: RunScale { warmup: 10_000, measure: 40_000 },
            threads: 1,
        }
    }

    #[test]
    fn aggregates_per_seed_runs() {
        let r = run(&tiny());
        assert_eq!(r.cells.len(), 2);
        for c in &r.cells {
            assert_eq!(c.per_seed.len(), 2);
            let mean = c.per_seed.iter().sum::<f64>() / 2.0;
            assert!((c.vm_total_mean - mean).abs() < 1e-12);
            assert!(c.vm_total_spread >= 0.0);
        }
    }

    #[test]
    fn render_and_csv_are_complete() {
        let r = run(&tiny());
        assert!(r.render().contains("± spread"));
        let csv = r.to_csv();
        assert!(csv.lines().next().unwrap().contains("seed_1"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn claims_cover_stability() {
        let r = run(&tiny());
        // ijpeg cells may be ~0, so stability claim may be absent; the
        // call must simply not panic and produce well-formed claims.
        for c in r.claims() {
            assert!(!c.statement.is_empty());
        }
    }
}
