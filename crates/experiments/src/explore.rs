//! The `repro explore` driver: spec files + sweep axes in, tables,
//! CSV, Pareto frontier and sensitivity report out.
//!
//! The heavy lifting (parsing, validation, the work-stealing executor,
//! the analysis passes) lives in `vm-explore`; this module is the glue
//! that renders its results in the same [`TextTable`]/CSV house style as
//! the paper experiments.

use vm_explore::{
    pareto_frontier, run_sweep, sensitivity, Axis, AxisSensitivity, ExecConfig, PointResult,
    SkippedPoint, SweepPlan, SystemSpec,
};
use vm_obs::{JsonlSink, Reporter};

use crate::TextTable;

/// Configuration for one `repro explore` invocation.
#[derive(Debug, Clone)]
pub struct Config {
    /// The base specs to sweep (one per spec file given).
    pub bases: Vec<SystemSpec>,
    /// The sweep axes, crossed over every base.
    pub axes: Vec<Axis>,
    /// Run lengths and worker count.
    pub exec: ExecConfig,
}

/// Everything one exploration produced.
#[derive(Debug, Clone)]
pub struct ExploreRun {
    /// Per-point measurements, in sweep order.
    pub results: Vec<PointResult>,
    /// Grid corners the validator rejected.
    pub skipped: Vec<SkippedPoint>,
    /// The Pareto frontier over (TLB area, total VM overhead).
    pub frontier: Vec<PointResult>,
    /// Per-axis sensitivity of total VM overhead.
    pub sensitivity: Vec<AxisSensitivity>,
    /// JSONL event stream (`sweep_started`/`sweep_point_done`), when
    /// capture was requested.
    pub events_jsonl: Option<Vec<u8>>,
}

/// Expands every base over the axes into one merged plan with globally
/// unique point indices (so multi-spec runs merge deterministically).
///
/// # Errors
///
/// Returns a message if an axis key never applies to any base.
pub fn plan(bases: &[SystemSpec], axes: &[Axis]) -> Result<SweepPlan, String> {
    let mut merged = SweepPlan::default();
    let mut last_err = None;
    for base in bases {
        match SweepPlan::expand(base, axes) {
            Ok(mut plan) => {
                for mut point in plan.points.drain(..) {
                    point.index = merged.points.len();
                    merged.points.push(point);
                }
                merged.skipped.append(&mut plan.skipped);
            }
            // A key may be meaningless for one base (e.g. `tlb.entries`
            // on BASE) yet sweep the others; only fail if no base at all
            // accepts it.
            Err(e) => last_err = Some(e),
        }
    }
    if merged.points.is_empty() && merged.skipped.is_empty() {
        if let Some(e) = last_err {
            return Err(e);
        }
    }
    Ok(merged)
}

/// Runs the exploration: expand, execute, analyse.
///
/// # Errors
///
/// Returns a message for an unusable plan (bad axis key) or a plan with
/// zero runnable points.
pub fn run(cfg: &Config, capture_events: bool, reporter: &Reporter) -> Result<ExploreRun, String> {
    let plan = plan(&cfg.bases, &cfg.axes)?;
    if plan.points.is_empty() {
        let mut msg = "no runnable points in the sweep".to_owned();
        if let Some(s) = plan.skipped.first() {
            msg.push_str(&format!(" (all skipped; first reason: {})", s.reason));
        }
        return Err(msg);
    }
    reporter.progress(format!(
        "exploring {} point{} ({} skipped) with {} job{}",
        plan.points.len(),
        if plan.points.len() == 1 { "" } else { "s" },
        plan.skipped.len(),
        cfg.exec.jobs.max(1),
        if cfg.exec.jobs.max(1) == 1 { "" } else { "s" },
    ));
    let mut sink = capture_events.then(|| JsonlSink::new(Vec::new()));
    let results = run_sweep(&plan, &cfg.exec, reporter, &mut sink);
    let frontier = pareto_frontier(&results);
    let sens = sensitivity(&results, &cfg.axes);
    let events_jsonl = sink.and_then(|s| s.finish().ok());
    Ok(ExploreRun { results, skipped: plan.skipped, frontier, sensitivity: sens, events_jsonl })
}

/// Formats a TLB area proxy for tables (`4.0K`, `-` for zero).
fn area_cell(bytes: u64) -> String {
    if bytes == 0 {
        "-".to_owned()
    } else {
        format!("{:.1}K", bytes as f64 / 1024.0)
    }
}

fn points_table(points: &[PointResult]) -> TextTable {
    let mut t = TextTable::new([
        "point", "system", "workload", "VMCPI", "int-CPI", "VM-total", "MCPI", "TLB-area",
        "TLB-miss",
    ]);
    for r in points {
        t.row([
            r.label.clone(),
            r.system.clone(),
            r.workload.clone(),
            format!("{:.5}", r.vmcpi),
            format!("{:.5}", r.interrupt_cpi),
            format!("{:.5}", r.vm_total),
            format!("{:.5}", r.mcpi),
            area_cell(r.tlb_area_bytes),
            r.tlb_miss_ratio.map(|m| format!("{m:.5}")).unwrap_or_else(|| "-".to_owned()),
        ]);
    }
    t
}

impl ExploreRun {
    /// The full report: measured points, skipped corners, the Pareto
    /// frontier, and the sensitivity ranking.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&points_table(&self.results).render());
        if !self.skipped.is_empty() {
            out.push_str(&format!("\nskipped {} grid corner(s):\n", self.skipped.len()));
            for s in &self.skipped {
                out.push_str(&format!("  {} — {}\n", s.label, s.reason));
            }
        }
        out.push_str("\nPareto frontier (minimize TLB area and total VM overhead):\n");
        out.push_str(&points_table(&self.frontier).render());
        if !self.sensitivity.is_empty() {
            out.push_str("\nper-axis sensitivity of total VM overhead (most influential first):\n");
            let mut t = TextTable::new(["axis", "mean delta", "max delta", "groups", "worst at"]);
            for s in &self.sensitivity {
                let at = s
                    .max_group
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                t.row([
                    s.key.clone(),
                    format!("{:.5}", s.mean_delta),
                    format!("{:.5}", s.max_delta),
                    s.groups.to_string(),
                    if at.is_empty() { "(single axis)".to_owned() } else { at },
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }

    /// All measured points as CSV.
    pub fn to_csv(&self) -> String {
        points_table(&self.results).to_csv()
    }

    /// The Pareto frontier as CSV.
    pub fn frontier_to_csv(&self) -> String {
        points_table(&self.frontier).to_csv()
    }

    /// The sensitivity ranking as CSV.
    pub fn sensitivity_to_csv(&self) -> String {
        let mut t = TextTable::new(["axis", "mean_delta", "max_delta", "groups"]);
        for s in &self.sensitivity {
            t.row([
                s.key.clone(),
                format!("{:.6}", s.mean_delta),
                format!("{:.6}", s.max_delta),
                s.groups.to_string(),
            ]);
        }
        t.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_core::SystemKind;

    fn quick_exec(jobs: usize) -> ExecConfig {
        ExecConfig { warmup: 1_000, measure: 5_000, jobs }
    }

    #[test]
    fn multi_base_plans_reindex_points() {
        let bases =
            [SystemSpec::for_kind(SystemKind::Ultrix), SystemSpec::for_kind(SystemKind::Intel)];
        let axes = [Axis::parse("tlb.entries=32,64").unwrap()];
        let plan = plan(&bases, &axes).unwrap();
        assert_eq!(plan.points.len(), 4);
        assert!(plan.points.iter().enumerate().all(|(i, p)| p.index == i));
        assert!(plan.points[0].label.starts_with("ULTRIX"));
        assert!(plan.points[2].label.starts_with("INTEL"));
    }

    #[test]
    fn tlb_axis_on_base_system_skips_but_does_not_fail() {
        // `tlb.entries` applies to ULTRIX but is nonsense for BASE; the
        // merged plan keeps the valid half and records the rest.
        let bases =
            [SystemSpec::for_kind(SystemKind::Ultrix), SystemSpec::for_kind(SystemKind::Base)];
        let axes = [Axis::parse("tlb.entries=32,64").unwrap()];
        let plan = plan(&bases, &axes).unwrap();
        assert_eq!(plan.points.len(), 2);
        assert_eq!(plan.skipped.len(), 2);
    }

    #[test]
    fn run_produces_frontier_sensitivity_and_events() {
        let cfg = Config {
            bases: vec![SystemSpec::for_kind(SystemKind::Ultrix)],
            axes: vec![
                Axis::parse("tlb.entries=32,64").unwrap(),
                Axis::parse("mmu.table=two-tier,hashed").unwrap(),
            ],
            exec: quick_exec(2),
        };
        let run = run(&cfg, true, &Reporter::silent()).unwrap();
        assert_eq!(run.results.len(), 4);
        assert!(!run.frontier.is_empty());
        assert_eq!(run.sensitivity.len(), 2);
        let events = String::from_utf8(run.events_jsonl.unwrap()).unwrap();
        assert!(events.contains("sweep_started"), "{events}");
        assert_eq!(events.matches("sweep_point_done").count(), 4);
    }

    #[test]
    fn bad_axis_key_is_an_error() {
        let cfg = Config {
            bases: vec![SystemSpec::for_kind(SystemKind::Ultrix)],
            axes: vec![Axis::parse("tlb.banana=1").unwrap()],
            exec: quick_exec(1),
        };
        assert!(run(&cfg, false, &Reporter::silent()).is_err());
    }
}
