//! The `repro explore` driver: spec files + sweep axes in, tables,
//! CSV, Pareto frontier and sensitivity report out.
//!
//! The heavy lifting (parsing, validation, the fault-isolated
//! work-stealing executor, the analysis passes) lives in `vm-explore`
//! and `vm-harden`; this module is the glue that renders their results
//! in the same [`TextTable`]/CSV house style as the paper experiments,
//! and that wires the durable run journal behind `--journal`/`--resume`.

use std::path::PathBuf;
use std::sync::Mutex;

use vm_explore::{
    pareto_frontier, run_header, run_sweep_hardened, seeded_from_journal, sensitivity, Axis,
    AxisSensitivity, ExecConfig, HardenPolicy, PointResult, SkippedPoint, SweepPlan, SystemSpec,
};
use vm_harden::{Journal, JournalWriter, SimError};
use vm_obs::{JsonlSink, Reporter};

use crate::TextTable;

/// Configuration for one `repro explore` invocation.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// The base specs to sweep (one per spec file given).
    pub bases: Vec<SystemSpec>,
    /// The sweep axes, crossed over every base.
    pub axes: Vec<Axis>,
    /// Run lengths and worker count.
    pub exec: ExecConfig,
    /// Fault handling: retries, walk-cycle budget, chaos injection.
    pub harden: HardenPolicy,
    /// Start a fresh run journal at this path.
    pub journal: Option<PathBuf>,
    /// Resume from (and keep appending to) the journal at this path,
    /// skipping its completed points.
    pub resume: Option<PathBuf>,
}

/// Everything one exploration produced.
#[derive(Debug, Clone)]
pub struct ExploreRun {
    /// Per-point measurements (completed points only), in sweep order.
    pub results: Vec<PointResult>,
    /// Points that failed or timed out, in sweep order.
    pub failures: Vec<SimError>,
    /// Points restored from a resume journal instead of re-simulated.
    pub resumed: usize,
    /// Grid corners the validator rejected.
    pub skipped: Vec<SkippedPoint>,
    /// The Pareto frontier over (TLB area, total VM overhead).
    pub frontier: Vec<PointResult>,
    /// Per-axis sensitivity of total VM overhead.
    pub sensitivity: Vec<AxisSensitivity>,
    /// JSONL event stream (`sweep_started`/`sweep_point_done`/
    /// `point_failed`/...), when capture was requested.
    pub events_jsonl: Option<Vec<u8>>,
}

/// Expands every base over the axes into one merged plan with globally
/// unique point indices (so multi-spec runs merge deterministically).
///
/// # Errors
///
/// Returns a message if an axis key never applies to any base.
pub fn plan(bases: &[SystemSpec], axes: &[Axis]) -> Result<SweepPlan, String> {
    let mut merged = SweepPlan::default();
    let mut last_err = None;
    for base in bases {
        match SweepPlan::expand(base, axes) {
            Ok(mut plan) => {
                for mut point in plan.points.drain(..) {
                    point.index = merged.points.len();
                    merged.points.push(point);
                }
                merged.skipped.append(&mut plan.skipped);
            }
            // A key may be meaningless for one base (e.g. `tlb.entries`
            // on BASE) yet sweep the others; only fail if no base at all
            // accepts it.
            Err(e) => last_err = Some(e),
        }
    }
    if merged.points.is_empty() && merged.skipped.is_empty() {
        if let Some(e) = last_err {
            return Err(e);
        }
    }
    Ok(merged)
}

/// Runs the exploration: expand, (maybe) resume, execute with fault
/// isolation, journal, analyse.
///
/// # Errors
///
/// Returns a message for an unusable plan (bad axis key), a plan with
/// zero runnable points, or a resume journal that does not belong to
/// this sweep. Point *failures* are not errors — they come back in
/// [`ExploreRun::failures`].
pub fn run(cfg: &Config, capture_events: bool, reporter: &Reporter) -> Result<ExploreRun, String> {
    let plan = plan(&cfg.bases, &cfg.axes)?;
    if plan.points.is_empty() {
        let mut msg = "no runnable points in the sweep".to_owned();
        if let Some(s) = plan.skipped.first() {
            msg.push_str(&format!(" (all skipped; first reason: {})", s.reason));
        }
        return Err(msg);
    }

    // Resume: verify the journal matches this plan and scale, then seed
    // its completed points (failed points get re-run).
    let seeded = match &cfg.resume {
        Some(path) => {
            let journal = Journal::load(path)?;
            let seeded = seeded_from_journal(&journal, &plan, &cfg.exec)?;
            reporter.progress(format!(
                "resuming from {}: {} of {} points already done",
                path.display(),
                seeded.len(),
                plan.points.len()
            ));
            seeded
        }
        None => Default::default(),
    };

    // Journal target: `--resume` keeps appending to the same file;
    // `--journal` starts a fresh one (truncating any stale run).
    let writer = match (&cfg.resume, &cfg.journal) {
        (Some(path), _) => {
            let file = std::fs::OpenOptions::new()
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot append to {}: {e}", path.display()))?;
            Some(Mutex::new(JournalWriter::boxed(file)))
        }
        (None, Some(path)) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            let mut w = JournalWriter::boxed(file);
            w.header(&run_header(&plan, &cfg.exec));
            Some(Mutex::new(w))
        }
        (None, None) => None,
    };

    reporter.progress(format!(
        "exploring {} point{} ({} skipped) with {} job{}",
        plan.points.len(),
        if plan.points.len() == 1 { "" } else { "s" },
        plan.skipped.len(),
        cfg.exec.jobs.max(1),
        if cfg.exec.jobs.max(1) == 1 { "" } else { "s" },
    ));
    let mut sink = capture_events.then(|| JsonlSink::new(Vec::new()));
    let outcome = run_sweep_hardened(
        &plan,
        &cfg.exec,
        &cfg.harden,
        seeded,
        reporter,
        &mut sink,
        writer.as_ref(),
    );
    if let Some(writer) = writer {
        let w = writer.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Err(e) = w.finish() {
            // A broken journal must not discard a finished sweep; the
            // results are still in hand, only resumability is lost.
            reporter.progress(format!("warning: journal write failed: {e}"));
        }
    }
    let resumed = outcome.resumed;
    let (results, failures) = outcome.into_parts();
    let frontier = pareto_frontier(&results);
    let sens = sensitivity(&results, &cfg.axes);
    let events_jsonl = sink.and_then(|s| s.finish().ok());
    Ok(ExploreRun {
        results,
        failures,
        resumed,
        skipped: plan.skipped,
        frontier,
        sensitivity: sens,
        events_jsonl,
    })
}

/// Formats a TLB area proxy for tables (`4.0K`, `-` for zero).
fn area_cell(bytes: u64) -> String {
    if bytes == 0 {
        "-".to_owned()
    } else {
        format!("{:.1}K", bytes as f64 / 1024.0)
    }
}

fn points_table(points: &[PointResult]) -> TextTable {
    let mut t = TextTable::new([
        "point", "system", "workload", "VMCPI", "int-CPI", "VM-total", "MCPI", "TLB-area",
        "TLB-miss",
    ]);
    for r in points {
        t.row([
            r.label.clone(),
            r.system.clone(),
            r.workload.clone(),
            format!("{:.5}", r.vmcpi),
            format!("{:.5}", r.interrupt_cpi),
            format!("{:.5}", r.vm_total),
            format!("{:.5}", r.mcpi),
            area_cell(r.tlb_area_bytes),
            r.tlb_miss_ratio.map(|m| format!("{m:.5}")).unwrap_or_else(|| "-".to_owned()),
        ]);
    }
    t
}

impl ExploreRun {
    /// Builds a run report from results produced elsewhere — the fleet
    /// coordinator hands its merged points through here so `repro fleet`
    /// renders the same tables and CSV as a single-node `repro explore`
    /// (the byte-identity contract in docs/fleet.md rides on this being
    /// the one code path that formats exploration output).
    pub fn from_results(
        results: Vec<PointResult>,
        failures: Vec<SimError>,
        skipped: Vec<SkippedPoint>,
        axes: &[Axis],
    ) -> ExploreRun {
        let frontier = pareto_frontier(&results);
        let sens = sensitivity(&results, axes);
        ExploreRun {
            results,
            failures,
            resumed: 0,
            skipped,
            frontier,
            sensitivity: sens,
            events_jsonl: None,
        }
    }

    /// The full report: measured points, skipped corners, the Pareto
    /// frontier, and the sensitivity ranking.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&points_table(&self.results).render());
        if self.resumed > 0 {
            out.push_str(&format!(
                "\nresumed: {} point(s) restored from the journal\n",
                self.resumed
            ));
        }
        if !self.failures.is_empty() {
            out.push_str(&format!("\n{} point(s) FAILED:\n", self.failures.len()));
            for e in &self.failures {
                out.push_str(&format!("  {e}\n"));
            }
        }
        if !self.skipped.is_empty() {
            out.push_str(&format!("\nskipped {} grid corner(s):\n", self.skipped.len()));
            for s in &self.skipped {
                out.push_str(&format!("  {} — {}\n", s.label, s.reason));
            }
        }
        out.push_str("\nPareto frontier (minimize TLB area and total VM overhead):\n");
        out.push_str(&points_table(&self.frontier).render());
        if !self.sensitivity.is_empty() {
            out.push_str("\nper-axis sensitivity of total VM overhead (most influential first):\n");
            let mut t = TextTable::new(["axis", "mean delta", "max delta", "groups", "worst at"]);
            for s in &self.sensitivity {
                let at = s
                    .max_group
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                t.row([
                    s.key.clone(),
                    format!("{:.5}", s.mean_delta),
                    format!("{:.5}", s.max_delta),
                    s.groups.to_string(),
                    if at.is_empty() { "(single axis)".to_owned() } else { at },
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }

    /// All measured points as CSV.
    pub fn to_csv(&self) -> String {
        points_table(&self.results).to_csv()
    }

    /// The Pareto frontier as CSV.
    pub fn frontier_to_csv(&self) -> String {
        points_table(&self.frontier).to_csv()
    }

    /// The sensitivity ranking as CSV.
    pub fn sensitivity_to_csv(&self) -> String {
        let mut t = TextTable::new(["axis", "mean_delta", "max_delta", "groups"]);
        for s in &self.sensitivity {
            t.row([
                s.key.clone(),
                format!("{:.6}", s.mean_delta),
                format!("{:.6}", s.max_delta),
                s.groups.to_string(),
            ]);
        }
        t.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_core::SystemKind;

    fn quick_exec(jobs: usize) -> ExecConfig {
        ExecConfig { warmup: 1_000, measure: 5_000, jobs }
    }

    #[test]
    fn multi_base_plans_reindex_points() {
        let bases =
            [SystemSpec::for_kind(SystemKind::Ultrix), SystemSpec::for_kind(SystemKind::Intel)];
        let axes = [Axis::parse("tlb.entries=32,64").unwrap()];
        let plan = plan(&bases, &axes).unwrap();
        assert_eq!(plan.points.len(), 4);
        assert!(plan.points.iter().enumerate().all(|(i, p)| p.index == i));
        assert!(plan.points[0].label.starts_with("ULTRIX"));
        assert!(plan.points[2].label.starts_with("INTEL"));
    }

    #[test]
    fn tlb_axis_on_base_system_skips_but_does_not_fail() {
        // `tlb.entries` applies to ULTRIX but is nonsense for BASE; the
        // merged plan keeps the valid half and records the rest.
        let bases =
            [SystemSpec::for_kind(SystemKind::Ultrix), SystemSpec::for_kind(SystemKind::Base)];
        let axes = [Axis::parse("tlb.entries=32,64").unwrap()];
        let plan = plan(&bases, &axes).unwrap();
        assert_eq!(plan.points.len(), 2);
        assert_eq!(plan.skipped.len(), 2);
    }

    #[test]
    fn run_produces_frontier_sensitivity_and_events() {
        let cfg = Config {
            bases: vec![SystemSpec::for_kind(SystemKind::Ultrix)],
            axes: vec![
                Axis::parse("tlb.entries=32,64").unwrap(),
                Axis::parse("mmu.table=two-tier,hashed").unwrap(),
            ],
            exec: quick_exec(2),
            ..Config::default()
        };
        let run = run(&cfg, true, &Reporter::silent()).unwrap();
        assert_eq!(run.results.len(), 4);
        assert!(!run.frontier.is_empty());
        assert_eq!(run.sensitivity.len(), 2);
        let events = String::from_utf8(run.events_jsonl.unwrap()).unwrap();
        assert!(events.contains("sweep_started"), "{events}");
        assert_eq!(events.matches("sweep_point_done").count(), 4);
    }

    #[test]
    fn bad_axis_key_is_an_error() {
        let cfg = Config {
            bases: vec![SystemSpec::for_kind(SystemKind::Ultrix)],
            axes: vec![Axis::parse("tlb.banana=1").unwrap()],
            exec: quick_exec(1),
            ..Config::default()
        };
        assert!(run(&cfg, false, &Reporter::silent()).is_err());
    }
}
