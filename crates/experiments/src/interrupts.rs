//! Figure 10 (reconstructed): the cost of precise interrupts.
//!
//! Table 1 sweeps the interrupt cost over 10, 50 and 200 cycles — the
//! range from a short pipeline flush to a deep out-of-order machine's
//! reorder-buffer drain. The paper's abstract concludes that "interrupts
//! already account for a large portion of memory-management overhead and
//! can become a significant factor as processors execute more concurrent
//! instructions". Because the simulator records interrupt *counts*, one
//! simulation per (system, workload) prices all three costs.

use vm_core::cost::CostModel;
use vm_core::{paper, SimConfig, SystemKind};
use vm_trace::WorkloadSpec;

use crate::claim::Claim;
use crate::runner::{run_jobs, Job, Outcome, RunScale};
use crate::table::TextTable;

/// Parameter space for the interrupt-cost experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workloads to measure.
    pub workloads: Vec<WorkloadSpec>,
    /// Systems to measure.
    pub systems: Vec<SystemKind>,
    /// Interrupt costs to price (Table 1: 10/50/200).
    pub interrupt_costs: Vec<u64>,
    /// Run lengths.
    pub scale: RunScale,
    /// Worker threads.
    pub threads: usize,
}

impl Config {
    /// The paper's space: all three benchmarks, the five VM systems, the
    /// three Table 1 interrupt costs, at the default cache geometry.
    pub fn paper(workloads: Vec<WorkloadSpec>) -> Config {
        Config {
            workloads,
            systems: SystemKind::VM_SYSTEMS.to_vec(),
            interrupt_costs: paper::INTERRUPT_COSTS.to_vec(),
            scale: RunScale::DEFAULT,
            threads: 1,
        }
    }
}

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Simulated system.
    pub system: SystemKind,
    /// VMCPI excluding interrupts.
    pub vmcpi: f64,
    /// Interrupts per 1000 user instructions.
    pub interrupts_per_kilo_instr: f64,
    /// Interrupt CPI at each swept cost, in sweep order.
    pub interrupt_cpi: Vec<f64>,
}

/// The measured experiment.
#[derive(Debug, Clone)]
pub struct Result {
    /// The swept interrupt costs.
    pub costs: Vec<u64>,
    /// All rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
pub fn run(config: &Config) -> Result {
    let mut jobs = Vec::new();
    for workload in &config.workloads {
        for &system in &config.systems {
            jobs.push(Job::new(
                format!("{system}/{}", workload.name),
                SimConfig::paper_default(system),
                workload.clone(),
                config.scale,
            ));
        }
    }
    let outcomes = run_jobs(jobs, config.threads);
    let rows = outcomes
        .iter()
        .map(|o: &Outcome| {
            let base = CostModel::default();
            Row {
                workload: o.job.workload.name.clone(),
                system: o.job.config.system,
                vmcpi: o.report.vmcpi(&base).total(),
                interrupts_per_kilo_instr: o.report.interrupts_per_kilo_instr(),
                interrupt_cpi: config
                    .interrupt_costs
                    .iter()
                    .map(|&c| o.report.interrupt_cpi(&CostModel::paper(c)))
                    .collect(),
            }
        })
        .collect();
    Result { costs: config.interrupt_costs.clone(), rows }
}

impl Result {
    /// Renders the table: VMCPI and interrupt CPI at each cost, plus the
    /// interrupt share of total VM overhead.
    pub fn render(&self) -> String {
        let mut headers = vec![
            "workload".to_owned(),
            "system".to_owned(),
            "VMCPI".to_owned(),
            "ints/1k".to_owned(),
        ];
        for &c in &self.costs {
            headers.push(format!("int CPI@{c}"));
        }
        for &c in &self.costs {
            headers.push(format!("int share@{c}"));
        }
        let mut t = TextTable::new(headers);
        for r in &self.rows {
            let mut row = vec![
                r.workload.clone(),
                r.system.label().to_owned(),
                format!("{:.5}", r.vmcpi),
                format!("{:.3}", r.interrupts_per_kilo_instr),
            ];
            for v in &r.interrupt_cpi {
                row.push(format!("{v:.5}"));
            }
            for v in &r.interrupt_cpi {
                row.push(format!("{:.0}%", 100.0 * v / (v + r.vmcpi).max(1e-12)));
            }
            t.row(row);
        }
        t.render()
    }

    /// CSV of all rows.
    pub fn to_csv(&self) -> String {
        let mut headers = vec![
            "workload".to_owned(),
            "system".to_owned(),
            "vmcpi".to_owned(),
            "ints_per_kilo".to_owned(),
        ];
        for &c in &self.costs {
            headers.push(format!("int_cpi_{c}"));
        }
        let mut t = TextTable::new(headers);
        for r in &self.rows {
            let mut row = vec![
                r.workload.clone(),
                r.system.label().to_owned(),
                format!("{:.6}", r.vmcpi),
                format!("{:.4}", r.interrupts_per_kilo_instr),
            ];
            row.extend(r.interrupt_cpi.iter().map(|v| format!("{v:.6}")));
            t.row(row);
        }
        t.to_csv()
    }

    /// Checks the paper's interrupt findings.
    pub fn claims(&self) -> Vec<Claim> {
        let mut claims = Vec::new();
        let intel: Vec<&Row> = self.rows.iter().filter(|r| r.system == SystemKind::Intel).collect();
        if !intel.is_empty() {
            claims.push(Claim::new(
                "the hardware-managed TLB (INTEL) avoids the interrupt mechanism entirely",
                intel.iter().all(|r| r.interrupts_per_kilo_instr == 0.0),
                format!(
                    "INTEL interrupts/1k instr: {:?}",
                    intel.iter().map(|r| r.interrupts_per_kilo_instr).collect::<Vec<_>>()
                ),
            ));
        }
        // At 200 cycles, interrupts dominate software schemes' overhead.
        let idx_hi = self.costs.iter().position(|&c| c == 200);
        if let Some(i) = idx_hi {
            let sw: Vec<&Row> = self
                .rows
                .iter()
                .filter(|r| {
                    matches!(r.system, SystemKind::Ultrix | SystemKind::Mach | SystemKind::PaRisc)
                        && r.vmcpi > 1e-4
                })
                .collect();
            if !sw.is_empty() {
                let dominant = sw.iter().filter(|r| r.interrupt_cpi[i] > 0.5 * r.vmcpi).count();
                claims.push(Claim::new(
                    "at a 200-cycle interrupt cost, interrupt overhead rivals or exceeds half the software schemes' walking cost",
                    dominant * 2 >= sw.len(),
                    format!("{dominant}/{} software rows have int CPI > 0.5 x VMCPI", sw.len()),
                ));
            }
        }
        claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_trace::presets;

    fn tiny() -> Config {
        Config {
            workloads: vec![presets::gcc_spec()],
            systems: vec![SystemKind::Ultrix, SystemKind::Intel],
            scale: RunScale { warmup: 10_000, measure: 60_000 },
            ..Config::paper(vec![])
        }
    }

    #[test]
    fn one_row_per_system_per_workload() {
        let r = run(&tiny());
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].interrupt_cpi.len(), 3);
    }

    #[test]
    fn interrupt_cpi_scales_linearly_with_cost() {
        let r = run(&tiny());
        let ultrix = r.rows.iter().find(|x| x.system == SystemKind::Ultrix).unwrap();
        let (c10, c50, c200) =
            (ultrix.interrupt_cpi[0], ultrix.interrupt_cpi[1], ultrix.interrupt_cpi[2]);
        assert!(c10 > 0.0);
        assert!((c50 / c10 - 5.0).abs() < 1e-9);
        assert!((c200 / c10 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn intel_claim_holds() {
        let r = run(&tiny());
        let c = r.claims();
        assert!(c.iter().any(|c| c.statement.contains("INTEL") && c.holds));
    }

    #[test]
    fn render_and_csv_are_consistent() {
        let r = run(&tiny());
        assert!(r.render().contains("int CPI@200"));
        assert_eq!(r.to_csv().lines().count(), r.rows.len() + 1);
    }
}
