//! Figure 12 (reconstructed): the cache misses the VM system inflicts on
//! the application.
//!
//! "When one includes the overhead of cache misses inflicted on the
//! application as a result of the VM system displacing user-level code
//! and data, the overhead of the virtual memory system is roughly twice
//! what was previously thought. These numbers are normally not included
//! in VM studies because, to make a comparison, one must execute the
//! application without any virtual memory system" — which is exactly what
//! the BASE simulation provides: the same trace through the same caches
//! with no VM at all. The difference between a VM system's MCPI and
//! BASE's MCPI is pure handler pollution.

use vm_core::cost::CostModel;
use vm_core::{McpiBreakdown, SimConfig, SystemKind};
use vm_trace::WorkloadSpec;

use crate::claim::Claim;
use crate::runner::{run_jobs, Job, RunScale};
use crate::table::TextTable;

/// Parameter space for the inflicted-MCPI experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workloads to measure.
    pub workloads: Vec<WorkloadSpec>,
    /// VM systems to compare against BASE (BASE is added automatically).
    pub systems: Vec<SystemKind>,
    /// Run lengths.
    pub scale: RunScale,
    /// Worker threads.
    pub threads: usize,
}

impl Config {
    /// All five VM systems on the given workloads.
    pub fn paper(workloads: Vec<WorkloadSpec>) -> Config {
        Config {
            workloads,
            systems: SystemKind::VM_SYSTEMS.to_vec(),
            scale: RunScale::DEFAULT,
            threads: 1,
        }
    }
}

/// One measured row: a system's MCPI against the no-VM baseline.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Simulated system.
    pub system: SystemKind,
    /// This system's MCPI breakdown (user references only).
    pub mcpi: McpiBreakdown,
    /// The BASE MCPI for the same workload.
    pub base_mcpi: f64,
    /// VMCPI, for the "roughly twice" comparison.
    pub vmcpi: f64,
}

impl Row {
    /// The cache-miss cycles inflicted on the application by the VM
    /// system (MCPI − MCPI_BASE).
    pub fn inflicted(&self) -> f64 {
        self.mcpi.total() - self.base_mcpi
    }
}

/// The measured experiment.
#[derive(Debug, Clone)]
pub struct Result {
    /// All rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
pub fn run(config: &Config) -> Result {
    let mut jobs = Vec::new();
    for workload in &config.workloads {
        jobs.push(Job::new(
            format!("BASE/{}", workload.name),
            SimConfig::paper_default(SystemKind::Base),
            workload.clone(),
            config.scale,
        ));
        for &system in &config.systems {
            jobs.push(Job::new(
                format!("{system}/{}", workload.name),
                SimConfig::paper_default(system),
                workload.clone(),
                config.scale,
            ));
        }
    }
    let outcomes = run_jobs(jobs, config.threads);
    let cost = CostModel::default();
    let mut rows = Vec::new();
    let mut base = 0.0;
    for o in &outcomes {
        if o.job.config.system == SystemKind::Base {
            base = o.report.mcpi(&cost).total();
            continue;
        }
        rows.push(Row {
            workload: o.job.workload.name.clone(),
            system: o.job.config.system,
            mcpi: o.report.mcpi(&cost),
            base_mcpi: base,
            vmcpi: o.report.vmcpi(&cost).total(),
        });
    }
    Result { rows }
}

impl Result {
    /// Renders MCPI vs BASE with the inflicted delta.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "workload",
            "system",
            "MCPI",
            "MCPI(BASE)",
            "inflicted",
            "VMCPI",
            "inflicted/VMCPI",
        ]);
        for r in &self.rows {
            t.row([
                r.workload.clone(),
                r.system.label().to_owned(),
                format!("{:.4}", r.mcpi.total()),
                format!("{:.4}", r.base_mcpi),
                format!("{:.4}", r.inflicted()),
                format!("{:.4}", r.vmcpi),
                format!("{:.2}", r.inflicted() / r.vmcpi.max(1e-12)),
            ]);
        }
        t.render()
    }

    /// CSV of all rows.
    pub fn to_csv(&self) -> String {
        let mut t =
            TextTable::new(["workload", "system", "mcpi", "base_mcpi", "inflicted", "vmcpi"]);
        for r in &self.rows {
            t.row([
                r.workload.clone(),
                r.system.label().to_owned(),
                format!("{:.6}", r.mcpi.total()),
                format!("{:.6}", r.base_mcpi),
                format!("{:.6}", r.inflicted()),
                format!("{:.6}", r.vmcpi),
            ]);
        }
        t.to_csv()
    }

    /// Checks the inflicted-miss findings.
    pub fn claims(&self) -> Vec<Claim> {
        let mut claims = Vec::new();
        let meaningful: Vec<&Row> = self.rows.iter().filter(|r| r.vmcpi > 1e-4).collect();
        if meaningful.is_empty() {
            return claims;
        }
        let inflated = meaningful.iter().filter(|r| r.inflicted() > 0.0).count();
        claims.push(Claim::new(
            "every VM system inflicts extra cache misses on the application (MCPI > MCPI_BASE)",
            inflated == meaningful.len(),
            format!("{inflated}/{} rows show positive inflicted MCPI", meaningful.len()),
        ));
        // The "roughly twice" result: inflicted misses are on the order of
        // the directly-charged VMCPI (>= 25% of it on average), so adding
        // them roughly doubles the perceived VM overhead.
        let ratio: f64 = meaningful.iter().map(|r| r.inflicted() / r.vmcpi).sum::<f64>()
            / meaningful.len() as f64;
        claims.push(Claim::new(
            "inflicted misses are of the same order as the direct VM overhead (the 'roughly twice' result)",
            ratio > 0.25,
            format!("mean inflicted/VMCPI ratio {ratio:.2}"),
        ));
        // Software handlers executing through the I-cache (NOTLB with its
        // frequent handlers) inflict more than INTEL's invisible walker.
        let mean = |s: SystemKind| {
            let v: Vec<f64> = meaningful
                .iter()
                .filter(|r| r.system == s)
                .map(|r| r.inflicted().max(0.0))
                .collect();
            if v.is_empty() {
                None
            } else {
                Some(v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        if let (Some(notlb), Some(intel)) = (mean(SystemKind::NoTlb), mean(SystemKind::Intel)) {
            claims.push(Claim::new(
                "the interrupt-driven NOTLB scheme pollutes the caches more than INTEL's hardware walker",
                notlb > intel,
                format!("mean inflicted MCPI: NOTLB {notlb:.4} vs INTEL {intel:.4}"),
            ));
        }
        claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_trace::presets;

    fn tiny() -> Config {
        Config {
            workloads: vec![presets::gcc_spec()],
            systems: vec![SystemKind::Ultrix, SystemKind::Intel],
            scale: RunScale { warmup: 20_000, measure: 100_000 },
            threads: 1,
        }
    }

    #[test]
    fn rows_exclude_base_but_reference_it() {
        let r = run(&tiny());
        assert_eq!(r.rows.len(), 2);
        assert!(r.rows.iter().all(|row| row.base_mcpi > 0.0));
        assert!(r.rows.iter().all(|row| row.system != SystemKind::Base));
    }

    #[test]
    fn inflicted_is_mcpi_minus_base() {
        let r = run(&tiny());
        for row in &r.rows {
            assert!((row.inflicted() - (row.mcpi.total() - row.base_mcpi)).abs() < 1e-12);
        }
    }

    #[test]
    fn render_has_the_delta_column() {
        let r = run(&tiny());
        assert!(r.render().contains("inflicted"));
    }

    #[test]
    fn csv_line_count() {
        let r = run(&tiny());
        assert_eq!(r.to_csv().lines().count(), r.rows.len() + 1);
    }
}
