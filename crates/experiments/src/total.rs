//! Figure 13 (reconstructed): total virtual-memory overhead.
//!
//! The abstract's headline numbers: the traditional VMCPI-only view puts
//! VM overhead at 5–10% of run time; adding the cache misses the VM
//! system inflicts on the application makes it 10–20%; adding interrupt
//! handling makes it 10–30%. This experiment computes all three views
//! against the BASE (no-VM) simulation of the same trace.

use vm_core::cost::CostModel;
use vm_core::{paper, SimConfig, SystemKind};
use vm_trace::WorkloadSpec;

use crate::claim::Claim;
use crate::runner::{run_jobs, Job, RunScale};
use crate::table::TextTable;

/// Parameter space for the total-overhead experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workloads to measure.
    pub workloads: Vec<WorkloadSpec>,
    /// VM systems to measure (BASE is added automatically).
    pub systems: Vec<SystemKind>,
    /// Interrupt costs for the third view.
    pub interrupt_costs: Vec<u64>,
    /// Run lengths.
    pub scale: RunScale,
    /// Worker threads.
    pub threads: usize,
}

impl Config {
    /// The paper's space.
    pub fn paper(workloads: Vec<WorkloadSpec>) -> Config {
        Config {
            workloads,
            systems: SystemKind::VM_SYSTEMS.to_vec(),
            interrupt_costs: paper::INTERRUPT_COSTS.to_vec(),
            scale: RunScale::DEFAULT,
            threads: 1,
        }
    }
}

/// One measured row: the three views of a system's VM overhead.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Simulated system.
    pub system: SystemKind,
    /// Baseline CPI (1 + MCPI_BASE) the overheads are relative to.
    pub base_cpi: f64,
    /// View 1 — the traditional measure: VMCPI / base CPI.
    pub direct_pct: f64,
    /// View 2 — plus inflicted cache misses.
    pub with_inflicted_pct: f64,
    /// View 3 — plus interrupt cost, per swept cost (sweep order).
    pub with_interrupts_pct: Vec<f64>,
}

/// The measured experiment.
#[derive(Debug, Clone)]
pub struct Result {
    /// The swept interrupt costs.
    pub costs: Vec<u64>,
    /// All rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
pub fn run(config: &Config) -> Result {
    let mut jobs = Vec::new();
    for workload in &config.workloads {
        jobs.push(Job::new(
            format!("BASE/{}", workload.name),
            SimConfig::paper_default(SystemKind::Base),
            workload.clone(),
            config.scale,
        ));
        for &system in &config.systems {
            jobs.push(Job::new(
                format!("{system}/{}", workload.name),
                SimConfig::paper_default(system),
                workload.clone(),
                config.scale,
            ));
        }
    }
    let outcomes = run_jobs(jobs, config.threads);
    let cost = CostModel::default();
    let mut rows = Vec::new();
    let mut base_cpi = 1.0;
    for o in &outcomes {
        if o.job.config.system == SystemKind::Base {
            base_cpi = 1.0 + o.report.mcpi(&cost).total();
            continue;
        }
        let vmcpi = o.report.vmcpi(&cost).total();
        let inflicted = (1.0 + o.report.mcpi(&cost).total()) - base_cpi;
        let ints: Vec<f64> = config
            .interrupt_costs
            .iter()
            .map(|&c| {
                let icpi = o.report.interrupt_cpi(&CostModel::paper(c));
                100.0 * (vmcpi + inflicted + icpi) / base_cpi
            })
            .collect();
        rows.push(Row {
            workload: o.job.workload.name.clone(),
            system: o.job.config.system,
            base_cpi,
            direct_pct: 100.0 * vmcpi / base_cpi,
            with_inflicted_pct: 100.0 * (vmcpi + inflicted) / base_cpi,
            with_interrupts_pct: ints,
        });
    }
    Result { costs: config.interrupt_costs.clone(), rows }
}

impl Result {
    /// Renders the three views per row.
    pub fn render(&self) -> String {
        let mut headers = vec![
            "workload".to_owned(),
            "system".to_owned(),
            "base CPI".to_owned(),
            "direct%".to_owned(),
            "+inflicted%".to_owned(),
        ];
        headers.extend(self.costs.iter().map(|c| format!("+ints@{c}%")));
        let mut t = TextTable::new(headers);
        for r in &self.rows {
            let mut row = vec![
                r.workload.clone(),
                r.system.label().to_owned(),
                format!("{:.3}", r.base_cpi),
                format!("{:.1}", r.direct_pct),
                format!("{:.1}", r.with_inflicted_pct),
            ];
            row.extend(r.with_interrupts_pct.iter().map(|v| format!("{v:.1}")));
            t.row(row);
        }
        t.render()
    }

    /// CSV of all rows.
    pub fn to_csv(&self) -> String {
        let mut headers = vec![
            "workload".to_owned(),
            "system".to_owned(),
            "base_cpi".to_owned(),
            "direct_pct".to_owned(),
            "with_inflicted_pct".to_owned(),
        ];
        headers.extend(self.costs.iter().map(|c| format!("with_ints_{c}_pct")));
        let mut t = TextTable::new(headers);
        for r in &self.rows {
            let mut row = vec![
                r.workload.clone(),
                r.system.label().to_owned(),
                format!("{:.4}", r.base_cpi),
                format!("{:.3}", r.direct_pct),
                format!("{:.3}", r.with_inflicted_pct),
            ];
            row.extend(r.with_interrupts_pct.iter().map(|v| format!("{v:.3}")));
            t.row(row);
        }
        t.to_csv()
    }

    /// Checks the abstract's headline totals, on the VM-stressing
    /// workloads (the paper's gcc and vortex; ijpeg is the
    /// counterexample and is checked separately).
    pub fn claims(&self) -> Vec<Claim> {
        let mut claims = Vec::new();
        let stressed: Vec<&Row> = self
            .rows
            .iter()
            .filter(|r| r.workload != "ijpeg" && r.system != SystemKind::NoTlb)
            .collect();
        if !stressed.is_empty() {
            let mean = |f: &dyn Fn(&Row) -> f64| {
                stressed.iter().map(|r| f(r)).sum::<f64>() / stressed.len() as f64
            };
            let direct = mean(&|r: &Row| r.direct_pct);
            let inflicted = mean(&|r: &Row| r.with_inflicted_pct);
            claims.push(Claim::new(
                "including inflicted cache misses materially inflates the perceived VM overhead (paper: roughly 2x; see EXPERIMENTS.md)",
                inflicted > 1.25 * direct,
                format!("mean direct {direct:.1}% -> with inflicted {inflicted:.1}%"),
            ));
            let vortex: Vec<&&Row> = stressed.iter().filter(|r| r.workload == "vortex").collect();
            if !vortex.is_empty() {
                let vd = vortex.iter().map(|r| r.direct_pct).sum::<f64>() / vortex.len() as f64;
                let vi =
                    vortex.iter().map(|r| r.with_inflicted_pct).sum::<f64>() / vortex.len() as f64;
                claims.push(Claim::new(
                    "on the poor-locality workload (vortex) the inflation approaches the paper's 'roughly twice'",
                    vi > 1.45 * vd,
                    format!("vortex direct {vd:.1}% -> with inflicted {vi:.1}%"),
                ));
            }
            if let Some(hi) = self.costs.iter().position(|&c| c == 200) {
                let with_ints = mean(&|r: &Row| r.with_interrupts_pct[hi]);
                claims.push(Claim::new(
                    "with expensive interrupts the total is roughly three times the traditional view",
                    with_ints > 2.0 * direct,
                    format!("mean with 200-cycle interrupts {with_ints:.1}% vs direct {direct:.1}%"),
                ));
            }
        }
        let ijpeg: Vec<&Row> = self
            .rows
            .iter()
            .filter(|r| r.workload == "ijpeg" && r.system != SystemKind::NoTlb)
            .collect();
        if !ijpeg.is_empty() {
            let max = ijpeg.iter().map(|r| r.with_inflicted_pct).fold(0.0, f64::max);
            claims.push(Claim::new(
                "ijpeg is the counterexample: its total VM overhead stays small",
                max < 8.0,
                format!("max ijpeg overhead (with inflicted) {max:.1}%"),
            ));
        }
        claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_trace::presets;

    fn tiny() -> Config {
        Config {
            workloads: vec![presets::gcc_spec()],
            systems: vec![SystemKind::Ultrix],
            interrupt_costs: vec![10, 200],
            scale: RunScale { warmup: 20_000, measure: 100_000 },
            threads: 1,
        }
    }

    #[test]
    fn views_are_ordered() {
        let r = run(&tiny());
        assert_eq!(r.rows.len(), 1);
        let row = &r.rows[0];
        assert!(row.direct_pct > 0.0);
        assert!(row.with_interrupts_pct[1] > row.with_interrupts_pct[0]);
        assert!(row.with_interrupts_pct[0] >= row.with_inflicted_pct);
    }

    #[test]
    fn base_cpi_exceeds_one() {
        let r = run(&tiny());
        assert!(r.rows[0].base_cpi > 1.0);
    }

    #[test]
    fn render_and_csv() {
        let r = run(&tiny());
        assert!(r.render().contains("+ints@200%"));
        assert_eq!(r.to_csv().lines().count(), 2);
    }
}
