//! The experiment registry: one authoritative list of every `repro`
//! experiment, used to generate `--help`, validate names, and expand the
//! `all`/`figs` groups.
//!
//! Before this existed the binary kept three hand-maintained copies of
//! the experiment list (help text, `all` expansion, error hints) which
//! drifted — `telemetry` was missing from `--help` for a while. Adding an
//! experiment now means adding one [`ExperimentInfo`] row here.

use crate::ablations::Ablation;

/// One runnable experiment name and how the CLI should present it.
#[derive(Debug, Clone)]
pub struct ExperimentInfo {
    /// The CLI name (`fig6`, `abl-tlb`, `telemetry`, ...).
    pub name: String,
    /// One-line description for `--help`.
    pub help: &'static str,
    /// Whether `repro all` includes it. (`telemetry` is excluded: it is
    /// implied by `--events`/`--chrome-trace` instead.)
    pub in_all: bool,
}

impl ExperimentInfo {
    fn new(name: impl Into<String>, help: &'static str, in_all: bool) -> ExperimentInfo {
        ExperimentInfo { name: name.into(), help, in_all }
    }
}

/// Every experiment, in `repro all` execution order (entries with
/// `in_all = false` sort last).
pub fn experiments() -> Vec<ExperimentInfo> {
    let mut list = vec![
        ExperimentInfo::new("tables", "Tables 1-4: cost parameters and system survey", true),
        ExperimentInfo::new("fig6", "VMCPI vs cache organization (gcc)", true),
        ExperimentInfo::new("fig7", "VMCPI vs cache organization (vortex)", true),
        ExperimentInfo::new("fig8", "VMCPI component breakdown (gcc)", true),
        ExperimentInfo::new("fig9", "VMCPI component breakdown (vortex)", true),
        ExperimentInfo::new("fig10", "interrupt-cost sensitivity (all benchmarks)", true),
        ExperimentInfo::new("fig11", "TLB-size sensitivity", true),
        ExperimentInfo::new("fig12", "MCPI inflicted on the application", true),
        ExperimentInfo::new("fig13", "total VM overhead (the 5-10% -> 10-30% result)", true),
        ExperimentInfo::new("suite", "six workloads x five systems, seed-replicated", true),
    ];
    for ablation in Ablation::ALL {
        list.push(ExperimentInfo::new(ablation.name(), ablation.describe(), true));
    }
    list.push(ExperimentInfo::new(
        "abl-mp",
        "multiprogramming: ASID-tagged vs untagged TLBs",
        true,
    ));
    list.push(ExperimentInfo::new(
        "telemetry",
        "instrumented pass: walk-latency histograms per system",
        false,
    ));
    list
}

/// The names of the `figN` experiments, in order (the `figs` group).
pub fn fig_names() -> Vec<String> {
    experiments().into_iter().map(|e| e.name).filter(|n| n.starts_with("fig")).collect()
}

/// The names `repro all` runs, in order.
pub fn all_names() -> Vec<String> {
    experiments().into_iter().filter(|e| e.in_all).map(|e| e.name).collect()
}

/// Whether `name` is a runnable experiment (group aliases like `figs`
/// and `all` are not included).
pub fn is_known(name: &str) -> bool {
    experiments().iter().any(|e| e.name == name)
}

/// The one-line experiment list for usage/error messages.
pub fn name_line() -> String {
    let names: Vec<String> = experiments().into_iter().map(|e| e.name).collect();
    format!("{} figs all", names.join(" "))
}

/// The indented per-experiment help block for `--help`.
pub fn help_block() -> String {
    let list = experiments();
    let width = list.iter().map(|e| e.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for e in &list {
        out.push_str(&format!("  {:<width$}  {}\n", e.name, e.help));
    }
    out.push_str(&format!("  {:<width$}  fig6..fig13\n", "figs"));
    out.push_str(&format!("  {:<width$}  every experiment above except telemetry\n", "all"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ablation_is_registered() {
        for ablation in Ablation::ALL {
            assert!(is_known(ablation.name()), "{} missing from registry", ablation.name());
        }
    }

    #[test]
    fn telemetry_is_listed_but_not_in_all() {
        assert!(is_known("telemetry"));
        assert!(!all_names().contains(&"telemetry".to_owned()));
        assert!(help_block().contains("telemetry"));
        assert!(name_line().contains("telemetry"));
    }

    #[test]
    fn all_order_is_tables_figs_suite_ablations_mp() {
        let all = all_names();
        assert_eq!(all[0], "tables");
        assert_eq!(&all[1..9], fig_names().as_slice());
        assert_eq!(all[9], "suite");
        assert_eq!(all[10..16].to_vec(), Ablation::ALL.map(|a| a.name().to_owned()).to_vec());
        assert_eq!(all[16], "abl-mp");
        assert_eq!(all.len(), 17);
    }
}
