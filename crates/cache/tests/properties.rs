//! Property-based tests of the cache models' invariants.

use proptest::prelude::*;
use vm_cache::{Associativity, Cache, CacheConfig, CacheHierarchy};
use vm_types::{AddressSpace, MAddr, MissClass};

fn any_space() -> impl Strategy<Value = AddressSpace> {
    prop_oneof![Just(AddressSpace::User), Just(AddressSpace::Kernel), Just(AddressSpace::Physical),]
}

fn any_addr() -> impl Strategy<Value = MAddr> {
    (any_space(), 0u64..(1 << 22)).prop_map(|(s, o)| MAddr::new(s, o))
}

fn any_geometry() -> impl Strategy<Value = CacheConfig> {
    (0u32..4, 4u32..8, 0u32..3).prop_map(|(size_pow, line_pow, ways_pow)| {
        let size = 1u64 << (10 + size_pow); // 1K..8K
        let line = 1u64 << line_pow; // 16..128
        let ways = 1u32 << ways_pow; // 1..4
        CacheConfig::set_associative(
            size,
            line,
            if ways == 1 { Associativity::DirectMapped } else { Associativity::Ways(ways) },
        )
        .expect("generated geometry is valid")
    })
}

proptest! {
    #[test]
    fn hits_plus_misses_equals_accesses(cfg in any_geometry(), addrs in prop::collection::vec(any_addr(), 1..400)) {
        let mut c = Cache::new(cfg);
        for a in &addrs {
            c.access(*a);
        }
        let k = c.counters();
        prop_assert_eq!(k.accesses, addrs.len() as u64);
        prop_assert_eq!(k.hits + k.misses(), k.accesses);
    }

    #[test]
    fn immediate_reaccess_always_hits(cfg in any_geometry(), addrs in prop::collection::vec(any_addr(), 1..200)) {
        let mut c = Cache::new(cfg);
        for a in &addrs {
            c.access(*a);
            prop_assert!(c.access(*a), "re-access of {a} must hit");
            prop_assert!(c.peek(*a));
        }
    }

    #[test]
    fn cold_first_touches_bound_misses_from_below(
        cfg in any_geometry(),
        addrs in prop::collection::vec(any_addr(), 1..300),
    ) {
        // Every distinct line's first access must miss a cold cache, so
        // misses >= distinct lines touched (conflict misses only add).
        let mut c = Cache::new(cfg);
        let mut distinct = std::collections::HashSet::new();
        for a in &addrs {
            distinct.insert(a.raw() >> cfg.line_shift());
            c.access(*a);
        }
        prop_assert!(c.counters().misses() >= distinct.len() as u64);
        prop_assert!(c.counters().misses() <= c.counters().accesses);
    }

    #[test]
    fn flush_restores_cold_state(cfg in any_geometry(), addrs in prop::collection::vec(any_addr(), 1..100)) {
        let mut c = Cache::new(cfg);
        for a in &addrs {
            c.access(*a);
        }
        c.flush();
        for a in &addrs {
            prop_assert!(!c.peek(*a));
        }
    }

    #[test]
    fn determinism_same_sequence_same_counters(cfg in any_geometry(), addrs in prop::collection::vec(any_addr(), 1..300)) {
        let mut a = Cache::new(cfg);
        let mut b = Cache::new(cfg);
        for x in &addrs {
            a.access(*x);
            b.access(*x);
        }
        prop_assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn higher_associativity_never_hurts_at_fixed_size(
        addrs in prop::collection::vec(0u64..(1 << 14), 50..400),
    ) {
        // LRU set-associative caches of the same size: more ways -> the
        // same or fewer misses is NOT a theorem (Belady anomalies apply to
        // FIFO, LRU stack property applies within a set), but full LRU
        // associativity vs direct-mapped of equal size on a *small* probe
        // set strongly tends to win; we assert the weaker stack property:
        // a 2-way LRU cache never misses on an immediate re-reference.
        let cfg = CacheConfig::set_associative(2048, 32, Associativity::Ways(2)).unwrap();
        let mut c = Cache::new(cfg);
        for &o in &addrs {
            let a = MAddr::user(o);
            c.access(a);
            prop_assert!(c.peek(a));
        }
    }

    #[test]
    fn hierarchy_l2_sees_only_l1_misses(addrs in prop::collection::vec(any_addr(), 1..300)) {
        let l1 = Cache::new(CacheConfig::direct_mapped(1 << 10, 32).unwrap());
        let l2 = Cache::new(CacheConfig::direct_mapped(1 << 14, 64).unwrap());
        let mut h = CacheHierarchy::new(l1, l2);
        for a in &addrs {
            h.access(*a);
        }
        let k = h.counters();
        prop_assert_eq!(k.l2.accesses, k.l1.misses());
        prop_assert!(k.memory_accesses() <= k.l2.accesses);
    }

    #[test]
    fn hierarchy_classes_are_consistent_with_counters(addrs in prop::collection::vec(any_addr(), 1..300)) {
        let l1 = Cache::new(CacheConfig::direct_mapped(1 << 10, 32).unwrap());
        let l2 = Cache::new(CacheConfig::direct_mapped(1 << 13, 32).unwrap());
        let mut h = CacheHierarchy::new(l1, l2);
        let (mut n_l1, mut n_l2, mut n_mem) = (0u64, 0u64, 0u64);
        for a in &addrs {
            match h.access(*a) {
                MissClass::L1Hit => n_l1 += 1,
                MissClass::L2Hit => n_l2 += 1,
                MissClass::Memory => n_mem += 1,
            }
        }
        let k = h.counters();
        prop_assert_eq!(n_l1, k.l1.hits);
        prop_assert_eq!(n_l2, k.l2.hits);
        prop_assert_eq!(n_mem, k.l2.misses());
    }

    #[test]
    fn span_access_covers_every_line(start in 0u64..(1 << 16), bytes in 1u64..64) {
        let l1 = Cache::new(CacheConfig::direct_mapped(1 << 12, 16).unwrap());
        let l2 = Cache::new(CacheConfig::direct_mapped(1 << 14, 16).unwrap());
        let mut h = CacheHierarchy::new(l1, l2);
        let a = MAddr::user(start);
        h.access_span(a, bytes);
        for b in (0..bytes).step_by(4) {
            prop_assert_eq!(h.peek(a.add(b)), MissClass::L1Hit, "byte {} of span not resident", b);
        }
    }
}
