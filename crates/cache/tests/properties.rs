//! Randomized tests of the cache models' invariants, driven by a seeded
//! [`SplitMix64`] stream (the workspace carries no third-party
//! property-testing framework).

use vm_cache::{Associativity, Cache, CacheConfig, CacheHierarchy};
use vm_types::{AddressSpace, MAddr, MissClass, SplitMix64};

const CASES: usize = 60;

fn any_space(rng: &mut SplitMix64) -> AddressSpace {
    match rng.next_below(3) {
        0 => AddressSpace::User,
        1 => AddressSpace::Kernel,
        _ => AddressSpace::Physical,
    }
}

fn any_addr(rng: &mut SplitMix64) -> MAddr {
    let space = any_space(rng);
    MAddr::new(space, rng.next_below(1 << 22))
}

fn any_addrs(rng: &mut SplitMix64, min: u64, max: u64) -> Vec<MAddr> {
    let n = min + rng.next_below(max - min);
    (0..n).map(|_| any_addr(rng)).collect()
}

fn any_geometry(rng: &mut SplitMix64) -> CacheConfig {
    let size = 1u64 << (10 + rng.next_below(4)); // 1K..8K
    let line = 1u64 << (4 + rng.next_below(4)); // 16..128
    let ways = 1u32 << rng.next_below(3); // 1..4
    CacheConfig::set_associative(
        size,
        line,
        if ways == 1 { Associativity::DirectMapped } else { Associativity::Ways(ways) },
    )
    .expect("generated geometry is valid")
}

#[test]
fn hits_plus_misses_equals_accesses() {
    let mut rng = SplitMix64::new(0xacc);
    for case in 0..CASES {
        let cfg = any_geometry(&mut rng);
        let addrs = any_addrs(&mut rng, 1, 400);
        let mut c = Cache::new(cfg);
        for a in &addrs {
            c.access(*a);
        }
        let k = c.counters();
        assert_eq!(k.accesses, addrs.len() as u64, "case {case}");
        assert_eq!(k.hits + k.misses(), k.accesses, "case {case}");
    }
}

#[test]
fn immediate_reaccess_always_hits() {
    let mut rng = SplitMix64::new(0x1e);
    for case in 0..CASES {
        let cfg = any_geometry(&mut rng);
        let addrs = any_addrs(&mut rng, 1, 200);
        let mut c = Cache::new(cfg);
        for a in &addrs {
            c.access(*a);
            assert!(c.access(*a), "case {case}: re-access of {a} must hit");
            assert!(c.peek(*a));
        }
    }
}

#[test]
fn cold_first_touches_bound_misses_from_below() {
    // Every distinct line's first access must miss a cold cache, so
    // misses >= distinct lines touched (conflict misses only add).
    let mut rng = SplitMix64::new(0xc01d);
    for case in 0..CASES {
        let cfg = any_geometry(&mut rng);
        let addrs = any_addrs(&mut rng, 1, 300);
        let mut c = Cache::new(cfg);
        let mut distinct = std::collections::HashSet::new();
        for a in &addrs {
            distinct.insert(a.raw() >> cfg.line_shift());
            c.access(*a);
        }
        assert!(c.counters().misses() >= distinct.len() as u64, "case {case}");
        assert!(c.counters().misses() <= c.counters().accesses, "case {case}");
    }
}

#[test]
fn flush_restores_cold_state() {
    let mut rng = SplitMix64::new(0xf1);
    for case in 0..CASES {
        let cfg = any_geometry(&mut rng);
        let addrs = any_addrs(&mut rng, 1, 100);
        let mut c = Cache::new(cfg);
        for a in &addrs {
            c.access(*a);
        }
        c.flush();
        for a in &addrs {
            assert!(!c.peek(*a), "case {case}: {a} survived a flush");
        }
    }
}

#[test]
fn determinism_same_sequence_same_counters() {
    let mut rng = SplitMix64::new(0xde7);
    for case in 0..CASES {
        let cfg = any_geometry(&mut rng);
        let addrs = any_addrs(&mut rng, 1, 300);
        let mut a = Cache::new(cfg);
        let mut b = Cache::new(cfg);
        for x in &addrs {
            a.access(*x);
            b.access(*x);
        }
        assert_eq!(a.counters(), b.counters(), "case {case}");
    }
}

#[test]
fn lru_stack_property_immediate_reference_is_resident() {
    // A 2-way LRU cache never misses on an immediate re-reference.
    let mut rng = SplitMix64::new(0x57ac);
    for case in 0..CASES {
        let cfg = CacheConfig::set_associative(2048, 32, Associativity::Ways(2)).unwrap();
        let mut c = Cache::new(cfg);
        let n = 50 + rng.next_below(350);
        for _ in 0..n {
            let a = MAddr::user(rng.next_below(1 << 14));
            c.access(a);
            assert!(c.peek(a), "case {case}: {a} not MRU-resident");
        }
    }
}

#[test]
fn hierarchy_l2_sees_only_l1_misses() {
    let mut rng = SplitMix64::new(0x12);
    for case in 0..CASES {
        let l1 = Cache::new(CacheConfig::direct_mapped(1 << 10, 32).unwrap());
        let l2 = Cache::new(CacheConfig::direct_mapped(1 << 14, 64).unwrap());
        let mut h = CacheHierarchy::new(l1, l2);
        for a in any_addrs(&mut rng, 1, 300) {
            h.access(a);
        }
        let k = h.counters();
        assert_eq!(k.l2.accesses, k.l1.misses(), "case {case}");
        assert!(k.memory_accesses() <= k.l2.accesses, "case {case}");
    }
}

#[test]
fn hierarchy_classes_are_consistent_with_counters() {
    let mut rng = SplitMix64::new(0xc1a5);
    for case in 0..CASES {
        let l1 = Cache::new(CacheConfig::direct_mapped(1 << 10, 32).unwrap());
        let l2 = Cache::new(CacheConfig::direct_mapped(1 << 13, 32).unwrap());
        let mut h = CacheHierarchy::new(l1, l2);
        let (mut n_l1, mut n_l2, mut n_mem) = (0u64, 0u64, 0u64);
        for a in any_addrs(&mut rng, 1, 300) {
            match h.access(a) {
                MissClass::L1Hit => n_l1 += 1,
                MissClass::L2Hit => n_l2 += 1,
                MissClass::Memory => n_mem += 1,
            }
        }
        let k = h.counters();
        assert_eq!(n_l1, k.l1.hits, "case {case}");
        assert_eq!(n_l2, k.l2.hits, "case {case}");
        assert_eq!(n_mem, k.l2.misses(), "case {case}");
    }
}

#[test]
fn span_access_covers_every_line() {
    let mut rng = SplitMix64::new(0x59a);
    for case in 0..200 {
        let l1 = Cache::new(CacheConfig::direct_mapped(1 << 12, 16).unwrap());
        let l2 = Cache::new(CacheConfig::direct_mapped(1 << 14, 16).unwrap());
        let mut h = CacheHierarchy::new(l1, l2);
        let start = rng.next_below(1 << 16);
        let bytes = 1 + rng.next_below(63);
        let a = MAddr::user(start);
        h.access_span(a, bytes);
        for b in (0..bytes).step_by(4) {
            assert_eq!(
                h.peek(a.add(b)),
                MissClass::L1Hit,
                "case {case}: byte {b} of span not resident"
            );
        }
    }
}
