//! A single cache level.

use vm_types::MAddr;

use crate::config::CacheConfig;

/// Sentinel tag for an empty (never filled) way.
const EMPTY: u64 = u64::MAX;

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Total probe count.
    pub accesses: u64,
    /// Probes that found their line resident.
    pub hits: u64,
}

impl CacheCounters {
    /// Probes that missed.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// One level of a virtually-addressed, blocking, write-allocate,
/// write-through cache.
///
/// Because the simulated caches are write-through, there is no dirty
/// state: a probe either hits or [fills](Cache::access) the line over
/// whatever the replacement policy evicts. Stores behave identically to
/// loads (write-allocate), so the model exposes a single access method.
///
/// Ways within a set are kept in recency order (most recent first), which
/// makes direct-mapped behaviour a trivial special case and gives LRU for
/// the set-associative ablation.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `ways[set * ways_per_set + way]` holds the line tag, MRU first.
    ways: Vec<u64>,
    ways_per_set: usize,
    set_mask: u64,
    line_shift: u32,
    counters: CacheCounters,
}

impl Cache {
    /// Creates a cold cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let ways_per_set = config.associativity().ways() as usize;
        let sets = config.sets();
        Cache {
            config,
            ways: vec![EMPTY; (sets as usize) * ways_per_set],
            ways_per_set,
            set_mask: sets - 1,
            line_shift: config.line_shift(),
            counters: CacheCounters::default(),
        }
    }

    /// The geometry this cache was built with.
    #[inline]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated hit/miss counters.
    #[inline]
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Resets the counters without disturbing cache contents. Used to
    /// separate warm-up from measurement.
    pub fn reset_counters(&mut self) {
        self.counters = CacheCounters::default();
    }

    /// Invalidates every line (and leaves counters untouched).
    pub fn flush(&mut self) {
        self.ways.fill(EMPTY);
    }

    /// The line-granular tag of an address (line number across the tagged
    /// 64-bit model address, so distinct address spaces never alias).
    #[inline]
    fn line_of(&self, addr: MAddr) -> u64 {
        addr.raw() >> self.line_shift
    }

    /// Probes for `addr` **without** updating contents or counters.
    pub fn peek(&self, addr: MAddr) -> bool {
        let line = self.line_of(addr);
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways_per_set;
        self.ways[base..base + self.ways_per_set].contains(&line)
    }

    /// Probes for `addr`, filling the line on a miss (write-allocate) and
    /// promoting it to most-recently-used. Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, addr: MAddr) -> bool {
        self.access_observed(addr).0
    }

    /// As [`Cache::access`], additionally reporting whether the fill
    /// displaced a *valid* line (`(hit, evicted)`); a fill into a
    /// never-used frame is not an eviction. Identical side effects to
    /// `access` — the extra bool exists for the observability layer.
    #[inline]
    pub fn access_observed(&mut self, addr: MAddr) -> (bool, bool) {
        let line = self.line_of(addr);
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways_per_set;
        let ways = &mut self.ways[base..base + self.ways_per_set];
        self.counters.accesses += 1;

        match ways.iter().position(|&t| t == line) {
            Some(0) => {
                self.counters.hits += 1;
                (true, false)
            }
            Some(pos) => {
                // Promote to MRU.
                ways[..=pos].rotate_right(1);
                self.counters.hits += 1;
                (true, false)
            }
            None => {
                // Evict LRU (the last way) and install at MRU.
                let evicted = ways[self.ways_per_set - 1] != EMPTY;
                ways.rotate_right(1);
                ways[0] = line;
                (false, evicted)
            }
        }
    }

    /// Accesses every line covered by `[addr, addr + bytes)` and returns
    /// `true` only if *all* of them hit. `bytes == 0` is treated as 1.
    ///
    /// The simulator uses this for the PA-RISC organization's 16-byte PTEs,
    /// which span two lines when the line size is 16 bytes and the entry is
    /// in the collision-resolution table at an unaligned slot.
    pub fn access_span(&mut self, addr: MAddr, bytes: u64) -> bool {
        let bytes = bytes.max(1);
        let first = addr.raw() >> self.line_shift;
        let last = (addr.raw() + bytes - 1) >> self.line_shift;
        let line_base = addr.offset() & !((1u64 << self.line_shift) - 1);
        let mut all_hit = true;
        for line in first..=last {
            let within = (line - first) << self.line_shift;
            let probe = if line == first { addr } else { addr.with_offset(line_base + within) };
            all_hit &= self.access(probe);
        }
        all_hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Associativity;

    fn dm(size: u64, line: u64) -> Cache {
        Cache::new(CacheConfig::direct_mapped(size, line).unwrap())
    }

    #[test]
    fn cold_cache_misses_then_hits() {
        let mut c = dm(1024, 32);
        let a = MAddr::user(0x40);
        assert!(!c.access(a));
        assert!(c.access(a));
        assert_eq!(c.counters().accesses, 2);
        assert_eq!(c.counters().hits, 1);
        assert_eq!(c.counters().misses(), 1);
    }

    #[test]
    fn same_line_hits_different_line_misses() {
        let mut c = dm(1024, 32);
        assert!(!c.access(MAddr::user(0x40)));
        assert!(c.access(MAddr::user(0x5f))); // same 32-B line
        assert!(!c.access(MAddr::user(0x60))); // next line
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = dm(1024, 32); // 32 lines
        let a = MAddr::user(0x0);
        let b = MAddr::user(1024); // same index, different tag
        assert!(!c.access(a));
        assert!(!c.access(b)); // evicts a
        assert!(!c.access(a)); // a was evicted
    }

    #[test]
    fn different_spaces_contend_but_do_not_alias() {
        let mut c = dm(1024, 32);
        let u = MAddr::user(0x100);
        let p = MAddr::physical(0x100);
        assert!(!c.access(u));
        assert!(!c.access(p)); // same index -> evicts u (direct-mapped)
        assert!(!c.access(u)); // must re-miss: no false hit across spaces
    }

    #[test]
    fn two_way_set_keeps_both_conflicting_lines() {
        let cfg = CacheConfig::set_associative(1024, 32, Associativity::Ways(2)).unwrap();
        let mut c = Cache::new(cfg);
        let a = MAddr::user(0x0);
        let b = MAddr::user(1024); // with 16 sets these share a set
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a));
        assert!(c.access(b));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cfg = CacheConfig::set_associative(64, 16, Associativity::Ways(2)).unwrap();
        let mut c = Cache::new(cfg); // 2 sets x 2 ways
                                     // Three lines mapping to set 0 (line numbers even).
        let a = MAddr::user(0x00);
        let b = MAddr::user(0x40);
        let d = MAddr::user(0x80);
        c.access(a);
        c.access(b);
        c.access(a); // a is MRU, b is LRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b));
    }

    #[test]
    fn peek_does_not_disturb_state_or_counters() {
        let mut c = dm(1024, 32);
        let a = MAddr::user(0x40);
        assert!(!c.peek(a));
        assert_eq!(c.counters().accesses, 0);
        c.access(a);
        assert!(c.peek(a));
        assert_eq!(c.counters().accesses, 1);
    }

    #[test]
    fn flush_invalidates_contents() {
        let mut c = dm(1024, 32);
        let a = MAddr::user(0x40);
        c.access(a);
        c.flush();
        assert!(!c.access(a));
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut c = dm(1024, 32);
        let a = MAddr::user(0x40);
        c.access(a);
        c.reset_counters();
        assert_eq!(c.counters().accesses, 0);
        assert!(c.access(a)); // still resident
    }

    #[test]
    fn span_crossing_line_boundary_touches_both_lines() {
        let mut c = dm(1024, 16);
        // 16-byte access starting 8 bytes into a line covers two lines.
        assert!(!c.access_span(MAddr::user(0x48), 16));
        assert!(c.peek(MAddr::user(0x40)));
        assert!(c.peek(MAddr::user(0x50)));
        assert!(c.access_span(MAddr::user(0x48), 16));
    }

    #[test]
    fn span_within_line_is_single_access() {
        let mut c = dm(1024, 64);
        assert!(!c.access_span(MAddr::user(0x40), 16));
        assert_eq!(c.counters().accesses, 1);
    }

    #[test]
    fn observed_access_reports_evictions() {
        let mut c = dm(1024, 32); // 32 lines
        let a = MAddr::user(0x0);
        let b = MAddr::user(1024); // same index, different tag
        assert_eq!(c.access_observed(a), (false, false)); // cold fill
        assert_eq!(c.access_observed(a), (true, false)); // hit
        assert_eq!(c.access_observed(b), (false, true)); // displaces a
        assert_eq!(c.access_observed(a), (false, true)); // displaces b
    }

    #[test]
    fn miss_ratio_is_sane() {
        let mut c = dm(1024, 32);
        assert_eq!(c.counters().miss_ratio(), 0.0);
        c.access(MAddr::user(0));
        c.access(MAddr::user(0));
        assert!((c.counters().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_respected_full_working_set_hits() {
        // Touch exactly as many distinct lines as the cache holds; with a
        // direct-mapped cache and stride = line size they all co-reside.
        let mut c = dm(1024, 32);
        for i in 0..32u64 {
            assert!(!c.access(MAddr::user(i * 32)));
        }
        for i in 0..32u64 {
            assert!(c.access(MAddr::user(i * 32)));
        }
    }
}
