//! Virtually-addressed cache models for the Jacob & Mudge (ASPLOS 1998)
//! reproduction.
//!
//! The paper simulates *split, direct-mapped, virtually-addressed* caches
//! at both the L1 and L2 levels; all caches are *blocking, write-allocate,
//! write-through* (Table 1). Those choices make the model here simple and
//! exact:
//!
//! * **write-through** — there are no dirty lines, so an eviction is just a
//!   tag replacement and a store probes/fills exactly like a load;
//! * **blocking** — misses are serialized, so timing reduces to counting
//!   miss events and charging Table 2/3 costs per event;
//! * **virtually addressed** — the cache indexes the full *model address*
//!   ([`vm_types::MAddr::raw`]), so user references, handler fetches and
//!   PTE loads from any address space all contend for the same frames.
//!
//! [`Cache`] models a single level (direct-mapped by default, with
//! set-associative support for the associativity ablation the paper
//! explicitly deferred), and [`CacheHierarchy`] composes two levels into
//! the L1→L2→memory lookup path, classifying every access as an
//! [`vm_types::MissClass`].
//!
//! # Example
//!
//! ```
//! use vm_cache::{Cache, CacheConfig, CacheHierarchy};
//! use vm_types::{MAddr, MissClass};
//!
//! # fn main() -> Result<(), vm_cache::CacheGeometryError> {
//! let l1 = Cache::new(CacheConfig::direct_mapped(8 * 1024, 32)?);
//! let l2 = Cache::new(CacheConfig::direct_mapped(512 * 1024, 128)?);
//! let mut side = CacheHierarchy::new(l1, l2);
//!
//! let a = MAddr::user(0x1000);
//! assert_eq!(side.access(a), MissClass::Memory); // cold
//! assert_eq!(side.access(a), MissClass::L1Hit);  // warm
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod hierarchy;
mod single;
mod system;

pub use config::{Associativity, CacheConfig, CacheGeometryError};
pub use hierarchy::{CacheHierarchy, HierarchyCounters};
pub use single::{Cache, CacheCounters};
pub use system::{CacheSystem, CacheSystemCounters, FillInfo};
