//! Cache geometry configuration and validation.

use std::error::Error;
use std::fmt;

/// How lines are placed within a [`CacheConfig`]'s sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Associativity {
    /// One line per set — the organization the paper simulates throughout
    /// ("to avoid obscuring performance differences", Section 3).
    DirectMapped,
    /// `n`-way set-associative with LRU replacement. Provided for the
    /// associativity ablation (`ablC` in DESIGN.md).
    Ways(u32),
}

impl Associativity {
    /// Number of ways per set.
    #[inline]
    pub fn ways(self) -> u32 {
        match self {
            Associativity::DirectMapped => 1,
            Associativity::Ways(n) => n,
        }
    }

    /// Resolves a spec-file spelling: `direct-mapped` (or `direct`, or
    /// `1`) and `N-way` (or a bare way count `N`).
    pub fn parse(s: &str) -> Option<Associativity> {
        if s.eq_ignore_ascii_case("direct-mapped") || s.eq_ignore_ascii_case("direct") {
            return Some(Associativity::DirectMapped);
        }
        let digits = s.strip_suffix("-way").or_else(|| s.strip_suffix("-WAY")).unwrap_or(s);
        match digits.parse::<u32>() {
            Ok(0) => None,
            Ok(1) => Some(Associativity::DirectMapped),
            Ok(n) => Some(Associativity::Ways(n)),
            Err(_) => None,
        }
    }
}

impl fmt::Display for Associativity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Associativity::DirectMapped => f.write_str("direct-mapped"),
            Associativity::Ways(n) => write!(f, "{n}-way"),
        }
    }
}

/// Validated geometry of one cache level.
///
/// Construct with [`CacheConfig::direct_mapped`] or
/// [`CacheConfig::set_associative`]; both enforce the power-of-two
/// geometry the index/tag arithmetic relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u64,
    line_bytes: u64,
    associativity: Associativity,
}

impl CacheConfig {
    /// A direct-mapped cache of `size_bytes` capacity with `line_bytes`
    /// lines — the paper's configuration (Table 1 uses sizes 1 KB–2 MB and
    /// lines 16–128 B).
    ///
    /// # Errors
    ///
    /// Returns [`CacheGeometryError`] if either quantity is zero or not a
    /// power of two, or if the line is larger than the cache.
    pub fn direct_mapped(
        size_bytes: u64,
        line_bytes: u64,
    ) -> Result<CacheConfig, CacheGeometryError> {
        CacheConfig::set_associative(size_bytes, line_bytes, Associativity::DirectMapped)
    }

    /// A set-associative cache (LRU within each set).
    ///
    /// # Errors
    ///
    /// As [`CacheConfig::direct_mapped`], plus the way count must be a
    /// power of two no larger than the number of lines.
    pub fn set_associative(
        size_bytes: u64,
        line_bytes: u64,
        associativity: Associativity,
    ) -> Result<CacheConfig, CacheGeometryError> {
        let config = CacheConfig { size_bytes, line_bytes, associativity };
        let fail = |what| Err(CacheGeometryError { config, what });
        if size_bytes == 0 || !size_bytes.is_power_of_two() {
            return fail("cache size must be a non-zero power of two");
        }
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return fail("line size must be a non-zero power of two");
        }
        if line_bytes > size_bytes {
            return fail("line size must not exceed cache size");
        }
        let ways = u64::from(associativity.ways());
        if ways == 0 || !ways.is_power_of_two() {
            return fail("way count must be a non-zero power of two");
        }
        if ways > size_bytes / line_bytes {
            return fail("way count must not exceed the number of lines");
        }
        Ok(config)
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Line (block) size in bytes.
    #[inline]
    pub fn line_bytes(self) -> u64 {
        self.line_bytes
    }

    /// Placement policy.
    #[inline]
    pub fn associativity(self) -> Associativity {
        self.associativity
    }

    /// Total number of lines.
    #[inline]
    pub fn lines(self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets (`lines / ways`).
    #[inline]
    pub fn sets(self) -> u64 {
        self.lines() / u64::from(self.associativity.ways())
    }

    /// Log2 of the line size; the low `line_shift` address bits are the
    /// line offset.
    #[inline]
    pub fn line_shift(self) -> u32 {
        self.line_bytes.trailing_zeros()
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B {} cache, {} B lines", self.size_bytes, self.associativity, self.line_bytes)
    }
}

/// Error returned when a cache geometry is internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheGeometryError {
    config: CacheConfig,
    what: &'static str,
}

impl CacheGeometryError {
    /// The offending configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }
}

impl fmt::Display for CacheGeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache geometry ({}): {}", self.config, self.what)
    }
}

impl Error for CacheGeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries_are_valid() {
        // The full Table 1 cross-product of L1 sizes and line sizes.
        for size_kb in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            for line in [16u64, 32, 64, 128] {
                let c = CacheConfig::direct_mapped(size_kb * 1024, line).unwrap();
                assert_eq!(c.lines(), size_kb * 1024 / line);
                assert_eq!(c.sets(), c.lines());
            }
        }
        for size in [512 * 1024u64, 1024 * 1024, 2 * 1024 * 1024] {
            for line in [16u64, 32, 64, 128] {
                CacheConfig::direct_mapped(size, line).unwrap();
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two_size() {
        let err = CacheConfig::direct_mapped(3000, 32).unwrap_err();
        assert!(err.to_string().contains("cache size"));
    }

    #[test]
    fn rejects_zero_line() {
        assert!(CacheConfig::direct_mapped(1024, 0).is_err());
    }

    #[test]
    fn rejects_line_larger_than_cache() {
        assert!(CacheConfig::direct_mapped(64, 128).is_err());
    }

    #[test]
    fn rejects_too_many_ways() {
        let err = CacheConfig::set_associative(1024, 64, Associativity::Ways(32)).unwrap_err();
        assert!(err.to_string().contains("way count"));
        assert_eq!(err.config().size_bytes(), 1024);
    }

    #[test]
    fn rejects_non_power_of_two_ways() {
        assert!(CacheConfig::set_associative(1024, 32, Associativity::Ways(3)).is_err());
    }

    #[test]
    fn set_count_divides_by_ways() {
        let c = CacheConfig::set_associative(8192, 32, Associativity::Ways(4)).unwrap();
        assert_eq!(c.lines(), 256);
        assert_eq!(c.sets(), 64);
        assert_eq!(c.associativity().ways(), 4);
    }

    #[test]
    fn line_shift_matches_line_bytes() {
        let c = CacheConfig::direct_mapped(4096, 64).unwrap();
        assert_eq!(c.line_shift(), 6);
    }

    #[test]
    fn display_is_informative() {
        let c = CacheConfig::direct_mapped(4096, 64).unwrap();
        assert_eq!(c.to_string(), "4096 B direct-mapped cache, 64 B lines");
        let c = CacheConfig::set_associative(4096, 64, Associativity::Ways(2)).unwrap();
        assert!(c.to_string().contains("2-way"));
    }
}
