//! The full cache complement of a simulated machine: split L1s over
//! either split or unified L2s.
//!
//! Table 1 fixes split L2s ("set associative or unified caches, while
//! giving better performance, would add too many variables for us to
//! interpret behavior") — the unified variant exists here precisely to
//! run that set-aside comparison as an ablation.

use vm_types::{MAddr, MissClass};

use crate::hierarchy::HierarchyCounters;
use crate::single::{Cache, CacheCounters};

/// Eviction report from an observed access: whether the fill at each
/// level displaced a valid line. Produced by the `*_observed` access
/// variants for the observability layer; a level that was not probed (or
/// hit) reports `false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillInfo {
    /// The L1 fill displaced a valid line.
    pub l1_evicted: bool,
    /// The L2 fill displaced a valid line.
    pub l2_evicted: bool,
}

impl FillInfo {
    /// Accumulates another access's evictions (used for spanning loads).
    fn merge(&mut self, other: FillInfo) {
        self.l1_evicted |= other.l1_evicted;
        self.l2_evicted |= other.l2_evicted;
    }
}

/// The second-level organization.
#[derive(Debug, Clone)]
enum L2 {
    /// Separate instruction and data L2s (the paper's configuration).
    Split {
        /// L2 instruction cache.
        i: Cache,
        /// L2 data cache.
        d: Cache,
    },
    /// One L2 shared by instruction and data traffic.
    Unified(Cache),
}

/// Counters for a [`CacheSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSystemCounters {
    /// L1 instruction cache counters.
    pub l1i: CacheCounters,
    /// L1 data cache counters.
    pub l1d: CacheCounters,
    /// L2 instruction-side counters (for a unified L2 this is the shared
    /// cache, identical to `l2d`).
    pub l2i: CacheCounters,
    /// L2 data-side counters (see `l2i`).
    pub l2d: CacheCounters,
    /// Whether the L2 is unified.
    pub unified: bool,
}

impl CacheSystemCounters {
    /// The instruction side viewed as a two-level hierarchy.
    pub fn instruction_side(&self) -> HierarchyCounters {
        HierarchyCounters { l1: self.l1i, l2: self.l2i }
    }

    /// The data side viewed as a two-level hierarchy.
    pub fn data_side(&self) -> HierarchyCounters {
        HierarchyCounters { l1: self.l1d, l2: self.l2d }
    }
}

/// Split L1 I/D caches over a split or unified L2 — everything one
/// simulated machine's memory side needs.
///
/// ```
/// use vm_cache::{Cache, CacheConfig, CacheSystem};
/// use vm_types::{MAddr, MissClass};
///
/// # fn main() -> Result<(), vm_cache::CacheGeometryError> {
/// let l1 = CacheConfig::direct_mapped(16 << 10, 64)?;
/// let l2 = CacheConfig::direct_mapped(2 << 20, 128)?;
/// let mut caches = CacheSystem::unified(Cache::new(l1), Cache::new(l1), Cache::new(l2));
///
/// let a = MAddr::user(0x4000);
/// assert_eq!(caches.data(a), MissClass::Memory);
/// // In a unified L2, a fetch of the same line hits at the L2 level.
/// assert_eq!(caches.fetch(a), MissClass::L2Hit);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CacheSystem {
    l1i: Cache,
    l1d: Cache,
    l2: L2,
}

impl CacheSystem {
    /// The paper's organization: split caches at both levels.
    pub fn split(l1i: Cache, l1d: Cache, l2i: Cache, l2d: Cache) -> CacheSystem {
        CacheSystem { l1i, l1d, l2: L2::Split { i: l2i, d: l2d } }
    }

    /// Split L1s over one shared L2 (the ablation variant).
    pub fn unified(l1i: Cache, l1d: Cache, l2: Cache) -> CacheSystem {
        CacheSystem { l1i, l1d, l2: L2::Unified(l2) }
    }

    /// Whether the L2 is unified.
    pub fn is_unified(&self) -> bool {
        matches!(self.l2, L2::Unified(_))
    }

    fn l2_for_fetch(&mut self) -> &mut Cache {
        match &mut self.l2 {
            L2::Split { i, .. } => i,
            L2::Unified(u) => u,
        }
    }

    fn l2_for_data(&mut self) -> &mut Cache {
        match &mut self.l2 {
            L2::Split { d, .. } => d,
            L2::Unified(u) => u,
        }
    }

    /// An instruction fetch: L1I, then the (split or unified) L2.
    pub fn fetch(&mut self, addr: MAddr) -> MissClass {
        if self.l1i.access(addr) {
            MissClass::L1Hit
        } else if self.l2_for_fetch().access(addr) {
            MissClass::L2Hit
        } else {
            MissClass::Memory
        }
    }

    /// As [`CacheSystem::fetch`], additionally reporting which levels'
    /// fills displaced valid lines. Identical side effects to `fetch`.
    pub fn fetch_observed(&mut self, addr: MAddr) -> (MissClass, FillInfo) {
        let mut fill = FillInfo::default();
        let (l1_hit, l1_evicted) = self.l1i.access_observed(addr);
        fill.l1_evicted = l1_evicted;
        if l1_hit {
            return (MissClass::L1Hit, fill);
        }
        let (l2_hit, l2_evicted) = self.l2_for_fetch().access_observed(addr);
        fill.l2_evicted = l2_evicted;
        if l2_hit {
            (MissClass::L2Hit, fill)
        } else {
            (MissClass::Memory, fill)
        }
    }

    /// A data reference: L1D, then the (split or unified) L2.
    pub fn data(&mut self, addr: MAddr) -> MissClass {
        if self.l1d.access(addr) {
            MissClass::L1Hit
        } else if self.l2_for_data().access(addr) {
            MissClass::L2Hit
        } else {
            MissClass::Memory
        }
    }

    /// As [`CacheSystem::data`], additionally reporting which levels'
    /// fills displaced valid lines. Identical side effects to `data`.
    pub fn data_observed(&mut self, addr: MAddr) -> (MissClass, FillInfo) {
        let mut fill = FillInfo::default();
        let (l1_hit, l1_evicted) = self.l1d.access_observed(addr);
        fill.l1_evicted = l1_evicted;
        if l1_hit {
            return (MissClass::L1Hit, fill);
        }
        let (l2_hit, l2_evicted) = self.l2_for_data().access_observed(addr);
        fill.l2_evicted = l2_evicted;
        if l2_hit {
            (MissClass::L2Hit, fill)
        } else {
            (MissClass::Memory, fill)
        }
    }

    /// A `bytes`-wide data reference that may straddle lines; the worst
    /// covered line's class is returned (blocking caches serialize the
    /// fills).
    pub fn data_span(&mut self, addr: MAddr, bytes: u64) -> MissClass {
        let bytes = bytes.max(1);
        let shift = self.l1d.config().line_shift().min(match &self.l2 {
            L2::Split { d, .. } => d.config().line_shift(),
            L2::Unified(u) => u.config().line_shift(),
        });
        let step = 1u64 << shift;
        let first = addr.raw() >> shift;
        let last = (addr.raw() + bytes - 1) >> shift;
        let line_base = addr.offset() & !(step - 1);
        let mut worst = MissClass::L1Hit;
        for i in 0..=(last - first) {
            let probe = if i == 0 { addr } else { addr.with_offset(line_base + i * step) };
            worst = worst.max(self.data(probe));
        }
        worst
    }

    /// As [`CacheSystem::data_span`], additionally reporting whether any
    /// covered line's fill displaced a valid line at each level.
    /// Identical side effects to `data_span`.
    pub fn data_span_observed(&mut self, addr: MAddr, bytes: u64) -> (MissClass, FillInfo) {
        let bytes = bytes.max(1);
        let shift = self.l1d.config().line_shift().min(match &self.l2 {
            L2::Split { d, .. } => d.config().line_shift(),
            L2::Unified(u) => u.config().line_shift(),
        });
        let step = 1u64 << shift;
        let first = addr.raw() >> shift;
        let last = (addr.raw() + bytes - 1) >> shift;
        let line_base = addr.offset() & !(step - 1);
        let mut worst = MissClass::L1Hit;
        let mut fill = FillInfo::default();
        for i in 0..=(last - first) {
            let probe = if i == 0 { addr } else { addr.with_offset(line_base + i * step) };
            let (class, f) = self.data_observed(probe);
            worst = worst.max(class);
            fill.merge(f);
        }
        (worst, fill)
    }

    /// All counters.
    pub fn counters(&self) -> CacheSystemCounters {
        let (l2i, l2d, unified) = match &self.l2 {
            L2::Split { i, d } => (i.counters(), d.counters(), false),
            L2::Unified(u) => (u.counters(), u.counters(), true),
        };
        CacheSystemCounters {
            l1i: self.l1i.counters(),
            l1d: self.l1d.counters(),
            l2i,
            l2d,
            unified,
        }
    }

    /// Resets counters, keeping contents.
    pub fn reset_counters(&mut self) {
        self.l1i.reset_counters();
        self.l1d.reset_counters();
        match &mut self.l2 {
            L2::Split { i, d } => {
                i.reset_counters();
                d.reset_counters();
            }
            L2::Unified(u) => u.reset_counters(),
        }
    }

    /// Invalidates every level.
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        match &mut self.l2 {
            L2::Split { i, d } => {
                i.flush();
                d.flush();
            }
            L2::Unified(u) => u.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn cache(size: u64, line: u64) -> Cache {
        Cache::new(CacheConfig::direct_mapped(size, line).unwrap())
    }

    fn split_sys() -> CacheSystem {
        CacheSystem::split(
            cache(1 << 10, 32),
            cache(1 << 10, 32),
            cache(1 << 14, 64),
            cache(1 << 14, 64),
        )
    }

    fn unified_sys() -> CacheSystem {
        CacheSystem::unified(cache(1 << 10, 32), cache(1 << 10, 32), cache(1 << 15, 64))
    }

    #[test]
    fn split_sides_do_not_share_the_l2() {
        let mut s = split_sys();
        assert!(!s.is_unified());
        let a = MAddr::user(0x4000);
        assert_eq!(s.data(a), MissClass::Memory);
        // Fetch of the same address must also go to memory: separate L2s.
        assert_eq!(s.fetch(a), MissClass::Memory);
    }

    #[test]
    fn unified_l2_shares_lines_between_sides() {
        let mut s = unified_sys();
        assert!(s.is_unified());
        let a = MAddr::user(0x4000);
        assert_eq!(s.data(a), MissClass::Memory);
        assert_eq!(s.fetch(a), MissClass::L2Hit);
        // ...and counters on both L2 views are the same object.
        let k = s.counters();
        assert!(k.unified);
        assert_eq!(k.l2i, k.l2d);
        assert_eq!(k.l2i.accesses, 2);
    }

    #[test]
    fn unified_l2_sides_contend() {
        // Fill the unified L2 with data lines, then show a conflicting
        // fetch evicts one (same index, different tag).
        let mut s =
            CacheSystem::unified(cache(1 << 10, 32), cache(1 << 10, 32), cache(1 << 12, 32));
        let d = MAddr::user(0x0);
        let i = MAddr::user(1 << 12); // same L2 index as d
        s.data(d);
        s.fetch(i); // evicts d's line in the unified L2
                    // Evict d from its tiny L1 too, then re-access: memory, not L2.
        for n in 1..64u64 {
            s.data(MAddr::user(n << 10));
        }
        assert_eq!(s.data(d), MissClass::Memory);
    }

    #[test]
    fn counters_partition_by_side_at_l1() {
        let mut s = split_sys();
        s.fetch(MAddr::user(0));
        s.fetch(MAddr::user(0));
        s.data(MAddr::user(0x100));
        let k = s.counters();
        assert_eq!(k.l1i.accesses, 2);
        assert_eq!(k.l1i.hits, 1);
        assert_eq!(k.l1d.accesses, 1);
        assert_eq!(k.instruction_side().l1.accesses, 2);
        assert_eq!(k.data_side().l1.accesses, 1);
    }

    #[test]
    fn span_touches_all_lines() {
        let mut s = split_sys();
        assert_eq!(s.data_span(MAddr::user(0x48), 16), MissClass::Memory);
        assert_eq!(s.data(MAddr::user(0x40)), MissClass::L1Hit);
        assert_eq!(s.data(MAddr::user(0x50)), MissClass::L1Hit);
    }

    #[test]
    fn observed_variants_match_plain_access() {
        let mut plain = split_sys();
        let mut observed = split_sys();
        for n in 0..256u64 {
            let a = MAddr::user((n * 97) % 0x3000);
            assert_eq!(plain.fetch(a), observed.fetch_observed(a).0);
            assert_eq!(plain.data(a), observed.data_observed(a).0);
        }
        assert_eq!(plain.counters(), observed.counters());
    }

    #[test]
    fn observed_span_reports_evictions() {
        // 1 KB direct-mapped L1s (32 lines of 32 B): stride by 1 KB to
        // force conflicts, then check the span variant flags the victim.
        let mut s = split_sys();
        let (_, cold) = s.data_span_observed(MAddr::user(0x48), 16);
        assert!(!cold.l1_evicted && !cold.l2_evicted, "cold fills evict nothing");
        let (_, conflict) = s.data_span_observed(MAddr::user(0x48 + 1024), 16);
        assert!(conflict.l1_evicted, "same-index refill must displace the line");
    }

    #[test]
    fn flush_and_reset() {
        let mut s = unified_sys();
        let a = MAddr::user(0x40);
        s.data(a);
        s.reset_counters();
        assert_eq!(s.counters().l1d.accesses, 0);
        assert_eq!(s.data(a), MissClass::L1Hit); // contents kept
        s.flush();
        assert_eq!(s.data(a), MissClass::Memory);
    }
}
