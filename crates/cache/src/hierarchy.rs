//! The two-level L1 → L2 → memory lookup path of one cache "side".

use vm_types::{MAddr, MissClass};

use crate::single::{Cache, CacheCounters};

/// Counters for a full hierarchy, by level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyCounters {
    /// The L1 level's counters.
    pub l1: CacheCounters,
    /// The L2 level's counters (only probed on L1 misses).
    pub l2: CacheCounters,
}

impl HierarchyCounters {
    /// References that went to main memory.
    #[inline]
    pub fn memory_accesses(&self) -> u64 {
        self.l2.misses()
    }
}

/// One side (instruction or data) of the paper's split memory hierarchy:
/// a small L1 backed by a large L2, both virtually addressed, blocking,
/// write-allocate and write-through.
///
/// An access probes the L1; on a miss it fills the L1 and probes the L2;
/// on an L2 miss it fills the L2 from memory. The returned
/// [`MissClass`] is exactly the event class the paper's cost tables
/// (Tables 2 and 3) charge for.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
}

impl CacheHierarchy {
    /// Composes two levels into a hierarchy.
    pub fn new(l1: Cache, l2: Cache) -> CacheHierarchy {
        CacheHierarchy { l1, l2 }
    }

    /// The L1 level.
    #[inline]
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 level.
    #[inline]
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Accesses one address through the hierarchy, filling lines on the
    /// way (inclusive hierarchy), and classifies where it was satisfied.
    pub fn access(&mut self, addr: MAddr) -> MissClass {
        if self.l1.access(addr) {
            MissClass::L1Hit
        } else if self.l2.access(addr) {
            MissClass::L2Hit
        } else {
            MissClass::Memory
        }
    }

    /// Accesses a `bytes`-wide datum that may straddle lines; returns the
    /// *worst* miss class over the covered lines, since a blocking cache
    /// serializes the fills and the slowest one dominates the event class.
    pub fn access_span(&mut self, addr: MAddr, bytes: u64) -> MissClass {
        let bytes = bytes.max(1);
        let shift = self.l1.config().line_shift().min(self.l2.config().line_shift());
        let step = 1u64 << shift;
        let first = addr.raw() >> shift;
        let last = (addr.raw() + bytes - 1) >> shift;
        let mut worst = MissClass::L1Hit;
        let line_base = addr.offset() & !(step - 1);
        for (i, _line) in (first..=last).enumerate() {
            let probe = if i == 0 { addr } else { addr.with_offset(line_base + i as u64 * step) };
            worst = worst.max(self.access(probe));
        }
        worst
    }

    /// Probes without filling or counting; `Some(class)` of the level that
    /// would satisfy the access.
    pub fn peek(&self, addr: MAddr) -> MissClass {
        if self.l1.peek(addr) {
            MissClass::L1Hit
        } else if self.l2.peek(addr) {
            MissClass::L2Hit
        } else {
            MissClass::Memory
        }
    }

    /// Both levels' counters.
    pub fn counters(&self) -> HierarchyCounters {
        HierarchyCounters { l1: self.l1.counters(), l2: self.l2.counters() }
    }

    /// Resets both levels' counters, keeping contents (for warm-up).
    pub fn reset_counters(&mut self) {
        self.l1.reset_counters();
        self.l2.reset_counters();
    }

    /// Invalidates both levels.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn side(l1: u64, l1_line: u64, l2: u64, l2_line: u64) -> CacheHierarchy {
        CacheHierarchy::new(
            Cache::new(CacheConfig::direct_mapped(l1, l1_line).unwrap()),
            Cache::new(CacheConfig::direct_mapped(l2, l2_line).unwrap()),
        )
    }

    #[test]
    fn cold_goes_to_memory_then_l1() {
        let mut h = side(1024, 32, 16 * 1024, 64);
        let a = MAddr::user(0x1000);
        assert_eq!(h.access(a), MissClass::Memory);
        assert_eq!(h.access(a), MissClass::L1Hit);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = side(1024, 32, 64 * 1024, 32);
        let a = MAddr::user(0);
        let b = MAddr::user(1024); // conflicts with a in L1, not in L2
        assert_eq!(h.access(a), MissClass::Memory);
        assert_eq!(h.access(b), MissClass::Memory);
        assert_eq!(h.access(a), MissClass::L2Hit); // L1 conflict, L2 holds it
    }

    #[test]
    fn counters_track_levels() {
        let mut h = side(1024, 32, 64 * 1024, 32);
        h.access(MAddr::user(0)); // mem
        h.access(MAddr::user(0)); // L1 hit
        h.access(MAddr::user(1024)); // mem
        h.access(MAddr::user(0)); // L2 hit
        let c = h.counters();
        assert_eq!(c.l1.accesses, 4);
        assert_eq!(c.l1.hits, 1);
        assert_eq!(c.l2.accesses, 3); // only L1 misses reach L2
        assert_eq!(c.l2.hits, 1);
        assert_eq!(c.memory_accesses(), 2);
    }

    #[test]
    fn peek_matches_future_access_class() {
        let mut h = side(1024, 32, 64 * 1024, 64);
        let a = MAddr::user(0x2000);
        assert_eq!(h.peek(a), MissClass::Memory);
        h.access(a);
        assert_eq!(h.peek(a), MissClass::L1Hit);
    }

    #[test]
    fn span_reports_worst_class() {
        let mut h = side(1024, 16, 64 * 1024, 16);
        // Warm first line only.
        h.access(MAddr::user(0x40));
        // 16-byte span starting mid-line: first line is L1 hit, second cold.
        assert_eq!(h.access_span(MAddr::user(0x48), 16), MissClass::Memory);
        // Now both lines are resident.
        assert_eq!(h.access_span(MAddr::user(0x48), 16), MissClass::L1Hit);
    }

    #[test]
    fn flush_restores_cold_behaviour() {
        let mut h = side(1024, 32, 64 * 1024, 64);
        let a = MAddr::user(0x80);
        h.access(a);
        h.flush();
        assert_eq!(h.access(a), MissClass::Memory);
    }
}
