//! `tracegen` — generate, inspect, and convert workload traces.
//!
//! ```text
//! tracegen gen   <workload> <instructions> <out.trace> [--seed N]
//! tracegen stats <workload|file.trace> [instructions] [--seed N]
//! tracegen head  <file.trace> [count]
//! tracegen import <in.din> <out.trace> [--max-parse-errors N]
//! tracegen list
//! ```
//!
//! `gen` writes the compact binary format `vm_trace::write_trace`
//! produces; `stats` measures either a workload model or a recorded
//! file; `head` dumps the first records of a file as text.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use vm_trace::{
    presets, read_dinero, read_dinero_recovering, read_trace, write_trace, InstrRecord, TraceStats,
};

/// Restores the default SIGPIPE disposition so piping into `head`/`less`
/// terminates the process quietly instead of panicking on a broken-pipe
/// write error (Rust ignores SIGPIPE by default).
fn reset_sigpipe() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGPIPE: i32 = 13;
        const SIG_DFL: usize = 0;
        // SAFETY: signal(2) with SIG_DFL is async-signal-safe process setup
        // performed once before any other work.
        unsafe {
            signal(SIGPIPE, SIG_DFL);
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("tracegen: {msg}");
    eprintln!(
        "usage:\n  tracegen gen   <workload> <instructions> <out.trace> [--seed N]\n  \
         tracegen stats <workload|file.trace> [instructions] [--seed N]\n  \
         tracegen head  <file.trace> [count]\n  \
         tracegen import <in.din> <out.trace> [--max-parse-errors N]\n  tracegen list"
    );
    ExitCode::FAILURE
}

fn parse_seed(args: &mut Vec<String>) -> Result<u64, String> {
    Ok(parse_flag(args, "--seed", |e| format!("bad seed: {e}"))?.unwrap_or(42))
}

/// Extracts `--max-parse-errors N` from the argument list.
///
/// `None` means the flag was absent — the import stays strict.
fn parse_max_errors(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    parse_flag(args, "--max-parse-errors", |e| format!("bad --max-parse-errors: {e}"))
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
    err: impl Fn(T::Err) -> String,
) -> Result<Option<T>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args[pos + 1].parse().map_err(err)?;
        args.drain(pos..=pos + 1);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

fn print_stats(name: &str, stats: &TraceStats) {
    println!("{name}:");
    println!("  instructions      {:>12}", stats.instructions);
    println!("  loads             {:>12}", stats.loads);
    println!("  stores            {:>12}", stats.stores);
    println!(
        "  data refs/instr   {:>12.3}",
        stats.data_refs() as f64 / stats.instructions.max(1) as f64
    );
    println!("  code pages        {:>12}", stats.code_pages);
    println!("  data pages        {:>12}", stats.data_pages);
    println!("  code footprint    {:>10} KB", stats.code_footprint_bytes() >> 10);
    println!("  data footprint    {:>10} KB", stats.data_footprint_bytes() >> 10);
    println!("  data block reuse  {:>12.2}", stats.data_block_reuse());
}

fn main() -> ExitCode {
    reset_sigpipe();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let seed = match parse_seed(&mut args) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let max_parse_errors = match parse_max_errors(&mut args) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let mut it = args.into_iter();
    match it.next().as_deref() {
        Some("list") => {
            println!("available workload models:");
            for spec in presets::all_benchmarks() {
                println!(
                    "  {:9} code ~{:>5} KB  data ~{:>6} KB",
                    spec.name,
                    spec.code.approx_code_bytes() >> 10,
                    spec.approx_data_bytes() >> 10
                );
            }
            ExitCode::SUCCESS
        }
        Some("gen") => {
            let (Some(workload), Some(n), Some(out)) = (it.next(), it.next(), it.next()) else {
                return fail("gen needs <workload> <instructions> <out.trace>");
            };
            let Some(spec) = presets::by_name(&workload) else {
                return fail(&format!("unknown workload `{workload}` (try `tracegen list`)"));
            };
            let n: usize = match n.parse() {
                Ok(n) => n,
                Err(e) => return fail(&format!("bad instruction count: {e}")),
            };
            let trace = spec.build(seed).expect("presets are valid");
            let file = match File::create(&out) {
                Ok(f) => f,
                Err(e) => return fail(&format!("cannot create {out}: {e}")),
            };
            match write_trace(BufWriter::new(file), trace.take(n)) {
                Ok(written) => {
                    eprintln!("wrote {written} records to {out}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&format!("write failed: {e}")),
            }
        }
        Some("stats") => {
            let Some(target) = it.next() else {
                return fail("stats needs <workload|file.trace>");
            };
            if let Some(spec) = presets::by_name(&target) {
                let n: usize = it.next().and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
                let stats =
                    TraceStats::analyze(spec.build(seed).expect("presets are valid").take(n));
                print_stats(&format!("{target} (model, {n} instrs, seed {seed})"), &stats);
                ExitCode::SUCCESS
            } else {
                let file = match File::open(&target) {
                    Ok(f) => f,
                    Err(e) => return fail(&format!("cannot open {target}: {e}")),
                };
                let replay = match read_trace(BufReader::new(file)) {
                    Ok(r) => r,
                    Err(e) => return fail(&format!("cannot read {target}: {e}")),
                };
                let records: Result<Vec<InstrRecord>, _> = replay.collect();
                match records {
                    Ok(recs) => {
                        let stats = TraceStats::analyze(recs);
                        print_stats(&target, &stats);
                        ExitCode::SUCCESS
                    }
                    Err(e) => fail(&format!("corrupt trace: {e}")),
                }
            }
        }
        Some("import") => {
            let (Some(input), Some(output)) = (it.next(), it.next()) else {
                return fail("import needs <in.din> <out.trace>");
            };
            let din = match File::open(&input) {
                Ok(f) => f,
                Err(e) => return fail(&format!("cannot open {input}: {e}")),
            };
            let records = match max_parse_errors {
                // Tolerant mode: skip (and report) up to N malformed lines.
                Some(budget) => match read_dinero_recovering(BufReader::new(din), budget) {
                    Ok(out) => {
                        for diag in &out.skipped {
                            eprintln!("tracegen: skipped {diag}");
                        }
                        eprintln!("tracegen: {} in {input}", out.summary());
                        out.records
                    }
                    Err(e) => return fail(&format!("cannot parse {input}: {e}")),
                },
                None => match read_dinero(BufReader::new(din)) {
                    Ok(r) => r,
                    Err(e) => return fail(&format!("cannot parse {input}: {e}")),
                },
            };
            let out = match File::create(&output) {
                Ok(f) => f,
                Err(e) => return fail(&format!("cannot create {output}: {e}")),
            };
            match write_trace(BufWriter::new(out), records) {
                Ok(n) => {
                    eprintln!("imported {n} records from {input} to {output}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&format!("write failed: {e}")),
            }
        }
        Some("head") => {
            let Some(path) = it.next() else {
                return fail("head needs <file.trace>");
            };
            let count: usize = it.next().and_then(|s| s.parse().ok()).unwrap_or(20);
            let file = match File::open(&path) {
                Ok(f) => f,
                Err(e) => return fail(&format!("cannot open {path}: {e}")),
            };
            let replay = match read_trace(BufReader::new(file)) {
                Ok(r) => r,
                Err(e) => return fail(&format!("cannot read {path}: {e}")),
            };
            for rec in replay.take(count) {
                match rec {
                    Ok(r) => match r.data {
                        Some(d) => println!("{}  {} {}", r.pc, d.kind, d.addr),
                        None => println!("{}", r.pc),
                    },
                    Err(e) => return fail(&format!("corrupt record: {e}")),
                }
            }
            ExitCode::SUCCESS
        }
        _ => fail("missing or unknown subcommand"),
    }
}
