//! Importing Dinero-format address traces.
//!
//! The `din` format (Dinero III/IV, the cache-simulator lineage the
//! paper's methodology descends from) is the lingua franca of 1990s
//! trace collections: one reference per line,
//!
//! ```text
//! <label> <hex-address>
//! ```
//!
//! with label `0` = data read, `1` = data write, `2` = instruction
//! fetch. Anything after the address (some tools append a size column)
//! is ignored, as are blank and `#`/`;` comment lines.
//!
//! The simulator consumes [`InstrRecord`]s — an instruction fetch plus at
//! most one data reference — so the importer folds each fetch with the
//! data references that follow it. A fetch followed by several data
//! references (a CISC-ish pattern) is expanded into several records
//! repeating the same PC, keeping every reference at the cost of
//! slightly inflating the instruction count; data references before the
//! first fetch are carried by a synthetic PC at the trace's first fetch
//! address (or 0 when there is none).
//!
//! [`read_dinero`] is strict: the first malformed line aborts the
//! import. Real trace archives accumulate damage (truncated lines,
//! tool banners mid-file), so [`read_dinero_recovering`] instead skips
//! up to a caller-chosen number of malformed lines, reporting each with
//! its line number, and only fails once that budget is exhausted.

use std::fmt;
use std::io::{self, BufRead};

use vm_types::{MAddr, USER_SPACE_BYTES};

use crate::record::{DataRef, InstrRecord, TraceIoError};

/// One parsed Dinero line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DinRef {
    Read(u64),
    Write(u64),
    Fetch(u64),
}

/// Parses one Dinero line; `None` for blanks and comments, `Err` with
/// the reason (no line context) for malformed lines.
fn parse_line(line: &str) -> Result<Option<DinRef>, &'static str> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let label = fields.next().ok_or("missing label")?;
    let addr = fields.next().ok_or("missing address")?;
    let addr =
        u64::from_str_radix(addr.trim_start_matches("0x"), 16).map_err(|_| "bad hex address")?;
    // Clamp into the simulated 2 GB user space (traces from 32-bit
    // machines with kernel halves fold into the modelled user region).
    let addr = addr % USER_SPACE_BYTES;
    match label {
        "0" => Ok(Some(DinRef::Read(addr))),
        "1" => Ok(Some(DinRef::Write(addr))),
        "2" => Ok(Some(DinRef::Fetch(addr))),
        _ => Err("unknown label (want 0, 1 or 2)"),
    }
}

/// A malformed line skipped by [`read_dinero_recovering`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DinDiagnostic {
    /// 1-based line number within the input.
    pub line: usize,
    /// What was wrong with it.
    pub why: String,
    /// The offending text, trimmed.
    pub text: String,
}

impl fmt::Display for DinDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "din line {}: {}: `{}`", self.line, self.why, self.text)
    }
}

/// The result of a tolerant import: the records that parsed, plus one
/// diagnostic per malformed line that was skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredDinero {
    /// Successfully folded instruction records.
    pub records: Vec<InstrRecord>,
    /// Skipped lines, in input order (empty for a clean trace).
    pub skipped: Vec<DinDiagnostic>,
    /// Total input lines read (including blanks, comments, and the
    /// skipped ones) — the `N` of "skipped K of N lines".
    pub lines: usize,
}

impl RecoveredDinero {
    /// A one-line import summary: `skipped K of N line(s)`.
    pub fn summary(&self) -> String {
        format!("skipped {} of {} line(s)", self.skipped.len(), self.lines)
    }
}

/// Folds a stream of Dinero references into [`InstrRecord`]s.
struct Folder {
    records: Vec<InstrRecord>,
    orphans: Vec<DinRef>,
    current_pc: Option<MAddr>,
}

impl Folder {
    fn new() -> Folder {
        Folder { records: Vec::new(), orphans: Vec::new(), current_pc: None }
    }

    fn push_data(&mut self, pc: MAddr, addr: u64, write: bool) {
        let data = if write {
            DataRef::store(MAddr::user(addr))
        } else {
            DataRef::load(MAddr::user(addr))
        };
        match self.records.last_mut() {
            // Fold into the current instruction if it has no operand yet.
            Some(last) if last.pc == pc && last.data.is_none() => last.data = Some(data),
            // Otherwise repeat the PC (multi-operand instruction).
            _ => self.records.push(InstrRecord { pc, data: Some(data) }),
        }
    }

    fn push(&mut self, r: DinRef) {
        match r {
            DinRef::Fetch(a) => {
                let pc = MAddr::user(a & !3);
                if self.current_pc.is_none() {
                    // Attach any leading data references to the first PC.
                    let orphans = std::mem::take(&mut self.orphans);
                    for o in orphans {
                        match o {
                            DinRef::Read(a) => self.push_data(pc, a, false),
                            DinRef::Write(a) => self.push_data(pc, a, true),
                            DinRef::Fetch(_) => unreachable!("fetches are handled eagerly"),
                        }
                    }
                }
                self.current_pc = Some(pc);
                self.records.push(InstrRecord::plain(pc));
            }
            DinRef::Read(a) | DinRef::Write(a) => {
                let write = matches!(r, DinRef::Write(_));
                match self.current_pc {
                    Some(pc) => self.push_data(pc, a, write),
                    None => self.orphans.push(r),
                }
            }
        }
    }

    fn finish(mut self) -> Vec<InstrRecord> {
        // A trace with no fetches at all: carry the data refs on PC 0.
        let pc0 = MAddr::user(0);
        let orphans = std::mem::take(&mut self.orphans);
        for o in orphans {
            match o {
                DinRef::Read(a) => self.push_data(pc0, a, false),
                DinRef::Write(a) => self.push_data(pc0, a, true),
                DinRef::Fetch(_) => unreachable!(),
            }
        }
        self.records
    }
}

/// Shared reader loop. `max_errors = None` is strict (first malformed
/// line aborts with its own message); `Some(n)` skips up to `n`
/// malformed lines before giving up.
fn read_dinero_inner<R: BufRead>(
    mut reader: R,
    max_errors: Option<usize>,
) -> Result<RecoveredDinero, TraceIoError> {
    let mut folder = Folder::new();
    let mut skipped: Vec<DinDiagnostic> = Vec::new();
    let mut line = String::new();
    let mut number = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line).map_err(TraceIoError::Io)? == 0 {
            break;
        }
        number += 1;
        match parse_line(&line) {
            Ok(Some(r)) => folder.push(r),
            Ok(None) => {}
            Err(why) => {
                let diag = DinDiagnostic {
                    line: number,
                    why: why.to_string(),
                    text: line.trim().to_string(),
                };
                match max_errors {
                    Some(budget) if skipped.len() < budget => skipped.push(diag),
                    Some(budget) => {
                        return Err(TraceIoError::Io(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "{diag} (already skipped {budget} malformed line(s); \
                                 raise --max-parse-errors to keep going)"
                            ),
                        )));
                    }
                    None => {
                        return Err(TraceIoError::Io(io::Error::new(
                            io::ErrorKind::InvalidData,
                            diag.to_string(),
                        )));
                    }
                }
            }
        }
    }
    Ok(RecoveredDinero { records: folder.finish(), skipped, lines: number })
}

/// Reads a Dinero-format trace into [`InstrRecord`]s.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] for unreadable input or malformed lines
/// (bad label, non-hex address). For damaged archives where skipping a
/// bounded number of bad lines is acceptable, use
/// [`read_dinero_recovering`].
///
/// ```
/// use vm_trace::read_dinero;
///
/// let din = "2 400\n0 1000\n2 404\n1 1004\n";
/// let recs = read_dinero(din.as_bytes()).unwrap();
/// assert_eq!(recs.len(), 2);
/// assert!(recs[0].data.unwrap().kind == vm_types::AccessKind::Load);
/// ```
pub fn read_dinero<R: BufRead>(reader: R) -> Result<Vec<InstrRecord>, TraceIoError> {
    read_dinero_inner(reader, None).map(|r| r.records)
}

/// Reads a Dinero-format trace, skipping up to `max_errors` malformed
/// lines instead of aborting on the first one.
///
/// Each skipped line is reported in [`RecoveredDinero::skipped`] with
/// its 1-based line number, the reason, and the offending text, so
/// callers can print diagnostics or refuse the import after the fact.
/// `max_errors = 0` behaves like [`read_dinero`] except that the error
/// message notes the exhausted budget.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] for unreadable input, or when a
/// malformed line is found after `max_errors` have already been
/// skipped.
///
/// ```
/// use vm_trace::read_dinero_recovering;
///
/// let din = "2 400\nGARBAGE\n0 1000\n";
/// let out = read_dinero_recovering(din.as_bytes(), 3).unwrap();
/// assert_eq!(out.records.len(), 1);
/// assert_eq!(out.skipped.len(), 1);
/// assert_eq!(out.skipped[0].line, 2);
/// assert_eq!(out.summary(), "skipped 1 of 3 line(s)");
/// ```
pub fn read_dinero_recovering<R: BufRead>(
    reader: R,
    max_errors: usize,
) -> Result<RecoveredDinero, TraceIoError> {
    read_dinero_inner(reader, Some(max_errors))
}

#[cfg(test)]
mod tests {
    use super::*;

    use vm_types::AccessKind;

    #[test]
    fn folds_fetch_and_following_data() {
        let din = "2 400\n0 1000\n2 404\n1 1004\n2 408\n";
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].pc, MAddr::user(0x400));
        assert_eq!(recs[0].data.unwrap().kind, AccessKind::Load);
        assert_eq!(recs[0].data.unwrap().addr, MAddr::user(0x1000));
        assert_eq!(recs[1].data.unwrap().kind, AccessKind::Store);
        assert!(recs[2].data.is_none());
    }

    #[test]
    fn multi_operand_instructions_repeat_the_pc() {
        let din = "2 400\n0 1000\n0 2000\n0 3000\n";
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|r| r.pc == MAddr::user(0x400)));
        let addrs: Vec<u64> = recs.iter().map(|r| r.data.unwrap().addr.offset()).collect();
        assert_eq!(addrs, [0x1000, 0x2000, 0x3000]);
    }

    #[test]
    fn leading_data_attaches_to_first_fetch() {
        let din = "0 1000\n2 400\n";
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].pc, MAddr::user(0x400));
        assert!(recs[0].data.is_some());
        assert!(recs[1].data.is_none());
    }

    #[test]
    fn data_only_traces_use_pc_zero() {
        let din = "0 1000\n1 2000\n";
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.pc == MAddr::user(0)));
    }

    #[test]
    fn comments_blanks_and_0x_prefixes_are_accepted() {
        let din = "# a comment\n\n; another\n2 0x400\n0 0xdeadbe0\n";
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].data.unwrap().addr.offset(), 0xdeadbe0);
    }

    #[test]
    fn addresses_fold_into_user_space() {
        let din = "2 ffffff00\n"; // above 2 GB: folds modulo user space
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert!(recs[0].pc.offset() < USER_SPACE_BYTES);
    }

    #[test]
    fn bad_label_is_an_error_with_line_number() {
        let err = read_dinero("7 400\n".as_bytes()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 1"), "{text}");
        assert!(text.contains("unknown label"), "{text}");
    }

    #[test]
    fn bad_address_is_an_error() {
        let err = read_dinero("2 zzz\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad hex address"));
    }

    #[test]
    fn pcs_are_word_aligned() {
        let recs = read_dinero("2 401\n".as_bytes()).unwrap();
        assert_eq!(recs[0].pc.offset(), 0x400);
    }

    #[test]
    fn recovering_skips_bad_lines_and_keeps_good_ones() {
        let din = "2 400\nGARBAGE\n0 1000\n9 500\n2 404\n";
        let out = read_dinero_recovering(din.as_bytes(), 5).unwrap();
        // Surviving stream is `2 400 / 0 1000 / 2 404` — identical to
        // parsing the clean subset strictly.
        let clean = read_dinero("2 400\n0 1000\n2 404\n".as_bytes()).unwrap();
        assert_eq!(out.records, clean);
        assert_eq!(out.skipped.len(), 2);
        assert_eq!(out.skipped[0].line, 2);
        assert_eq!(out.skipped[0].why, "missing address");
        assert_eq!(out.skipped[1].line, 4);
        assert!(out.skipped[1].why.contains("unknown label"));
        assert_eq!(out.skipped[1].text, "9 500");
        assert_eq!(out.lines, 5);
        assert_eq!(out.summary(), "skipped 2 of 5 line(s)");
    }

    #[test]
    fn summary_counts_every_input_line_even_blanks_and_comments() {
        let din = "# banner\n\n2 400\nGARBAGE\n";
        let out = read_dinero_recovering(din.as_bytes(), 1).unwrap();
        assert_eq!(out.lines, 4);
        assert_eq!(out.summary(), "skipped 1 of 4 line(s)");
        let clean = read_dinero_recovering("2 400\n".as_bytes(), 0).unwrap();
        assert_eq!(clean.summary(), "skipped 0 of 1 line(s)");
    }

    #[test]
    fn recovering_fails_once_the_budget_is_exhausted() {
        let din = "x\ny\nz\n2 400\n";
        let err = read_dinero_recovering(din.as_bytes(), 2).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 3"), "{text}");
        assert!(text.contains("already skipped 2"), "{text}");
        assert!(text.contains("--max-parse-errors"), "{text}");
    }

    #[test]
    fn recovering_with_zero_budget_matches_strict_on_clean_input() {
        let din = "2 400\n0 1000\n";
        let out = read_dinero_recovering(din.as_bytes(), 0).unwrap();
        assert_eq!(out.records, read_dinero(din.as_bytes()).unwrap());
        assert!(out.skipped.is_empty());
        assert!(read_dinero_recovering("BAD\n".as_bytes(), 0).is_err());
    }

    #[test]
    fn diagnostics_render_with_line_and_reason() {
        let d = DinDiagnostic { line: 7, why: "missing address".into(), text: "0".into() };
        assert_eq!(d.to_string(), "din line 7: missing address: `0`");
    }
}
