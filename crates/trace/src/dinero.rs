//! Importing Dinero-format address traces.
//!
//! The `din` format (Dinero III/IV, the cache-simulator lineage the
//! paper's methodology descends from) is the lingua franca of 1990s
//! trace collections: one reference per line,
//!
//! ```text
//! <label> <hex-address>
//! ```
//!
//! with label `0` = data read, `1` = data write, `2` = instruction
//! fetch. Anything after the address (some tools append a size column)
//! is ignored, as are blank and `#`/`;` comment lines.
//!
//! The simulator consumes [`InstrRecord`]s — an instruction fetch plus at
//! most one data reference — so the importer folds each fetch with the
//! data references that follow it. A fetch followed by several data
//! references (a CISC-ish pattern) is expanded into several records
//! repeating the same PC, keeping every reference at the cost of
//! slightly inflating the instruction count; data references before the
//! first fetch are carried by a synthetic PC at the trace's first fetch
//! address (or 0 when there is none).

use std::io::{self, BufRead};

use vm_types::{MAddr, USER_SPACE_BYTES};

use crate::record::{DataRef, InstrRecord, TraceIoError};

/// One parsed Dinero line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DinRef {
    Read(u64),
    Write(u64),
    Fetch(u64),
}

/// Parses one Dinero line; `None` for blanks and comments.
fn parse_line(line: &str, number: usize) -> Result<Option<DinRef>, TraceIoError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let bad = |what: &str| {
        TraceIoError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("din line {number}: {what}: `{line}`"),
        ))
    };
    let label = fields.next().ok_or_else(|| bad("missing label"))?;
    let addr = fields.next().ok_or_else(|| bad("missing address"))?;
    let addr = u64::from_str_radix(addr.trim_start_matches("0x"), 16)
        .map_err(|_| bad("bad hex address"))?;
    // Clamp into the simulated 2 GB user space (traces from 32-bit
    // machines with kernel halves fold into the modelled user region).
    let addr = addr % USER_SPACE_BYTES;
    match label {
        "0" => Ok(Some(DinRef::Read(addr))),
        "1" => Ok(Some(DinRef::Write(addr))),
        "2" => Ok(Some(DinRef::Fetch(addr))),
        _ => Err(bad("unknown label (want 0, 1 or 2)")),
    }
}

/// Reads a Dinero-format trace into [`InstrRecord`]s.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] for unreadable input or malformed lines
/// (bad label, non-hex address).
///
/// ```
/// use vm_trace::read_dinero;
///
/// let din = "2 400\n0 1000\n2 404\n1 1004\n";
/// let recs = read_dinero(din.as_bytes()).unwrap();
/// assert_eq!(recs.len(), 2);
/// assert!(recs[0].data.unwrap().kind == vm_types::AccessKind::Load);
/// ```
pub fn read_dinero<R: BufRead>(reader: R) -> Result<Vec<InstrRecord>, TraceIoError> {
    let mut records: Vec<InstrRecord> = Vec::new();
    let mut orphans: Vec<DinRef> = Vec::new();
    let mut current_pc: Option<MAddr> = None;

    let push_data = |records: &mut Vec<InstrRecord>, pc: MAddr, addr: u64, write: bool| {
        let data = if write {
            DataRef::store(MAddr::user(addr))
        } else {
            DataRef::load(MAddr::user(addr))
        };
        match records.last_mut() {
            // Fold into the current instruction if it has no operand yet.
            Some(last) if last.pc == pc && last.data.is_none() => last.data = Some(data),
            // Otherwise repeat the PC (multi-operand instruction).
            _ => records.push(InstrRecord { pc, data: Some(data) }),
        }
    };

    let mut reader = reader;
    let mut line = String::new();
    let mut number = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line).map_err(TraceIoError::Io)? == 0 {
            break;
        }
        number += 1;
        let Some(r) = parse_line(&line, number)? else { continue };
        match r {
            DinRef::Fetch(a) => {
                let pc = MAddr::user(a & !3);
                if current_pc.is_none() {
                    // Attach any leading data references to the first PC.
                    for o in orphans.drain(..) {
                        match o {
                            DinRef::Read(a) => push_data(&mut records, pc, a, false),
                            DinRef::Write(a) => push_data(&mut records, pc, a, true),
                            DinRef::Fetch(_) => unreachable!("fetches are handled eagerly"),
                        }
                    }
                }
                current_pc = Some(pc);
                records.push(InstrRecord::plain(pc));
            }
            DinRef::Read(a) | DinRef::Write(a) => {
                let write = matches!(r, DinRef::Write(_));
                match current_pc {
                    Some(pc) => push_data(&mut records, pc, a, write),
                    None => orphans.push(r),
                }
            }
        }
    }
    // A trace with no fetches at all: carry the data refs on PC 0.
    let pc0 = MAddr::user(0);
    for o in orphans {
        match o {
            DinRef::Read(a) => push_data(&mut records, pc0, a, false),
            DinRef::Write(a) => push_data(&mut records, pc0, a, true),
            DinRef::Fetch(_) => unreachable!(),
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    use vm_types::AccessKind;

    #[test]
    fn folds_fetch_and_following_data() {
        let din = "2 400\n0 1000\n2 404\n1 1004\n2 408\n";
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].pc, MAddr::user(0x400));
        assert_eq!(recs[0].data.unwrap().kind, AccessKind::Load);
        assert_eq!(recs[0].data.unwrap().addr, MAddr::user(0x1000));
        assert_eq!(recs[1].data.unwrap().kind, AccessKind::Store);
        assert!(recs[2].data.is_none());
    }

    #[test]
    fn multi_operand_instructions_repeat_the_pc() {
        let din = "2 400\n0 1000\n0 2000\n0 3000\n";
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|r| r.pc == MAddr::user(0x400)));
        let addrs: Vec<u64> = recs.iter().map(|r| r.data.unwrap().addr.offset()).collect();
        assert_eq!(addrs, [0x1000, 0x2000, 0x3000]);
    }

    #[test]
    fn leading_data_attaches_to_first_fetch() {
        let din = "0 1000\n2 400\n";
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].pc, MAddr::user(0x400));
        assert!(recs[0].data.is_some());
        assert!(recs[1].data.is_none());
    }

    #[test]
    fn data_only_traces_use_pc_zero() {
        let din = "0 1000\n1 2000\n";
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.pc == MAddr::user(0)));
    }

    #[test]
    fn comments_blanks_and_0x_prefixes_are_accepted() {
        let din = "# a comment\n\n; another\n2 0x400\n0 0xdeadbe0\n";
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].data.unwrap().addr.offset(), 0xdeadbe0);
    }

    #[test]
    fn addresses_fold_into_user_space() {
        let din = "2 ffffff00\n"; // above 2 GB: folds modulo user space
        let recs = read_dinero(din.as_bytes()).unwrap();
        assert!(recs[0].pc.offset() < USER_SPACE_BYTES);
    }

    #[test]
    fn bad_label_is_an_error_with_line_number() {
        let err = read_dinero("7 400\n".as_bytes()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 1"), "{text}");
        assert!(text.contains("unknown label"), "{text}");
    }

    #[test]
    fn bad_address_is_an_error() {
        let err = read_dinero("2 zzz\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad hex address"));
    }

    #[test]
    fn pcs_are_word_aligned() {
        let recs = read_dinero("2 401\n".as_bytes()).unwrap();
        assert_eq!(recs[0].pc.offset(), 0x400);
    }
}
