//! Trace measurement: footprints, mixes, and locality indicators.

use std::collections::HashSet;

use vm_types::{AccessKind, PAGE_SIZE};

use crate::record::InstrRecord;

/// Summary statistics of a trace, as used to sanity-check the synthetic
/// workload models against the benchmark characteristics the paper's
/// results depend on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Instructions observed.
    pub instructions: u64,
    /// Loads observed.
    pub loads: u64,
    /// Stores observed.
    pub stores: u64,
    /// Distinct instruction pages touched.
    pub code_pages: u64,
    /// Distinct data pages touched.
    pub data_pages: u64,
    /// Distinct 32-byte instruction blocks touched (footprint proxy).
    pub code_blocks: u64,
    /// Distinct 32-byte data blocks touched (footprint proxy).
    pub data_blocks: u64,
}

impl TraceStats {
    /// Consumes a trace and measures it.
    pub fn analyze<I: IntoIterator<Item = InstrRecord>>(trace: I) -> TraceStats {
        let mut stats = TraceStats::default();
        let mut code_pages = HashSet::new();
        let mut data_pages = HashSet::new();
        let mut code_blocks = HashSet::new();
        let mut data_blocks = HashSet::new();
        for rec in trace {
            stats.instructions += 1;
            code_pages.insert(rec.pc.vpn());
            code_blocks.insert(rec.pc.raw() >> 5);
            if let Some(d) = rec.data {
                match d.kind {
                    AccessKind::Load => stats.loads += 1,
                    AccessKind::Store => stats.stores += 1,
                    AccessKind::Fetch => {}
                }
                data_pages.insert(d.addr.vpn());
                data_blocks.insert(d.addr.raw() >> 5);
            }
        }
        stats.code_pages = code_pages.len() as u64;
        stats.data_pages = data_pages.len() as u64;
        stats.code_blocks = code_blocks.len() as u64;
        stats.data_blocks = data_blocks.len() as u64;
        stats
    }

    /// Loads + stores.
    pub fn data_refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total data footprint touched, in bytes (page granular).
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_pages * PAGE_SIZE
    }

    /// Total code footprint touched, in bytes (page granular).
    pub fn code_footprint_bytes(&self) -> u64 {
        self.code_pages * PAGE_SIZE
    }

    /// Mean data-block *reuse*: data references per distinct 32-byte
    /// block. A spatial/temporal locality indicator — streaming workloads
    /// score near `block/word`-size, pointer chasers near 1.
    pub fn data_block_reuse(&self) -> f64 {
        if self.data_blocks == 0 {
            0.0
        } else {
            self.data_refs() as f64 / self.data_blocks as f64
        }
    }
    /// All memory references: instruction fetches plus loads and stores.
    pub fn total_refs(&self) -> u64 {
        self.instructions + self.data_refs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::record::InstrRecord;
    use vm_types::MAddr;

    #[test]
    fn empty_trace_is_zero() {
        let s = TraceStats::analyze(std::iter::empty());
        assert_eq!(s, TraceStats::default());
        assert_eq!(s.data_block_reuse(), 0.0);
    }

    #[test]
    fn counts_loads_and_stores() {
        let recs = vec![
            InstrRecord::plain(MAddr::user(0x1000)),
            InstrRecord::load(MAddr::user(0x1004), MAddr::user(0x20_0000)),
            InstrRecord::store(MAddr::user(0x1008), MAddr::user(0x20_1000)),
        ];
        let s = TraceStats::analyze(recs);
        assert_eq!(s.instructions, 3);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.data_refs(), 2);
        assert_eq!(s.code_pages, 1);
        assert_eq!(s.data_pages, 2);
        assert_eq!(s.total_refs(), 5);
    }

    #[test]
    fn footprint_is_page_granular() {
        let recs = vec![InstrRecord::load(MAddr::user(0x1000), MAddr::user(0x20_0004))];
        let s = TraceStats::analyze(recs);
        assert_eq!(s.data_footprint_bytes(), 4096);
        assert_eq!(s.code_footprint_bytes(), 4096);
    }

    #[test]
    fn benchmark_characteristics_hold() {
        let n = 1_000_000;
        let gcc = TraceStats::analyze(presets::gcc(1).take(n));
        let vortex = TraceStats::analyze(presets::vortex(1).take(n));
        let ijpeg = TraceStats::analyze(presets::ijpeg(1).take(n));

        // Code footprints: gcc biggest, ijpeg smallest.
        assert!(gcc.code_pages > vortex.code_pages);
        assert!(vortex.code_pages > ijpeg.code_pages);

        // Data page footprints: the sparse-heap workloads keep touching
        // new pages; ijpeg's working set is fixed and small.
        assert!(
            vortex.data_pages > 3 * ijpeg.data_pages / 2,
            "vortex {} vs ijpeg {}",
            vortex.data_pages,
            ijpeg.data_pages
        );
        assert!(
            gcc.data_pages > ijpeg.data_pages,
            "gcc {} vs ijpeg {}",
            gcc.data_pages,
            ijpeg.data_pages
        );

        // Spatial locality: ijpeg streams through whole pages; vortex
        // touches a few fields per record — fewer distinct blocks per
        // touched page.
        let blocks_per_page = |s: &TraceStats| s.data_blocks as f64 / s.data_pages as f64;
        assert!(
            blocks_per_page(&ijpeg) > 1.5 * blocks_per_page(&vortex),
            "ijpeg {:.1} vs vortex {:.1} blocks/page",
            blocks_per_page(&ijpeg),
            blocks_per_page(&vortex)
        );
    }

    #[test]
    fn gcc_exceeds_tlb_reach() {
        // 128-entry x 4 KB TLB reach is 512 KB; gcc's live data must exceed
        // it for the paper's TLB results to be exercised at all.
        let s = TraceStats::analyze(presets::gcc(1).take(1_000_000));
        assert!(
            s.data_footprint_bytes() > 512 << 10,
            "gcc touches only {} bytes",
            s.data_footprint_bytes()
        );
    }
}
