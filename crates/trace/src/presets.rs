//! Calibrated workload models standing in for the paper's benchmarks.
//!
//! The paper evaluates the two SPEC '95 integer benchmarks "that have the
//! worst virtual memory performance: gcc and vortex, and one that provides
//! interesting counterexamples: ijpeg" (Section 3.2). The models here are
//! calibrated to the properties those results depend on:
//!
//! | model  | text footprint | data footprint | data locality | TLB pressure |
//! |--------|---------------:|---------------:|---------------|--------------|
//! | gcc    | ~1 MB          | ~8.5 MB        | moderate      | high         |
//! | vortex | ~0.7 MB        | ~11 MB         | poor spatial & temporal | high |
//! | ijpeg  | ~72 KB         | ~1.6 MB        | streaming     | low          |
//!
//! Each benchmark has a `*_spec()` returning the tunable [`WorkloadSpec`]
//! and a convenience constructor returning the built trace.

use crate::spec::{AccessPattern, CodeSpec, DataRegion, DataSpec, WorkloadSpec};
use crate::synth::SyntheticTrace;

/// Conventional text-segment base (like a MIPS/ELF `.text`).
const CODE_BASE: u64 = 0x0040_0000;
/// Top of the simulated user stack.
const STACK_TOP: u64 = 0x7FFF_F000;

/// The gcc model: a compiler with a large text segment, deep call chains
/// over many functions, and a multi-megabyte heap of moderately local
/// allocations (IR nodes, symbol tables).
pub fn gcc_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "gcc".into(),
        code: CodeSpec {
            code_base: CODE_BASE,
            functions: 440,
            avg_fn_instrs: 550,
            call_prob: 0.02,
            max_depth: 32,
            loop_backedge_prob: 0.80,
            avg_loop_instrs: 24,
            call_zipf_s: 1.10,
        },
        data: DataSpec {
            data_ref_frac: 0.35,
            store_share: 0.30,
            stack_top: STACK_TOP,
            frame_bytes: 192,
            regions: vec![
                DataRegion {
                    base: 0x1008_0000,
                    size: 512 << 10,
                    pattern: AccessPattern::RandomPage { zipf_s: 1.2, dwell: 128, run_len: 24 },
                    weight: 0.25,
                },
                // The heap: allocator arenas scattered across a wide VA
                // span, so touched pages are sparse at page-table-line
                // granularity (real malloc/GC behaviour). This is what
                // spreads the 2 MB hierarchical table thin in the caches.
                DataRegion {
                    base: 0x2000_0000,
                    size: 24 << 20,
                    pattern: AccessPattern::RandomPage { zipf_s: 1.7, dwell: 160, run_len: 24 },
                    weight: 0.30,
                },
                DataRegion {
                    base: 0x2844_0000,
                    size: 8 << 20,
                    pattern: AccessPattern::RandomPage { zipf_s: 1.5, dwell: 96, run_len: 12 },
                    weight: 0.15,
                },
                DataRegion {
                    base: STACK_TOP - (64 << 10),
                    size: 64 << 10,
                    pattern: AccessPattern::Stack,
                    weight: 0.30,
                },
            ],
        },
    }
}

/// Builds the gcc model's trace.
pub fn gcc(seed: u64) -> SyntheticTrace {
    gcc_spec().build(seed).expect("gcc preset is valid by construction")
}

/// The vortex model: an object-oriented database. The dominant region is
/// a large store accessed nearly uniformly with single-word runs — the
/// "data accesses that have poor spatial locality" the paper calls out
/// when explaining why the inverted page table fits the caches better
/// than a sparse hierarchical table.
pub fn vortex_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "vortex".into(),
        code: CodeSpec {
            code_base: CODE_BASE,
            functions: 320,
            avg_fn_instrs: 500,
            call_prob: 0.015,
            max_depth: 24,
            loop_backedge_prob: 0.85,
            avg_loop_instrs: 32,
            call_zipf_s: 1.10,
        },
        data: DataSpec {
            data_ref_frac: 0.38,
            store_share: 0.25,
            stack_top: STACK_TOP,
            frame_bytes: 160,
            regions: vec![
                // The object store: records scattered over a wide VA
                // span (database arenas), each visit touching a few
                // fields — poor spatial locality at both line and
                // page-table-line granularity.
                DataRegion {
                    base: 0x2000_0000,
                    size: 160 << 20,
                    pattern: AccessPattern::RandomPage { zipf_s: 1.75, dwell: 160, run_len: 3 },
                    weight: 0.55,
                },
                DataRegion {
                    base: 0x1008_0000,
                    size: 1 << 20,
                    pattern: AccessPattern::RandomPage { zipf_s: 1.2, dwell: 64, run_len: 8 },
                    weight: 0.20,
                },
                DataRegion {
                    base: STACK_TOP - (48 << 10),
                    size: 48 << 10,
                    pattern: AccessPattern::Stack,
                    weight: 0.25,
                },
            ],
        },
    }
}

/// Builds the vortex model's trace.
pub fn vortex(seed: u64) -> SyntheticTrace {
    vortex_spec().build(seed).expect("vortex preset is valid by construction")
}

/// The ijpeg model: image compression. Tiny text, tight loops, and
/// streaming passes over image buffers — the paper's counterexample whose
/// working set sits comfortably inside TLB reach and whose VM overhead is
/// near zero.
pub fn ijpeg_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "ijpeg".into(),
        code: CodeSpec {
            code_base: CODE_BASE,
            functions: 60,
            avg_fn_instrs: 300,
            call_prob: 0.008,
            max_depth: 12,
            loop_backedge_prob: 0.95,
            avg_loop_instrs: 16,
            call_zipf_s: 1.20,
        },
        data: DataSpec {
            data_ref_frac: 0.30,
            store_share: 0.35,
            stack_top: STACK_TOP,
            frame_bytes: 128,
            regions: vec![
                DataRegion {
                    base: 0x1000_0000,
                    size: 128 << 10,
                    pattern: AccessPattern::Sequential { stride: 4 },
                    weight: 0.45,
                },
                DataRegion {
                    base: 0x1104_0000,
                    size: 128 << 10,
                    pattern: AccessPattern::Sequential { stride: 4 },
                    weight: 0.30,
                },
                DataRegion {
                    base: 0x1218_0000,
                    size: 32 << 10,
                    pattern: AccessPattern::RandomPage { zipf_s: 1.2, dwell: 64, run_len: 8 },
                    weight: 0.10,
                },
                // Compressed-output / file-buffer pages: a thin cold tail
                // that keeps ijpeg's VM overhead tiny but non-zero, as in
                // the paper's "interesting counterexample".
                DataRegion {
                    base: 0x1430_0000,
                    size: 512 << 10,
                    pattern: AccessPattern::RandomPage { zipf_s: 0.7, dwell: 192, run_len: 32 },
                    weight: 0.05,
                },
                DataRegion {
                    base: STACK_TOP - (32 << 10),
                    size: 32 << 10,
                    pattern: AccessPattern::Stack,
                    weight: 0.10,
                },
            ],
        },
    }
}

/// Builds the ijpeg model's trace.
pub fn ijpeg(seed: u64) -> SyntheticTrace {
    ijpeg_spec().build(seed).expect("ijpeg preset is valid by construction")
}

/// Resolves a benchmark model by name (`"gcc"`, `"vortex"`, `"ijpeg"`).
/// Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    match name {
        "gcc" => Some(gcc_spec()),
        "vortex" => Some(vortex_spec()),
        "ijpeg" => Some(ijpeg_spec()),
        "li" => Some(li_spec()),
        "compress" => Some(compress_spec()),
        "perl" => Some(perl_spec()),
        _ => None,
    }
}

/// The three paper benchmarks, in the order the paper discusses them.
pub fn paper_benchmarks() -> Vec<WorkloadSpec> {
    vec![gcc_spec(), vortex_spec(), ijpeg_spec()]
}

/// A micro-kernel: pure sequential scan over `bytes` of data. Useful for
/// tests (its cache and TLB behaviour is analytically predictable).
pub fn seq_scan_spec(bytes: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("seq-scan-{bytes}"),
        code: CodeSpec {
            code_base: CODE_BASE,
            functions: 1,
            avg_fn_instrs: 64,
            call_prob: 0.0,
            max_depth: 1,
            loop_backedge_prob: 0.9,
            avg_loop_instrs: 8,
            call_zipf_s: 1.0,
        },
        data: DataSpec {
            data_ref_frac: 1.0,
            store_share: 0.0,
            stack_top: STACK_TOP,
            frame_bytes: 64,
            regions: vec![DataRegion {
                base: 0x1000_0000,
                size: bytes,
                pattern: AccessPattern::Sequential { stride: 4 },
                weight: 1.0,
            }],
        },
    }
}

/// A micro-kernel: uniform random single-word accesses over `bytes` —
/// the worst case for TLBs and for long cache lines.
pub fn random_access_spec(bytes: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("random-access-{bytes}"),
        code: CodeSpec {
            code_base: CODE_BASE,
            functions: 1,
            avg_fn_instrs: 64,
            call_prob: 0.0,
            max_depth: 1,
            loop_backedge_prob: 0.9,
            avg_loop_instrs: 8,
            call_zipf_s: 1.0,
        },
        data: DataSpec {
            data_ref_frac: 1.0,
            store_share: 0.0,
            stack_top: STACK_TOP,
            frame_bytes: 64,
            regions: vec![DataRegion {
                base: 0x1000_0000,
                size: bytes,
                pattern: AccessPattern::RandomPage { zipf_s: 0.0, dwell: 1, run_len: 1 },
                weight: 1.0,
            }],
        },
    }
}

/// The li model: a Lisp interpreter. Modest code, but data references
/// chase cons cells scattered through a garbage-collected heap, with
/// periodic sequential collector sweeps — poor spatial locality on a
/// moderate footprint.
pub fn li_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "li".into(),
        code: CodeSpec {
            code_base: CODE_BASE,
            functions: 140,
            avg_fn_instrs: 350,
            call_prob: 0.03, // eval/apply recursion
            max_depth: 48,
            loop_backedge_prob: 0.75,
            avg_loop_instrs: 12,
            call_zipf_s: 1.25,
        },
        data: DataSpec {
            data_ref_frac: 0.36,
            store_share: 0.30,
            stack_top: STACK_TOP,
            frame_bytes: 96,
            regions: vec![
                // The cons heap: cells scattered over a wide span.
                DataRegion {
                    base: 0x2000_0000,
                    size: 12 << 20,
                    pattern: AccessPattern::RandomPage { zipf_s: 1.55, dwell: 48, run_len: 2 },
                    weight: 0.45,
                },
                // Collector sweeps: long sequential passes over the heap
                // image (modelled as a separate linear region).
                DataRegion {
                    base: 0x3000_0000,
                    size: 2 << 20,
                    pattern: AccessPattern::Sequential { stride: 16 },
                    weight: 0.10,
                },
                DataRegion {
                    base: 0x1008_0000,
                    size: 256 << 10,
                    pattern: AccessPattern::RandomPage { zipf_s: 1.2, dwell: 96, run_len: 8 },
                    weight: 0.15,
                },
                DataRegion {
                    base: STACK_TOP - (64 << 10),
                    size: 64 << 10,
                    pattern: AccessPattern::Stack,
                    weight: 0.30,
                },
            ],
        },
    }
}

/// Builds the li model's trace.
pub fn li(seed: u64) -> SyntheticTrace {
    li_spec().build(seed).expect("li preset is valid by construction")
}

/// The compress model: tiny code, a streaming input buffer, and a hash
/// table probed nearly at random — heavy D-cache traffic on a footprint
/// small enough that the TLB barely notices.
pub fn compress_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "compress".into(),
        code: CodeSpec {
            code_base: CODE_BASE,
            functions: 24,
            avg_fn_instrs: 250,
            call_prob: 0.004,
            max_depth: 8,
            loop_backedge_prob: 0.93,
            avg_loop_instrs: 20,
            call_zipf_s: 1.3,
        },
        data: DataSpec {
            data_ref_frac: 0.33,
            store_share: 0.30,
            stack_top: STACK_TOP,
            frame_bytes: 96,
            regions: vec![
                DataRegion {
                    base: 0x1000_0000,
                    size: 896 << 10,
                    pattern: AccessPattern::Sequential { stride: 4 },
                    weight: 0.35,
                },
                // The code/prefix hash table: random probes.
                DataRegion {
                    base: 0x1108_0000,
                    size: 256 << 10,
                    pattern: AccessPattern::RandomPage { zipf_s: 0.3, dwell: 4, run_len: 1 },
                    weight: 0.40,
                },
                DataRegion {
                    base: 0x1214_0000,
                    size: 256 << 10,
                    pattern: AccessPattern::Sequential { stride: 4 },
                    weight: 0.10,
                },
                DataRegion {
                    base: STACK_TOP - (16 << 10),
                    size: 16 << 10,
                    pattern: AccessPattern::Stack,
                    weight: 0.15,
                },
            ],
        },
    }
}

/// Builds the compress model's trace.
pub fn compress(seed: u64) -> SyntheticTrace {
    compress_spec().build(seed).expect("compress preset is valid by construction")
}

/// The perl model: interpreter dispatch loops over a large op-tree plus
/// string/hash working storage — between gcc and li in both code and
/// data behaviour.
pub fn perl_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "perl".into(),
        code: CodeSpec {
            code_base: CODE_BASE,
            functions: 260,
            avg_fn_instrs: 450,
            call_prob: 0.022,
            max_depth: 40,
            loop_backedge_prob: 0.82,
            avg_loop_instrs: 18,
            call_zipf_s: 1.15,
        },
        data: DataSpec {
            data_ref_frac: 0.37,
            store_share: 0.32,
            stack_top: STACK_TOP,
            frame_bytes: 160,
            regions: vec![
                DataRegion {
                    base: 0x2000_0000,
                    size: 20 << 20,
                    pattern: AccessPattern::RandomPage { zipf_s: 1.6, dwell: 112, run_len: 6 },
                    weight: 0.40,
                },
                DataRegion {
                    base: 0x1008_0000,
                    size: 1 << 20,
                    pattern: AccessPattern::RandomPage { zipf_s: 1.1, dwell: 64, run_len: 12 },
                    weight: 0.25,
                },
                DataRegion {
                    base: STACK_TOP - (64 << 10),
                    size: 64 << 10,
                    pattern: AccessPattern::Stack,
                    weight: 0.35,
                },
            ],
        },
    }
}

/// Builds the perl model's trace.
pub fn perl(seed: u64) -> SyntheticTrace {
    perl_spec().build(seed).expect("perl preset is valid by construction")
}

/// All six benchmark models (the paper's three plus li, compress, perl).
pub fn all_benchmarks() -> Vec<WorkloadSpec> {
    vec![gcc_spec(), vortex_spec(), ijpeg_spec(), li_spec(), compress_spec(), perl_spec()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_every_benchmark() {
        for name in ["gcc", "vortex", "ijpeg", "li", "compress", "perl"] {
            assert_eq!(by_name(name).unwrap().name, name);
        }
        assert!(by_name("m88ksim").is_none());
    }

    #[test]
    fn extended_benchmarks_validate_and_differ() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 6);
        for spec in &all {
            spec.validate().unwrap_or_else(|e| panic!("{e}"));
        }
        // compress has the smallest text; its footprint sits inside TLB reach.
        assert!(compress_spec().code.approx_code_bytes() < 64 << 10);
        assert!(compress_spec().approx_data_bytes() < 2 << 20);
        // li's cons heap dominates and is wide.
        assert!(li_spec().approx_data_bytes() > 8 << 20);
    }

    #[test]
    fn paper_benchmarks_are_three() {
        let b = paper_benchmarks();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].name, "gcc");
    }

    #[test]
    fn micro_kernels_validate() {
        seq_scan_spec(1 << 20).validate().unwrap();
        random_access_spec(1 << 20).validate().unwrap();
    }

    #[test]
    fn builders_do_not_panic() {
        let _ = gcc(1).take(10).count();
        let _ = vortex(1).take(10).count();
        let _ = ijpeg(1).take(10).count();
    }
}
