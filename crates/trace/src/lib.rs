//! Memory-reference traces and synthetic SPEC '95-like workloads for the
//! Jacob & Mudge (ASPLOS 1998) reproduction.
//!
//! The paper drives its simulator with address traces of the SPEC '95
//! integer suite, focusing on **gcc** and **vortex** (the benchmarks with
//! the worst virtual-memory behaviour) and **ijpeg** (a counterexample
//! with tiny VM overhead). Those traces are not redistributable, so this
//! crate supplies *deterministic synthetic workload models* that expose
//! the properties the paper's results actually depend on:
//!
//! * **instruction-footprint pressure** — how much code contends with the
//!   1–128 KB L1 I-caches and with handler code;
//! * **data-page working set** — how many distinct pages are live relative
//!   to the 512 KB of TLB reach (128 entries × 4 KB);
//! * **spatial locality** — how much of each cache line is useful, which
//!   drives the line-size sensitivity results.
//!
//! A workload is described by a [`WorkloadSpec`] (code model + data model)
//! and realized as a [`SyntheticTrace`], an `Iterator` of
//! [`InstrRecord`]s. [`presets`] provides calibrated gcc/vortex/ijpeg
//! models and micro-kernels; [`TraceStats`] measures any trace;
//! [`write_trace`]/[`ReplayTrace`] record and replay traces in a compact
//! binary format.
//!
//! # Example
//!
//! ```
//! use vm_trace::{presets, TraceStats};
//!
//! let trace = presets::ijpeg(7).take(10_000);
//! let stats = TraceStats::analyze(trace);
//! assert_eq!(stats.instructions, 10_000);
//! assert!(stats.data_refs() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dinero;
mod multi;
mod phased;
mod record;
mod spec;
mod stats;
mod synth;

pub mod library;
pub mod presets;
pub mod wire;

pub use dinero::{read_dinero, read_dinero_recovering, DinDiagnostic, RecoveredDinero};
pub use library::{
    trace_workload, valid_trace_name, LibraryError, TraceLibrary, TRACE_LIBRARY_ENV,
    TRACE_WORKLOAD_PREFIX,
};
pub use multi::Multiprogram;
pub use phased::Phased;
pub use record::{read_trace, write_trace, DataRef, InstrRecord, ReplayTrace, TraceIoError};
pub use spec::{AccessPattern, CodeSpec, DataRegion, DataSpec, SpecError, WorkloadSpec};
pub use stats::TraceStats;
pub use synth::SyntheticTrace;
