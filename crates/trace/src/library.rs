//! A directory of committed binary traces addressable as workloads.
//!
//! The serve ingestion path ([serving docs](https://example.invalid) —
//! see `docs/serving.md`) stages uploads chunk by chunk and, on commit,
//! installs the verified trace into a *library* directory as
//! `NAME.trace`. From then on the trace is a first-class workload: a
//! spec whose `workload` is `trace:NAME` replays the file instead of
//! synthesizing a preset, on every execution path (in-process sweeps,
//! supervised workers, serve jobs) — which is what makes an uploaded
//! trace simulate byte-identically to the same file run from disk.
//!
//! The library directory travels explicitly where possible (serve
//! threads it through the executor policy) and falls back to the
//! `VM_TRACE_LIBRARY` environment variable for standalone
//! `repro explore` runs.

use std::fs::{self, File};
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};

use crate::record::{read_trace, InstrRecord};

/// The workload-name prefix that selects a library trace.
pub const TRACE_WORKLOAD_PREFIX: &str = "trace:";

/// The environment variable naming the library directory when no
/// explicit path is configured.
pub const TRACE_LIBRARY_ENV: &str = "VM_TRACE_LIBRARY";

/// If `workload` is a `trace:NAME` reference, returns `NAME`.
#[must_use]
pub fn trace_workload(workload: &str) -> Option<&str> {
    workload.strip_prefix(TRACE_WORKLOAD_PREFIX)
}

/// Whether `name` is a valid library trace name: 1–64 characters of
/// `[a-z0-9._-]`, not starting with `.` or `-`. The grammar is what
/// makes a name safe to use as a file stem — no separators, no parent
/// references, no hidden files.
#[must_use]
pub fn valid_trace_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with(['.', '-'])
        && name.bytes().all(|b| {
            b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'_' || b == b'-'
        })
}

/// Why a library trace could not be produced.
#[derive(Debug)]
pub enum LibraryError {
    /// The workload name fails [`valid_trace_name`].
    BadName(String),
    /// No library directory is configured (neither explicit nor via
    /// [`TRACE_LIBRARY_ENV`]).
    NoLibrary,
    /// The named trace is not in the library.
    Missing {
        /// The requested trace name.
        name: String,
        /// The library directory searched.
        dir: PathBuf,
    },
    /// The file exists but is not a well-formed trace.
    Corrupt {
        /// The requested trace name.
        name: String,
        /// What the decoder rejected.
        detail: String,
    },
    /// Filesystem trouble reading the library.
    Io(io::Error),
}

impl std::fmt::Display for LibraryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LibraryError::BadName(name) => write!(
                f,
                "invalid trace name `{name}` (want 1-64 chars of [a-z0-9._-], not starting with `.` or `-`)"
            ),
            LibraryError::NoLibrary => write!(
                f,
                "no trace library configured (set {TRACE_LIBRARY_ENV} or pass a library directory)"
            ),
            LibraryError::Missing { name, dir } => {
                write!(f, "trace `{name}` is not in the library at {}", dir.display())
            }
            LibraryError::Corrupt { name, detail } => {
                write!(f, "trace `{name}` does not decode: {detail}")
            }
            LibraryError::Io(e) => write!(f, "trace library I/O: {e}"),
        }
    }
}

impl std::error::Error for LibraryError {}

impl From<io::Error> for LibraryError {
    fn from(e: io::Error) -> LibraryError {
        LibraryError::Io(e)
    }
}

/// A directory of committed `NAME.trace` files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceLibrary {
    dir: PathBuf,
}

impl TraceLibrary {
    /// A library rooted at `dir` (not created until first install).
    pub fn new(dir: impl Into<PathBuf>) -> TraceLibrary {
        TraceLibrary { dir: dir.into() }
    }

    /// The library named by [`TRACE_LIBRARY_ENV`], if set and non-empty.
    #[must_use]
    pub fn from_env() -> Option<TraceLibrary> {
        let dir = std::env::var_os(TRACE_LIBRARY_ENV)?;
        (!dir.is_empty()).then(|| TraceLibrary::new(PathBuf::from(dir)))
    }

    /// The library root.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path for `name` (no validation, no existence check).
    #[must_use]
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.trace"))
    }

    /// Whether a committed trace named `name` exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        valid_trace_name(name) && self.path(name).is_file()
    }

    /// Sorted names of every committed trace.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let Ok(entries) = fs::read_dir(&self.dir) else { return Vec::new() };
        let mut names: Vec<String> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let path = e.path();
                let stem = path.file_stem()?.to_str()?.to_owned();
                (path.extension()?.to_str()? == "trace" && valid_trace_name(&stem)).then_some(stem)
            })
            .collect();
        names.sort();
        names
    }

    /// Loads the named trace fully into memory, validating every
    /// record. The simulation pipeline consumes infallible record
    /// iterators, so decoding errors must surface here — before any
    /// simulation starts — not mid-run.
    ///
    /// # Errors
    ///
    /// [`LibraryError`] on a bad name, a missing file, or any decode
    /// failure (truncation, bad magic, bad tag, bad address bits).
    pub fn load(&self, name: &str) -> Result<Vec<InstrRecord>, LibraryError> {
        if !valid_trace_name(name) {
            return Err(LibraryError::BadName(name.to_owned()));
        }
        let path = self.path(name);
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(LibraryError::Missing { name: name.to_owned(), dir: self.dir.clone() })
            }
            Err(e) => return Err(e.into()),
        };
        let replay = read_trace(BufReader::new(file))
            .map_err(|e| LibraryError::Corrupt { name: name.to_owned(), detail: e.to_string() })?;
        replay
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| LibraryError::Corrupt { name: name.to_owned(), detail: e.to_string() })
    }

    /// Atomically installs `staged` (a fully verified trace file on the
    /// same filesystem) as `name`: creates the library directory and
    /// renames the file into place. Rename is the commit point — a
    /// crash before it leaves the library unchanged.
    ///
    /// # Errors
    ///
    /// [`LibraryError::BadName`] or the underlying I/O failure.
    pub fn install(&self, name: &str, staged: &Path) -> Result<PathBuf, LibraryError> {
        if !valid_trace_name(name) {
            return Err(LibraryError::BadName(name.to_owned()));
        }
        fs::create_dir_all(&self.dir)?;
        let dest = self.path(name);
        fs::rename(staged, &dest)?;
        Ok(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::record::write_trace;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vm-trace-library-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn name_grammar_rejects_separators_and_hidden_files() {
        for good in ["gcc", "trace-01", "a.b_c", "x"] {
            assert!(valid_trace_name(good), "{good}");
        }
        for bad in ["", "..", ".hidden", "-flag", "UPPER", "a/b", "a\\b", "a b", "a:b"] {
            assert!(!valid_trace_name(bad), "{bad}");
        }
        assert!(valid_trace_name(&"x".repeat(64)));
        assert!(!valid_trace_name(&"x".repeat(65)));
    }

    #[test]
    fn trace_workload_strips_only_the_prefix() {
        assert_eq!(trace_workload("trace:gcc"), Some("gcc"));
        assert_eq!(trace_workload("gcc"), None);
        assert_eq!(trace_workload("trace:"), Some(""));
    }

    #[test]
    fn install_then_load_round_trips_records() {
        let dir = tmp_dir("round-trip");
        let records: Vec<InstrRecord> =
            presets::by_name("gcc").unwrap().build(7).unwrap().take(500).collect();
        let staged = dir.join("staged.part");
        write_trace(File::create(&staged).unwrap(), records.iter().copied()).unwrap();

        let lib = TraceLibrary::new(dir.join("lib"));
        assert!(!lib.contains("g1"));
        lib.install("g1", &staged).unwrap();
        assert!(lib.contains("g1"));
        assert_eq!(lib.names(), vec!["g1".to_owned()]);
        assert_eq!(lib.load("g1").unwrap(), records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_classifies_missing_corrupt_and_bad_names() {
        let dir = tmp_dir("classify");
        let lib = TraceLibrary::new(&dir);
        assert!(matches!(lib.load("nope"), Err(LibraryError::Missing { .. })));
        assert!(matches!(lib.load("../evil"), Err(LibraryError::BadName(_))));
        fs::write(lib.path("junk"), b"not a trace at all").unwrap();
        assert!(matches!(lib.load("junk"), Err(LibraryError::Corrupt { .. })));
        let _ = fs::remove_dir_all(&dir);
    }
}
