//! Multiprogramming: interleave several workloads as round-robin
//! processes.
//!
//! The paper's traces are single-process; its interrupt discussion and
//! the virtual-cache ASID caveat both point at multiprogramming as the
//! obvious stressor. [`Multiprogram`] schedules `k` workload models
//! round-robin with a fixed time quantum, tagging every address with the
//! running process's ASID ([`vm_types::MAddr::user_in`]), so a simulator
//! with ASID-tagged TLBs keeps translations across switches while an
//! untagged one must flush.

use vm_types::MAddr;

use crate::record::{DataRef, InstrRecord};
use crate::spec::{SpecError, WorkloadSpec};
use crate::synth::SyntheticTrace;

/// A round-robin interleaving of workload traces, one ASID per process.
///
/// ```
/// use vm_trace::{presets, Multiprogram};
///
/// let mp = Multiprogram::new(
///     vec![presets::gcc_spec(), presets::ijpeg_spec()],
///     50_000, // instructions per quantum
///     42,
/// ).unwrap();
/// let first: Vec<_> = mp.take(10).collect();
/// assert!(first.iter().all(|r| r.pc.asid() == 0)); // first quantum: process 0
/// ```
#[derive(Debug, Clone)]
pub struct Multiprogram {
    processes: Vec<SyntheticTrace>,
    quantum: u64,
    current: usize,
    left_in_quantum: u64,
    switches: u64,
}

impl Multiprogram {
    /// Builds one generator per workload (process `i` uses `seed + i`)
    /// and schedules them round-robin every `quantum` instructions.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if any workload is invalid or the process
    /// list is empty (reported as an invalid spec) .
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero or more than 256 processes are given
    /// (the ASID width).
    pub fn new(
        workloads: Vec<WorkloadSpec>,
        quantum: u64,
        seed: u64,
    ) -> Result<Multiprogram, SpecError> {
        assert!(quantum > 0, "quantum must be positive");
        assert!(
            workloads.len() <= usize::from(vm_types::MAX_ASID) + 1,
            "at most {} processes (ASID width)",
            usize::from(vm_types::MAX_ASID) + 1
        );
        assert!(!workloads.is_empty(), "at least one process required");
        let processes = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| w.build(seed.wrapping_add(i as u64)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Multiprogram { processes, quantum, current: 0, left_in_quantum: quantum, switches: 0 })
    }

    /// The number of processes.
    pub fn processes(&self) -> usize {
        self.processes.len()
    }

    /// Context switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The instruction quantum.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    fn retag(&self, rec: InstrRecord) -> InstrRecord {
        let asid = self.current as u16;
        if asid == 0 {
            return rec;
        }
        let pc = MAddr::user_in(asid, rec.pc.offset());
        let data =
            rec.data.map(|d| DataRef { addr: MAddr::user_in(asid, d.addr.offset()), kind: d.kind });
        InstrRecord { pc, data }
    }
}

impl Iterator for Multiprogram {
    type Item = InstrRecord;

    fn next(&mut self) -> Option<InstrRecord> {
        if self.left_in_quantum == 0 {
            self.current = (self.current + 1) % self.processes.len();
            self.left_in_quantum = self.quantum;
            self.switches += 1;
        }
        self.left_in_quantum -= 1;
        let rec = self.processes[self.current].next()?;
        Some(self.retag(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn quanta_rotate_round_robin() {
        let mut mp =
            Multiprogram::new(vec![presets::ijpeg_spec(), presets::ijpeg_spec()], 100, 1).unwrap();
        let first: Vec<_> = mp.by_ref().take(100).collect();
        assert!(first.iter().all(|r| r.pc.asid() == 0));
        let second: Vec<_> = mp.by_ref().take(100).collect();
        assert!(second.iter().all(|r| r.pc.asid() == 1));
        let third: Vec<_> = mp.by_ref().take(100).collect();
        assert!(third.iter().all(|r| r.pc.asid() == 0));
        assert_eq!(mp.switches(), 2);
    }

    #[test]
    fn data_addresses_carry_the_asid() {
        let mp = Multiprogram::new(
            vec![presets::ijpeg_spec(), presets::ijpeg_spec(), presets::ijpeg_spec()],
            50,
            3,
        )
        .unwrap();
        for rec in mp.take(400) {
            if let Some(d) = rec.data {
                assert_eq!(d.addr.asid(), rec.pc.asid(), "pc and data must share an ASID");
            }
        }
    }

    #[test]
    fn single_process_is_transparent() {
        let direct: Vec<_> = presets::ijpeg(5).take(500).collect();
        let mp: Vec<_> =
            Multiprogram::new(vec![presets::ijpeg_spec()], 100, 5).unwrap().take(500).collect();
        assert_eq!(direct, mp);
    }

    #[test]
    fn processes_progress_independently() {
        // The same workload at different seeds: process streams must
        // differ (each process owns its own generator state).
        let mut mp =
            Multiprogram::new(vec![presets::gcc_spec(), presets::gcc_spec()], 50, 9).unwrap();
        let q0: Vec<_> = mp.by_ref().take(50).map(|r| r.pc.offset()).collect();
        let q1: Vec<_> = mp.by_ref().take(50).map(|r| r.pc.offset()).collect();
        assert_ne!(q0, q1);
    }

    #[test]
    fn accessors_report_configuration() {
        let mp = Multiprogram::new(vec![presets::ijpeg_spec(), presets::gcc_spec()], 7, 1).unwrap();
        assert_eq!(mp.processes(), 2);
        assert_eq!(mp.quantum(), 7);
        assert_eq!(mp.switches(), 0);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_panics() {
        let _ = Multiprogram::new(vec![presets::ijpeg_spec()], 0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_process_list_panics() {
        let _ = Multiprogram::new(vec![], 10, 1);
    }
}
