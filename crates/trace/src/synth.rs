//! The deterministic synthetic trace generator.

use vm_types::{MAddr, SplitMix64, PAGE_SIZE};

use crate::record::InstrRecord;
use crate::spec::{AccessPattern, WorkloadSpec};

/// A Zipf(s) sampler over `n` ranks via inverse-CDF binary search.
#[derive(Debug, Clone)]
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Deterministic Fisher–Yates permutation of `0..n`, so that "hot" Zipf
/// ranks land on scattered (not contiguous) items.
fn permutation(n: usize, rng: &mut SplitMix64) -> Vec<u32> {
    let mut p: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        p.swap(i, j);
    }
    p
}

#[derive(Debug, Clone)]
struct FnLayout {
    /// Global index of the function's first instruction.
    first_instr: u64,
    /// Body length in instructions.
    len: u32,
    /// Loop-body length used at back edges.
    loop_len: u32,
}

#[derive(Debug, Clone)]
enum RegionState {
    Sequential {
        stride: u64,
        cursor: u64,
    },
    RandomPage {
        zipf: Zipf,
        page_perm: Vec<u32>,
        dwell_left: u32,
        dwell: u32,
        run_left: u32,
        run_len: u32,
        cursor: u64,
        page_base: u64,
    },
    Stack,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    func: usize,
    resume: u32,
}

/// A deterministic synthetic instruction/data reference stream.
///
/// Built from a [`WorkloadSpec`] via [`WorkloadSpec::build`]; iterating
/// yields an unbounded stream of [`InstrRecord`]s (bound it with
/// [`Iterator::take`]). The same spec and seed always produce the same
/// stream — the property that lets one workload be replayed against every
/// simulated VM organization, as the paper does.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    spec: WorkloadSpec,
    rng: SplitMix64,
    fns: Vec<FnLayout>,
    call_zipf: Zipf,
    fn_perm: Vec<u32>,
    region_cdf: Vec<f64>,
    regions: Vec<RegionState>,
    stack: Vec<Frame>,
    cur_fn: usize,
    cur_idx: u32,
}

impl SyntheticTrace {
    /// Instantiates the generator. Private to the crate: construct via
    /// [`WorkloadSpec::build`], which validates first.
    pub(crate) fn new(spec: WorkloadSpec, seed: u64) -> SyntheticTrace {
        let mut rng = SplitMix64::new(seed);
        let mut layout_rng = rng.split();

        let n_fns = spec.code.functions as usize;
        let avg = u64::from(spec.code.avg_fn_instrs);
        let mut fns = Vec::with_capacity(n_fns);
        let mut next_instr = 0u64;
        for _ in 0..n_fns {
            // Uniform in [avg/2, 3*avg/2], at least 1.
            let len =
                (avg / 2 + layout_rng.next_below(avg.max(1)) + 1).min(u64::from(u32::MAX)) as u32;
            let avg_loop = u64::from(spec.code.avg_loop_instrs);
            let loop_len =
                (avg_loop / 2 + layout_rng.next_below(avg_loop.max(1)) + 1).max(2) as u32;
            fns.push(FnLayout { first_instr: next_instr, len, loop_len });
            next_instr += u64::from(len);
        }

        let call_zipf = Zipf::new(n_fns, spec.code.call_zipf_s);
        let fn_perm = permutation(n_fns, &mut layout_rng);

        let total_weight: f64 = spec.data.regions.iter().map(|r| r.weight).sum();
        let mut acc = 0.0;
        let mut region_cdf = Vec::with_capacity(spec.data.regions.len());
        let mut regions = Vec::with_capacity(spec.data.regions.len());
        for r in &spec.data.regions {
            acc += r.weight / total_weight;
            region_cdf.push(acc);
            regions.push(match r.pattern {
                AccessPattern::Sequential { stride } => {
                    RegionState::Sequential { stride, cursor: 0 }
                }
                AccessPattern::RandomPage { zipf_s, dwell, run_len } => {
                    let pages = (r.size / PAGE_SIZE).max(1) as usize;
                    RegionState::RandomPage {
                        zipf: Zipf::new(pages, zipf_s),
                        page_perm: permutation(pages, &mut layout_rng),
                        dwell_left: 0,
                        dwell,
                        run_left: 0,
                        run_len,
                        cursor: 0,
                        page_base: 0,
                    }
                }
                AccessPattern::Stack => RegionState::Stack,
            });
        }

        let mut trace = SyntheticTrace {
            spec,
            rng,
            fns,
            call_zipf,
            fn_perm,
            region_cdf,
            regions,
            stack: Vec::new(),
            cur_fn: 0,
            cur_idx: 0,
        };
        trace.cur_fn = trace.pick_function();
        trace
    }

    /// The spec this trace realizes.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn pick_function(&mut self) -> usize {
        let rank = self.call_zipf.sample(&mut self.rng);
        self.fn_perm[rank] as usize
    }

    fn pc(&self) -> MAddr {
        let f = &self.fns[self.cur_fn];
        MAddr::user(self.spec.code.code_base + (f.first_instr + u64::from(self.cur_idx)) * 4)
    }

    /// Call depth as seen by the stack model.
    fn depth(&self) -> u64 {
        self.stack.len() as u64
    }

    fn gen_data_addr(&mut self) -> MAddr {
        let u = self.rng.next_f64();
        let idx = self.region_cdf.partition_point(|&c| c < u).min(self.regions.len() - 1);
        let region = self.spec.data.regions[idx];
        match &mut self.regions[idx] {
            RegionState::Sequential { stride, cursor } => {
                let addr = region.base + *cursor;
                *cursor = (*cursor + *stride) % region.size;
                MAddr::user(addr & !3)
            }
            RegionState::RandomPage {
                zipf,
                page_perm,
                dwell_left,
                dwell,
                run_left,
                run_len,
                cursor,
                page_base,
            } => {
                let span = PAGE_SIZE.min(region.size);
                if *dwell_left == 0 {
                    let rank = zipf.sample(&mut self.rng);
                    let page = u64::from(page_perm[rank]);
                    *page_base = region.base + page * PAGE_SIZE;
                    *dwell_left = *dwell;
                    *run_left = 0;
                }
                if *run_left == 0 {
                    *cursor = (self.rng.next_below(span / 4)) * 4;
                    *run_left = *run_len;
                }
                let addr = *page_base + (*cursor % span);
                *cursor += 4;
                *run_left -= 1;
                *dwell_left -= 1;
                MAddr::user(addr)
            }
            RegionState::Stack => {
                let spec = &self.spec.data;
                let sp = spec.stack_top - (self.depth() + 1) * spec.frame_bytes;
                let off = self.rng.next_below(spec.frame_bytes / 4 + 1) * 4;
                MAddr::user(sp + off.min(spec.frame_bytes - 4))
            }
        }
    }

    /// Advances control flow past the current instruction.
    fn advance(&mut self) {
        let (len, loop_len) = {
            let f = &self.fns[self.cur_fn];
            (f.len, f.loop_len)
        };

        // Call?
        if self.depth() < u64::from(self.spec.code.max_depth)
            && self.rng.chance(self.spec.code.call_prob)
        {
            let callee = self.pick_function();
            self.stack.push(Frame { func: self.cur_fn, resume: self.cur_idx + 1 });
            self.cur_fn = callee;
            self.cur_idx = 0;
            return;
        }

        // Loop back edge?
        let next = self.cur_idx + 1;
        if next >= loop_len
            && next.is_multiple_of(loop_len)
            && next < len
            && self.rng.chance(self.spec.code.loop_backedge_prob)
        {
            self.cur_idx = next - loop_len;
            return;
        }

        // Fall through; return (possibly repeatedly) past function ends.
        self.cur_idx = next;
        while self.cur_idx >= self.fns[self.cur_fn].len {
            match self.stack.pop() {
                Some(frame) => {
                    self.cur_fn = frame.func;
                    self.cur_idx = frame.resume;
                }
                None => {
                    self.cur_fn = self.pick_function();
                    self.cur_idx = 0;
                }
            }
        }
    }
}

impl Iterator for SyntheticTrace {
    type Item = InstrRecord;

    fn next(&mut self) -> Option<InstrRecord> {
        let pc = self.pc();
        let data = if self.rng.chance(self.spec.data.data_ref_frac) {
            let addr = self.gen_data_addr();
            Some(if self.rng.chance(self.spec.data.store_share) {
                crate::record::DataRef::store(addr)
            } else {
                crate::record::DataRef::load(addr)
            })
        } else {
            None
        };
        self.advance();
        Some(InstrRecord { pc, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use vm_types::AddressSpace;

    #[test]
    fn zipf_is_monotone_and_normalized() {
        let z = Zipf::new(100, 1.0);
        assert!(z.cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_skew_concentrates_mass() {
        let mut rng = SplitMix64::new(1);
        let z = Zipf::new(1000, 1.2);
        let mut head = 0;
        for _ in 0..10_000 {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1.2 the top-10 ranks should take a large share.
        assert!(head > 3_000, "head share was only {head}/10000");
    }

    #[test]
    fn zipf_zero_is_roughly_uniform() {
        let mut rng = SplitMix64::new(2);
        let z = Zipf::new(100, 0.0);
        let mut head = 0;
        for _ in 0..10_000 {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        assert!((500..1_500).contains(&head), "head share was {head}/10000");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = SplitMix64::new(3);
        let p = permutation(257, &mut rng);
        let mut seen = vec![false; 257];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let a: Vec<_> = presets::gcc(11).take(20_000).collect();
        let b: Vec<_> = presets::gcc(11).take(20_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = presets::gcc(11).take(1_000).collect();
        let b: Vec<_> = presets::gcc(12).take(1_000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn all_addresses_are_user_space() {
        for rec in presets::vortex(5).take(50_000) {
            assert_eq!(rec.pc.space(), AddressSpace::User);
            assert_eq!(rec.pc.offset() % 4, 0, "pc must be word aligned");
            if let Some(d) = rec.data {
                assert_eq!(d.addr.space(), AddressSpace::User);
                assert_eq!(d.addr.offset() % 4, 0, "data must be word aligned");
            }
        }
    }

    #[test]
    fn pcs_stay_inside_the_text_segment() {
        let spec = presets::gcc_spec();
        let code_base = spec.code.code_base;
        // Upper bound: 3/2 * avg per function.
        let code_end = code_base
            + u64::from(spec.code.functions) * (3 * u64::from(spec.code.avg_fn_instrs) / 2 + 2) * 4;
        for rec in spec.build(9).unwrap().take(50_000) {
            assert!(rec.pc.offset() >= code_base && rec.pc.offset() < code_end, "{:?}", rec.pc);
        }
    }

    #[test]
    fn data_refs_stay_inside_regions_or_stack() {
        let spec = presets::ijpeg_spec();
        let trace = spec.build(17).unwrap();
        let stack_lo =
            spec.data.stack_top - (u64::from(spec.code.max_depth) + 1) * spec.data.frame_bytes;
        for rec in trace.take(50_000) {
            if let Some(d) = rec.data {
                let a = d.addr.offset();
                let in_region = spec.data.regions.iter().any(|r| {
                    !matches!(r.pattern, AccessPattern::Stack) && a >= r.base && a < r.base + r.size
                });
                let in_stack = a >= stack_lo && a < spec.data.stack_top;
                assert!(in_region || in_stack, "stray data address {:?}", d.addr);
            }
        }
    }

    #[test]
    fn data_ref_fraction_is_respected() {
        let spec = presets::gcc_spec();
        let n = 200_000;
        let refs = spec.build(23).unwrap().take(n).filter(|r| r.data.is_some()).count();
        let frac = refs as f64 / n as f64;
        assert!(
            (frac - spec.data.data_ref_frac).abs() < 0.02,
            "observed data fraction {frac}, wanted ~{}",
            spec.data.data_ref_frac
        );
    }

    #[test]
    fn store_share_is_respected() {
        let spec = presets::gcc_spec();
        let recs: Vec<_> = spec.build(29).unwrap().take(200_000).collect();
        let (mut loads, mut stores) = (0u64, 0u64);
        for r in recs {
            match r.data.map(|d| d.kind) {
                Some(vm_types::AccessKind::Load) => loads += 1,
                Some(vm_types::AccessKind::Store) => stores += 1,
                _ => {}
            }
        }
        let share = stores as f64 / (loads + stores) as f64;
        assert!((share - spec.data.store_share).abs() < 0.03, "store share {share}");
    }

    #[test]
    fn sequential_region_streams_forward() {
        use crate::spec::{CodeSpec, DataRegion, DataSpec, WorkloadSpec};
        let spec = WorkloadSpec {
            name: "seqtest".into(),
            code: CodeSpec {
                code_base: 0x40_0000,
                functions: 1,
                avg_fn_instrs: 64,
                call_prob: 0.0,
                max_depth: 1,
                loop_backedge_prob: 0.5,
                avg_loop_instrs: 8,
                call_zipf_s: 1.0,
            },
            data: DataSpec {
                data_ref_frac: 1.0,
                store_share: 0.0,
                stack_top: 0x7fff_f000,
                frame_bytes: 64,
                regions: vec![DataRegion {
                    base: 0x100_0000,
                    size: 1 << 20,
                    pattern: AccessPattern::Sequential { stride: 4 },
                    weight: 1.0,
                }],
            },
        };
        let addrs: Vec<u64> = spec
            .build(1)
            .unwrap()
            .take(100)
            .filter_map(|r| r.data.map(|d| d.addr.offset()))
            .collect();
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(*a, 0x100_0000 + 4 * i as u64);
        }
    }

    #[test]
    fn trace_is_unbounded() {
        let mut t = presets::ijpeg(1);
        for _ in 0..100_000 {
            assert!(t.next().is_some());
        }
    }

    #[test]
    fn ijpeg_touches_fewer_pages_than_vortex() {
        use std::collections::HashSet;
        let pages = |trace: SyntheticTrace| -> usize {
            let mut set = HashSet::new();
            for rec in trace.take(1_000_000) {
                if let Some(d) = rec.data {
                    set.insert(d.addr.vpn());
                }
            }
            set.len()
        };
        let ij = pages(presets::ijpeg(3));
        let vo = pages(presets::vortex(3));
        assert!(vo > 2 * ij, "vortex should touch far more data pages (vortex {vo}, ijpeg {ij})");
    }
}
