//! Phase behaviour: workloads whose character changes over time.
//!
//! Real programs run in phases — gcc parses, then optimizes, then emits;
//! each phase has its own code and data working set, and phase changes
//! are where TLBs and caches re-warm. [`Phased`] strings several
//! [`WorkloadSpec`]s into one trace, switching models after a fixed
//! instruction budget and cycling until the consumer stops.
//!
//! Unlike [`crate::Multiprogram`], all phases share one address space
//! (ASID 0): this models one program changing behaviour, not a scheduler
//! switching programs.

use crate::record::InstrRecord;
use crate::spec::{SpecError, WorkloadSpec};
use crate::synth::SyntheticTrace;

/// A trace that cycles through workload phases.
///
/// ```
/// use vm_trace::{presets, Phased};
///
/// // A "compiler" that alternates gcc-like and ijpeg-like behaviour.
/// let trace = Phased::new(
///     vec![(300_000, presets::gcc_spec()), (200_000, presets::ijpeg_spec())],
///     42,
/// ).unwrap();
/// assert_eq!(trace.phases(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Phased {
    phases: Vec<(u64, SyntheticTrace)>,
    current: usize,
    left_in_phase: u64,
    transitions: u64,
}

impl Phased {
    /// Builds one generator per `(instructions, spec)` phase; phase `i`
    /// uses `seed + i`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if any phase's workload is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase length is zero.
    pub fn new(phases: Vec<(u64, WorkloadSpec)>, seed: u64) -> Result<Phased, SpecError> {
        assert!(!phases.is_empty(), "at least one phase required");
        assert!(phases.iter().all(|&(n, _)| n > 0), "phase lengths must be positive");
        let first_len = phases[0].0;
        let built = phases
            .into_iter()
            .enumerate()
            .map(|(i, (n, w))| w.build(seed.wrapping_add(i as u64)).map(|t| (n, t)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Phased { phases: built, current: 0, left_in_phase: first_len, transitions: 0 })
    }

    /// Number of phases in the cycle.
    pub fn phases(&self) -> usize {
        self.phases.len()
    }

    /// Phase transitions taken so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Index of the phase the next instruction comes from.
    pub fn current_phase(&self) -> usize {
        self.current
    }
}

impl Iterator for Phased {
    type Item = InstrRecord;

    fn next(&mut self) -> Option<InstrRecord> {
        if self.left_in_phase == 0 {
            self.current = (self.current + 1) % self.phases.len();
            self.left_in_phase = self.phases[self.current].0;
            self.transitions += 1;
        }
        self.left_in_phase -= 1;
        self.phases[self.current].1.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn phases_cycle_with_their_lengths() {
        let mut t =
            Phased::new(vec![(100, presets::ijpeg_spec()), (50, presets::compress_spec())], 1)
                .unwrap();
        let _: Vec<_> = t.by_ref().take(100).collect();
        assert_eq!(t.current_phase(), 0, "still inside phase 0 until its budget is spent");
        let _ = t.next();
        assert_eq!(t.current_phase(), 1);
        let _: Vec<_> = t.by_ref().take(49).collect();
        let _ = t.next();
        assert_eq!(t.current_phase(), 0, "cycled back");
        assert_eq!(t.transitions(), 2);
    }

    #[test]
    fn phase_streams_resume_not_restart() {
        // When phase 0 comes around again it continues its own stream,
        // so a phase's working set persists across the cycle.
        let mut phased =
            Phased::new(vec![(10, presets::ijpeg_spec()), (10, presets::ijpeg_spec())], 3).unwrap();
        let first_visit: Vec<_> = phased.by_ref().take(10).collect();
        let _skip_other_phase: Vec<_> = phased.by_ref().take(10).collect();
        let second_visit: Vec<_> = phased.by_ref().take(10).collect();
        let mut solo = presets::ijpeg(3);
        let expected_first: Vec<_> = solo.by_ref().take(10).collect();
        let expected_second: Vec<_> = solo.by_ref().take(10).collect();
        assert_eq!(first_visit, expected_first);
        assert_eq!(second_visit, expected_second);
    }

    #[test]
    fn single_phase_is_transparent() {
        let direct: Vec<_> = presets::gcc(9).take(300).collect();
        let phased: Vec<_> =
            Phased::new(vec![(77, presets::gcc_spec())], 9).unwrap().take(300).collect();
        assert_eq!(direct, phased);
    }

    #[test]
    fn all_phases_stay_in_asid_zero() {
        let t =
            Phased::new(vec![(30, presets::gcc_spec()), (30, presets::vortex_spec())], 5).unwrap();
        for rec in t.take(200) {
            assert_eq!(rec.pc.asid(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        let _ = Phased::new(vec![], 1);
    }

    #[test]
    #[should_panic(expected = "phase lengths must be positive")]
    fn zero_length_phase_panics() {
        let _ = Phased::new(vec![(0, presets::gcc_spec())], 1);
    }
}
