//! Wire helpers for shipping binary traces over a line protocol.
//!
//! A binary trace ([`write_trace`](crate::write_trace)) cannot ride a
//! newline-delimited JSON protocol as-is, so the serve ingestion path
//! ships it in base64 chunks, each guarded by a 64-bit FNV-1a checksum
//! and the whole trace by one fingerprint over every byte. Both codecs
//! live here so client and server agree by construction:
//!
//! * [`fnv1a`] — the same FNV-1a 64 the vm-harden run journal uses for
//!   its result fingerprints, applied to raw bytes. FNV-1a's update
//!   step `h' = (h ^ b) * PRIME` is invertible in `h` (the prime is
//!   odd), so *any* single-byte change yields a different digest —
//!   exactly the guarantee a per-chunk checksum needs against bit
//!   flips in transit.
//! * [`b64_encode`]/[`b64_decode`] — standard-alphabet base64 with
//!   padding, dependency-free, strict on decode (no whitespace, no
//!   missing padding) so a truncated chunk body is an error, never a
//!   silently shorter payload.

/// FNV-1a offset basis (matches `vm_harden::journal`'s fingerprint).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`. Single-byte changes always change the
/// digest (the update step is invertible), which is what makes it a
/// usable integrity check for upload chunks.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// An incremental [`fnv1a`] for data that arrives in chunks; feeding
/// chunks in order is bit-identical to hashing the concatenation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh digest (equals `fnv1a(&[])`).
    #[must_use]
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest so far.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `bytes` as standard base64 with `=` padding.
#[must_use]
pub fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for group in bytes.chunks(3) {
        let b0 = group[0] as u32;
        let b1 = group.get(1).copied().unwrap_or(0) as u32;
        let b2 = group.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(B64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if group.len() > 1 { B64_ALPHABET[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if group.len() > 2 { B64_ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

/// Why a base64 body failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum B64Error {
    /// Input length is not a multiple of 4 (truncated body).
    BadLength(usize),
    /// A byte outside the alphabet (or `=` anywhere but the tail).
    BadChar(char),
}

impl std::fmt::Display for B64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            B64Error::BadLength(n) => write!(f, "base64 length {n} is not a multiple of 4"),
            B64Error::BadChar(c) => write!(f, "invalid base64 character {c:?}"),
        }
    }
}

impl std::error::Error for B64Error {}

/// Decodes standard padded base64. Strict: length must be a multiple
/// of four, padding only in the last group, no whitespace.
///
/// # Errors
///
/// [`B64Error`] on any malformed input.
pub fn b64_decode(s: &str) -> Result<Vec<u8>, B64Error> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(B64Error::BadLength(bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks_exact(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = if last { quad.iter().rev().take_while(|&&b| b == b'=').count() } else { 0 };
        if pad > 2 {
            return Err(B64Error::BadChar('='));
        }
        let mut n: u32 = 0;
        for &b in &quad[..4 - pad] {
            let v = match b {
                b'A'..=b'Z' => b - b'A',
                b'a'..=b'z' => b - b'a' + 26,
                b'0'..=b'9' => b - b'0' + 52,
                b'+' => 62,
                b'/' => 63,
                other => return Err(B64Error::BadChar(other as char)),
            };
            n = (n << 6) | u32::from(v);
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_fnv_matches_one_shot_at_any_split() {
        let data: Vec<u8> = (0u16..800).map(|i| (i * 7 % 251) as u8).collect();
        let whole = fnv1a(&data);
        for split in [0, 1, 37, 400, 799, 800] {
            let mut inc = Fnv1a::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.digest(), whole, "split at {split}");
        }
    }

    #[test]
    fn single_byte_changes_always_change_the_digest() {
        let data: Vec<u8> = (0u16..256).map(|i| i as u8).collect();
        let base = fnv1a(&data);
        let mut copy = data.clone();
        for i in 0..copy.len() {
            copy[i] ^= 0x40;
            assert_ne!(fnv1a(&copy), base, "flip at byte {i} went undetected");
            copy[i] ^= 0x40;
        }
    }

    #[test]
    fn base64_round_trips_all_tail_lengths() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 256) as u8).collect();
        for len in 0..data.len() {
            let enc = b64_encode(&data[..len]);
            assert_eq!(b64_decode(&enc).unwrap(), &data[..len], "len {len}");
        }
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(b64_encode(b""), "");
        assert_eq!(b64_encode(b"f"), "Zg==");
        assert_eq!(b64_encode(b"fo"), "Zm8=");
        assert_eq!(b64_encode(b"foo"), "Zm9v");
        assert_eq!(b64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn base64_rejects_malformed_input() {
        assert_eq!(b64_decode("Zg="), Err(B64Error::BadLength(3)));
        assert_eq!(b64_decode("Zm9v Zg=="), Err(B64Error::BadLength(9)));
        assert!(matches!(b64_decode("Zm9$"), Err(B64Error::BadChar('$'))));
        assert!(matches!(b64_decode("===="), Err(B64Error::BadChar('='))));
        // Padding mid-stream is corruption, not formatting.
        assert!(matches!(b64_decode("Zg==Zg=="), Err(B64Error::BadChar('='))));
    }
}
