//! Trace records and the binary record/replay format.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use vm_types::{AccessKind, MAddr};

/// One data reference made by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataRef {
    /// The referenced address (user space for application traces).
    pub addr: MAddr,
    /// [`AccessKind::Load`] or [`AccessKind::Store`].
    pub kind: AccessKind,
}

impl DataRef {
    /// A load of `addr`.
    pub fn load(addr: MAddr) -> DataRef {
        DataRef { addr, kind: AccessKind::Load }
    }

    /// A store to `addr`.
    pub fn store(addr: MAddr) -> DataRef {
        DataRef { addr, kind: AccessKind::Store }
    }
}

/// One traced instruction: a fetch address plus at most one data
/// reference — the reference model of the paper's simulator pseudocode
/// (Section 3.1), which performs an I-side lookup for every instruction
/// and a D-side lookup for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstrRecord {
    /// The instruction's fetch address.
    pub pc: MAddr,
    /// The instruction's data reference, if it is a load or store.
    pub data: Option<DataRef>,
}

impl InstrRecord {
    /// An instruction with no memory operand.
    pub fn plain(pc: MAddr) -> InstrRecord {
        InstrRecord { pc, data: None }
    }

    /// A load instruction.
    pub fn load(pc: MAddr, addr: MAddr) -> InstrRecord {
        InstrRecord { pc, data: Some(DataRef::load(addr)) }
    }

    /// A store instruction.
    pub fn store(pc: MAddr, addr: MAddr) -> InstrRecord {
        InstrRecord { pc, data: Some(DataRef::store(addr)) }
    }
}

/// Magic number heading the binary trace format (`"JMVMTR01"`).
const MAGIC: u64 = u64::from_le_bytes(*b"JMVMTR01");

const TAG_PLAIN: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;

/// Error reading or writing a binary trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the trace magic number.
    BadMagic(u64),
    /// A record carried an unknown tag byte.
    BadTag(u8),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failure: {e}"),
            TraceIoError::BadMagic(m) => write!(f, "not a trace stream (magic {m:#018x})"),
            TraceIoError::BadTag(t) => write!(f, "corrupt trace record (tag {t})"),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> TraceIoError {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in the compact binary format. Pass a `&mut` writer to
/// keep using it afterwards. Returns the number of records written.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] when the underlying writer fails.
pub fn write_trace<W, I>(mut writer: W, records: I) -> Result<u64, TraceIoError>
where
    W: Write,
    I: IntoIterator<Item = InstrRecord>,
{
    writer.write_all(&MAGIC.to_le_bytes())?;
    let mut count = 0u64;
    for rec in records {
        let mut buf = [0u8; 1 + 8 + 8];
        let (tag, len) = match rec.data {
            None => (TAG_PLAIN, 1 + 8),
            Some(DataRef { kind: AccessKind::Load, .. }) => (TAG_LOAD, 1 + 8 + 8),
            Some(DataRef { kind: AccessKind::Store, .. }) => (TAG_STORE, 1 + 8 + 8),
            Some(DataRef { kind: AccessKind::Fetch, .. }) => {
                unreachable!("a data reference cannot be a fetch")
            }
        };
        buf[0] = tag;
        buf[1..9].copy_from_slice(&rec.pc.raw().to_le_bytes());
        if let Some(d) = rec.data {
            buf[9..17].copy_from_slice(&d.addr.raw().to_le_bytes());
        }
        writer.write_all(&buf[..len])?;
        count += 1;
    }
    writer.flush()?;
    Ok(count)
}

/// An iterator replaying a binary trace from any reader.
///
/// Iteration yields `Result` so that a truncated or corrupt stream is
/// reported rather than silently ended.
#[derive(Debug)]
pub struct ReplayTrace<R> {
    reader: R,
    failed: bool,
}

/// Opens a binary trace for replay, validating the magic number.
///
/// # Errors
///
/// Returns [`TraceIoError::BadMagic`] if the stream is not a trace, or
/// [`TraceIoError::Io`] on read failure.
pub fn read_trace<R: Read>(mut reader: R) -> Result<ReplayTrace<R>, TraceIoError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    let magic = u64::from_le_bytes(magic);
    if magic != MAGIC {
        return Err(TraceIoError::BadMagic(magic));
    }
    Ok(ReplayTrace { reader, failed: false })
}

impl<R: Read> ReplayTrace<R> {
    fn read_record(&mut self) -> Result<Option<InstrRecord>, TraceIoError> {
        let mut tag = [0u8; 1];
        match self.reader.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let mut pc = [0u8; 8];
        self.reader.read_exact(&mut pc)?;
        let pc = raw_to_addr(u64::from_le_bytes(pc))?;
        let data = match tag[0] {
            TAG_PLAIN => None,
            TAG_LOAD | TAG_STORE => {
                let mut a = [0u8; 8];
                self.reader.read_exact(&mut a)?;
                let addr = raw_to_addr(u64::from_le_bytes(a))?;
                let kind = if tag[0] == TAG_LOAD { AccessKind::Load } else { AccessKind::Store };
                Some(DataRef { addr, kind })
            }
            t => return Err(TraceIoError::BadTag(t)),
        };
        Ok(Some(InstrRecord { pc, data }))
    }
}

/// Rebuilds an [`MAddr`] from its raw tagged encoding: the space tag
/// lives in bits 32-33 and the ASID above bit 34 (user space only).
fn raw_to_addr(raw: u64) -> Result<MAddr, TraceIoError> {
    use vm_types::{AddressSpace, MAX_ASID};
    let offset = raw & 0xFFFF_FFFF;
    let tag = raw >> 32;
    // The full asid field, *before* narrowing: a truncating cast here
    // would let adversarial bytes slip past the range check and panic
    // the MAddr constructor instead of erroring.
    let (space, asid) = (tag & 0b11, tag >> 2);
    match (space, asid) {
        (0, asid) if asid <= u64::from(MAX_ASID) => Ok(MAddr::user_in(asid as u16, offset)),
        (1, 0) => Ok(MAddr::new(AddressSpace::Kernel, offset)),
        (2, 0) => Ok(MAddr::new(AddressSpace::Physical, offset)),
        _ => Err(TraceIoError::BadTag((tag & 0xFF) as u8)),
    }
}

impl<R: Read> Iterator for ReplayTrace<R> {
    type Item = Result<InstrRecord, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.read_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<InstrRecord> {
        vec![
            InstrRecord::plain(MAddr::user(0x1000)),
            InstrRecord::load(MAddr::user(0x1004), MAddr::user(0x8000)),
            InstrRecord::store(MAddr::user(0x1008), MAddr::user(0x8010)),
            InstrRecord::plain(MAddr::user(0x100c)),
        ]
    }

    #[test]
    fn round_trips_through_bytes() {
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, sample()).unwrap();
        assert_eq!(n, 4);
        let replay: Vec<_> = read_trace(buf.as_slice()).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(replay, sample());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        let replay: Vec<_> = read_trace(buf.as_slice()).unwrap().collect::<Result<_, _>>().unwrap();
        assert!(replay.is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"notatrace!!!"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic(_)));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn reports_bad_tag() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        buf.push(9); // invalid tag
        buf.extend_from_slice(&[0u8; 8]);
        let items: Vec<_> = read_trace(buf.as_slice()).unwrap().collect();
        assert_eq!(items.len(), 1);
        assert!(matches!(items[0], Err(TraceIoError::BadTag(9))));
    }

    #[test]
    fn truncated_record_is_an_error_not_silence() {
        let mut buf = Vec::new();
        write_trace(&mut buf, sample()).unwrap();
        buf.truncate(buf.len() - 3); // cut the last record short
        let items: Vec<_> = read_trace(buf.as_slice()).unwrap().collect();
        assert!(items.last().unwrap().is_err());
    }

    #[test]
    fn iteration_stops_after_error() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        buf.push(9);
        buf.extend_from_slice(&[0u8; 20]);
        let mut replay = read_trace(buf.as_slice()).unwrap();
        assert!(replay.next().unwrap().is_err());
        assert!(replay.next().is_none());
    }

    #[test]
    fn constructors_set_kinds() {
        let l = InstrRecord::load(MAddr::user(0), MAddr::user(4));
        assert_eq!(l.data.unwrap().kind, AccessKind::Load);
        let s = InstrRecord::store(MAddr::user(0), MAddr::user(4));
        assert_eq!(s.data.unwrap().kind, AccessKind::Store);
        assert!(InstrRecord::plain(MAddr::user(0)).data.is_none());
    }

    #[test]
    fn multiprogram_asids_round_trip() {
        let recs = vec![
            InstrRecord::load(MAddr::user_in(3, 0x400), MAddr::user_in(3, 0x8000)),
            InstrRecord::plain(MAddr::user_in(255, 0x7FFF_0000)),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, recs.clone()).unwrap();
        let replay: Vec<_> = read_trace(buf.as_slice()).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(replay, recs);
        assert_eq!(replay[0].pc.asid(), 3);
    }

    #[test]
    fn asid_on_kernel_space_is_rejected_as_corrupt() {
        // Hand-craft a record whose kernel address carries ASID bits —
        // an encoding no writer produces.
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        buf.push(0); // TAG_PLAIN
        let bogus: u64 = (0b101 << 32) | 0x1000; // kernel tag + asid 1
        buf.extend_from_slice(&bogus.to_le_bytes());
        let items: Vec<_> = read_trace(buf.as_slice()).unwrap().collect();
        assert!(items[0].is_err());
    }

    #[test]
    fn kernel_and_physical_addresses_round_trip() {
        let recs = vec![
            InstrRecord::load(MAddr::user(0x4), MAddr::kernel(0x1234)),
            InstrRecord::store(MAddr::user(0x8), MAddr::physical(0x5678)),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, recs.clone()).unwrap();
        let replay: Vec<_> = read_trace(buf.as_slice()).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(replay, recs);
    }
}
