//! Workload specifications: the tunable model behind [`crate::SyntheticTrace`].

use std::error::Error;
use std::fmt;

use vm_types::USER_SPACE_BYTES;

/// The instruction-stream model.
///
/// Code is laid out as `functions` contiguous functions starting at
/// `code_base`. Execution walks a function linearly; each instruction may
/// (with `call_prob`) call another function chosen by a Zipf distribution
/// (a few hot callees, a long tail — the classic profile of integer
/// codes), and at loop boundaries the walker branches back with
/// `loop_backedge_prob`, giving geometric iteration counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeSpec {
    /// Base user-space address of the text segment.
    pub code_base: u64,
    /// Number of functions in the program.
    pub functions: u32,
    /// Mean function length in instructions; actual lengths vary
    /// uniformly in `[avg/2, 3*avg/2]`.
    pub avg_fn_instrs: u32,
    /// Probability that an instruction is a call (when depth allows).
    pub call_prob: f64,
    /// Maximum simulated call depth.
    pub max_depth: u32,
    /// Probability of re-executing a loop body at its back edge.
    pub loop_backedge_prob: f64,
    /// Mean loop-body length in instructions.
    pub avg_loop_instrs: u32,
    /// Zipf skew for callee selection; larger values concentrate calls on
    /// fewer hot functions (1.0 is the classical Zipf distribution).
    pub call_zipf_s: f64,
}

impl CodeSpec {
    /// Total text-segment size in bytes (4-byte instructions), using the
    /// mean function length.
    pub fn approx_code_bytes(&self) -> u64 {
        u64::from(self.functions) * u64::from(self.avg_fn_instrs) * 4
    }
}

/// How a data region is accessed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// A streaming walk with the given byte stride, wrapping at the region
    /// end. High spatial locality (ijpeg's image buffers).
    Sequential {
        /// Bytes between consecutive accesses.
        stride: u64,
    },
    /// Pick a page by a Zipf distribution over the region's pages, stay
    /// on it for `dwell` accesses (temporal page locality — what the TLB
    /// sees), and within the dwell re-randomize the offset every
    /// `run_len` accesses (spatial locality — what cache lines see).
    ///
    /// * `zipf_s = 0` — uniform page choice (vortex-like, poor temporal
    ///   locality); larger values concentrate on hot pages.
    /// * `run_len = 1` — pointer-chase-like, poor spatial locality;
    ///   larger runs restore spatial locality.
    /// * `dwell` — accesses per page visit; real programs dwell for
    ///   hundreds of references, so small values model page thrash.
    RandomPage {
        /// Zipf skew across the region's pages.
        zipf_s: f64,
        /// Accesses per page visit before re-picking a page.
        dwell: u32,
        /// Consecutive 4-byte words accessed per offset pick.
        run_len: u32,
    },
    /// Accesses near the simulated stack pointer, which tracks call depth.
    Stack,
}

/// One weighted data region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataRegion {
    /// Base user-space address.
    pub base: u64,
    /// Region length in bytes.
    pub size: u64,
    /// Access pattern within the region.
    pub pattern: AccessPattern,
    /// Relative selection weight against the workload's other regions.
    pub weight: f64,
}

/// The data-reference model.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSpec {
    /// Fraction of instructions that reference data (loads + stores).
    pub data_ref_frac: f64,
    /// Fraction of data references that are stores.
    pub store_share: f64,
    /// Top-of-stack address; the stack grows down from here.
    pub stack_top: u64,
    /// Bytes per simulated stack frame.
    pub frame_bytes: u64,
    /// The weighted regions data references choose among.
    pub regions: Vec<DataRegion>,
}

/// A complete synthetic workload: code model + data model.
///
/// Build one directly or start from a [`crate::presets`] model and tweak:
///
/// ```
/// use vm_trace::presets;
///
/// let mut spec = presets::gcc_spec();
/// spec.code.functions /= 2; // half the code footprint
/// let trace = spec.build(99).unwrap();
/// assert!(trace.take(100).count() == 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Human-readable workload name (used in experiment output).
    pub name: String,
    /// The instruction-stream model.
    pub code: CodeSpec,
    /// The data-reference model.
    pub data: DataSpec,
}

impl WorkloadSpec {
    /// Validates the specification and instantiates its deterministic
    /// trace generator.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the model is degenerate (empty code, code
    /// or data escaping the 2 GB user space, zero-size or weightless
    /// regions, probabilities outside `[0, 1]`).
    pub fn build(&self, seed: u64) -> Result<crate::SyntheticTrace, SpecError> {
        self.validate()?;
        Ok(crate::SyntheticTrace::new(self.clone(), seed))
    }

    /// Checks the model without building a generator.
    ///
    /// # Errors
    ///
    /// See [`WorkloadSpec::build`].
    pub fn validate(&self) -> Result<(), SpecError> {
        let fail = |what: &'static str| Err(SpecError { name: self.name.clone(), what });
        let c = &self.code;
        if c.functions == 0 || c.avg_fn_instrs == 0 {
            return fail(
                "code model must have at least one function with at least one instruction",
            );
        }
        if c.max_depth == 0 {
            return fail("max call depth must be at least 1");
        }
        if c.avg_loop_instrs == 0 {
            return fail("loop length must be at least 1");
        }
        if c.avg_loop_instrs > (1 << 24) || c.avg_fn_instrs > (1 << 24) {
            return fail("function and loop lengths above 2^24 instructions are not meaningful");
        }
        let code_end = c.code_base.saturating_add(2 * c.approx_code_bytes());
        if code_end > USER_SPACE_BYTES {
            return fail("text segment exceeds the 2 GB user space");
        }
        for p in [c.call_prob, c.loop_backedge_prob, self.data.data_ref_frac, self.data.store_share]
        {
            if !(0.0..=1.0).contains(&p) {
                return fail("probabilities must lie in [0, 1]");
            }
        }
        if c.loop_backedge_prob >= 1.0 {
            return fail("a certain back edge would loop forever");
        }
        if self.data.regions.is_empty() {
            return fail("data model needs at least one region");
        }
        if self.data.stack_top > USER_SPACE_BYTES
            || self.data.frame_bytes < 4
            || !self.data.frame_bytes.is_multiple_of(4)
        {
            return fail(
                "stack must fit in user space with word-multiple frames of at least 4 bytes",
            );
        }
        if (u64::from(c.max_depth) + 1).saturating_mul(self.data.frame_bytes) > self.data.stack_top
        {
            return fail("stack would underflow below address zero at max depth");
        }
        for r in &self.data.regions {
            if r.size < 4 || !r.size.is_multiple_of(4) {
                return fail("regions must hold at least one 4-byte word and be word-multiple");
            }
            if r.base.saturating_add(r.size) > USER_SPACE_BYTES {
                return fail("region exceeds the 2 GB user space");
            }
            if r.weight <= 0.0 || !r.weight.is_finite() {
                return fail("region weights must be positive and finite");
            }
            match r.pattern {
                AccessPattern::Sequential { stride } if stride == 0 || stride > r.size => {
                    return fail("sequential stride must be in 1..=region size");
                }
                AccessPattern::RandomPage { zipf_s, dwell, run_len } => {
                    if run_len == 0 || dwell == 0 {
                        return fail("dwell and run length must be at least 1");
                    }
                    if zipf_s < 0.0 || !zipf_s.is_finite() {
                        return fail("zipf skew must be non-negative and finite");
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Approximate data footprint: the sum of region sizes.
    pub fn approx_data_bytes(&self) -> u64 {
        self.data.regions.iter().map(|r| r.size).sum()
    }
}

/// Error describing why a [`WorkloadSpec`] is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    name: String,
    what: &'static str,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload spec `{}`: {}", self.name, self.what)
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn presets_validate() {
        for spec in [presets::gcc_spec(), presets::vortex_spec(), presets::ijpeg_spec()] {
            spec.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn rejects_zero_functions() {
        let mut s = presets::ijpeg_spec();
        s.code.functions = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_oversized_code() {
        let mut s = presets::ijpeg_spec();
        s.code.functions = u32::MAX;
        let err = s.validate().unwrap_err();
        assert!(err.to_string().contains("2 GB"));
    }

    #[test]
    fn rejects_bad_probability() {
        let mut s = presets::ijpeg_spec();
        s.code.call_prob = 1.5;
        assert!(s.validate().is_err());
        let mut s = presets::ijpeg_spec();
        s.data.store_share = -0.1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_certain_backedge() {
        let mut s = presets::ijpeg_spec();
        s.code.loop_backedge_prob = 1.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_empty_regions() {
        let mut s = presets::ijpeg_spec();
        s.data.regions.clear();
        assert!(s.validate().is_err());
        let mut s = presets::ijpeg_spec();
        s.data.regions[0].size = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_nonpositive_weight() {
        let mut s = presets::ijpeg_spec();
        s.data.regions[0].weight = 0.0;
        assert!(s.validate().is_err());
        s.data.regions[0].weight = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_zero_stride() {
        let mut s = presets::ijpeg_spec();
        s.data.regions[0].pattern = AccessPattern::Sequential { stride: 0 };
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_zero_run_len() {
        let mut s = presets::vortex_spec();
        s.data.regions[0].pattern = AccessPattern::RandomPage { zipf_s: 0.5, dwell: 8, run_len: 0 };
        assert!(s.validate().is_err());
        s.data.regions[0].pattern = AccessPattern::RandomPage { zipf_s: 0.5, dwell: 0, run_len: 1 };
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_stack_underflow() {
        let mut s = presets::ijpeg_spec();
        s.data.stack_top = 100;
        assert!(s.validate().is_err());
    }

    #[test]
    fn footprints_are_plausible() {
        let gcc = presets::gcc_spec();
        assert!(gcc.code.approx_code_bytes() > 512 * 1024, "gcc should have a big text segment");
        let ijpeg = presets::ijpeg_spec();
        assert!(ijpeg.code.approx_code_bytes() < 256 * 1024, "ijpeg text should be small");
        assert!(presets::vortex_spec().approx_data_bytes() > 4 << 20);
    }

    #[test]
    fn error_display_names_the_workload() {
        let mut s = presets::gcc_spec();
        s.code.functions = 0;
        let err = s.validate().unwrap_err();
        assert!(err.to_string().contains("gcc"));
    }
}
