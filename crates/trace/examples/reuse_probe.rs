use vm_trace::{presets, TraceStats};
fn main() {
    for (n, t) in
        [("gcc", presets::gcc(1)), ("vortex", presets::vortex(1)), ("ijpeg", presets::ijpeg(1))]
    {
        let s = TraceStats::analyze(t.take(300_000));
        println!(
            "{n}: reuse={:.2} data_pages={} code_pages={}",
            s.data_block_reuse(),
            s.data_pages,
            s.code_pages
        );
    }
}
