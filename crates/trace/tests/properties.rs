//! Randomized tests of the workload model and trace format, driven by a
//! seeded [`SplitMix64`] stream (the workspace carries no third-party
//! property-testing framework).

use vm_trace::{
    read_trace, write_trace, AccessPattern, CodeSpec, DataRegion, DataSpec, InstrRecord,
    WorkloadSpec,
};
use vm_types::{AccessKind, AddressSpace, MAddr, SplitMix64};

const CASES: usize = 64;

fn any_record(rng: &mut SplitMix64) -> InstrRecord {
    let pc = MAddr::user(rng.next_below(1 << 31) & !3);
    if rng.chance(0.5) {
        let a = MAddr::user(rng.next_below(1 << 31) & !3);
        if rng.chance(0.5) {
            InstrRecord::store(pc, a)
        } else {
            InstrRecord::load(pc, a)
        }
    } else {
        InstrRecord::plain(pc)
    }
}

fn any_pattern(rng: &mut SplitMix64) -> AccessPattern {
    match rng.next_below(3) {
        0 => AccessPattern::Sequential { stride: (1 + rng.next_below(63)) * 4 },
        1 => AccessPattern::RandomPage {
            zipf_s: rng.next_below(20) as f64 / 10.0,
            dwell: 1 + rng.next_below(199) as u32,
            run_len: 1 + rng.next_below(63) as u32,
        },
        _ => AccessPattern::Stack,
    }
}

fn any_spec(rng: &mut SplitMix64) -> WorkloadSpec {
    let code = CodeSpec {
        code_base: 0x40_0000,
        functions: 1 + rng.next_below(63) as u32,
        avg_fn_instrs: 8 + rng.next_below(504) as u32,
        call_prob: rng.next_below(50) as f64 / 1000.0,
        max_depth: 1 + rng.next_below(15) as u32,
        loop_backedge_prob: rng.next_below(95) as f64 / 100.0,
        avg_loop_instrs: 2 + rng.next_below(62) as u32,
        call_zipf_s: rng.next_below(20) as f64 / 10.0,
    };
    let n_regions = 1 + rng.next_below(4) as usize;
    let regions = (0..n_regions)
        .map(|_| DataRegion {
            base: 0x1000_0000 + rng.next_below(1024) * (1 << 20),
            size: (1 + rng.next_below(511)) * 4096,
            pattern: any_pattern(rng),
            weight: (1 + rng.next_below(99)) as f64,
        })
        .collect();
    let data = DataSpec {
        data_ref_frac: rng.next_below(100) as f64 / 100.0,
        store_share: rng.next_below(100) as f64 / 100.0,
        stack_top: 0x7FFF_F000,
        frame_bytes: 128,
        regions,
    };
    WorkloadSpec { name: "prop".into(), code, data }
}

#[test]
fn record_format_round_trips() {
    let mut rng = SplitMix64::new(0x2ec);
    for case in 0..CASES {
        let n = rng.next_below(300) as usize;
        let records: Vec<_> = (0..n).map(|_| any_record(&mut rng)).collect();
        let mut buf = Vec::new();
        let written = write_trace(&mut buf, records.iter().copied()).unwrap();
        assert_eq!(written, records.len() as u64, "case {case}");
        let back: Vec<_> = read_trace(buf.as_slice()).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(back, records, "case {case}");
    }
}

#[test]
fn generated_specs_validate_and_generate() {
    let mut rng = SplitMix64::new(0x59ec);
    for case in 0..CASES {
        let spec = any_spec(&mut rng);
        let seed = rng.next_u64();
        // Every spec from the generator is structurally valid...
        spec.validate().expect("generated spec must validate");
        // ...and produces a well-formed, deterministic stream.
        let a: Vec<_> = spec.build(seed).unwrap().take(2_000).collect();
        let b: Vec<_> = spec.build(seed).unwrap().take(2_000).collect();
        assert_eq!(a, b, "case {case}");
        for rec in &a {
            assert_eq!(rec.pc.space(), AddressSpace::User, "case {case}");
            assert_eq!(rec.pc.offset() % 4, 0, "case {case}");
            if let Some(d) = rec.data {
                assert_eq!(d.addr.space(), AddressSpace::User, "case {case}");
                assert!(d.addr.offset() < 1 << 31, "case {case}");
                assert!(d.kind == AccessKind::Load || d.kind == AccessKind::Store, "case {case}");
            }
        }
    }
}

#[test]
fn data_fraction_tracks_the_spec() {
    let mut rng = SplitMix64::new(0xf2ac);
    for case in 0..16 {
        let spec = any_spec(&mut rng);
        let seed = rng.next_u64();
        let n = 20_000usize;
        let refs = spec.build(seed).unwrap().take(n).filter(|r| r.data.is_some()).count();
        let frac = refs as f64 / n as f64;
        // Binomial noise at n=20k is well under 0.02.
        assert!(
            (frac - spec.data.data_ref_frac).abs() < 0.03,
            "case {case}: observed {frac} wanted {}",
            spec.data.data_ref_frac
        );
    }
}

#[test]
fn different_seeds_usually_differ() {
    let mut rng = SplitMix64::new(0xd1f);
    let mut tried = 0;
    while tried < 32 {
        let spec = any_spec(&mut rng);
        let seed = rng.next_u64();
        if spec.data.data_ref_frac <= 0.05 {
            continue; // nearly-pure instruction streams can collide; skip
        }
        tried += 1;
        let a: Vec<_> = spec.build(seed).unwrap().take(500).collect();
        let b: Vec<_> = spec.build(seed ^ 0xDEAD_BEEF).unwrap().take(500).collect();
        assert_ne!(a, b, "distinct seeds produced identical streams");
    }
}
