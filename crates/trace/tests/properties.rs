//! Property-based tests of the workload model and trace format.

use proptest::prelude::*;
use vm_trace::{
    read_trace, write_trace, AccessPattern, CodeSpec, DataRegion, DataSpec, InstrRecord,
    WorkloadSpec,
};
use vm_types::{AccessKind, AddressSpace, MAddr};

fn any_record() -> impl Strategy<Value = InstrRecord> {
    let addr = (0u64..(1 << 31)).prop_map(|o| MAddr::user(o & !3));
    (addr.clone(), prop::option::of((addr, any::<bool>()))).prop_map(|(pc, data)| match data {
        None => InstrRecord::plain(pc),
        Some((a, true)) => InstrRecord::store(pc, a),
        Some((a, false)) => InstrRecord::load(pc, a),
    })
}

fn any_pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        (1u64..64).prop_map(|stride| AccessPattern::Sequential { stride: stride * 4 }),
        (0u32..20, 1u32..200, 1u32..64).prop_map(|(s, dwell, run_len)| {
            AccessPattern::RandomPage { zipf_s: f64::from(s) / 10.0, dwell, run_len }
        }),
        Just(AccessPattern::Stack),
    ]
}

fn any_spec() -> impl Strategy<Value = WorkloadSpec> {
    let code = (1u32..64, 8u32..512, 0u32..50, 1u32..16, 0u32..95, 2u32..64, 0u32..20).prop_map(
        |(functions, avg_fn, call_pm, depth, backedge_pct, loop_len, zipf)| CodeSpec {
            code_base: 0x40_0000,
            functions,
            avg_fn_instrs: avg_fn,
            call_prob: f64::from(call_pm) / 1000.0,
            max_depth: depth,
            loop_backedge_prob: f64::from(backedge_pct) / 100.0,
            avg_loop_instrs: loop_len,
            call_zipf_s: f64::from(zipf) / 10.0,
        },
    );
    let region = (0u64..1024, 1u64..512, any_pattern(), 1u32..100).prop_map(
        |(base_mb, size_kb, pattern, weight)| DataRegion {
            base: 0x1000_0000 + base_mb * (1 << 20),
            size: size_kb * 4096,
            pattern,
            weight: f64::from(weight),
        },
    );
    let data = (prop::collection::vec(region, 1..5), 0u32..100, 0u32..100).prop_map(
        |(regions, refs_pct, stores_pct)| DataSpec {
            data_ref_frac: f64::from(refs_pct) / 100.0,
            store_share: f64::from(stores_pct) / 100.0,
            stack_top: 0x7FFF_F000,
            frame_bytes: 128,
            regions,
        },
    );
    (code, data).prop_map(|(code, data)| WorkloadSpec { name: "prop".into(), code, data })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn record_format_round_trips(records in prop::collection::vec(any_record(), 0..300)) {
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, records.clone()).unwrap();
        prop_assert_eq!(n, records.len() as u64);
        let back: Vec<_> = read_trace(buf.as_slice()).unwrap().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn generated_specs_validate_and_generate(spec in any_spec(), seed in any::<u64>()) {
        // Every spec from the generator is structurally valid...
        spec.validate().expect("generated spec must validate");
        // ...and produces a well-formed, deterministic stream.
        let a: Vec<_> = spec.build(seed).unwrap().take(2_000).collect();
        let b: Vec<_> = spec.build(seed).unwrap().take(2_000).collect();
        prop_assert_eq!(&a, &b);
        for rec in &a {
            prop_assert_eq!(rec.pc.space(), AddressSpace::User);
            prop_assert_eq!(rec.pc.offset() % 4, 0);
            if let Some(d) = rec.data {
                prop_assert_eq!(d.addr.space(), AddressSpace::User);
                prop_assert!(d.addr.offset() < 1 << 31);
                prop_assert!(d.kind == AccessKind::Load || d.kind == AccessKind::Store);
            }
        }
    }

    #[test]
    fn data_fraction_tracks_the_spec(spec in any_spec(), seed in any::<u64>()) {
        let n = 20_000usize;
        let refs = spec.build(seed).unwrap().take(n).filter(|r| r.data.is_some()).count();
        let frac = refs as f64 / n as f64;
        // Binomial noise at n=20k is well under 0.02.
        prop_assert!((frac - spec.data.data_ref_frac).abs() < 0.03,
            "observed {} wanted {}", frac, spec.data.data_ref_frac);
    }

    #[test]
    fn different_seeds_usually_differ(spec in any_spec(), seed in any::<u64>()) {
        prop_assume!(spec.data.data_ref_frac > 0.05);
        let a: Vec<_> = spec.build(seed).unwrap().take(500).collect();
        let b: Vec<_> = spec.build(seed ^ 0xDEAD_BEEF).unwrap().take(500).collect();
        prop_assert_ne!(a, b);
    }
}
