//! A minimal JSON document model, writer, and parser.
//!
//! The workspace builds in hermetic environments with no third-party
//! crates, so the observability layer carries its own JSON support. It
//! covers exactly what the export formats need: building values, writing
//! them compactly with correct string escaping, and parsing documents
//! back for validation in tests.

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order (they are association lists, not
/// maps), so serialized output is deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as an ordered list of key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks a key up in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if exactly
    /// representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Num(f64::from(n))
    }
}

impl From<u16> for Value {
    fn from(n: u16) -> Value {
        Value::Num(f64::from(n))
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

/// Appends `s` to `out` with JSON string escaping (quotes included).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self);
        f.write_str(&s)
    }
}

/// Error from [`parse`]: what went wrong and at which byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub what: &'static str,
    /// Byte offset in the input where parsing failed.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: &'static str) -> Result<T, ParseError> {
        Err(ParseError { what, at: self.pos })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err("invalid literal")
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    s.push(c);
                                    self.pos += 4;
                                }
                                // Surrogate pairs are out of scope for the
                                // simulator's own output; reject cleanly.
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| ParseError { what: "invalid UTF-8", at: self.pos })?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Num(n)),
            Err(_) => Err(ParseError { what: "invalid number", at: start }),
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(Value::Arr(items));
                    }
                    self.expect(b',', "expected ',' or ']'")?;
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':', "expected ':'")?;
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(Value::Obj(pairs));
                    }
                    self.expect(b',', "expected ',' or '}'")?;
                }
            }
            Some(_) => self.err("unexpected character"),
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::from(42u64).to_string(), "42");
        assert_eq!(Value::Num(1e15).to_string(), "1000000000000000");
    }

    #[test]
    fn objects_preserve_order_and_round_trip() {
        let v = Value::obj([("b", 1u64.into()), ("a", "x".into()), ("c", Value::Null)]);
        let text = v.to_string();
        assert_eq!(text, "{\"b\":1,\"a\":\"x\",\"c\":null}");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".to_owned());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse("{\"a\":[1,2,{\"b\":[]}],\"c\":{}}").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
