//! Log-scaled histograms, labeled counters, and run snapshots.

use std::fmt;

use vm_types::HandlerLevel;

use crate::event::Event;
use crate::json::Value;
use crate::sink::Sink;

/// Number of power-of-two buckets in a [`LogHist`]; covers values up to
/// `2^63`, i.e. every `u64`.
const BUCKETS: usize = 64;

/// A power-of-two–bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples whose value `v` satisfies
/// `floor(log2(max(v,1))) == i`, so bucket 0 holds 0 and 1, bucket 1
/// holds 2–3, bucket 2 holds 4–7, and so on. Insertion is O(1) with no
/// allocation; the shape suits heavy-tailed latency-like quantities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHist {
    fn default() -> LogHist {
        LogHist { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl LogHist {
    /// Creates an empty histogram.
    pub fn new() -> LogHist {
        LogHist::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (exact), or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (exact), or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile `q` in `[0, 1]`.
    ///
    /// Resolves to the upper edge of the bucket containing the q-th
    /// sample (clamped to the observed max), so the estimate is within a
    /// factor of 2 of the true value — adequate for p50/p90/p99 summaries
    /// of log-distributed quantities. Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return Some(upper.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Condenses the histogram into a fixed summary.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            max: self.max().unwrap_or(0),
        }
    }

    /// Non-empty buckets as `(bucket_lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << i }, n))
            .collect()
    }

    /// Serializes the summary plus the sparse bucket list.
    pub fn to_json(&self) -> Value {
        let s = self.summary();
        Value::obj([
            ("count", s.count.into()),
            ("mean", s.mean.into()),
            ("p50", s.p50.into()),
            ("p90", s.p90.into()),
            ("p99", s.p99.into()),
            ("max", s.max.into()),
            (
                "buckets",
                Value::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, n)| Value::Arr(vec![lo.into(), n.into()]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Fixed-size summary of a [`LogHist`].
///
/// Quantiles are bucket-resolution estimates (within 2× of exact); `max`
/// is exact.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean (exact).
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Largest sample (exact).
    pub max: u64,
}

impl fmt::Display for HistSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// Per-event-kind counters, indexed the way the report tables need them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// TLB misses by `[user, kernel, root]` handler level.
    pub tlb_misses: [u64; 3],
    /// TLB misses taken on instruction fetches (any level).
    pub itlb_misses: u64,
    /// TLB misses taken on data references (any level).
    pub dtlb_misses: u64,
    /// Completed walks by handler level.
    pub walks: [u64; 3],
    /// Handler-code cache evictions by `[l1i, l1d, l2i, l2d]`.
    pub handler_evictions: [u64; 4],
    /// Context-switch TLB flushes.
    pub flushes: u64,
    /// TLB entries lost to flushes, total.
    pub flush_entries_lost: u64,
    /// Interrupts by handler level.
    pub interrupts: [u64; 3],
    /// Cache misses filled from L2 / from memory.
    pub cache_fills: [u64; 2],
    /// TLB entries displaced by insertion (I-TLB, D-TLB).
    pub tlb_evictions: [u64; 2],
}

impl ObsCounters {
    fn merge(&mut self, other: &ObsCounters) {
        for (a, b) in self.tlb_misses.iter_mut().zip(other.tlb_misses) {
            *a += b;
        }
        self.itlb_misses += other.itlb_misses;
        self.dtlb_misses += other.dtlb_misses;
        for (a, b) in self.walks.iter_mut().zip(other.walks) {
            *a += b;
        }
        for (a, b) in self.handler_evictions.iter_mut().zip(other.handler_evictions) {
            *a += b;
        }
        self.flushes += other.flushes;
        self.flush_entries_lost += other.flush_entries_lost;
        for (a, b) in self.interrupts.iter_mut().zip(other.interrupts) {
            *a += b;
        }
        for (a, b) in self.cache_fills.iter_mut().zip(other.cache_fills) {
            *a += b;
        }
        for (a, b) in self.tlb_evictions.iter_mut().zip(other.tlb_evictions) {
            *a += b;
        }
    }

    fn levels_json(v: &[u64; 3]) -> Value {
        Value::obj([("user", v[0].into()), ("kernel", v[1].into()), ("root", v[2].into())])
    }

    /// Serializes the counters as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("tlb_misses", Self::levels_json(&self.tlb_misses)),
            ("itlb_misses", self.itlb_misses.into()),
            ("dtlb_misses", self.dtlb_misses.into()),
            ("walks", Self::levels_json(&self.walks)),
            (
                "handler_evictions",
                Value::obj([
                    ("l1i", self.handler_evictions[0].into()),
                    ("l1d", self.handler_evictions[1].into()),
                    ("l2i", self.handler_evictions[2].into()),
                    ("l2d", self.handler_evictions[3].into()),
                ]),
            ),
            ("flushes", self.flushes.into()),
            ("flush_entries_lost", self.flush_entries_lost.into()),
            ("interrupts", Self::levels_json(&self.interrupts)),
            (
                "cache_fills",
                Value::obj([
                    ("l2", self.cache_fills[0].into()),
                    ("mem", self.cache_fills[1].into()),
                ]),
            ),
            (
                "tlb_evictions",
                Value::obj([
                    ("itlb", self.tlb_evictions[0].into()),
                    ("dtlb", self.tlb_evictions[1].into()),
                ]),
            ),
        ])
    }
}

/// Aggregated observability results for one simulation run.
///
/// Carried on `SimReport` when a stats-computing sink was attached, and
/// merged across runs of the same system for experiment summary tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsSnapshot {
    /// Event counters by kind.
    pub counters: ObsCounters,
    /// Cycles per completed user-level page-table walk.
    pub walk_cycles: LogHist,
    /// User instructions between consecutive TLB misses.
    pub inter_miss: LogHist,
    /// Memory references issued per walk (handler footprint).
    pub walk_memrefs: LogHist,
}

impl ObsSnapshot {
    /// Merges another snapshot into this one (histograms and counters add).
    pub fn merge(&mut self, other: &ObsSnapshot) {
        self.counters.merge(&other.counters);
        self.walk_cycles.merge(&other.walk_cycles);
        self.inter_miss.merge(&other.inter_miss);
        self.walk_memrefs.merge(&other.walk_memrefs);
    }

    /// Total TLB misses across all levels.
    pub fn total_tlb_misses(&self) -> u64 {
        self.counters.tlb_misses.iter().sum()
    }

    /// Serializes the snapshot as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("counters", self.counters.to_json()),
            ("walk_cycles", self.walk_cycles.to_json()),
            ("inter_miss", self.inter_miss.to_json()),
            ("walk_memrefs", self.walk_memrefs.to_json()),
        ])
    }
}

/// A sink that aggregates events into an [`ObsSnapshot`].
///
/// This is the sink the CLI attaches for `--events`/`--chrome-trace` runs
/// and the reconciliation tests use to cross-check simulator counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSink {
    snap: ObsSnapshot,
    last_miss_at: Option<u64>,
}

impl StatsSink {
    /// Creates an empty stats sink.
    pub fn new() -> StatsSink {
        StatsSink::default()
    }

    /// The snapshot accumulated so far.
    pub fn snap(&self) -> &ObsSnapshot {
        &self.snap
    }

    /// Consumes the sink, returning its snapshot.
    pub fn into_snapshot(self) -> ObsSnapshot {
        self.snap
    }
}

fn level_ix(level: HandlerLevel) -> usize {
    match level {
        HandlerLevel::User => 0,
        HandlerLevel::Kernel => 1,
        HandlerLevel::Root => 2,
    }
}

impl Sink for StatsSink {
    fn emit(&mut self, now: u64, ev: &Event) {
        let c = &mut self.snap.counters;
        match *ev {
            Event::TlbMiss { class, level, .. } => {
                c.tlb_misses[level_ix(level)] += 1;
                if class.is_data() {
                    c.dtlb_misses += 1;
                } else {
                    c.itlb_misses += 1;
                }
                if level == HandlerLevel::User {
                    if let Some(prev) = self.last_miss_at {
                        self.snap.inter_miss.record(now.saturating_sub(prev));
                    }
                    self.last_miss_at = Some(now);
                }
            }
            Event::WalkComplete { level, cycles, memrefs } => {
                c.walks[level_ix(level)] += 1;
                if level == HandlerLevel::User {
                    self.snap.walk_cycles.record(cycles);
                    self.snap.walk_memrefs.record(memrefs);
                }
            }
            Event::HandlerEviction { which_cache } => {
                c.handler_evictions[which_cache as usize] += 1;
            }
            Event::ContextSwitchFlush { entries_lost } => {
                c.flushes += 1;
                c.flush_entries_lost += u64::from(entries_lost);
            }
            Event::Interrupt { level } => {
                c.interrupts[level_ix(level)] += 1;
            }
            Event::CacheMiss { filled_from, .. } => {
                c.cache_fills[usize::from(filled_from.missed_l2())] += 1;
            }
            Event::TlbEviction { class, .. } => {
                c.tlb_evictions[usize::from(class.is_data())] += 1;
            }
            // Sweep, serve, supervision, and fleet lifecycle markers
            // are emitted outside any single simulation; there is
            // nothing to aggregate per run.
            Event::SweepStarted { .. }
            | Event::SweepPointDone { .. }
            | Event::PointFailed { .. }
            | Event::PointRetried { .. }
            | Event::RunResumed { .. }
            | Event::JobAdmitted { .. }
            | Event::JobShed { .. }
            | Event::JobDone { .. }
            | Event::DrainStarted { .. }
            | Event::WorkerSpawned { .. }
            | Event::WorkerCrashed { .. }
            | Event::WorkerRestarted { .. }
            | Event::BreakerTripped { .. }
            | Event::ShardDispatched { .. }
            | Event::ShardHedged { .. }
            | Event::BackendEvicted { .. }
            | Event::BackendJoined { .. }
            | Event::BackendProbation { .. }
            | Event::ResultDiverged { .. }
            | Event::AuditPassed { .. }
            | Event::AuditFailed { .. }
            | Event::BackendQuarantined { .. }
            | Event::BackendRejoined { .. }
            | Event::BackendRecovered { .. }
            | Event::FleetMerged { .. }
            | Event::UploadStarted { .. }
            | Event::ChunkReceived { .. }
            | Event::UploadCommitted { .. }
            | Event::UploadRejected { .. }
            | Event::UploadGc { .. } => {}
        }
    }

    fn reset(&mut self) {
        *self = StatsSink::default();
    }

    fn snapshot(&self) -> Option<ObsSnapshot> {
        Some(self.snap.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CacheId;
    use vm_types::{AccessKind, AddressSpace, MissClass, Vpn};

    #[test]
    fn hist_buckets_powers_of_two() {
        let mut h = LogHist::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        let buckets = h.nonzero_buckets();
        // 0,1 → bucket 0; 2,3 → 2; 4,7 → 4; 8 → 8; 1023 → 512; 1024 → 1024.
        assert_eq!(buckets, vec![(0, 2), (2, 2), (4, 2), (8, 1), (512, 1), (1024, 1)]);
    }

    #[test]
    fn hist_quantiles_bracket_the_data() {
        let mut h = LogHist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        // True median is 500; bucket resolution allows up to 2× error.
        assert!((256..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), Some(1000));
        assert!(h.quantile(0.0).unwrap() >= 1);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_hist_is_well_behaved() {
        let h = LogHist::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn merge_is_sum() {
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        let mut whole = LogHist::new();
        for v in [3u64, 9, 100] {
            a.record(v);
            whole.record(v);
        }
        for v in [1u64, 70000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn stats_sink_counts_events() {
        let mut s = StatsSink::new();
        let vpn = Vpn::new(AddressSpace::User, 5);
        s.emit(
            100,
            &Event::TlbMiss { class: AccessKind::Fetch, level: HandlerLevel::User, vpn, asid: 0 },
        );
        s.emit(
            150,
            &Event::TlbMiss { class: AccessKind::Load, level: HandlerLevel::User, vpn, asid: 0 },
        );
        s.emit(150, &Event::WalkComplete { level: HandlerLevel::User, cycles: 30, memrefs: 2 });
        s.emit(150, &Event::HandlerEviction { which_cache: CacheId::L2D });
        s.emit(160, &Event::ContextSwitchFlush { entries_lost: 12 });
        s.emit(170, &Event::Interrupt { level: HandlerLevel::Root });
        s.emit(180, &Event::CacheMiss { class: AccessKind::Load, filled_from: MissClass::Memory });
        s.emit(190, &Event::TlbEviction { class: AccessKind::Load, victim: vpn });

        let snap = s.snapshot().unwrap();
        assert_eq!(snap.counters.tlb_misses, [2, 0, 0]);
        assert_eq!(snap.counters.itlb_misses, 1);
        assert_eq!(snap.counters.dtlb_misses, 1);
        assert_eq!(snap.counters.walks, [1, 0, 0]);
        assert_eq!(snap.counters.handler_evictions, [0, 0, 0, 1]);
        assert_eq!(snap.counters.flushes, 1);
        assert_eq!(snap.counters.flush_entries_lost, 12);
        assert_eq!(snap.counters.interrupts, [0, 0, 1]);
        assert_eq!(snap.counters.cache_fills, [0, 1]);
        assert_eq!(snap.counters.tlb_evictions, [0, 1]);
        // One inter-miss gap was recorded: 150 - 100 = 50.
        assert_eq!(snap.inter_miss.count(), 1);
        assert_eq!(snap.inter_miss.max(), Some(50));
        assert_eq!(snap.walk_cycles.max(), Some(30));
        assert_eq!(snap.total_tlb_misses(), 2);
    }

    #[test]
    fn snapshot_merge_adds() {
        let mut s1 = StatsSink::new();
        let mut s2 = StatsSink::new();
        s1.emit(1, &Event::Interrupt { level: HandlerLevel::User });
        s2.emit(2, &Event::Interrupt { level: HandlerLevel::User });
        s2.emit(3, &Event::WalkComplete { level: HandlerLevel::User, cycles: 8, memrefs: 1 });
        let mut merged = s1.snapshot().unwrap();
        merged.merge(&s2.snapshot().unwrap());
        assert_eq!(merged.counters.interrupts[0], 2);
        assert_eq!(merged.walk_cycles.count(), 1);
    }

    #[test]
    fn snapshot_json_parses() {
        let mut s = StatsSink::new();
        s.emit(1, &Event::WalkComplete { level: HandlerLevel::User, cycles: 12, memrefs: 3 });
        let text = s.snapshot().unwrap().to_json().to_string();
        let v = crate::json::parse(&text).unwrap();
        assert_eq!(v.get("walk_cycles").unwrap().get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = StatsSink::new();
        s.emit(9, &Event::Interrupt { level: HandlerLevel::User });
        s.reset();
        assert_eq!(s.snapshot().unwrap(), ObsSnapshot::default());
    }
}
