//! `vm-obs` — zero-cost event tracing, histograms, and run telemetry for
//! the Jacob & Mudge (ASPLOS 1998) reproduction.
//!
//! The simulator in `vm-core` is generic over a [`Sink`]. The default,
//! [`NopSink`], has `ENABLED = false`: every instrumentation site is
//! guarded by `if S::ENABLED { … }`, a compile-time-constant branch the
//! optimizer deletes, so the un-instrumented simulator is exactly as fast
//! as before the observability layer existed. Attaching a real sink
//! monomorphizes a second copy of the simulator that emits typed
//! [`Event`]s — TLB misses, completed walks, handler cache evictions,
//! context-switch flushes, interrupts — timestamped by user instructions
//! retired.
//!
//! What you can do with the events:
//!
//! * [`StatsSink`] aggregates them into an [`ObsSnapshot`]: log-scaled
//!   [`LogHist`] histograms of walk latency, inter-miss instruction
//!   distance, and per-walk memory footprint, plus labeled counters.
//!   Snapshots merge, so experiment drivers can combine runs per system.
//! * [`JsonlSink`] streams them as JSON Lines for ad-hoc analysis.
//! * [`ChromeTraceSink`] writes Chrome `trace_event` JSON that loads in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//! * [`RecordingSink`] keeps them in memory for tests; the reconciliation
//!   suite cross-checks event counts against the simulator's own
//!   counters.
//!
//! Combinators: [`Tee`] fans out to two sinks, [`SharedSink`] lets a
//! driver keep a handle on a sink the simulator owns. The crate also
//! exposes the minimal [`json`] module the exporters are built on (the
//! workspace builds offline, with no third-party crates).
//!
//! ```
//! use vm_obs::{Event, Sink, StatsSink};
//! use vm_types::HandlerLevel;
//!
//! let mut stats = StatsSink::new();
//! stats.emit(100, &Event::WalkComplete {
//!     level: HandlerLevel::User,
//!     cycles: 42,
//!     memrefs: 3,
//! });
//! let snap = stats.snapshot().unwrap();
//! assert_eq!(snap.walk_cycles.count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod reporter;
pub mod sink;
pub mod snapshot;
pub mod stats;

pub use event::{CacheId, Event, EvictReason};
pub use export::{summary_line, ChromeTraceSink, JsonlSink};
pub use reporter::{set_global_verbosity, Reporter, Verbosity};
pub use sink::{NopSink, RecordingSink, SharedSink, Sink, Tee};
pub use snapshot::{SnapshotCheckpoint, SnapshotSink};
pub use stats::{HistSummary, LogHist, ObsCounters, ObsSnapshot, StatsSink};
