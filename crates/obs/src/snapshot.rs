//! Periodic progress checkpoints over a live event stream.
//!
//! [`SnapshotSink`] wraps a [`StatsSink`] and fires a callback with the
//! partial [`ObsSnapshot`] every `interval` retired instructions. The
//! schedule is driven entirely by the simulation's own instruction
//! clock (`now`), never wall time, so an attached snapshot sink is
//! deterministic: the same trace produces the same checkpoints at the
//! same instants, and because sinks are observers by construction the
//! simulated results are bit-identical with or without one attached.
//!
//! The instruction clock restarts at the warm-up boundary (the core
//! resets sinks there so counters reconcile with the report). The sink
//! keeps a cumulative instruction count across those resets, so a
//! consumer tracking overall progress sees a monotonic `instrs` even
//! though `now` and the snapshot itself restart per phase.

use crate::event::Event;
use crate::sink::Sink;
use crate::stats::{ObsSnapshot, StatsSink};

/// One fired checkpoint, passed by reference to the callback.
#[derive(Debug)]
pub struct SnapshotCheckpoint<'a> {
    /// 1-based checkpoint ordinal, monotonic across phase resets.
    pub seq: u64,
    /// Instruction clock within the current phase (warm-up or measure).
    pub now: u64,
    /// Cumulative instructions across phases — monotonic for the whole
    /// simulation even though `now` restarts at the warm-up boundary.
    pub instrs: u64,
    /// The partial snapshot aggregated since the last phase reset.
    pub snapshot: &'a ObsSnapshot,
}

/// A [`Sink`] that aggregates like [`StatsSink`] and additionally fires
/// `callback` once per `interval` retired instructions.
///
/// The callback fires on the first event whose `now` reaches the next
/// multiple of `interval`; quiet stretches with no events fire late (at
/// the next event) rather than on a timer, keeping the schedule a pure
/// function of the event stream.
pub struct SnapshotSink<F: FnMut(&SnapshotCheckpoint<'_>)> {
    stats: StatsSink,
    interval: u64,
    next: u64,
    seq: u64,
    /// Instructions retired in completed (reset-terminated) phases.
    done: u64,
    /// Latest `now` observed in the current phase.
    phase_last: u64,
    callback: F,
}

impl<F: FnMut(&SnapshotCheckpoint<'_>)> SnapshotSink<F> {
    /// Creates a sink firing `callback` every `interval` instructions
    /// (clamped to at least 1).
    pub fn new(interval: u64, callback: F) -> SnapshotSink<F> {
        let interval = interval.max(1);
        SnapshotSink {
            stats: StatsSink::new(),
            interval,
            next: interval,
            seq: 0,
            done: 0,
            phase_last: 0,
            callback,
        }
    }

    /// Checkpoints fired so far (across phase resets).
    pub fn checkpoints(&self) -> u64 {
        self.seq
    }

    /// The running snapshot for the current phase.
    pub fn snap(&self) -> &ObsSnapshot {
        self.stats.snap()
    }
}

impl<F: FnMut(&SnapshotCheckpoint<'_>)> std::fmt::Debug for SnapshotSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotSink")
            .field("interval", &self.interval)
            .field("next", &self.next)
            .field("seq", &self.seq)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(&SnapshotCheckpoint<'_>)> Sink for SnapshotSink<F> {
    fn emit(&mut self, now: u64, ev: &Event) {
        self.stats.emit(now, ev);
        self.phase_last = self.phase_last.max(now);
        if now >= self.next {
            self.seq += 1;
            let cp = SnapshotCheckpoint {
                seq: self.seq,
                now,
                instrs: self.done.saturating_add(now),
                snapshot: self.stats.snap(),
            };
            (self.callback)(&cp);
            self.next = (now / self.interval + 1).saturating_mul(self.interval);
        }
    }

    fn reset(&mut self) {
        self.stats.reset();
        self.done = self.done.saturating_add(self.phase_last);
        self.phase_last = 0;
        self.next = self.interval;
        // `seq` keeps counting: checkpoint ordinals stay monotonic for
        // the whole simulation, not per phase.
    }

    fn snapshot(&self) -> Option<ObsSnapshot> {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::{AccessKind, AddressSpace, HandlerLevel, Vpn};

    fn miss(now: u64) -> (u64, Event) {
        (
            now,
            Event::TlbMiss {
                class: AccessKind::Load,
                level: HandlerLevel::User,
                vpn: Vpn::new(AddressSpace::User, now),
                asid: 0,
            },
        )
    }

    fn walk(now: u64, cycles: u64) -> (u64, Event) {
        (now, Event::WalkComplete { level: HandlerLevel::User, cycles, memrefs: 2 })
    }

    fn drive<F: FnMut(&SnapshotCheckpoint<'_>)>(
        sink: &mut SnapshotSink<F>,
        events: &[(u64, Event)],
    ) {
        for (now, ev) in events {
            sink.emit(*now, ev);
        }
    }

    #[test]
    fn fires_once_per_interval_boundary() {
        let mut fired = Vec::new();
        let mut sink = SnapshotSink::new(100, |cp| fired.push((cp.seq, cp.now, cp.instrs)));
        drive(&mut sink, &[miss(10), walk(99, 30), miss(100), miss(150), walk(305, 40)]);
        // 100 trips the first boundary; 150 is inside the same window;
        // 305 skips the 200 window entirely and fires at 305.
        assert_eq!(sink.checkpoints(), 2);
        assert_eq!(fired, vec![(1, 100, 100), (2, 305, 305)]);
    }

    #[test]
    fn interval_zero_is_clamped_and_every_event_checkpoints() {
        let mut fired = 0u64;
        let mut sink = SnapshotSink::new(0, |_| fired += 1);
        drive(&mut sink, &[miss(1), miss(2), miss(3)]);
        assert_eq!(fired, 3);
    }

    #[test]
    fn reset_restarts_the_phase_but_instrs_stay_cumulative() {
        let mut fired = Vec::new();
        let mut sink = SnapshotSink::new(50, |cp| {
            fired.push((cp.seq, cp.instrs, cp.snapshot.counters.tlb_misses.iter().sum::<u64>()))
        });
        drive(&mut sink, &[miss(20), miss(60)]);
        sink.reset();
        drive(&mut sink, &[miss(55)]);
        // Warm-up phase ended at now=60: the measure-phase checkpoint at
        // now=55 reports 60 + 55 cumulative instructions but only the
        // one post-reset miss (stats reconcile with the measured report).
        assert_eq!(fired, vec![(1, 60, 2), (2, 115, 1)]);
    }

    #[test]
    fn identical_streams_checkpoint_identically() {
        let stream: Vec<(u64, Event)> =
            (1..40).map(|i| if i % 3 == 0 { walk(i * 7, i) } else { miss(i * 7) }).collect();
        let run = |events: &[(u64, Event)]| {
            let mut fired = Vec::new();
            let mut sink = SnapshotSink::new(64, |cp| {
                fired.push((cp.seq, cp.now, cp.instrs, cp.snapshot.clone()))
            });
            drive(&mut sink, events);
            fired
        };
        let (a, b) = (run(&stream), run(&stream));
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.0, x.1, x.2), (y.0, y.1, y.2));
            assert_eq!(x.3, y.3, "snapshots diverged at seq {}", x.0);
        }
    }

    #[test]
    fn aggregation_matches_a_plain_stats_sink() {
        let stream: Vec<(u64, Event)> = (1..30).map(|i| walk(i * 11, i + 3)).collect();
        let mut plain = StatsSink::new();
        let mut snap = SnapshotSink::new(1 << 20, |_| {});
        for (now, ev) in &stream {
            plain.emit(*now, ev);
            snap.emit(*now, ev);
        }
        assert_eq!(plain.snapshot(), snap.snapshot());
    }
}
