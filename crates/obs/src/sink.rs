//! The [`Sink`] abstraction and basic sink combinators.
//!
//! A sink receives every [`Event`] the simulator emits. The trait carries
//! an associated `ENABLED` constant so the simulator can be generic over
//! the sink type and the compiler can delete every emit site — including
//! the argument computation feeding it — when the sink is [`NopSink`].
//! Instrumentation in the hot path must always be written as
//!
//! ```text
//! if S::ENABLED {
//!     sink.emit(now, &Event::...);
//! }
//! ```
//!
//! so the default (un-instrumented) build pays nothing.

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::Event;
use crate::stats::ObsSnapshot;

/// Receiver for simulation events.
///
/// `now` is the simulator's event clock: the number of *user* instructions
/// retired so far in the current measurement phase. It is monotonically
/// non-decreasing between [`Sink::reset`] calls.
pub trait Sink {
    /// Whether this sink actually observes events. When `false`, the
    /// simulator skips event construction entirely (the emit sites are
    /// compiled out), so a disabled sink has zero runtime cost.
    const ENABLED: bool = true;

    /// Receives one event at simulated time `now`.
    fn emit(&mut self, now: u64, ev: &Event);

    /// Clears any accumulated state. The simulator calls this when its
    /// counters are reset (end of cache/TLB warm-up) so that recorded
    /// events reconcile exactly with the measured counters.
    fn reset(&mut self) {}

    /// Returns aggregated statistics, if this sink computes any.
    fn snapshot(&self) -> Option<ObsSnapshot> {
        None
    }
}

/// The default sink: observes nothing, costs nothing.
///
/// With `ENABLED = false`, every `if S::ENABLED { … }` guard in the
/// simulator is a compile-time constant branch that the optimizer removes,
/// so simulation with `NopSink` is byte-for-byte the un-instrumented
/// simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopSink;

impl Sink for NopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _now: u64, _ev: &Event) {}
}

/// Records every event (with its timestamp) into a vector.
///
/// Intended for tests: assert on exact event sequences or reconcile event
/// counts against simulator counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingSink {
    /// The recorded `(now, event)` pairs, in emission order.
    pub events: Vec<(u64, Event)>,
}

impl RecordingSink {
    /// Creates an empty recorder.
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// Counts recorded events matching a predicate.
    pub fn count(&self, mut pred: impl FnMut(&Event) -> bool) -> u64 {
        self.events.iter().filter(|(_, ev)| pred(ev)).count() as u64
    }
}

impl Sink for RecordingSink {
    fn emit(&mut self, now: u64, ev: &Event) {
        self.events.push((now, *ev));
    }

    fn reset(&mut self) {
        self.events.clear();
    }
}

/// Fans each event out to two sinks in order.
///
/// Compose freely: `Tee(stats, Tee(jsonl, chrome))`.
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Sink, B: Sink> Sink for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn emit(&mut self, now: u64, ev: &Event) {
        if A::ENABLED {
            self.0.emit(now, ev);
        }
        if B::ENABLED {
            self.1.emit(now, ev);
        }
    }

    fn reset(&mut self) {
        self.0.reset();
        self.1.reset();
    }

    fn snapshot(&self) -> Option<ObsSnapshot> {
        self.0.snapshot().or_else(|| self.1.snapshot())
    }
}

/// A shared handle to a sink, for when the driver needs to keep access to
/// the sink while the simulator owns "it" (e.g. to snapshot after a run
/// that consumed the `MemorySystem`).
#[derive(Debug, Default)]
pub struct SharedSink<S>(Rc<RefCell<S>>);

impl<S> SharedSink<S> {
    /// Wraps a sink in a shared handle.
    pub fn new(sink: S) -> SharedSink<S> {
        SharedSink(Rc::new(RefCell::new(sink)))
    }

    /// Clones the handle (both handles refer to the same sink).
    pub fn handle(&self) -> SharedSink<S> {
        SharedSink(Rc::clone(&self.0))
    }

    /// Runs a closure with shared access to the inner sink.
    pub fn with<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Runs a closure with exclusive access to the inner sink.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// Unwraps the inner sink if this is the last handle.
    pub fn try_unwrap(self) -> Result<S, SharedSink<S>> {
        Rc::try_unwrap(self.0).map(RefCell::into_inner).map_err(SharedSink)
    }
}

impl<S: Sink> Sink for SharedSink<S> {
    const ENABLED: bool = S::ENABLED;

    fn emit(&mut self, now: u64, ev: &Event) {
        self.0.borrow_mut().emit(now, ev);
    }

    fn reset(&mut self) {
        self.0.borrow_mut().reset();
    }

    fn snapshot(&self) -> Option<ObsSnapshot> {
        self.0.borrow().snapshot()
    }
}

/// `None` behaves like [`NopSink`] at runtime (but keeps `S::ENABLED`
/// compile-time, since the presence of a sink is only known dynamically).
/// Lets drivers toggle an export stream with `want.then(|| sink)`.
impl<S: Sink> Sink for Option<S> {
    const ENABLED: bool = S::ENABLED;

    fn emit(&mut self, now: u64, ev: &Event) {
        if let Some(s) = self {
            s.emit(now, ev);
        }
    }

    fn reset(&mut self) {
        if let Some(s) = self {
            s.reset();
        }
    }

    fn snapshot(&self) -> Option<ObsSnapshot> {
        self.as_ref().and_then(Sink::snapshot)
    }
}

impl<S: Sink> Sink for &mut S {
    const ENABLED: bool = S::ENABLED;

    fn emit(&mut self, now: u64, ev: &Event) {
        (**self).emit(now, ev);
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn snapshot(&self) -> Option<ObsSnapshot> {
        (**self).snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::HandlerLevel;

    fn walk(cycles: u64) -> Event {
        Event::WalkComplete { level: HandlerLevel::User, cycles, memrefs: 1 }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn nop_sink_is_disabled() {
        assert!(!NopSink::ENABLED);
        // Emitting anyway is harmless.
        NopSink.emit(0, &walk(1));
    }

    #[test]
    fn recording_sink_records_and_resets() {
        let mut sink = RecordingSink::new();
        sink.emit(10, &walk(5));
        sink.emit(20, &walk(6));
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.count(|e| matches!(e, Event::WalkComplete { .. })), 2);
        sink.reset();
        assert!(sink.events.is_empty());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn tee_feeds_both_and_is_enabled_if_either_is() {
        let mut tee = Tee(RecordingSink::new(), RecordingSink::new());
        assert!(<Tee<RecordingSink, RecordingSink>>::ENABLED);
        assert!(<Tee<RecordingSink, NopSink>>::ENABLED);
        assert!(!<Tee<NopSink, NopSink>>::ENABLED);
        tee.emit(1, &walk(2));
        assert_eq!(tee.0.events, tee.1.events);
    }

    #[test]
    fn shared_sink_aliases_one_recorder() {
        let shared = SharedSink::new(RecordingSink::new());
        let mut handle = shared.handle();
        handle.emit(3, &walk(4));
        assert_eq!(shared.with(|s| s.events.len()), 1);
        drop(handle);
        let inner = shared.try_unwrap().ok().unwrap();
        assert_eq!(inner.events.len(), 1);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn optional_sink_observes_only_when_present() {
        let mut none: Option<RecordingSink> = None;
        none.emit(0, &walk(1));
        assert!(none.snapshot().is_none());
        let mut some = Some(RecordingSink::new());
        some.emit(0, &walk(1));
        assert_eq!(some.as_ref().unwrap().events.len(), 1);
        some.reset();
        assert!(some.as_ref().unwrap().events.is_empty());
        assert!(<Option<RecordingSink>>::ENABLED);
    }

    #[test]
    fn mut_ref_delegates() {
        let mut rec = RecordingSink::new();
        {
            let mut by_ref = &mut rec;
            Sink::emit(&mut by_ref, 0, &walk(1));
        }
        assert_eq!(rec.events.len(), 1);
    }
}
