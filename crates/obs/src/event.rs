//! Typed simulation events.
//!
//! Events describe *what happened* in the simulated memory system; sinks
//! decide what to do with them (count, histogram, serialize, drop). The
//! enum is deliberately small and `Copy` so emitting into a recording
//! sink is cheap and the no-op path can discard events for free.

use vm_types::{AccessKind, HandlerLevel, MissClass, Vpn};

use crate::json::Value;

/// Which simulated cache an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheId {
    /// Level-1 instruction cache.
    L1I,
    /// Level-1 data cache.
    L1D,
    /// Level-2 instruction cache (or the unified L2 on I-side fills).
    L2I,
    /// Level-2 data cache (or the unified L2 on D-side fills).
    L2D,
}

impl CacheId {
    /// Short lower-case label (`l1i`, `l1d`, `l2i`, `l2d`).
    pub fn label(self) -> &'static str {
        match self {
            CacheId::L1I => "l1i",
            CacheId::L1D => "l1d",
            CacheId::L2I => "l2i",
            CacheId::L2D => "l2d",
        }
    }
}

/// Why a fleet backend was removed from rotation.
///
/// Carried on [`Event::BackendEvicted`] so serve-stats can break
/// evictions down by cause instead of reporting one opaque count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictReason {
    /// The startup health gate (or an idle keepalive probe) failed.
    Health,
    /// Transport errors talking to the daemon (connect/read/write).
    Transport,
    /// The backend kept failing the points it was given.
    PointFault,
    /// An operator drained the slot via the control channel's `leave`.
    Left,
    /// The backend returned a result that failed an integrity check
    /// (divergent duplicate, failed audit, or quorum minority) and was
    /// quarantined. Re-admission requires passing an audit, not just a
    /// health probe.
    Integrity,
}

impl EvictReason {
    /// Stable lower-case label (the `reason` field in JSONL).
    pub fn label(self) -> &'static str {
        match self {
            EvictReason::Health => "health",
            EvictReason::Transport => "transport",
            EvictReason::PointFault => "point_fault",
            EvictReason::Left => "left",
            EvictReason::Integrity => "integrity",
        }
    }

    /// Parses a label back into a reason (`None` for unknown labels, so
    /// readers can count rather than drop reasons newer than they are).
    pub fn from_label(s: &str) -> Option<EvictReason> {
        match s {
            "health" => Some(EvictReason::Health),
            "transport" => Some(EvictReason::Transport),
            "point_fault" => Some(EvictReason::PointFault),
            "left" => Some(EvictReason::Left),
            "integrity" => Some(EvictReason::Integrity),
            _ => None,
        }
    }
}

/// A single observable occurrence inside the simulator.
///
/// The `now` timestamp (user instructions retired so far) is passed
/// alongside the event by [`crate::Sink::emit`] rather than stored here,
/// so events stay `Copy` and timestamp handling lives in one place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A TLB lookup missed and a refill was started.
    TlbMiss {
        /// Which reference class took the miss.
        class: AccessKind,
        /// Handler nesting level the miss was taken at.
        level: HandlerLevel,
        /// The virtual page that missed.
        vpn: Vpn,
        /// Address-space identifier of the missing page.
        asid: u16,
    },
    /// A page-table walk (one TLB refill) finished.
    WalkComplete {
        /// Handler nesting level of the walk.
        level: HandlerLevel,
        /// Estimated machine cycles the walk cost (handler instructions
        /// plus memory-hierarchy penalties at Table 2/3 prices).
        cycles: u64,
        /// Memory references the walk itself issued (PTE loads plus
        /// handler instruction fetches).
        memrefs: u64,
    },
    /// A miss-handler code fetch evicted a line from a cache.
    HandlerEviction {
        /// The cache the victim line lived in.
        which_cache: CacheId,
    },
    /// The TLB was flushed on a simulated context switch.
    ContextSwitchFlush {
        /// Entries that were valid (and lost) at flush time.
        entries_lost: u32,
    },
    /// A precise interrupt was charged (e.g. for a hardware-walker miss
    /// or a protection fault into the OS).
    Interrupt {
        /// Handler nesting level the interrupt was charged at.
        level: HandlerLevel,
    },
    /// A memory reference was satisfied somewhere in the hierarchy.
    /// Only emitted for references that missed the L1 (hit volume would
    /// swamp any stream; L1 hits are reconstructable from counters).
    CacheMiss {
        /// Which reference class missed.
        class: AccessKind,
        /// Where the reference was finally satisfied.
        filled_from: MissClass,
    },
    /// A TLB insertion displaced a live entry.
    TlbEviction {
        /// Which reference class's TLB (Fetch = I-TLB, Load/Store = D-TLB).
        class: AccessKind,
        /// The virtual page that was displaced.
        victim: Vpn,
    },
    /// A design-space sweep (`vm-explore`) started executing.
    SweepStarted {
        /// Number of valid points the sweep will simulate.
        points: u64,
        /// Number of swept axes (0 for a plain spec run).
        axes: u32,
        /// Worker threads the executor was given.
        jobs: u32,
    },
    /// One sweep point finished simulating. Emitted in point order after
    /// the order-independent merge, so event streams are deterministic
    /// regardless of worker count.
    SweepPointDone {
        /// The point's index in sweep order.
        index: u64,
        /// User instructions measured at this point.
        instrs: u64,
        /// The point's VM overhead (VMCPI + interrupt CPI), in millionths
        /// of a cycle per instruction (events carry integers only).
        vm_total_micro: u64,
    },
    /// One sweep point failed (or timed out) after all its attempts and
    /// was isolated to a failure outcome instead of killing the run.
    PointFailed {
        /// The point's index in sweep order.
        index: u64,
        /// Attempts consumed before giving up.
        attempts: u32,
        /// Whether the failure was a budget timeout (vs an error/panic).
        timed_out: bool,
    },
    /// One sweep point failed transiently and is being retried.
    PointRetried {
        /// The point's index in sweep order.
        index: u64,
        /// The retry attempt number just started (2 = first retry).
        attempt: u32,
    },
    /// A sweep resumed from a run journal instead of starting cold.
    RunResumed {
        /// Points restored from the journal (not re-simulated).
        completed: u64,
        /// Points left to simulate (including journaled failures).
        remaining: u64,
    },
    /// A `vm-serve` job passed admission control and entered the queue.
    JobAdmitted {
        /// The job's daemon-assigned id.
        job: u64,
        /// Jobs waiting in the queue at admission (this one included).
        queue_depth: u64,
        /// Whether the watermark downgraded the job to quick fidelity.
        degraded: bool,
    },
    /// A `vm-serve` submission was shed (queue full or daemon draining).
    JobShed {
        /// Jobs waiting in the queue when the submission was refused.
        queue_depth: u64,
    },
    /// A `vm-serve` job finished running (its points may have failed).
    JobDone {
        /// The job's daemon-assigned id.
        job: u64,
        /// Sweep points that completed.
        points: u64,
        /// Sweep points that failed, timed out, or were cancelled.
        failed: u64,
        /// Wall-clock milliseconds from admission to completion.
        wall_ms: u64,
    },
    /// A `vm-serve` daemon began draining (stopped admitting work).
    DrainStarted {
        /// Jobs still queued or running when the drain began.
        pending: u64,
    },
    /// A `vm-supervise` worker process was spawned into a pool slot.
    WorkerSpawned {
        /// The pool slot the worker occupies.
        worker: u64,
        /// The worker's OS process id.
        pid: u64,
    },
    /// A supervised worker died or was killed (abort, signal, hung
    /// heartbeat, RSS ceiling) while holding a request.
    WorkerCrashed {
        /// The pool slot whose worker died.
        worker: u64,
        /// The request tag (sweep-point index) the worker was running.
        point: u64,
        /// Restarts already consumed by this request before the crash.
        restarts: u32,
    },
    /// A supervised worker was respawned after a crash, with backoff.
    WorkerRestarted {
        /// The pool slot that was restarted.
        worker: u64,
        /// The restarted worker's OS process id.
        pid: u64,
        /// Restart number for the in-flight request (1 = first restart).
        restarts: u32,
    },
    /// The crash-loop breaker gave up on a request: too many restarts
    /// inside the window, so the point is marked `crash` and the sweep
    /// moves on.
    BreakerTripped {
        /// The pool slot whose worker kept dying.
        worker: u64,
        /// The request tag (sweep-point index) being abandoned.
        point: u64,
        /// Restarts consumed before the breaker opened.
        restarts: u32,
    },
    /// A `vm-fleet` coordinator dispatched one sweep point to a backend
    /// as a single-point serve job.
    ShardDispatched {
        /// The point's index in global sweep order.
        point: u64,
        /// The point's home shard (hash of its label mod fleet size).
        shard: u64,
        /// The backend the job actually went to (differs from `shard`
        /// when the home backend was evicted and the point re-homed).
        backend: u64,
    },
    /// A straggling in-flight point was hedged: duplicated onto an idle
    /// healthy backend, first result wins.
    ShardHedged {
        /// The point's index in global sweep order.
        point: u64,
        /// The backend the original dispatch is still running on.
        from: u64,
        /// The idle backend the duplicate was dispatched to.
        to: u64,
    },
    /// A fleet backend tripped its eviction breaker (too many transport
    /// or job failures inside the window) and was removed from rotation;
    /// its in-flight points return to the pending pool.
    BackendEvicted {
        /// The evicted backend's fleet slot.
        backend: u64,
        /// Failures inside the breaker window when it tripped.
        failures: u32,
        /// Why the slot was removed from rotation.
        reason: EvictReason,
    },
    /// A backend joined the fleet mid-run via the control channel. It
    /// receives only still-pending points — completed points are never
    /// reassigned, preserving first-result-wins dedup.
    BackendJoined {
        /// The fleet slot assigned to the new backend.
        backend: u64,
        /// Points still pending when the backend joined.
        pending: u64,
    },
    /// An evicted backend entered probation: it will be re-probed after
    /// the probation interval instead of staying dead forever.
    BackendProbation {
        /// The slot placed on probation.
        backend: u64,
        /// Milliseconds until the next health probe.
        retry_ms: u64,
    },
    /// A probationary backend passed its health probe and was re-admitted
    /// with a fresh breaker but a reduced dispatch budget (no hedging)
    /// until it completes a point cleanly.
    BackendRejoined {
        /// The slot that rejoined.
        backend: u64,
        /// Health probes spent before one passed.
        probes: u32,
    },
    /// A rejoined backend completed a point cleanly and left its reduced
    /// dispatch budget — it is back to full rotation.
    BackendRecovered {
        /// The slot that recovered.
        backend: u64,
        /// The point whose clean completion cleared probation.
        point: u64,
    },
    /// Two copies of the same point (hedge winner and loser) disagreed
    /// bit-for-bit — one of the two backends computed a wrong answer.
    /// Both sources are marked suspect and the point is arbitrated by a
    /// third backend (2-of-3 quorum).
    ResultDiverged {
        /// The point whose copies disagreed.
        point: u64,
        /// The backend whose copy arrived first (the candidate winner).
        first: u64,
        /// The backend whose later copy disagreed.
        second: u64,
    },
    /// An audit re-execution reproduced the accepted result bit-for-bit
    /// on a different backend.
    AuditPassed {
        /// The audited point.
        point: u64,
        /// The backend whose accepted result was confirmed.
        backend: u64,
    },
    /// An audit re-execution disagreed with the accepted result — the
    /// original backend or the auditor is lying; the point goes to
    /// quorum and both backends are suspect until it resolves.
    AuditFailed {
        /// The audited point.
        point: u64,
        /// The backend whose accepted result failed confirmation.
        backend: u64,
        /// The backend that ran the audit.
        auditor: u64,
    },
    /// A backend was quarantined for an integrity violation: its
    /// unconfirmed results are invalidated and re-run elsewhere, and it
    /// only rejoins by passing an audit, not just a health probe.
    BackendQuarantined {
        /// The quarantined backend's fleet slot.
        backend: u64,
        /// The point whose arbitration convicted it.
        point: u64,
    },
    /// A fleet run merged its shard results into the final journal and
    /// CSV (bit-identical to a single-node run of the same grid).
    FleetMerged {
        /// Points in the merged run (completed plus failed).
        points: u64,
        /// Backends still healthy at merge time.
        backends: u64,
        /// Hedge dispatches issued over the whole run.
        hedged: u64,
        /// Duplicate results that matched their winner bit-for-bit
        /// (the determinism contract holding under hedging).
        duplicates_identical: u64,
        /// Duplicate results that disagreed with their winner (each one
        /// an integrity incident that went to quorum).
        duplicates_divergent: u64,
    },
    /// A `vm-serve` trace upload was admitted and a staging file opened
    /// (`resumed` when it reattached to an existing partial).
    UploadStarted {
        /// The daemon-assigned upload id.
        upload: u64,
        /// Bytes the client declared it will send.
        declared_bytes: u64,
        /// Bytes already staged (0 for a fresh upload, more on resume).
        staged_bytes: u64,
    },
    /// One upload chunk passed its checksum and was staged durably.
    ChunkReceived {
        /// The upload the chunk belongs to.
        upload: u64,
        /// The chunk's sequence number.
        seq: u64,
        /// Decoded payload bytes in the chunk.
        bytes: u64,
    },
    /// An upload committed: fingerprint verified, trace decoded end to
    /// end, file installed into the library.
    UploadCommitted {
        /// The committed upload's id.
        upload: u64,
        /// Total bytes in the committed trace.
        bytes: u64,
        /// Instruction records the trace decodes to.
        records: u64,
    },
    /// An upload (or one of its chunks) was rejected; `code` is the
    /// HTTP-flavored response code (400 checksum/decode, 409 conflict,
    /// 413 quota, 429 backpressure, 499 client abort).
    UploadRejected {
        /// The rejected upload's id (0 when rejected before admission).
        upload: u64,
        /// The response code the client saw.
        code: u64,
    },
    /// An orphaned staged upload passed its TTL and was garbage-collected.
    UploadGc {
        /// The collected upload's id.
        upload: u64,
        /// Staged bytes reclaimed.
        bytes: u64,
    },
}

impl Event {
    /// Stable machine-readable event name (the `ev` field in JSONL).
    pub fn name(&self) -> &'static str {
        match self {
            Event::TlbMiss { .. } => "tlb_miss",
            Event::WalkComplete { .. } => "walk_complete",
            Event::HandlerEviction { .. } => "handler_eviction",
            Event::ContextSwitchFlush { .. } => "context_switch_flush",
            Event::Interrupt { .. } => "interrupt",
            Event::CacheMiss { .. } => "cache_miss",
            Event::TlbEviction { .. } => "tlb_eviction",
            Event::SweepStarted { .. } => "sweep_started",
            Event::SweepPointDone { .. } => "sweep_point_done",
            Event::PointFailed { .. } => "point_failed",
            Event::PointRetried { .. } => "point_retried",
            Event::RunResumed { .. } => "run_resumed",
            Event::JobAdmitted { .. } => "job_admitted",
            Event::JobShed { .. } => "job_shed",
            Event::JobDone { .. } => "job_done",
            Event::DrainStarted { .. } => "drain_started",
            Event::WorkerSpawned { .. } => "worker_spawned",
            Event::WorkerCrashed { .. } => "worker_crashed",
            Event::WorkerRestarted { .. } => "worker_restarted",
            Event::BreakerTripped { .. } => "breaker_tripped",
            Event::ShardDispatched { .. } => "shard_dispatched",
            Event::ShardHedged { .. } => "shard_hedged",
            Event::BackendEvicted { .. } => "backend_evicted",
            Event::BackendJoined { .. } => "backend_joined",
            Event::BackendProbation { .. } => "backend_probation",
            Event::BackendRejoined { .. } => "backend_rejoined",
            Event::BackendRecovered { .. } => "backend_recovered",
            Event::ResultDiverged { .. } => "result_diverged",
            Event::AuditPassed { .. } => "audit_passed",
            Event::AuditFailed { .. } => "audit_failed",
            Event::BackendQuarantined { .. } => "backend_quarantined",
            Event::FleetMerged { .. } => "fleet_merged",
            Event::UploadStarted { .. } => "upload_started",
            Event::ChunkReceived { .. } => "chunk_received",
            Event::UploadCommitted { .. } => "upload_committed",
            Event::UploadRejected { .. } => "upload_rejected",
            Event::UploadGc { .. } => "upload_gc",
        }
    }

    /// Serializes the event (with its timestamp) to the stable JSONL
    /// object schema: `{"t":…,"ev":…, …payload}`.
    pub fn to_json(&self, now: u64) -> Value {
        let mut pairs: Vec<(String, Value)> =
            vec![("t".to_owned(), now.into()), ("ev".to_owned(), self.name().into())];
        let mut put = |k: &str, v: Value| pairs.push((k.to_owned(), v));
        match *self {
            Event::TlbMiss { class, level, vpn, asid } => {
                put("class", class.to_string().into());
                put("level", level.to_string().into());
                put("vpn", vpn.raw().into());
                put("asid", asid.into());
            }
            Event::WalkComplete { level, cycles, memrefs } => {
                put("level", level.to_string().into());
                put("cycles", cycles.into());
                put("memrefs", memrefs.into());
            }
            Event::HandlerEviction { which_cache } => {
                put("cache", which_cache.label().into());
            }
            Event::ContextSwitchFlush { entries_lost } => {
                put("entries_lost", entries_lost.into());
            }
            Event::Interrupt { level } => {
                put("level", level.to_string().into());
            }
            Event::CacheMiss { class, filled_from } => {
                put("class", class.to_string().into());
                put("filled_from", filled_from.to_string().into());
            }
            Event::TlbEviction { class, victim } => {
                put("class", class.to_string().into());
                put("victim", victim.raw().into());
            }
            Event::SweepStarted { points, axes, jobs } => {
                put("points", points.into());
                put("axes", axes.into());
                put("jobs", jobs.into());
            }
            Event::SweepPointDone { index, instrs, vm_total_micro } => {
                put("index", index.into());
                put("instrs", instrs.into());
                put("vm_total_micro", vm_total_micro.into());
            }
            Event::PointFailed { index, attempts, timed_out } => {
                put("index", index.into());
                put("attempts", attempts.into());
                put("timed_out", Value::Bool(timed_out));
            }
            Event::PointRetried { index, attempt } => {
                put("index", index.into());
                put("attempt", attempt.into());
            }
            Event::RunResumed { completed, remaining } => {
                put("completed", completed.into());
                put("remaining", remaining.into());
            }
            Event::JobAdmitted { job, queue_depth, degraded } => {
                put("job", job.into());
                put("queue_depth", queue_depth.into());
                put("degraded", Value::Bool(degraded));
            }
            Event::JobShed { queue_depth } => {
                put("queue_depth", queue_depth.into());
            }
            Event::JobDone { job, points, failed, wall_ms } => {
                put("job", job.into());
                put("points", points.into());
                put("failed", failed.into());
                put("wall_ms", wall_ms.into());
            }
            Event::DrainStarted { pending } => {
                put("pending", pending.into());
            }
            Event::WorkerSpawned { worker, pid } => {
                put("worker", worker.into());
                put("pid", pid.into());
            }
            Event::WorkerCrashed { worker, point, restarts } => {
                put("worker", worker.into());
                put("point", point.into());
                put("restarts", restarts.into());
            }
            Event::WorkerRestarted { worker, pid, restarts } => {
                put("worker", worker.into());
                put("pid", pid.into());
                put("restarts", restarts.into());
            }
            Event::BreakerTripped { worker, point, restarts } => {
                put("worker", worker.into());
                put("point", point.into());
                put("restarts", restarts.into());
            }
            Event::ShardDispatched { point, shard, backend } => {
                put("point", point.into());
                put("shard", shard.into());
                put("backend", backend.into());
            }
            Event::ShardHedged { point, from, to } => {
                put("point", point.into());
                put("from", from.into());
                put("to", to.into());
            }
            Event::BackendEvicted { backend, failures, reason } => {
                put("backend", backend.into());
                put("failures", failures.into());
                put("reason", reason.label().into());
            }
            Event::BackendJoined { backend, pending } => {
                put("backend", backend.into());
                put("pending", pending.into());
            }
            Event::BackendProbation { backend, retry_ms } => {
                put("backend", backend.into());
                put("retry_ms", retry_ms.into());
            }
            Event::BackendRejoined { backend, probes } => {
                put("backend", backend.into());
                put("probes", probes.into());
            }
            Event::BackendRecovered { backend, point } => {
                put("backend", backend.into());
                put("point", point.into());
            }
            Event::ResultDiverged { point, first, second } => {
                put("point", point.into());
                put("first", first.into());
                put("second", second.into());
            }
            Event::AuditPassed { point, backend } => {
                put("point", point.into());
                put("backend", backend.into());
            }
            Event::AuditFailed { point, backend, auditor } => {
                put("point", point.into());
                put("backend", backend.into());
                put("auditor", auditor.into());
            }
            Event::BackendQuarantined { backend, point } => {
                put("backend", backend.into());
                put("point", point.into());
            }
            Event::FleetMerged {
                points,
                backends,
                hedged,
                duplicates_identical,
                duplicates_divergent,
            } => {
                put("points", points.into());
                put("backends", backends.into());
                put("hedged", hedged.into());
                put("duplicates_identical", duplicates_identical.into());
                put("duplicates_divergent", duplicates_divergent.into());
            }
            Event::UploadStarted { upload, declared_bytes, staged_bytes } => {
                put("upload", upload.into());
                put("declared_bytes", declared_bytes.into());
                put("staged_bytes", staged_bytes.into());
            }
            Event::ChunkReceived { upload, seq, bytes } => {
                put("upload", upload.into());
                put("seq", seq.into());
                put("bytes", bytes.into());
            }
            Event::UploadCommitted { upload, bytes, records } => {
                put("upload", upload.into());
                put("bytes", bytes.into());
                put("records", records.into());
            }
            Event::UploadRejected { upload, code } => {
                put("upload", upload.into());
                put("code", code.into());
            }
            Event::UploadGc { upload, bytes } => {
                put("upload", upload.into());
                put("bytes", bytes.into());
            }
        }
        Value::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use vm_types::AddressSpace;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::TlbMiss {
                class: AccessKind::Load,
                level: HandlerLevel::User,
                vpn: Vpn::new(AddressSpace::User, 0x1234),
                asid: 3,
            },
            Event::WalkComplete { level: HandlerLevel::User, cycles: 42, memrefs: 3 },
            Event::HandlerEviction { which_cache: CacheId::L1I },
            Event::ContextSwitchFlush { entries_lost: 17 },
            Event::Interrupt { level: HandlerLevel::Kernel },
            Event::CacheMiss { class: AccessKind::Fetch, filled_from: MissClass::Memory },
            Event::TlbEviction {
                class: AccessKind::Store,
                victim: Vpn::new(AddressSpace::User, 9),
            },
            Event::SweepStarted { points: 24, axes: 2, jobs: 4 },
            Event::SweepPointDone { index: 3, instrs: 500_000, vm_total_micro: 81_230 },
            Event::PointFailed { index: 5, attempts: 3, timed_out: false },
            Event::PointRetried { index: 5, attempt: 2 },
            Event::RunResumed { completed: 19, remaining: 5 },
            Event::JobAdmitted { job: 7, queue_depth: 3, degraded: true },
            Event::JobShed { queue_depth: 8 },
            Event::JobDone { job: 7, points: 4, failed: 1, wall_ms: 1250 },
            Event::DrainStarted { pending: 2 },
            Event::WorkerSpawned { worker: 0, pid: 4242 },
            Event::WorkerCrashed { worker: 0, point: 5, restarts: 0 },
            Event::WorkerRestarted { worker: 0, pid: 4243, restarts: 1 },
            Event::BreakerTripped { worker: 0, point: 5, restarts: 3 },
            Event::ShardDispatched { point: 11, shard: 2, backend: 1 },
            Event::ShardHedged { point: 11, from: 1, to: 3 },
            Event::BackendEvicted { backend: 1, failures: 4, reason: EvictReason::Transport },
            Event::BackendJoined { backend: 3, pending: 9 },
            Event::BackendProbation { backend: 1, retry_ms: 5000 },
            Event::BackendRejoined { backend: 1, probes: 2 },
            Event::BackendRecovered { backend: 1, point: 17 },
            Event::ResultDiverged { point: 11, first: 1, second: 3 },
            Event::AuditPassed { point: 7, backend: 2 },
            Event::AuditFailed { point: 9, backend: 0, auditor: 2 },
            Event::BackendQuarantined { backend: 0, point: 9 },
            Event::FleetMerged {
                points: 24,
                backends: 3,
                hedged: 1,
                duplicates_identical: 1,
                duplicates_divergent: 0,
            },
            Event::UploadStarted { upload: 2, declared_bytes: 8_388_608, staged_bytes: 0 },
            Event::ChunkReceived { upload: 2, seq: 4, bytes: 262_144 },
            Event::UploadCommitted { upload: 2, bytes: 8_388_608, records: 491_520 },
            Event::UploadRejected { upload: 3, code: 413 },
            Event::UploadGc { upload: 1, bytes: 524_288 },
        ]
    }

    #[test]
    fn names_are_unique_and_snake_case() {
        let names: Vec<_> = sample_events().iter().map(|e| e.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{n}");
        }
    }

    #[test]
    fn evict_reason_labels_round_trip() {
        for r in [
            EvictReason::Health,
            EvictReason::Transport,
            EvictReason::PointFault,
            EvictReason::Left,
            EvictReason::Integrity,
        ] {
            assert_eq!(EvictReason::from_label(r.label()), Some(r));
        }
        assert_eq!(EvictReason::from_label("cosmic_rays"), None);
    }

    #[test]
    fn json_always_has_t_and_ev() {
        for (i, ev) in sample_events().into_iter().enumerate() {
            let v = ev.to_json(i as u64);
            assert_eq!(v.get("t").unwrap().as_u64(), Some(i as u64));
            assert_eq!(v.get("ev").unwrap().as_str(), Some(ev.name()));
            // Every line the simulator writes must be parseable.
            assert_eq!(json::parse(&v.to_string()).unwrap(), v);
        }
    }
}
