//! Verbosity-aware progress and result reporting.
//!
//! The convention throughout the experiment drivers and the sweep
//! executors:
//!
//! * **stdout** carries results — tables, claims, CSV — and nothing
//!   else, so output stays pipeable and diffable.
//! * **stderr** carries progress — headings, heartbeats, wall-clock
//!   timings, file-written notices — gated by [`Verbosity`].
//!
//! The reporter lives in `vm-obs` (rather than the experiment crate) so
//! every layer that runs long work — the experiment runner, the
//! `vm-explore` sweep executor — can report progress through one
//! mechanism instead of ad-hoc stderr prints.

use std::fmt::Display;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Process-wide verbosity, consulted by [`Reporter::global`]. Defaults to
/// [`Verbosity::Quiet`] so library callers (and tests) stay silent unless
/// a binary opts in.
static GLOBAL_VERBOSITY: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide verbosity used by [`Reporter::global`] — called
/// once by the `repro` binary after parsing `--verbosity`.
pub fn set_global_verbosity(v: Verbosity) {
    GLOBAL_VERBOSITY.store(v as u8, Ordering::Relaxed);
}

/// Orders whole stderr lines across threads. Every progress path formats
/// its complete line (with the trailing newline) *before* taking this
/// lock, then issues a single `write_all`, so concurrent sweep workers
/// and the heartbeat thread can never interleave torn fragments.
static STDERR_LINE: Mutex<()> = Mutex::new(());

/// Writes one complete line to stderr atomically with respect to every
/// other reporter in the process.
fn stderr_line(msg: impl Display) {
    let mut line = msg.to_string();
    line.push('\n');
    let _order = STDERR_LINE.lock().unwrap_or_else(|e| e.into_inner());
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

/// How chatty progress reporting should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Verbosity {
    /// Results only: nothing on stderr except errors.
    Quiet,
    /// Per-experiment headings, timings, and heartbeats (the default).
    #[default]
    Normal,
    /// Everything, including per-job completion lines.
    Verbose,
}

impl Verbosity {
    /// Parses `0`/`1`/`2` or `quiet`/`normal`/`verbose`.
    pub fn parse(s: &str) -> Option<Verbosity> {
        match s {
            "0" | "quiet" | "q" => Some(Verbosity::Quiet),
            "1" | "normal" | "n" => Some(Verbosity::Normal),
            "2" | "verbose" | "v" => Some(Verbosity::Verbose),
            _ => None,
        }
    }
}

/// Routes experiment output to the right stream at the right verbosity.
///
/// Shared by reference across runner worker threads; all methods take
/// `&self`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Reporter {
    verbosity: Verbosity,
}

impl Reporter {
    /// A reporter at the given verbosity.
    pub fn new(verbosity: Verbosity) -> Reporter {
        Reporter { verbosity }
    }

    /// A reporter that never writes to stderr (used by library callers
    /// that want the legacy silent behaviour).
    pub fn silent() -> Reporter {
        Reporter { verbosity: Verbosity::Quiet }
    }

    /// A reporter at the process-wide verbosity (see
    /// [`set_global_verbosity`]); quiet unless a binary opted in.
    pub fn global() -> Reporter {
        Reporter {
            verbosity: match GLOBAL_VERBOSITY.load(Ordering::Relaxed) {
                0 => Verbosity::Quiet,
                1 => Verbosity::Normal,
                _ => Verbosity::Verbose,
            },
        }
    }

    /// The configured verbosity.
    pub fn verbosity(&self) -> Verbosity {
        self.verbosity
    }

    /// A result line: stdout, always.
    pub fn result(&self, msg: impl Display) {
        println!("{msg}");
    }

    /// A progress line: stderr, at Normal verbosity and above. Lines are
    /// written whole — concurrent workers never produce torn output.
    pub fn progress(&self, msg: impl Display) {
        if self.verbosity >= Verbosity::Normal {
            stderr_line(msg);
        }
    }

    /// A detail line (per-job completions): stderr, at Verbose only.
    /// Lines are written whole, like [`Reporter::progress`].
    pub fn detail(&self, msg: impl Display) {
        if self.verbosity >= Verbosity::Verbose {
            stderr_line(msg);
        }
    }

    /// A heartbeat line: stderr, at Normal and above. Kept distinct from
    /// [`Reporter::detail`] so long sweeps stay visible by default. The
    /// heartbeat thread shares the line-ordered writer with the sweep
    /// workers, so a heartbeat can never land mid-progress-line.
    pub fn heartbeat(&self, msg: impl Display) {
        if self.verbosity >= Verbosity::Normal {
            stderr_line(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_parses_names_and_digits() {
        assert_eq!(Verbosity::parse("0"), Some(Verbosity::Quiet));
        assert_eq!(Verbosity::parse("quiet"), Some(Verbosity::Quiet));
        assert_eq!(Verbosity::parse("1"), Some(Verbosity::Normal));
        assert_eq!(Verbosity::parse("verbose"), Some(Verbosity::Verbose));
        assert_eq!(Verbosity::parse("3"), None);
    }

    #[test]
    fn verbosity_orders_quiet_below_verbose() {
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);
        assert_eq!(Verbosity::default(), Verbosity::Normal);
    }

    #[test]
    fn silent_reporter_is_quiet() {
        assert_eq!(Reporter::silent().verbosity(), Verbosity::Quiet);
    }

    #[test]
    fn concurrent_reporters_do_not_deadlock() {
        // Quiet reporters skip the write but the point is that many
        // threads hammering the reporting paths terminate cleanly.
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let r = Reporter::new(Verbosity::Quiet);
                    for j in 0..100 {
                        r.progress(format_args!("t{i} line {j}"));
                        r.heartbeat(format_args!("t{i} beat {j}"));
                        r.detail(format_args!("t{i} detail {j}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
