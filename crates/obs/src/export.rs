//! Export sinks: JSONL event streams and Chrome `trace_event` JSON.
//!
//! Both sinks write through any [`std::io::Write`] and track I/O errors
//! internally instead of panicking mid-simulation; check
//! [`JsonlSink::error`] / [`ChromeTraceSink::finish`] after the run.

use std::io::Write;

use crate::event::Event;
use crate::json::Value;
use crate::sink::Sink;
use crate::stats::ObsSnapshot;

/// Streams events as JSON Lines: one object per line, schema
/// `{"t":<instrs>,"ev":<name>, …payload}`.
///
/// The line schema is stable — tools may rely on `t` and `ev` always
/// being present and on one complete JSON object per line.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    error: Option<std::io::Error>,
    lines: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a JSONL sink writing to `out` (wrap files in `BufWriter`).
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out, error: None, lines: 0 }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error encountered, if any. Once an error occurs the
    /// sink stops writing.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the writer, or the first error encountered.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn emit(&mut self, now: u64, ev: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = ev.to_json(now).to_string();
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        } else {
            self.lines += 1;
        }
    }
}

/// Writes Chrome `trace_event` JSON (the format `chrome://tracing` and
/// [Perfetto](https://ui.perfetto.dev) load).
///
/// Events become instants (`"ph":"i"`) on a per-kind thread lane;
/// explicit [`span`](ChromeTraceSink::span) calls become complete events
/// (`"ph":"X"`). Timestamps are microseconds; the simulator maps one user
/// instruction to one microsecond so trace time reads as instruction
/// counts.
#[derive(Debug)]
pub struct ChromeTraceSink<W: Write> {
    out: W,
    error: Option<std::io::Error>,
    wrote_any: bool,
    pid: u64,
}

impl<W: Write> ChromeTraceSink<W> {
    /// Creates a trace sink writing to `out` and emits the opening of the
    /// JSON array plus thread-name metadata.
    pub fn new(out: W) -> ChromeTraceSink<W> {
        let mut sink = ChromeTraceSink { out, error: None, wrote_any: false, pid: 1 };
        sink.raw("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (tid, name) in Self::LANES {
            sink.record(&Value::obj([
                ("name", "thread_name".into()),
                ("ph", "M".into()),
                ("pid", sink.pid.into()),
                ("tid", (*tid).into()),
                ("args", Value::obj([("name", (*name).into())])),
            ]));
        }
        sink
    }

    /// Thread lanes instant events are routed to, by event name.
    const LANES: &'static [(u64, &'static str)] = &[
        (1, "spans"),
        (2, "tlb_miss"),
        (3, "walk_complete"),
        (4, "interrupt"),
        (5, "flush+eviction"),
        (6, "cache_miss"),
        (7, "sweep"),
    ];

    fn lane(ev: &Event) -> u64 {
        match ev {
            Event::TlbMiss { .. } => 2,
            Event::WalkComplete { .. } => 3,
            Event::Interrupt { .. } => 4,
            Event::ContextSwitchFlush { .. }
            | Event::HandlerEviction { .. }
            | Event::TlbEviction { .. } => 5,
            Event::CacheMiss { .. } => 6,
            Event::SweepStarted { .. }
            | Event::SweepPointDone { .. }
            | Event::PointFailed { .. }
            | Event::PointRetried { .. }
            | Event::RunResumed { .. }
            | Event::JobAdmitted { .. }
            | Event::JobShed { .. }
            | Event::JobDone { .. }
            | Event::DrainStarted { .. }
            | Event::WorkerSpawned { .. }
            | Event::WorkerCrashed { .. }
            | Event::WorkerRestarted { .. }
            | Event::BreakerTripped { .. }
            | Event::ShardDispatched { .. }
            | Event::ShardHedged { .. }
            | Event::BackendEvicted { .. }
            | Event::BackendJoined { .. }
            | Event::BackendProbation { .. }
            | Event::BackendRejoined { .. }
            | Event::BackendRecovered { .. }
            | Event::ResultDiverged { .. }
            | Event::AuditPassed { .. }
            | Event::AuditFailed { .. }
            | Event::BackendQuarantined { .. }
            | Event::FleetMerged { .. }
            | Event::UploadStarted { .. }
            | Event::ChunkReceived { .. }
            | Event::UploadCommitted { .. }
            | Event::UploadRejected { .. }
            | Event::UploadGc { .. } => 7,
        }
    }

    fn raw(&mut self, s: &str) {
        if self.error.is_none() {
            if let Err(e) = self.out.write_all(s.as_bytes()) {
                self.error = Some(e);
            }
        }
    }

    fn record(&mut self, v: &Value) {
        if self.wrote_any {
            self.raw(",\n");
        } else {
            self.raw("\n");
        }
        self.wrote_any = true;
        let line = v.to_string();
        self.raw(&line);
    }

    /// Emits a complete (`"ph":"X"`) span covering `[start_us, end_us)`.
    ///
    /// Used by drivers to mark phases (warm-up, measurement) or whole
    /// jobs; `name` appears on the span, `args` as its payload.
    pub fn span(
        &mut self,
        name: &str,
        start_us: u64,
        end_us: u64,
        args: impl IntoIterator<Item = (&'static str, Value)>,
    ) {
        let v = Value::obj([
            ("name", Value::Str(name.to_owned())),
            ("ph", "X".into()),
            ("ts", start_us.into()),
            ("dur", end_us.saturating_sub(start_us).into()),
            ("pid", self.pid.into()),
            ("tid", 1u64.into()),
            ("args", Value::obj(args)),
        ]);
        self.record(&v);
    }

    /// Closes the JSON document, flushes, and returns the writer (or the
    /// first I/O error). Call this; a dropped sink leaves the file
    /// truncated mid-array.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.raw("\n]}\n");
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    /// The first I/O error encountered, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }
}

impl<W: Write> Sink for ChromeTraceSink<W> {
    fn emit(&mut self, now: u64, ev: &Event) {
        let payload = ev.to_json(now);
        let v = Value::obj([
            ("name", ev.name().into()),
            ("ph", "i".into()),
            ("ts", now.into()),
            ("pid", self.pid.into()),
            ("tid", Self::lane(ev).into()),
            ("s", "t".into()),
            ("args", Value::obj([("detail", payload)])),
        ]);
        self.record(&v);
    }
}

/// Convenience: serializes a snapshot-bearing run summary object — used
/// by the CLI to append a final `run_summary` line to a JSONL stream.
pub fn summary_line(system: &str, instructions: u64, snap: &ObsSnapshot) -> Value {
    Value::obj([
        ("t", instructions.into()),
        ("ev", "run_summary".into()),
        ("system", system.into()),
        ("snapshot", snap.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use vm_types::HandlerLevel;

    fn sample(now: u64) -> Event {
        Event::WalkComplete { level: HandlerLevel::User, cycles: now + 1, memrefs: 1 }
    }

    #[test]
    fn jsonl_writes_one_parseable_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        for t in 0..5u64 {
            sink.emit(t * 10, &sample(t));
        }
        assert_eq!(sink.lines(), 5);
        let buf = sink.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).unwrap();
            assert_eq!(v.get("t").unwrap().as_u64(), Some(i as u64 * 10));
            assert_eq!(v.get("ev").unwrap().as_str(), Some("walk_complete"));
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_monotonic_ts() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.span("measure", 0, 300, [("instrs", 300u64.into())]);
        for t in [5u64, 40, 120, 290] {
            sink.emit(t, &sample(t));
        }
        let buf = sink.finish().unwrap();
        let doc = json::parse(&String::from_utf8(buf).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Metadata lanes + 1 span + 4 instants.
        assert_eq!(events.len(), ChromeTraceSink::<Vec<u8>>::LANES.len() + 5);
        let mut last_ts = 0;
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            assert!(matches!(ph, "M" | "X" | "i"), "unexpected phase {ph}");
            if ph == "i" {
                let ts = ev.get("ts").unwrap().as_u64().unwrap();
                assert!(ts >= last_ts, "timestamps must be monotonic");
                last_ts = ts;
            }
        }
    }

    #[test]
    fn empty_chrome_trace_still_parses() {
        let buf = ChromeTraceSink::new(Vec::new()).finish().unwrap();
        let doc = json::parse(&String::from_utf8(buf).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), ChromeTraceSink::<Vec<u8>>::LANES.len());
    }

    #[test]
    fn io_errors_are_latched_not_panicked() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.emit(0, &sample(0));
        sink.emit(1, &sample(1));
        assert_eq!(sink.lines(), 0);
        assert!(sink.error().is_some());
        assert!(sink.finish().is_err());
    }

    #[test]
    fn summary_line_round_trips() {
        let snap = ObsSnapshot::default();
        let line = summary_line("ULTRIX", 1000, &snap).to_string();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("ev").unwrap().as_str(), Some("run_summary"));
        assert_eq!(v.get("system").unwrap().as_str(), Some("ULTRIX"));
    }
}
