//! Translation lookaside buffer models for the Jacob & Mudge
//! (ASPLOS 1998) reproduction.
//!
//! Table 1 of the paper fixes the TLB organization: split 128-entry
//! instruction and data TLBs, **fully associative with random
//! replacement** ("similar to MIPS"). The MIPS-flavoured simulations
//! (ULTRIX, MACH) additionally *partition* each TLB, reserving the 16
//! lower slots as **protected** entries that hold kernel-level PTEs — the
//! mappings of the user page table itself — so that a burst of user misses
//! cannot evict the very entries needed to service them. The INTEL and
//! PA-RISC simulations leave all 128 slots available to user entries.
//!
//! [`Tlb`] implements exactly that: a fully-associative array with an
//! optional protected partition and pluggable replacement
//! ([`Replacement::Random`] as in the paper, plus LRU/FIFO for the
//! replacement-policy ablation).
//!
//! # Example
//!
//! ```
//! use vm_tlb::{Replacement, Tlb, TlbConfig};
//! use vm_types::{AddressSpace, MAddr, Vpn};
//!
//! # fn main() -> Result<(), vm_tlb::TlbConfigError> {
//! let mut tlb = Tlb::new(TlbConfig::paper_mips()?, 42);
//! let page = MAddr::user(0x4000).vpn();
//! assert!(!tlb.lookup(page));          // cold miss
//! tlb.insert_user(page);
//! assert!(tlb.lookup(page));           // now mapped
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use vm_types::{SplitMix64, Vpn};

/// Replacement policy for a fully-associative [`Tlb`] partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Uniform random choice among the partition's slots — the paper's
    /// policy ("fully associative with random replacement", Table 1).
    Random,
    /// Evict the least-recently *used* entry (ablation).
    Lru,
    /// Evict the oldest *inserted* entry (ablation).
    Fifo,
}

impl Replacement {
    /// Resolves a policy name (case-insensitive: `random`, `lru`,
    /// `fifo`) — the spellings system spec files use.
    pub fn parse(s: &str) -> Option<Replacement> {
        [Replacement::Random, Replacement::Lru, Replacement::Fifo]
            .into_iter()
            .find(|r| r.to_string().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Replacement::Random => "random",
            Replacement::Lru => "LRU",
            Replacement::Fifo => "FIFO",
        };
        f.write_str(name)
    }
}

/// Validated TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    entries: usize,
    protected_slots: usize,
    replacement: Replacement,
}

impl TlbConfig {
    /// A TLB with `entries` slots, of which the `protected_slots` lowest
    /// are reserved for kernel-level (protected) insertions.
    ///
    /// # Errors
    ///
    /// Returns [`TlbConfigError`] if `entries` is zero or the protected
    /// partition does not leave at least one user slot.
    pub fn new(
        entries: usize,
        protected_slots: usize,
        replacement: Replacement,
    ) -> Result<TlbConfig, TlbConfigError> {
        if entries == 0 {
            return Err(TlbConfigError {
                entries,
                protected_slots,
                what: "TLB must have at least one entry",
            });
        }
        if protected_slots >= entries {
            return Err(TlbConfigError {
                entries,
                protected_slots,
                what: "protected partition must leave at least one user slot",
            });
        }
        Ok(TlbConfig { entries, protected_slots, replacement })
    }

    /// The MIPS-flavoured configuration of the ULTRIX/MACH simulations:
    /// 128 entries, 16 protected lower slots, random replacement.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn paper_mips() -> Result<TlbConfig, TlbConfigError> {
        TlbConfig::new(128, 16, Replacement::Random)
    }

    /// The unpartitioned configuration of the INTEL/PA-RISC simulations:
    /// 128 entries, no protected slots, random replacement.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn paper_flat() -> Result<TlbConfig, TlbConfigError> {
        TlbConfig::new(128, 0, Replacement::Random)
    }

    /// Total slot count.
    #[inline]
    pub fn entries(self) -> usize {
        self.entries
    }

    /// Slots reserved for protected (kernel-level) entries.
    #[inline]
    pub fn protected_slots(self) -> usize {
        self.protected_slots
    }

    /// Slots available to user-level entries.
    #[inline]
    pub fn user_slots(self) -> usize {
        self.entries - self.protected_slots
    }

    /// The replacement policy.
    #[inline]
    pub fn replacement(self) -> Replacement {
        self.replacement
    }
}

/// Error returned for a degenerate TLB geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfigError {
    entries: usize,
    protected_slots: usize,
    what: &'static str,
}

impl fmt::Display for TlbConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid TLB geometry ({} entries, {} protected): {}",
            self.entries, self.protected_slots, self.what
        )
    }
}

impl Error for TlbConfigError {}

/// Lookup / insertion counters for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbCounters {
    /// Translations attempted.
    pub lookups: u64,
    /// Translations satisfied by a resident entry.
    pub hits: u64,
    /// Entries installed (user + protected).
    pub insertions: u64,
    /// Valid entries displaced to make room.
    pub evictions: u64,
}

impl TlbCounters {
    /// Lookups that missed.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Miss ratio in `[0, 1]`; zero when idle.
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses() as f64 / self.lookups as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    vpn: Option<Vpn>,
    /// Recency stamp (LRU) or insertion stamp (FIFO); unused for Random.
    stamp: u64,
}

/// A fully-associative TLB with an optional protected partition.
///
/// Entries map a [`Vpn`] to "present" — the paper's simulator needs no
/// translation *result*, only hit/miss behaviour, because the caches are
/// virtually addressed. (The PA-RISC page table stores PFNs, but that
/// lives in [`vm-ptable`](https://docs.rs/vm-ptable), not here.)
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    slots: Vec<Slot>,
    index: HashMap<Vpn, usize>,
    rng: SplitMix64,
    tick: u64,
    counters: TlbCounters,
}

impl Tlb {
    /// Creates an empty TLB. `seed` drives random replacement; the same
    /// seed reproduces the same eviction sequence.
    pub fn new(config: TlbConfig, seed: u64) -> Tlb {
        Tlb {
            config,
            slots: vec![Slot { vpn: None, stamp: 0 }; config.entries()],
            index: HashMap::with_capacity(config.entries()),
            rng: SplitMix64::new(seed),
            tick: 0,
            counters: TlbCounters::default(),
        }
    }

    /// The geometry this TLB was built with.
    #[inline]
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Accumulated counters.
    #[inline]
    pub fn counters(&self) -> TlbCounters {
        self.counters
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.index.len()
    }

    /// Resets counters, keeping contents (for warm-up separation).
    pub fn reset_counters(&mut self) {
        self.counters = TlbCounters::default();
    }

    /// Invalidates all entries.
    pub fn flush(&mut self) {
        for slot in &mut self.slots {
            slot.vpn = None;
        }
        self.index.clear();
    }

    /// Translates `vpn`, updating counters and (for LRU) recency.
    /// Returns `true` on a hit.
    pub fn lookup(&mut self, vpn: Vpn) -> bool {
        self.counters.lookups += 1;
        if let Some(&slot) = self.index.get(&vpn) {
            self.counters.hits += 1;
            if self.config.replacement() == Replacement::Lru {
                self.tick += 1;
                self.slots[slot].stamp = self.tick;
            }
            true
        } else {
            false
        }
    }

    /// Checks residency without counting or touching recency.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.index.contains_key(&vpn)
    }

    /// Installs a user-level entry in the user partition. Returns the
    /// valid entry displaced to make room, if any.
    pub fn insert_user(&mut self, vpn: Vpn) -> Option<Vpn> {
        let lo = self.config.protected_slots();
        let hi = self.config.entries();
        self.insert_in(vpn, lo, hi)
    }

    /// Installs a protected (kernel-level) entry. Returns the valid entry
    /// displaced to make room, if any.
    ///
    /// With a partitioned configuration this uses the reserved lower
    /// slots, mirroring the ULTRIX/MACH simulations; with no protected
    /// partition it falls back to the whole array.
    pub fn insert_protected(&mut self, vpn: Vpn) -> Option<Vpn> {
        let hi = if self.config.protected_slots() > 0 {
            self.config.protected_slots()
        } else {
            self.config.entries()
        };
        self.insert_in(vpn, 0, hi)
    }

    fn insert_in(&mut self, vpn: Vpn, lo: usize, hi: usize) -> Option<Vpn> {
        self.counters.insertions += 1;
        self.tick += 1;
        if let Some(&slot) = self.index.get(&vpn) {
            if (lo..hi).contains(&slot) {
                // Refresh an already-resident entry in place.
                self.slots[slot].stamp = self.tick;
                return None;
            }
            // Resident in the other partition: migrate, so a promotion to
            // the protected partition actually protects (and vice versa).
            self.slots[slot].vpn = None;
            self.index.remove(&vpn);
        }
        // Prefer an invalid slot in the partition.
        let victim = match self.slots[lo..hi].iter().position(|s| s.vpn.is_none()) {
            Some(free) => lo + free,
            None => {
                self.counters.evictions += 1;
                match self.config.replacement() {
                    Replacement::Random => lo + self.rng.next_below((hi - lo) as u64) as usize,
                    Replacement::Lru | Replacement::Fifo => {
                        let (victim, _) = self.slots[lo..hi]
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| s.stamp)
                            .expect("partition is non-empty");
                        lo + victim
                    }
                }
            }
        };
        let displaced = self.slots[victim].vpn.take();
        if let Some(old) = displaced {
            self.index.remove(&old);
        }
        self.slots[victim] = Slot { vpn: Some(vpn), stamp: self.tick };
        self.index.insert(vpn, victim);
        displaced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm_types::AddressSpace;

    fn vpn(i: u64) -> Vpn {
        Vpn::new(AddressSpace::User, i)
    }

    fn kvpn(i: u64) -> Vpn {
        Vpn::new(AddressSpace::Kernel, i)
    }

    fn tiny(entries: usize, protected: usize, repl: Replacement) -> Tlb {
        Tlb::new(TlbConfig::new(entries, protected, repl).unwrap(), 1)
    }

    #[test]
    fn paper_configs_are_valid() {
        let mips = TlbConfig::paper_mips().unwrap();
        assert_eq!(mips.entries(), 128);
        assert_eq!(mips.protected_slots(), 16);
        assert_eq!(mips.user_slots(), 112);
        let flat = TlbConfig::paper_flat().unwrap();
        assert_eq!(flat.user_slots(), 128);
        assert_eq!(flat.replacement(), Replacement::Random);
    }

    #[test]
    fn degenerate_geometries_rejected() {
        assert!(TlbConfig::new(0, 0, Replacement::Random).is_err());
        assert!(TlbConfig::new(16, 16, Replacement::Random).is_err());
        let err = TlbConfig::new(16, 20, Replacement::Random).unwrap_err();
        assert!(err.to_string().contains("user slot"));
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut t = tiny(4, 0, Replacement::Random);
        assert!(!t.lookup(vpn(7)));
        t.insert_user(vpn(7));
        assert!(t.lookup(vpn(7)));
        let c = t.counters();
        assert_eq!(c.lookups, 2);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.insertions, 1);
        assert_eq!(c.evictions, 0);
    }

    #[test]
    fn capacity_eviction_occurs() {
        let mut t = tiny(4, 0, Replacement::Random);
        for i in 0..4 {
            assert_eq!(t.insert_user(vpn(i)), None, "cold fills displace nothing");
        }
        let victim = t.insert_user(vpn(4));
        assert!(victim.is_some(), "a full partition must report its victim");
        assert!(!t.contains(victim.unwrap()));
        assert_eq!(t.occupancy(), 4);
        assert_eq!(t.counters().evictions, 1);
        // Exactly one of the first five pages is gone.
        let resident = (0..5).filter(|&i| t.contains(vpn(i))).count();
        assert_eq!(resident, 4);
    }

    #[test]
    fn reinserting_resident_entry_does_not_evict() {
        let mut t = tiny(2, 0, Replacement::Random);
        t.insert_user(vpn(1));
        t.insert_user(vpn(2));
        t.insert_user(vpn(1)); // refresh
        assert!(t.contains(vpn(1)));
        assert!(t.contains(vpn(2)));
        assert_eq!(t.counters().evictions, 0);
    }

    #[test]
    fn protected_partition_shields_kernel_entries() {
        // 4 user slots + 2 protected. Thrash the user partition hard;
        // protected entries must survive.
        let mut t = tiny(6, 2, Replacement::Random);
        t.insert_protected(kvpn(100));
        t.insert_protected(kvpn(101));
        for i in 0..1000 {
            t.insert_user(vpn(i));
        }
        assert!(t.contains(kvpn(100)));
        assert!(t.contains(kvpn(101)));
        assert_eq!(t.occupancy(), 6);
    }

    #[test]
    fn user_entries_never_occupy_protected_slots() {
        let mut t = tiny(6, 2, Replacement::Random);
        for i in 0..1000 {
            t.insert_user(vpn(i));
        }
        // Only the 4 user slots can be valid.
        assert_eq!(t.occupancy(), 4);
    }

    #[test]
    fn promotion_migrates_between_partitions() {
        // A VPN first installed as a user entry and later promoted to
        // protected must end up in the protected partition (and survive
        // user thrash thereafter).
        let mut t = tiny(6, 2, Replacement::Random);
        t.insert_user(kvpn(42));
        t.insert_protected(kvpn(42));
        for i in 0..1000 {
            t.insert_user(vpn(i));
        }
        assert!(t.contains(kvpn(42)), "promoted entry must be protected");
        // And demotion works symmetrically.
        let mut t = tiny(6, 2, Replacement::Random);
        t.insert_protected(kvpn(7));
        t.insert_user(kvpn(7));
        t.insert_protected(kvpn(1));
        t.insert_protected(kvpn(2));
        t.insert_protected(kvpn(3)); // fills/evicts within protected only
                                     // kvpn(7) now lives in the user partition; the protected churn
                                     // cannot have touched it.
        assert!(t.contains(kvpn(7)));
    }

    #[test]
    fn protected_insert_without_partition_uses_whole_array() {
        let mut t = tiny(4, 0, Replacement::Random);
        t.insert_protected(kvpn(5));
        assert!(t.contains(kvpn(5)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn protected_partition_evicts_within_itself() {
        let mut t = tiny(6, 2, Replacement::Random);
        t.insert_protected(kvpn(1));
        t.insert_protected(kvpn(2));
        t.insert_protected(kvpn(3)); // must evict kvpn(1) or kvpn(2)
        let survivors = (1..=3).filter(|&i| t.contains(kvpn(i))).count();
        assert_eq!(survivors, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut t = tiny(2, 0, Replacement::Lru);
        t.insert_user(vpn(1));
        t.insert_user(vpn(2));
        assert!(t.lookup(vpn(1))); // 1 is now MRU
        t.insert_user(vpn(3)); // evicts 2
        assert!(t.contains(vpn(1)));
        assert!(!t.contains(vpn(2)));
        assert!(t.contains(vpn(3)));
    }

    #[test]
    fn fifo_ignores_lookups() {
        let mut t = tiny(2, 0, Replacement::Fifo);
        t.insert_user(vpn(1));
        t.insert_user(vpn(2));
        assert!(t.lookup(vpn(1))); // does not refresh under FIFO
        t.insert_user(vpn(3)); // evicts 1 (oldest insertion)
        assert!(!t.contains(vpn(1)));
        assert!(t.contains(vpn(2)));
        assert!(t.contains(vpn(3)));
    }

    #[test]
    fn random_replacement_is_seed_deterministic() {
        let cfg = TlbConfig::new(8, 0, Replacement::Random).unwrap();
        let mut a = Tlb::new(cfg, 7);
        let mut b = Tlb::new(cfg, 7);
        for i in 0..100 {
            a.insert_user(vpn(i));
            b.insert_user(vpn(i));
        }
        for i in 0..100 {
            assert_eq!(a.contains(vpn(i)), b.contains(vpn(i)));
        }
    }

    #[test]
    fn flush_empties_everything() {
        let mut t = tiny(4, 2, Replacement::Random);
        t.insert_user(vpn(1));
        t.insert_protected(kvpn(2));
        t.flush();
        assert_eq!(t.occupancy(), 0);
        assert!(!t.contains(vpn(1)));
        assert!(!t.contains(kvpn(2)));
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut t = tiny(4, 0, Replacement::Random);
        t.insert_user(vpn(1));
        t.lookup(vpn(1));
        t.reset_counters();
        assert_eq!(t.counters().lookups, 0);
        assert!(t.contains(vpn(1)));
    }

    #[test]
    fn miss_ratio_is_sane() {
        let mut t = tiny(4, 0, Replacement::Random);
        assert_eq!(t.counters().miss_ratio(), 0.0);
        t.lookup(vpn(1));
        t.insert_user(vpn(1));
        t.lookup(vpn(1));
        assert!((t.counters().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_spaces_do_not_alias() {
        let mut t = tiny(8, 0, Replacement::Random);
        t.insert_user(vpn(3));
        assert!(!t.contains(kvpn(3)));
    }
}
