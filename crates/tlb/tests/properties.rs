//! Randomized tests of the TLB models' invariants, driven by a seeded
//! [`SplitMix64`] stream (the workspace carries no third-party
//! property-testing framework).

use vm_tlb::{Replacement, Tlb, TlbConfig};
use vm_types::{AddressSpace, SplitMix64, Vpn};

const CASES: usize = 60;

fn any_policy(rng: &mut SplitMix64) -> Replacement {
    match rng.next_below(3) {
        0 => Replacement::Random,
        1 => Replacement::Lru,
        _ => Replacement::Fifo,
    }
}

fn any_config(rng: &mut SplitMix64) -> TlbConfig {
    let entries = 2 + rng.next_below(62) as usize;
    let protected = if rng.chance(0.5) { (entries / 4).min(entries - 1) } else { 0 };
    TlbConfig::new(entries, protected, any_policy(rng)).expect("generated geometry is valid")
}

/// An operation stream over a small VPN universe so collisions happen.
#[derive(Debug, Clone, Copy)]
enum Op {
    Lookup(u64),
    InsertUser(u64),
    InsertProtected(u64),
    Flush,
}

fn any_op(rng: &mut SplitMix64) -> Op {
    match rng.next_below(8) {
        0..=2 => Op::Lookup(rng.next_below(64)),
        3..=5 => Op::InsertUser(rng.next_below(64)),
        6 => Op::InsertProtected(64 + rng.next_below(16)),
        _ => Op::Flush,
    }
}

fn apply(tlb: &mut Tlb, op: Op) {
    match op {
        Op::Lookup(v) => {
            tlb.lookup(Vpn::new(AddressSpace::User, v));
        }
        Op::InsertUser(v) => {
            tlb.insert_user(Vpn::new(AddressSpace::User, v));
        }
        Op::InsertProtected(v) => {
            tlb.insert_protected(Vpn::new(AddressSpace::Kernel, v));
        }
        Op::Flush => tlb.flush(),
    }
}

#[test]
fn occupancy_never_exceeds_capacity() {
    let mut rng = SplitMix64::new(0x0cc);
    for case in 0..CASES {
        let cfg = any_config(&mut rng);
        let mut tlb = Tlb::new(cfg, rng.next_u64());
        let ops = 1 + rng.next_below(499);
        for _ in 0..ops {
            apply(&mut tlb, any_op(&mut rng));
            assert!(tlb.occupancy() <= cfg.entries(), "case {case}: {cfg:?}");
        }
    }
}

#[test]
fn lookup_after_insert_hits_until_flush() {
    let mut rng = SplitMix64::new(0x100c);
    for case in 0..CASES {
        let cfg = any_config(&mut rng);
        let mut tlb = Tlb::new(cfg, rng.next_u64());
        let vpn = Vpn::new(AddressSpace::User, rng.next_below(1000));
        tlb.insert_user(vpn);
        assert!(tlb.lookup(vpn), "case {case}: fresh insert must hit");
        tlb.flush();
        assert!(!tlb.lookup(vpn), "case {case}: flush must invalidate");
    }
}

#[test]
fn counters_reconcile() {
    let mut rng = SplitMix64::new(0xc0);
    for case in 0..CASES {
        let cfg = any_config(&mut rng);
        let mut tlb = Tlb::new(cfg, rng.next_u64());
        let mut expected_lookups = 0u64;
        let mut expected_inserts = 0u64;
        let mut observed_victims = 0u64;
        let ops = 1 + rng.next_below(499);
        for _ in 0..ops {
            let op = any_op(&mut rng);
            match op {
                Op::Lookup(v) => {
                    expected_lookups += 1;
                    tlb.lookup(Vpn::new(AddressSpace::User, v));
                }
                Op::InsertUser(v) => {
                    expected_inserts += 1;
                    if tlb.insert_user(Vpn::new(AddressSpace::User, v)).is_some() {
                        observed_victims += 1;
                    }
                }
                Op::InsertProtected(v) => {
                    expected_inserts += 1;
                    if tlb.insert_protected(Vpn::new(AddressSpace::Kernel, v)).is_some() {
                        observed_victims += 1;
                    }
                }
                Op::Flush => tlb.flush(),
            }
        }
        let k = tlb.counters();
        assert_eq!(k.lookups, expected_lookups, "case {case}");
        assert_eq!(k.insertions, expected_inserts, "case {case}");
        assert!(k.hits <= k.lookups);
        assert!(k.evictions <= k.insertions);
        // The reported victims are exactly the counted evictions — the
        // observability layer depends on this equivalence.
        assert_eq!(k.evictions, observed_victims, "case {case}");
    }
}

#[test]
fn protected_entries_survive_arbitrary_user_traffic() {
    let mut rng = SplitMix64::new(0x960);
    for case in 0..CASES {
        let entries = 8 + rng.next_below(56) as usize;
        let protected = (entries / 4).max(1);
        let cfg = TlbConfig::new(entries, protected, Replacement::Random).unwrap();
        let mut tlb = Tlb::new(cfg, rng.next_u64());
        let kernel: Vec<Vpn> =
            (0..protected as u64).map(|i| Vpn::new(AddressSpace::Kernel, i)).collect();
        for &k in &kernel {
            tlb.insert_protected(k);
        }
        let traffic = 1 + rng.next_below(599);
        for _ in 0..traffic {
            tlb.insert_user(Vpn::new(AddressSpace::User, rng.next_below(4096)));
        }
        for &k in &kernel {
            assert!(tlb.contains(k), "case {case}: protected {k} evicted by user traffic");
        }
    }
}

#[test]
fn user_partition_caps_user_residency() {
    let mut rng = SplitMix64::new(0xca9);
    for case in 0..CASES {
        let entries = 8 + rng.next_below(56) as usize;
        let protected = entries / 4;
        let cfg = TlbConfig::new(entries, protected, Replacement::Random).unwrap();
        let mut tlb = Tlb::new(cfg, rng.next_u64());
        let mut distinct = std::collections::HashSet::new();
        let inserts = 1 + rng.next_below(599);
        for _ in 0..inserts {
            let v = rng.next_below(4096);
            distinct.insert(v);
            tlb.insert_user(Vpn::new(AddressSpace::User, v));
        }
        assert!(
            tlb.occupancy() <= cfg.user_slots().min(distinct.len()),
            "case {case}: occupancy {} exceeds user capacity",
            tlb.occupancy()
        );
    }
}

#[test]
fn lru_never_evicts_the_most_recent() {
    let mut rng = SplitMix64::new(0x124);
    for case in 0..CASES {
        let cfg = TlbConfig::new(8, 0, Replacement::Lru).unwrap();
        let mut tlb = Tlb::new(cfg, rng.next_u64());
        let inserts = 2 + rng.next_below(198);
        for _ in 0..inserts {
            let vpn = Vpn::new(AddressSpace::User, rng.next_below(256));
            tlb.insert_user(vpn);
            assert!(tlb.contains(vpn), "case {case}: MRU entry missing");
        }
    }
}

#[test]
fn random_replacement_is_seed_deterministic() {
    let mut rng = SplitMix64::new(0xd7e);
    for case in 0..CASES {
        let cfg = TlbConfig::new(16, 4, Replacement::Random).unwrap();
        let seed = rng.next_u64();
        let mut a = Tlb::new(cfg, seed);
        let mut b = Tlb::new(cfg, seed);
        let ops = 1 + rng.next_below(299);
        for _ in 0..ops {
            let op = any_op(&mut rng);
            apply(&mut a, op);
            apply(&mut b, op);
        }
        assert_eq!(a.counters(), b.counters(), "case {case}");
        assert_eq!(a.occupancy(), b.occupancy(), "case {case}");
    }
}
