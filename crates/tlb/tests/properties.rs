//! Property-based tests of the TLB models' invariants.

use proptest::prelude::*;
use vm_tlb::{Replacement, Tlb, TlbConfig};
use vm_types::{AddressSpace, Vpn};

fn any_policy() -> impl Strategy<Value = Replacement> {
    prop_oneof![Just(Replacement::Random), Just(Replacement::Lru), Just(Replacement::Fifo)]
}

fn any_config() -> impl Strategy<Value = TlbConfig> {
    (2usize..64, any_policy(), any::<bool>()).prop_map(|(entries, policy, partitioned)| {
        let protected = if partitioned { (entries / 4).min(entries - 1) } else { 0 };
        TlbConfig::new(entries, protected, policy).expect("generated geometry is valid")
    })
}

/// An operation stream over a small VPN universe so collisions happen.
#[derive(Debug, Clone, Copy)]
enum Op {
    Lookup(u64),
    InsertUser(u64),
    InsertProtected(u64),
    Flush,
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64).prop_map(Op::Lookup),
        (0u64..64).prop_map(Op::InsertUser),
        (64u64..80).prop_map(Op::InsertProtected),
        Just(Op::Flush),
    ]
}

fn apply(tlb: &mut Tlb, op: Op) {
    match op {
        Op::Lookup(v) => {
            tlb.lookup(Vpn::new(AddressSpace::User, v));
        }
        Op::InsertUser(v) => tlb.insert_user(Vpn::new(AddressSpace::User, v)),
        Op::InsertProtected(v) => tlb.insert_protected(Vpn::new(AddressSpace::Kernel, v)),
        Op::Flush => tlb.flush(),
    }
}

proptest! {
    #[test]
    fn occupancy_never_exceeds_capacity(cfg in any_config(), ops in prop::collection::vec(any_op(), 1..500), seed in any::<u64>()) {
        let mut tlb = Tlb::new(cfg, seed);
        for op in ops {
            apply(&mut tlb, op);
            prop_assert!(tlb.occupancy() <= cfg.entries());
        }
    }

    #[test]
    fn lookup_after_insert_hits_until_flush(cfg in any_config(), seed in any::<u64>(), v in 0u64..1000) {
        let mut tlb = Tlb::new(cfg, seed);
        let vpn = Vpn::new(AddressSpace::User, v);
        tlb.insert_user(vpn);
        prop_assert!(tlb.lookup(vpn));
        tlb.flush();
        prop_assert!(!tlb.lookup(vpn));
    }

    #[test]
    fn counters_reconcile(cfg in any_config(), ops in prop::collection::vec(any_op(), 1..500), seed in any::<u64>()) {
        let mut tlb = Tlb::new(cfg, seed);
        let mut expected_lookups = 0u64;
        let mut expected_inserts = 0u64;
        for op in ops {
            match op {
                Op::Lookup(_) => expected_lookups += 1,
                Op::InsertUser(_) | Op::InsertProtected(_) => expected_inserts += 1,
                Op::Flush => {}
            }
            apply(&mut tlb, op);
        }
        let k = tlb.counters();
        prop_assert_eq!(k.lookups, expected_lookups);
        prop_assert_eq!(k.insertions, expected_inserts);
        prop_assert!(k.hits <= k.lookups);
        prop_assert!(k.evictions <= k.insertions);
    }

    #[test]
    fn protected_entries_survive_arbitrary_user_traffic(
        entries in 8usize..64,
        seed in any::<u64>(),
        user_traffic in prop::collection::vec(0u64..4096, 1..600),
    ) {
        let protected = entries / 4;
        let cfg = TlbConfig::new(entries, protected.max(1), Replacement::Random).unwrap();
        let mut tlb = Tlb::new(cfg, seed);
        let kernel: Vec<Vpn> =
            (0..protected.max(1) as u64).map(|i| Vpn::new(AddressSpace::Kernel, i)).collect();
        for &k in &kernel {
            tlb.insert_protected(k);
        }
        for v in user_traffic {
            tlb.insert_user(Vpn::new(AddressSpace::User, v));
        }
        for &k in &kernel {
            prop_assert!(tlb.contains(k), "protected {k} evicted by user traffic");
        }
    }

    #[test]
    fn user_partition_caps_user_residency(
        entries in 8usize..64,
        seed in any::<u64>(),
        inserts in prop::collection::vec(0u64..4096, 1..600),
    ) {
        let protected = entries / 4;
        let cfg = TlbConfig::new(entries, protected, Replacement::Random).unwrap();
        let mut tlb = Tlb::new(cfg, seed);
        let mut distinct = std::collections::HashSet::new();
        for v in inserts {
            distinct.insert(v);
            tlb.insert_user(Vpn::new(AddressSpace::User, v));
        }
        prop_assert!(tlb.occupancy() <= cfg.user_slots().min(distinct.len()));
    }

    #[test]
    fn lru_never_evicts_the_most_recent(seed in any::<u64>(), vs in prop::collection::vec(0u64..256, 2..200)) {
        let cfg = TlbConfig::new(8, 0, Replacement::Lru).unwrap();
        let mut tlb = Tlb::new(cfg, seed);
        for &v in &vs {
            let vpn = Vpn::new(AddressSpace::User, v);
            tlb.insert_user(vpn);
            prop_assert!(tlb.contains(vpn));
        }
    }

    #[test]
    fn random_replacement_is_seed_deterministic(
        ops in prop::collection::vec(any_op(), 1..300),
        seed in any::<u64>(),
    ) {
        let cfg = TlbConfig::new(16, 4, Replacement::Random).unwrap();
        let mut a = Tlb::new(cfg, seed);
        let mut b = Tlb::new(cfg, seed);
        for op in ops {
            apply(&mut a, op);
            apply(&mut b, op);
        }
        prop_assert_eq!(a.counters(), b.counters());
        prop_assert_eq!(a.occupancy(), b.occupancy());
    }
}
