//! The worker side of the supervision protocol.
//!
//! A worker reads one request line at a time from stdin, computes, and
//! writes exactly one reply line to stdout — plus `{"j":"hb"}`
//! heartbeat lines while the computation runs, so the supervisor can
//! tell "slow" from "wedged". The loop exits cleanly at stdin EOF:
//! that is how a dying supervisor tells its workers to go (the pipe
//! closes with the process, even on SIGKILL), so workers never outlive
//! their supervisor as orphans.

use std::io::{self, BufRead, Write};
use std::time::Duration;

/// The exact heartbeat line workers emit between reply lines.
pub const HEARTBEAT_LINE: &str = "{\"j\":\"hb\"}";

/// The prefix supervisors filter heartbeats by (any `{"j":"hb"...}`
/// object qualifies, so the schema can grow fields).
pub const HEARTBEAT_PREFIX: &str = "{\"j\":\"hb\"";

/// How often a computing worker emits heartbeats.
pub const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_millis(250);

/// Runs the worker protocol until stdin EOF: for each request line,
/// `handle` computes the reply on a separate thread while this thread
/// emits heartbeats every `interval`; the reply is then written and
/// flushed as one line.
///
/// `handle` must return a single line (no `\n`). A panic inside
/// `handle` is not caught — the worker dies, which is precisely the
/// signal the supervisor restarts on.
///
/// # Errors
///
/// Propagates read failures from `input` and write failures to
/// `output` (a closed pipe means the supervisor is gone; exiting is
/// correct).
pub fn worker_loop<R: BufRead, W: Write>(
    input: R,
    mut output: W,
    interval: Duration,
    mut handle: impl FnMut(&str) -> String + Send,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = std::thread::scope(|scope| -> io::Result<String> {
            let job = scope.spawn(|| handle(&line));
            let mut last_hb = std::time::Instant::now();
            while !job.is_finished() {
                // Poll finely so a fast reply is not delayed behind a
                // full heartbeat interval.
                std::thread::sleep(interval.min(Duration::from_millis(25)));
                if job.is_finished() {
                    break;
                }
                if last_hb.elapsed() >= interval {
                    writeln!(output, "{HEARTBEAT_LINE}")?;
                    output.flush()?;
                    last_hb = std::time::Instant::now();
                }
            }
            match job.join() {
                Ok(reply) => Ok(reply),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })?;
        writeln!(output, "{reply}")?;
        output.flush()?;
    }
    Ok(())
}

/// Test hook: lets chaos tests SIGKILL a worker *mid-point* exactly
/// once. When `VM_SUPERVISE_KILL_POINT` names this request's tag and
/// `VM_SUPERVISE_KILL_ONCE` names a marker path that does not exist
/// yet, the worker creates the marker and kills itself with SIGKILL —
/// the restarted worker sees the marker and serves normally. A no-op
/// unless both variables are set.
pub fn maybe_kill_for_test(tag: u64) {
    let Ok(point) = std::env::var("VM_SUPERVISE_KILL_POINT") else { return };
    if point.parse() != Ok(tag) {
        return;
    }
    let Ok(marker) = std::env::var("VM_SUPERVISE_KILL_ONCE") else { return };
    // create_new is the atomic claim: exactly one worker dies even if
    // several race.
    if std::fs::OpenOptions::new().write(true).create_new(true).open(&marker).is_err() {
        return;
    }
    #[cfg(unix)]
    {
        let _ = std::process::Command::new("/bin/sh")
            .arg("-c")
            .arg(format!("kill -9 {}", std::process::id()))
            .status();
        // SIGKILL delivery is asynchronous; wait for it rather than
        // returning and computing a result that must not exist.
        for _ in 0..200 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    // Unreachable on Unix; elsewhere fall through to a hard death.
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn replies_once_per_request_and_skips_blank_lines() {
        let input = Cursor::new("a\n\nbb\n");
        let mut out = Vec::new();
        worker_loop(input, &mut out, Duration::from_secs(10), |req| format!("len:{}", req.len()))
            .unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "len:1\nlen:2\n");
    }

    #[test]
    fn slow_requests_interleave_heartbeats_before_the_reply() {
        let input = Cursor::new("slow\n");
        let mut out = Vec::new();
        worker_loop(input, &mut out, Duration::from_millis(30), |req| {
            std::thread::sleep(Duration::from_millis(200));
            format!("done:{req}")
        })
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(*lines.last().unwrap(), "done:slow");
        assert!(lines.len() > 1, "expected heartbeats before the reply: {text:?}");
        for hb in &lines[..lines.len() - 1] {
            assert!(hb.starts_with(HEARTBEAT_PREFIX), "{hb}");
            assert_eq!(*hb, HEARTBEAT_LINE);
        }
    }

    #[test]
    fn kill_hook_is_inert_without_both_variables() {
        // The variables are absent in the test environment; surviving
        // this call is the assertion.
        maybe_kill_for_test(0);
    }
}
