//! The supervised worker pool.
//!
//! A [`WorkerPool`] owns N sandboxed worker processes and the whole of
//! their lifecycle. Callers see one blocking method —
//! [`execute`](WorkerPool::execute): lease a worker, send one request
//! line, get one reply line back. Everything that can go wrong in
//! between is the supervisor's problem:
//!
//! * **Liveness**: a worker that stops producing output (heartbeats
//!   included) past the heartbeat deadline is presumed wedged, killed,
//!   and restarted.
//! * **Resource ceilings**: a worker past its RSS ceiling is killed
//!   before it endangers the host; a request past its wall-clock
//!   ceiling is abandoned as a timeout (re-running deterministic work
//!   would only time out again).
//! * **Kill-and-restart**: crashes (abort, SIGSEGV, SIGKILL, OOM kill,
//!   hung heartbeat, RSS kill) respawn the worker with the capped
//!   exponential, jittered backoff of [`vm_harden::RetryPolicy`] and
//!   re-send the request — a fresh process may well succeed where one
//!   poisoned by an earlier point would not.
//! * **Crash-loop breaker**: more than `max_restarts` crashes inside
//!   the breaker window means the *request* is the poison; the breaker
//!   trips, the request fails with [`PoolError::CrashLoop`] (mapped to
//!   `FailureKind::Crash` upstream), and the pool moves on.
//! * **Orphan reaping**: dropping the pool closes every worker's stdin
//!   (workers exit on EOF by protocol) and kills whatever remains, so a
//!   dying supervisor leaves no orphans behind.

use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use vm_harden::RetryPolicy;
use vm_obs::Event;

use crate::proc::{describe_exit, WorkerCommand, WorkerProcess};
use crate::worker::HEARTBEAT_PREFIX;

/// Supervisor poll granularity: how often liveness, wall, and RSS are
/// re-checked while waiting for a reply.
const TICK: Duration = Duration::from_millis(25);

/// Per-worker resource ceilings and the liveness deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// A worker producing no output (heartbeats included) for this long
    /// is presumed wedged and killed.
    pub heartbeat: Duration,
    /// Wall-clock ceiling per request; exceeding it abandons the
    /// request as a timeout (no restart — deterministic work would only
    /// time out again).
    pub wall: Option<Duration>,
    /// Resident-set ceiling per worker; exceeding it kills the worker
    /// (restartable — a fresh process starts small).
    pub rss_bytes: Option<u64>,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits { heartbeat: Duration::from_secs(10), wall: None, rss_bytes: None }
    }
}

/// When the crash-loop breaker gives up on a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Restarts allowed per request inside the window before the
    /// breaker trips.
    pub max_restarts: u32,
    /// The sliding window crashes are counted over.
    pub window: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig { max_restarts: 3, window: Duration::from_secs(60) }
    }
}

/// Everything a pool needs to run.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// How workers are launched.
    pub command: WorkerCommand,
    /// Worker processes (= concurrent requests served).
    pub workers: usize,
    /// Ceilings and the liveness deadline.
    pub limits: Limits,
    /// Backoff between kill and restart (`retries` is ignored; the
    /// breaker owns give-up policy).
    pub restart_backoff: RetryPolicy,
    /// The crash-loop breaker.
    pub breaker: BreakerConfig,
}

impl PoolConfig {
    /// A single-worker pool with default limits, backoff, and breaker.
    pub fn new(command: WorkerCommand) -> PoolConfig {
        PoolConfig {
            command,
            workers: 1,
            limits: Limits::default(),
            restart_backoff: RetryPolicy::new(0),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Why [`WorkerPool::execute`] gave up on a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The request crashed its worker more than `max_restarts` times
    /// inside the breaker window — the request itself is the poison.
    CrashLoop {
        /// Restarts consumed before the breaker opened.
        restarts: u32,
        /// The last crash's description (exit status + stderr tail).
        detail: String,
    },
    /// The request exceeded the pool's per-request wall-clock ceiling.
    WallLimit {
        /// The configured ceiling.
        limit: Duration,
        /// What was known when the request was abandoned.
        detail: String,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::CrashLoop { restarts, detail } => {
                write!(f, "crash-loop breaker tripped after {restarts} restart(s): {detail}")
            }
            PoolError::WallLimit { limit, detail } => {
                write!(f, "exceeded the {}ms wall-clock ceiling: {detail}", limit.as_millis())
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Pool lifetime counters, for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers spawned (initial spawns, not restarts).
    pub spawned: u64,
    /// Worker crashes observed (any cause).
    pub crashed: u64,
    /// Restarts performed after crashes.
    pub restarted: u64,
    /// Crash-loop breaker trips.
    pub tripped: u64,
}

#[derive(Default)]
struct PoolState {
    events: Vec<Event>,
    stats: PoolStats,
}

/// A supervised pool of worker processes. See the module docs.
pub struct WorkerPool {
    config: PoolConfig,
    slots: Vec<Mutex<Option<WorkerProcess>>>,
    free: Mutex<Vec<usize>>,
    available: Condvar,
    state: Mutex<PoolState>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.config.workers)
            .field("command", &self.config.command.program)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Builds a pool. Workers spawn lazily, on first use of each slot.
    pub fn new(config: PoolConfig) -> WorkerPool {
        let workers = config.workers.max(1);
        WorkerPool {
            config,
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
            free: Mutex::new((0..workers).rev().collect()),
            available: Condvar::new(),
            state: Mutex::new(PoolState::default()),
        }
    }

    /// Runs one request to completion on a leased worker: sends `request`
    /// as a single line, supervises the worker until a non-heartbeat
    /// reply line arrives, and returns it. Crashes restart the worker
    /// and re-send the request until the breaker trips. `tag` names the
    /// request in events (the sweep-point index, by convention).
    ///
    /// Blocks while all workers are leased to other callers.
    ///
    /// # Errors
    ///
    /// [`PoolError::CrashLoop`] when the breaker tripped,
    /// [`PoolError::WallLimit`] when the request out-lived its ceiling.
    pub fn execute(&self, tag: u64, request: &str) -> Result<String, PoolError> {
        let slot = self.lease();
        let result = self.run_on_slot(slot, tag, request);
        self.release(slot);
        result
    }

    /// Drains buffered supervision events (spawns, crashes, restarts,
    /// breaker trips) in emission order.
    pub fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut self.state.lock().unwrap_or_else(|e| e.into_inner()).events)
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> PoolStats {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).stats
    }

    /// Gracefully retires every idle worker: closes stdin (the protocol
    /// EOF), waits briefly for voluntary exit, kills stragglers. Also
    /// run by `Drop`.
    pub fn shutdown(&self) {
        for slot in &self.slots {
            let worker = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(mut w) = worker {
                w.close_stdin();
                w.reap_graceful(Duration::from_millis(500), Duration::from_millis(10));
            }
        }
    }

    fn lease(&self) -> usize {
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(slot) = free.pop() {
                return slot;
            }
            free = self.available.wait(free).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn release(&self, slot: usize) {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).push(slot);
        self.available.notify_one();
    }

    fn emit(&self, event: Event, bump: impl FnOnce(&mut PoolStats)) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.events.push(event);
        bump(&mut state.stats);
    }

    fn run_on_slot(&self, slot: usize, tag: u64, request: &str) -> Result<String, PoolError> {
        let mut worker = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        let worker_id = slot as u64;
        let limits = self.config.limits;
        let mut restarts: u32 = 0;
        let mut crash_window: VecDeque<Instant> = VecDeque::new();
        loop {
            // Ensure the slot holds a live worker.
            if worker.is_none() {
                match WorkerProcess::spawn(&self.config.command) {
                    Ok(w) => {
                        let pid = u64::from(w.pid);
                        if restarts == 0 {
                            self.emit(Event::WorkerSpawned { worker: worker_id, pid }, |s| {
                                s.spawned += 1;
                            });
                        } else {
                            self.emit(
                                Event::WorkerRestarted { worker: worker_id, pid, restarts },
                                |s| s.restarted += 1,
                            );
                        }
                        *worker = Some(w);
                    }
                    Err(e) => {
                        // A failed spawn is a crash that never drew
                        // breath; the breaker bounds it like any other.
                        match self.note_crash(
                            &mut restarts,
                            &mut crash_window,
                            worker_id,
                            tag,
                            format!("spawn failed: {e}"),
                        ) {
                            Ok(()) => continue,
                            Err(err) => return Err(err),
                        }
                    }
                }
            }
            let w = worker.as_mut().expect("slot was just filled");

            if w.send(request).is_err() {
                let detail = Self::post_mortem(worker.take().expect("held above"));
                match self.note_crash(&mut restarts, &mut crash_window, worker_id, tag, detail) {
                    Ok(()) => continue,
                    Err(err) => return Err(err),
                }
            }

            let started = Instant::now();
            let mut last_output = Instant::now();
            let crash_detail = loop {
                let w = worker.as_mut().expect("worker held while waiting");
                match w.recv_timeout(TICK) {
                    Ok(line) if line.starts_with(HEARTBEAT_PREFIX) => {
                        last_output = Instant::now();
                    }
                    Ok(line) => return Ok(line),
                    Err(RecvTimeoutError::Disconnected) => {
                        break Self::post_mortem(worker.take().expect("held above"));
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if let Some(status) = w.exited() {
                            let mut detail = describe_exit(status);
                            let tail = w.stderr_tail();
                            if !tail.is_empty() {
                                detail = format!("{detail}; stderr: {tail}");
                            }
                            worker.take().expect("held above").reap();
                            break detail;
                        }
                        if let Some(wall) = limits.wall {
                            if started.elapsed() > wall {
                                worker.take().expect("held above").reap();
                                return Err(PoolError::WallLimit {
                                    limit: wall,
                                    detail: format!(
                                        "request {tag} still running after {}ms",
                                        started.elapsed().as_millis()
                                    ),
                                });
                            }
                        }
                        if let Some(cap) = limits.rss_bytes {
                            if let Some(rss) = w.rss_bytes() {
                                if rss > cap {
                                    worker.take().expect("held above").reap();
                                    break format!(
                                        "resident set {rss} bytes exceeded the {cap}-byte ceiling"
                                    );
                                }
                            }
                        }
                        if last_output.elapsed() > limits.heartbeat {
                            let tail = worker.as_ref().map(|w| w.stderr_tail()).unwrap_or_default();
                            worker.take().expect("held above").reap();
                            let mut detail = format!(
                                "no heartbeat for {}ms (deadline {}ms)",
                                last_output.elapsed().as_millis(),
                                limits.heartbeat.as_millis()
                            );
                            if !tail.is_empty() {
                                detail = format!("{detail}; stderr: {tail}");
                            }
                            break detail;
                        }
                    }
                }
            };
            match self.note_crash(&mut restarts, &mut crash_window, worker_id, tag, crash_detail) {
                Ok(()) => continue,
                Err(err) => return Err(err),
            }
        }
    }

    /// Records one crash: emits the event, advances the breaker window,
    /// and either sleeps the restart backoff (Ok — caller retries) or
    /// trips the breaker (Err).
    fn note_crash(
        &self,
        restarts: &mut u32,
        crash_window: &mut VecDeque<Instant>,
        worker_id: u64,
        tag: u64,
        detail: String,
    ) -> Result<(), PoolError> {
        self.emit(
            Event::WorkerCrashed { worker: worker_id, point: tag, restarts: *restarts },
            |s| {
                s.crashed += 1;
            },
        );
        let now = Instant::now();
        crash_window.push_back(now);
        while let Some(&front) = crash_window.front() {
            if now.duration_since(front) > self.config.breaker.window {
                crash_window.pop_front();
            } else {
                break;
            }
        }
        if crash_window.len() as u32 > self.config.breaker.max_restarts {
            self.emit(
                Event::BreakerTripped { worker: worker_id, point: tag, restarts: *restarts },
                |s| s.tripped += 1,
            );
            return Err(PoolError::CrashLoop { restarts: *restarts, detail });
        }
        *restarts += 1;
        std::thread::sleep(self.config.restart_backoff.backoff_jittered(*restarts, worker_id));
        Ok(())
    }

    /// The crash description for a worker that died or stopped talking.
    fn post_mortem(mut w: WorkerProcess) -> String {
        // Give a just-killed process a moment to be reportable.
        let deadline = Instant::now() + Duration::from_secs(2);
        let status = loop {
            if let Some(s) = w.exited() {
                break Some(s);
            }
            if Instant::now() >= deadline {
                break None;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let mut detail = match status {
            Some(s) => describe_exit(s),
            None => "stdout closed but the process is still running".to_owned(),
        };
        let tail = w.stderr_tail();
        if !tail.is_empty() {
            detail = format!("{detail}; stderr: {tail}");
        }
        w.reap();
        detail
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sh_pool(script: &str) -> PoolConfig {
        let mut cfg = PoolConfig::new(WorkerCommand::new("/bin/sh", &["-c", script]));
        cfg.restart_backoff = RetryPolicy::NONE; // fast tests
        cfg
    }

    fn event_names(pool: &WorkerPool) -> Vec<&'static str> {
        pool.take_events().iter().map(Event::name).collect()
    }

    #[test]
    fn a_healthy_worker_serves_many_requests_from_one_spawn() {
        let pool = WorkerPool::new(sh_pool("while read l; do echo \"ok:$l\"; done"));
        for i in 0..3 {
            assert_eq!(pool.execute(i, &format!("r{i}")).unwrap(), format!("ok:r{i}"));
        }
        assert_eq!(pool.stats(), PoolStats { spawned: 1, ..PoolStats::default() });
        assert_eq!(event_names(&pool), ["worker_spawned"]);
    }

    #[test]
    fn heartbeats_keep_a_slow_worker_alive_and_are_filtered() {
        let mut cfg = sh_pool(
            "while read l; do \
               echo '{\"j\":\"hb\"}'; sleep 0.1; echo '{\"j\":\"hb\"}'; sleep 0.1; \
               echo \"done:$l\"; \
             done",
        );
        cfg.limits.heartbeat = Duration::from_millis(150); // < total, > gap
        let pool = WorkerPool::new(cfg);
        assert_eq!(pool.execute(0, "x").unwrap(), "done:x");
        assert_eq!(pool.stats().crashed, 0);
    }

    #[test]
    fn a_crashed_worker_is_restarted_and_the_request_resent() {
        // Dies on the first request (marker file absent), serves after.
        let marker =
            std::env::temp_dir().join(format!("vm-supervise-restart-{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let script = format!(
            "while read l; do \
               if [ ! -e {m} ]; then touch {m}; echo dying >&2; kill -9 $$; fi; \
               echo \"ok:$l\"; \
             done",
            m = marker.display()
        );
        let pool = WorkerPool::new(sh_pool(&script));
        assert_eq!(pool.execute(7, "req").unwrap(), "ok:req");
        let stats = pool.stats();
        assert_eq!((stats.spawned, stats.crashed, stats.restarted, stats.tripped), (1, 1, 1, 0));
        assert_eq!(event_names(&pool), ["worker_spawned", "worker_crashed", "worker_restarted"]);
        let _ = std::fs::remove_file(&marker);
    }

    #[test]
    fn a_crash_loop_trips_the_breaker_with_the_exit_in_the_detail() {
        let mut cfg = sh_pool("read l; exit 42");
        cfg.breaker.max_restarts = 2;
        let pool = WorkerPool::new(cfg);
        let err = pool.execute(3, "req").unwrap_err();
        let PoolError::CrashLoop { restarts, detail } = &err else {
            panic!("expected CrashLoop, got {err:?}");
        };
        assert_eq!(*restarts, 2);
        assert!(detail.contains("exited with status 42"), "{detail}");
        let stats = pool.stats();
        assert_eq!((stats.crashed, stats.restarted, stats.tripped), (3, 2, 1));
        assert_eq!(
            event_names(&pool),
            [
                "worker_spawned",
                "worker_crashed",
                "worker_restarted",
                "worker_crashed",
                "worker_restarted",
                "worker_crashed",
                "breaker_tripped"
            ]
        );
        // The pool is healthy again for the next request.
        let err = pool.execute(4, "req").unwrap_err();
        assert!(matches!(err, PoolError::CrashLoop { .. }));
    }

    #[test]
    fn a_wedged_worker_misses_its_heartbeat_deadline() {
        let mut cfg = sh_pool("read l; sleep 60");
        cfg.limits.heartbeat = Duration::from_millis(120);
        cfg.breaker.max_restarts = 1;
        let pool = WorkerPool::new(cfg);
        let err = pool.execute(0, "req").unwrap_err();
        let PoolError::CrashLoop { detail, .. } = &err else {
            panic!("expected CrashLoop, got {err:?}");
        };
        assert!(detail.contains("no heartbeat"), "{detail}");
    }

    #[test]
    fn the_wall_clock_ceiling_abandons_without_restarting() {
        let mut cfg = sh_pool(
            "while read l; do while true; do echo '{\"j\":\"hb\"}'; sleep 0.05; done; done",
        );
        cfg.limits.wall = Some(Duration::from_millis(200));
        let pool = WorkerPool::new(cfg);
        let err = pool.execute(9, "req").unwrap_err();
        assert!(matches!(err, PoolError::WallLimit { .. }), "{err:?}");
        assert_eq!(pool.stats().restarted, 0, "wall overruns must not restart");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn the_rss_ceiling_kills_a_hog() {
        // `sh` itself is tiny; any live process busts a 1-byte ceiling.
        let mut cfg = sh_pool(
            "while read l; do while true; do echo '{\"j\":\"hb\"}'; sleep 0.05; done; done",
        );
        cfg.limits.rss_bytes = Some(1);
        cfg.breaker.max_restarts = 1;
        let pool = WorkerPool::new(cfg);
        let err = pool.execute(0, "req").unwrap_err();
        let PoolError::CrashLoop { detail, .. } = &err else {
            panic!("expected CrashLoop, got {err:?}");
        };
        assert!(detail.contains("resident set"), "{detail}");
    }

    #[test]
    fn leases_block_until_a_worker_frees_up() {
        let mut cfg = sh_pool("while read l; do sleep 0.1; echo \"ok:$l\"; done");
        cfg.workers = 2;
        let pool = Arc::new(WorkerPool::new(cfg));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || pool.execute(i, &format!("r{i}")).unwrap())
            })
            .collect();
        let mut replies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        replies.sort();
        assert_eq!(replies, ["ok:r0", "ok:r1", "ok:r2", "ok:r3"]);
        assert_eq!(pool.stats().spawned, 2);
    }
}
