//! One sandboxed worker process: spawn, line transport, liveness probes.
//!
//! A worker speaks newline-delimited JSON over its stdin/stdout. Its
//! stdout is drained by a dedicated reader thread into a channel so the
//! supervisor can wait for a reply *with a timeout* (a blocking read
//! could hang forever on a wedged worker); stderr is drained into a
//! small ring buffer so a crash can be reported with the worker's last
//! words instead of "it died".

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, ExitStatus, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How many trailing stderr lines a crash report keeps.
const STDERR_TAIL_LINES: usize = 8;

/// How a worker process is launched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCommand {
    /// The worker executable.
    pub program: PathBuf,
    /// Its arguments.
    pub args: Vec<String>,
    /// Extra environment variables (inherited environment plus these).
    pub envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A command for `program` with `args` and no extra environment.
    pub fn new(program: impl Into<PathBuf>, args: &[&str]) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: args.iter().map(|s| (*s).to_owned()).collect(),
            envs: Vec::new(),
        }
    }

    /// The canonical production command: re-invoke the current
    /// executable with `args` (e.g. `["worker"]` for `repro worker`).
    ///
    /// # Errors
    ///
    /// Propagates the failure to resolve the current executable path.
    pub fn current_exe(args: &[&str]) -> io::Result<WorkerCommand> {
        Ok(WorkerCommand::new(std::env::current_exe()?, args))
    }

    /// Adds an environment variable to the worker's environment.
    #[must_use]
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> WorkerCommand {
        self.envs.push((key.into(), value.into()));
        self
    }
}

/// A human-readable exit description: signal name on Unix kills, exit
/// code otherwise.
pub fn describe_exit(status: ExitStatus) -> String {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            let name = match sig {
                4 => " (SIGILL)",
                6 => " (SIGABRT)",
                9 => " (SIGKILL)",
                11 => " (SIGSEGV)",
                15 => " (SIGTERM)",
                _ => "",
            };
            return format!("killed by signal {sig}{name}");
        }
    }
    match status.code() {
        Some(code) => format!("exited with status {code}"),
        None => "exited without a status".to_owned(),
    }
}

/// A live (or recently deceased) supervised worker.
pub(crate) struct WorkerProcess {
    child: Child,
    /// `None` once closed for a graceful shutdown (EOF tells the worker
    /// to exit).
    stdin: Option<ChildStdin>,
    /// Stdout lines, fed by the reader thread; disconnects on EOF.
    lines: Receiver<String>,
    stderr_tail: Arc<Mutex<VecDeque<String>>>,
    /// The worker's OS process id.
    pub pid: u32,
}

impl fmt::Debug for WorkerProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerProcess").field("pid", &self.pid).finish_non_exhaustive()
    }
}

impl WorkerProcess {
    /// Spawns a worker and wires its pipes.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure (missing binary, fork limits, ...).
    pub fn spawn(cmd: &WorkerCommand) -> io::Result<WorkerProcess> {
        let mut child = Command::new(&cmd.program)
            .args(&cmd.args)
            .envs(cmd.envs.iter().map(|(k, v)| (k, v)))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()?;
        let pid = child.id();
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        let stderr = child.stderr.take().expect("stderr was piped");
        let (tx, lines) = mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                if tx.send(line).is_err() {
                    break; // supervisor moved on; stop pumping
                }
            }
        });
        let stderr_tail = Arc::new(Mutex::new(VecDeque::new()));
        let tail = Arc::clone(&stderr_tail);
        std::thread::spawn(move || {
            for line in BufReader::new(stderr).lines().map_while(Result::ok) {
                let mut t = tail.lock().unwrap_or_else(|e| e.into_inner());
                if t.len() >= STDERR_TAIL_LINES {
                    t.pop_front();
                }
                t.push_back(line);
            }
        });
        Ok(WorkerProcess { child, stdin: Some(stdin), lines, stderr_tail, pid })
    }

    /// Writes one request line (newline appended) and flushes.
    ///
    /// # Errors
    ///
    /// Fails when the worker's stdin is closed — i.e. the worker died.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        let Some(stdin) = self.stdin.as_mut() else {
            return Err(io::Error::other("worker stdin already closed"));
        };
        stdin.write_all(line.as_bytes())?;
        stdin.write_all(b"\n")?;
        stdin.flush()
    }

    /// Waits up to `timeout` for the next stdout line.
    ///
    /// # Errors
    ///
    /// `Timeout` when no line arrived in time, `Disconnected` once the
    /// worker's stdout reached EOF (the worker exited or crashed).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<String, RecvTimeoutError> {
        self.lines.recv_timeout(timeout)
    }

    /// The worker's exit status, when it has already terminated.
    pub fn exited(&mut self) -> Option<ExitStatus> {
        self.child.try_wait().ok().flatten()
    }

    /// The worker's resident set size in bytes, from
    /// `/proc/<pid>/status` (`None` off Linux or once the process is
    /// gone).
    pub fn rss_bytes(&self) -> Option<u64> {
        rss_bytes_of(self.pid)
    }

    /// The last few stderr lines, joined, for crash reports.
    pub fn stderr_tail(&self) -> String {
        let tail = self.stderr_tail.lock().unwrap_or_else(|e| e.into_inner());
        tail.iter().cloned().collect::<Vec<_>>().join("; ")
    }

    /// Closes stdin so a healthy worker exits on its own at EOF.
    pub fn close_stdin(&mut self) {
        self.stdin = None;
    }

    /// Kills (if still alive) and reaps the worker. Consumes the
    /// handle: there is nothing meaningful left after the wait.
    pub fn reap(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Waits up to `grace` for voluntary exit (poll at `tick`), then
    /// kills. Used for graceful shutdown after [`close_stdin`](WorkerProcess::close_stdin).
    pub fn reap_graceful(mut self, grace: Duration, tick: Duration) {
        let deadline = std::time::Instant::now() + grace;
        while std::time::Instant::now() < deadline {
            if self.exited().is_some() {
                let _ = self.child.wait();
                return;
            }
            std::thread::sleep(tick);
        }
        self.reap();
    }
}

/// Resident set size of an arbitrary pid, in bytes (Linux only).
pub fn rss_bytes_of(pid: u32) -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmRSS:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> WorkerCommand {
        WorkerCommand::new("/bin/sh", &["-c", script])
    }

    #[test]
    fn round_trips_a_line_and_reports_exit() {
        let mut w = WorkerProcess::spawn(&sh("read l; echo \"got:$l\"; echo oops >&2")).unwrap();
        w.send("ping").unwrap();
        let reply = w.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply, "got:ping");
        // EOF on stdin ends the loop-free script; it exits cleanly.
        w.close_stdin();
        assert!(w.send("x").is_err());
        // Wait for exit, then the stderr tail is observable.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while w.exited().is_none() {
            assert!(std::time::Instant::now() < deadline, "worker never exited");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(w.stderr_tail(), "oops");
        assert_eq!(describe_exit(w.exited().unwrap()), "exited with status 0");
        w.reap();
    }

    #[test]
    fn signal_deaths_are_described_by_name() {
        let mut w = WorkerProcess::spawn(&sh("kill -9 $$")).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let status = loop {
            if let Some(s) = w.exited() {
                break s;
            }
            assert!(std::time::Instant::now() < deadline, "worker never died");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(describe_exit(status), "killed by signal 9 (SIGKILL)");
        w.reap();
    }

    #[test]
    fn rss_is_reported_on_linux() {
        let mut w = WorkerProcess::spawn(&sh("read l; echo done")).unwrap();
        if cfg!(target_os = "linux") {
            let rss = w.rss_bytes().expect("live process has an RSS");
            assert!(rss > 0);
        }
        w.send("x").unwrap();
        let _ = w.recv_timeout(Duration::from_secs(5));
        w.reap_graceful(Duration::from_secs(2), Duration::from_millis(10));
        assert!(rss_bytes_of(0).is_none() || cfg!(not(target_os = "linux")));
    }

    #[test]
    fn command_builders_compose() {
        let cmd = WorkerCommand::new("/bin/echo", &["a"]).env("K", "V");
        assert_eq!(cmd.envs, vec![("K".to_owned(), "V".to_owned())]);
        let exe = WorkerCommand::current_exe(&["worker"]).unwrap();
        assert!(exe.program.is_absolute());
        assert_eq!(exe.args, vec!["worker".to_owned()]);
    }
}
