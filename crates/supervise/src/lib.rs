//! vm-supervise: process-level fault isolation for sweep execution.
//!
//! Every other isolation boundary in this workspace is `catch_unwind`,
//! which cannot survive the failure modes that actually end long
//! campaigns: `abort()`, SIGSEGV, stack overflow, the kernel OOM
//! killer, `panic = "abort"` builds. This crate supplies the boundary
//! that can — a supervision tree one level deep:
//!
//! * [`WorkerPool`] — the supervisor. Owns N sandboxed worker
//!   *processes*, leases them to callers one request at a time, and
//!   owns the whole failure policy: heartbeat liveness deadlines,
//!   kill-and-restart with capped exponential jittered backoff
//!   ([`vm_harden::RetryPolicy`]), a crash-loop circuit breaker
//!   ([`BreakerConfig`]), per-worker wall-clock and RSS ceilings
//!   ([`Limits`]), and orphan reaping on drop.
//! * [`worker_loop`] — the worker runtime. One request line in, one
//!   reply line out, `{"j":"hb"}` heartbeats in between, clean exit at
//!   stdin EOF (the supervisor's death closes the pipe, so workers
//!   never orphan).
//! * [`WorkerCommand`] — how workers launch; production pools re-invoke
//!   the current executable (`repro worker`), tests substitute anything
//!   that speaks the protocol.
//!
//! The pool is *payload-agnostic*: requests and replies are opaque
//! lines. `vm-explore` layers the sweep-point protocol on top and keeps
//! its bit-exact result codec, so process-isolated sweeps merge
//! bit-identically to in-process ones.
//!
//! Supervision telemetry (`worker_spawned` / `worker_crashed` /
//! `worker_restarted` / `breaker_tripped`) is buffered as typed
//! [`vm_obs::Event`]s — drain with [`WorkerPool::take_events`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
mod proc;
pub mod worker;

pub use pool::{BreakerConfig, Limits, PoolConfig, PoolError, PoolStats, WorkerPool};
pub use proc::{describe_exit, rss_bytes_of, WorkerCommand};
pub use worker::{
    maybe_kill_for_test, worker_loop, DEFAULT_HEARTBEAT_INTERVAL, HEARTBEAT_LINE, HEARTBEAT_PREFIX,
};
